"""Tests for the inspection utilities and the CLI."""

import pytest

from repro.cli import main
from repro.core.adversary import AdversaryConfig
from repro.experiments import inspect as inspect_module
from repro.experiments.harness import TrialConfig, run_trial
from repro.web.workload import VolunteerWorkload


@pytest.fixture(scope="module")
def attacked_trial():
    return run_trial(
        0, VolunteerWorkload(seed=7),
        TrialConfig(adversary=AdversaryConfig()),
    )


def test_timeline_contains_attack_phases(attacked_trial):
    text = inspect_module.timeline(attacked_trial)
    assert "ATTACK armed" in text
    assert "ATTACK triggered" in text
    assert "SERVE result-html" in text


def test_timeline_truncates(attacked_trial):
    text = inspect_module.timeline(attacked_trial, max_lines=5)
    assert "more events" in text
    assert len(text.splitlines()) == 6


def test_wire_view_annotates_bursts(attacked_trial):
    text = inspect_module.wire_view(attacked_trial, since=8.0)
    assert "emblem-" in text
    assert " B " in text


def test_summary_line(attacked_trial):
    text = inspect_module.summary(attacked_trial)
    assert "trial 0" in text
    assert "packets captured" in text


def test_cli_fig1(capsys):
    assert main(["fig1"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out
    assert "sequential" in out


def test_cli_attack(capsys):
    assert main(["attack", "--trial", "1"]) == 0
    out = capsys.readouterr().out
    assert "predicted order" in out
    assert "positions correct" in out


def test_cli_baseline_small(capsys):
    assert main(["baseline", "--trials", "3"]) == 0
    assert "degree of multiplexing" in capsys.readouterr().out


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["nonsense"])
