"""Profiler unit tests and the profiling determinism contract.

Profiling is collection-only: it reads counters the simulation already
maintains and wraps trial phases in wall-clock timers, so experiment
output must be byte-identical with profiling on or off.  The regression
tests here render Table I and Fig. 6 mini-profiles both ways and
compare the tables byte for byte — at the library level and through
the CLI (where the profile report must land on stderr, never stdout).
"""

import json

import pytest

from repro import profiling
from repro.cli import main
from repro.experiments import fig6, table1
from repro.experiments.hotpath import (
    KINDS,
    profile_reference,
    reference_config,
    run_reference_trial,
)


# -- Profiler mechanics -------------------------------------------------


def test_counters_and_timers_accumulate():
    profiler = profiling.Profiler()
    profiler.count("sim.events")
    profiler.count("sim.events", 4)
    profiler.add_time("trial.simulate", 0.25)
    profiler.add_time("trial.simulate", 0.75)
    assert profiler.counters["sim.events"] == 5
    assert profiler.timers["trial.simulate"] == pytest.approx(1.0)


def test_timer_context_manager_times_block():
    profiler = profiling.Profiler()
    with profiler.timer("phase"):
        pass
    assert profiler.timers["phase"] >= 0.0
    with pytest.raises(RuntimeError):
        with profiler.timer("phase"):
            raise RuntimeError("boom")
    assert profiler.timers["phase"] >= 0.0  # recorded despite the raise


def test_merge_is_additive():
    first = profiling.Profiler()
    first.count("trials", 2)
    first.add_time("trial.simulate", 1.0)
    second = profiling.Profiler()
    second.count("trials", 3)
    second.count("net.packets", 10)
    second.add_time("trial.simulate", 0.5)
    first.merge(second)
    assert first.counters == {"trials": 5, "net.packets": 10}
    assert first.timers["trial.simulate"] == pytest.approx(1.5)


def test_gauges_keep_high_water_mark():
    profiler = profiling.Profiler()
    profiler.gauge_max("mem.peak_rss_kb", 100.0)
    profiler.gauge_max("mem.peak_rss_kb", 50.0)
    assert profiler.gauges["mem.peak_rss_kb"] == 100.0
    other = profiling.Profiler()
    other.gauge_max("mem.peak_rss_kb", 250.0)
    profiler.merge(other)
    assert profiler.gauges["mem.peak_rss_kb"] == 250.0
    assert json.loads(profiler.to_json())["gauges"] == {
        "mem.peak_rss_kb": 250.0
    }
    assert "gauges:" in profiler.render()


def test_peak_rss_is_positive_and_monotone():
    first = profiling.peak_rss_kb()
    assert first > 0
    ballast = bytearray(8 << 20)  # 8 MiB high-water bump
    second = profiling.peak_rss_kb()
    del ballast
    assert second >= first
    assert profiling.peak_rss_kb(include_children=True) >= second


def test_traced_memory_reports_python_heap_peak():
    with profiling.profiled() as profiler:
        with profiling.traced_memory() as traced:
            ballast = bytearray(4 << 20)
            del ballast
    assert traced["tracemalloc_peak_kb"] >= 4096
    assert profiler.gauges["mem.tracemalloc_peak_kb"] >= 4096


def test_traced_memory_nests_without_stopping_outer_trace():
    import tracemalloc

    with profiling.traced_memory() as outer:
        with profiling.traced_memory() as inner:
            ballast = bytearray(1 << 20)
            del ballast
        assert tracemalloc.is_tracing()  # inner exit must not stop it
    assert not tracemalloc.is_tracing()
    assert inner["tracemalloc_peak_kb"] >= 1024
    assert outer["tracemalloc_peak_kb"] >= 0


def test_rates_derive_from_simulate_time():
    profiler = profiling.Profiler()
    assert profiler.rates() == {}
    profiler.count("sim.events", 1000)
    profiler.add_time("trial.simulate", 2.0)
    assert profiler.rates() == {"sim.events_per_sec": pytest.approx(500.0)}


def test_snapshot_and_json_round_trip():
    profiler = profiling.Profiler()
    profiler.count("trials", 1)
    profiler.add_time("trial.simulate", 0.125)
    payload = json.loads(profiler.to_json(extra="x"))
    assert payload["counters"] == {"trials": 1}
    assert payload["timers_s"] == {"trial.simulate": 0.125}
    assert payload["extra"] == "x"


def test_render_mentions_sections():
    profiler = profiling.Profiler()
    empty = profiler.render()
    assert "no profiled sections" in empty
    profiler.count("sim.events", 7)
    profiler.add_time("trial.simulate", 0.5)
    report = profiler.render()
    assert "wall clock:" in report
    assert "counters:" in report
    assert "sim.events" in report


def test_profiled_restores_previous_profiler():
    assert profiling.active() is None
    outer = profiling.activate()
    try:
        with profiling.profiled() as inner:
            assert profiling.active() is inner
            assert inner is not outer
        assert profiling.active() is outer
    finally:
        profiling.deactivate()
    assert profiling.active() is None


def test_activate_deactivate():
    profiler = profiling.activate()
    assert profiling.active() is profiler
    assert profiling.deactivate() is profiler
    assert profiling.active() is None
    assert profiling.deactivate() is None


# -- Harness integration ------------------------------------------------


def test_harness_populates_profiler():
    with profiling.profiled() as profiler:
        run_reference_trial("table1")
    assert profiler.counters["trials"] == 1
    assert profiler.counters["sim.events"] > 0
    assert profiler.counters["net.packets"] > 0
    assert profiler.counters["trace.records"] > 0
    assert profiler.counters["h2.frames_sent"] > 0
    assert profiler.timers["trial.simulate"] > 0.0
    assert profiler.timers["trial.setup"] >= 0.0
    assert profiler.timers["trial.collect"] >= 0.0
    assert profiler.gauges["mem.peak_rss_kb"] > 0


def test_profile_reference_covers_both_slices():
    profiler, report = profile_reference()
    for kind in KINDS:
        assert f"slice.{kind}" in profiler.timers
    assert profiler.counters["trials"] == len(KINDS)
    assert "hpack.literal_length.misses" in profiler.counters
    assert report.startswith("hot-path profile")


def test_reference_config_rejects_unknown_kind():
    with pytest.raises(ValueError):
        reference_config("fig9")


# -- Determinism: profiling must not change experiment output -----------


def test_table1_output_identical_with_profiling():
    plain = table1.run(trials=2, seed=7, delays=(0.0, 0.050)).render()
    with profiling.profiled() as profiler:
        profiled = table1.run(trials=2, seed=7, delays=(0.0, 0.050)).render()
    assert profiled == plain
    assert profiler.counters["trials"] == 4  # the hooks did run


def test_fig6_output_identical_with_profiling():
    plain = fig6.run(trials=1, seed=7, drop_rates=(0.0, 0.8)).render()
    with profiling.profiled():
        profiled = fig6.run(trials=1, seed=7, drop_rates=(0.0, 0.8)).render()
    assert profiled == plain


def test_cli_profile_flag_keeps_stdout_identical(capsys):
    assert main(["table1", "--trials", "1"]) == 0
    plain = capsys.readouterr()
    assert main(["table1", "--trials", "1", "--profile"]) == 0
    profiled = capsys.readouterr()
    assert profiled.out == plain.out
    assert "hot-path profile" in profiled.err
    assert profiling.active() is None  # flag cleaned up after the run


def test_cli_profile_subcommand(capsys):
    assert main(["profile"]) == 0
    captured = capsys.readouterr()
    assert "hot-path profile" in captured.out
    assert "slice.table1" in captured.out
    assert "slice.fig6" in captured.out
