"""Micro-runs of the heavier experiment modules (tiny trial counts) —
ensures every experiment entry point stays runnable."""

import pytest

from repro.experiments import (
    fig5,
    fig6,
    generalization,
    partial_mux,
    sweeps,
    table1,
    table2,
    trigger_study,
)


def test_table1_micro():
    result = table1.run(trials=2, seed=7, delays=(0.0, 0.05))
    assert len(result.rows_data) == 2
    assert result.rows_data[0].trials == 2
    assert "Table I" in result.render()


def test_table2_micro():
    result = table2.run(trials=2, seed=7)
    assert result.trials == 2
    text = result.render()
    assert "one object at a time" in text
    assert "I8" in text


def test_fig5_micro():
    result = fig5.run(trials=2, seed=7, bandwidths_mbps=(1000, 1))
    assert len(result.rows_data) == 2
    assert "bandwidth" in result.render()


def test_fig6_micro():
    result = fig6.run(trials=2, seed=7, drop_rates=(0.8,))
    assert len(result.rows_data) == 1
    row = result.rows_data[0]
    assert row.trials == 2


def test_partial_mux_micro():
    result = partial_mux.run(trials=2, seed=7)
    rows = {row[0]: float(row[1].rstrip("%")) for row in result.rows_data}
    assert rows["+ subset-sum blob explanation"] >= \
        rows["exact size match only"]


def test_trigger_study_micro():
    result = trigger_study.run(trials=3, training_trials=4, seed=7)
    assert len(result.rows_data) == 2
    assert "trigger" in result.render()


def test_generalization_micro():
    result = generalization.run(
        trials=2, seed=7, profiles=[("tiny", 10, 0)]
    )
    assert len(result.rows_data) == 1
    assert "generated websites" in result.render()


def test_sweep_render_includes_chart():
    result = sweeps.escalation_curve(trials=2, seed=7, spacings_ms=(80, 160))
    text = result.render()
    assert "escalated spacing" in text
    assert "█" in text or "▏" in text
