"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest

# Retry backoff is deterministic but real wall-clock; never wait in tests.
os.environ.setdefault("REPRO_BACKOFF", "0")

from repro.netsim.link import Link, LinkConfig
from repro.netsim.node import Host
from repro.netsim.topology import build_adversary_path
from repro.simkernel.randomstream import RandomStreams
from repro.simkernel.simulator import Simulator
from repro.simkernel.trace import TraceLog


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def trace() -> TraceLog:
    return TraceLog()


@pytest.fixture
def rng() -> RandomStreams:
    return RandomStreams(42)


@pytest.fixture
def wire(sim, trace, rng):
    """Two hosts joined by a fast, lossless link (no middlebox)."""
    link = Link(sim, LinkConfig(propagation_delay=0.001), rng=rng,
                trace=trace, name="wire")
    host_a = Host(sim, "a", trace=trace)
    host_b = Host(sim, "b", trace=trace)
    host_a.attach_link(link.a)
    host_b.attach_link(link.b)
    return sim, host_a, host_b


@pytest.fixture
def topology():
    """The standard client—gateway—server path."""
    return build_adversary_path(seed=1)
