"""Scale and robustness: big pages, long sessions, determinism."""

import pytest

from repro.core.adversary import AdversaryConfig
from repro.experiments.harness import TrialConfig, run_trial
from repro.h2.client import H2Client
from repro.h2.server import H2Server, ServerConfig
from repro.netsim.topology import build_adversary_path
from repro.simkernel.randomstream import RandomStreams
from repro.web.browser import Browser, BrowserConfig
from repro.web.generator import generate_site
from repro.web.workload import VolunteerWorkload


def test_two_hundred_object_page_completes():
    rng = RandomStreams(123)
    site = generate_site(rng, object_count=200)
    topology = build_adversary_path(seed=rng.master_seed)
    sim = topology.sim
    H2Server(sim, topology.server, 443, site.website.router,
             config=ServerConfig(), trace=topology.trace, rng=rng)
    client = H2Client(sim, topology.client, topology.server.endpoint(443),
                      trace=topology.trace)
    browser = Browser(sim, client, site.schedule, config=BrowserConfig(),
                      trace=topology.trace)
    browser.start()
    sim.run_until(60.0)
    assert browser.page_complete
    assert len(client.handles) == 201


def test_attacked_trial_deterministic_to_the_packet():
    workload = VolunteerWorkload(seed=7)
    config = TrialConfig(adversary=AdversaryConfig())
    first = run_trial(3, workload, config)
    second = run_trial(3, workload, config)
    first_capture = first.topology.middlebox.capture
    second_capture = second.topology.middlebox.capture
    assert len(first_capture) == len(second_capture)
    for a, b in zip(first_capture, second_capture):
        assert a.time == b.time
        assert a.wire_size == b.wire_size
        assert a.direction == b.direction
    assert first.analyze().sequence_prediction == \
        second.analyze().sequence_prediction


def test_seed_changes_everything():
    a = run_trial(0, VolunteerWorkload(seed=1), TrialConfig())
    b = run_trial(0, VolunteerWorkload(seed=2), TrialConfig())
    assert a.site.party_order != b.site.party_order or \
        len(a.topology.middlebox.capture) != len(b.topology.middlebox.capture)


def test_back_to_back_trials_do_not_leak_state():
    """Global counters (packet ids, instance ids) grow across trials but
    must not affect behaviour."""
    workload = VolunteerWorkload(seed=7)
    results = [run_trial(0, workload, TrialConfig()).duration
               for _ in range(3)]
    assert results[0] == results[1] == results[2]


@pytest.mark.parametrize("horizon", [5.0, 40.0])
def test_horizon_respected(horizon):
    workload = VolunteerWorkload(seed=7)
    outcome = run_trial(
        0, workload,
        TrialConfig(adversary=AdversaryConfig(), horizon=horizon),
    )
    assert outcome.duration <= horizon + 1e-9
