"""Unit tests for HTTP/2 frames, settings, flow control, priority."""

import pytest

from repro.h2.errors import H2Error, H2ErrorCode
from repro.h2.flowcontrol import FlowControlWindow
from repro.h2.frames import (
    ContinuationFrame,
    DataFrame,
    FRAME_HEADER_BYTES,
    GoAwayFrame,
    HeadersFrame,
    PingFrame,
    PriorityFrame,
    PushPromiseFrame,
    RstStreamFrame,
    SettingsFrame,
    WindowUpdateFrame,
)
from repro.h2.priority import PriorityTree
from repro.h2.settings import H2Settings, firefox_like_settings
from repro.hpack.codec import HpackEncoder


# -- frames --------------------------------------------------------------------

def test_data_frame_wire_length():
    frame = DataFrame(stream_id=1, data_bytes=1000)
    assert frame.wire_length == FRAME_HEADER_BYTES + 1000


def test_data_frame_padding_adds_length_byte():
    frame = DataFrame(stream_id=1, data_bytes=100, padding=20)
    assert frame.payload_length == 100 + 1 + 20


def test_data_frame_requires_stream():
    with pytest.raises(ValueError):
        DataFrame(stream_id=0, data_bytes=1)


def test_headers_frame_block_size():
    block = HpackEncoder().encode([(":method", "GET"), (":path", "/x")])
    frame = HeadersFrame(stream_id=1, block=block)
    assert frame.payload_length == block.encoded_length


def test_headers_frame_priority_adds_five_octets():
    frame = HeadersFrame(stream_id=1, priority_weight=10)
    assert frame.payload_length == 5


def test_priority_frame():
    frame = PriorityFrame(stream_id=3, depends_on=1, weight=100)
    assert frame.payload_length == 5
    with pytest.raises(ValueError):
        PriorityFrame(stream_id=3, weight=0)
    with pytest.raises(ValueError):
        PriorityFrame(stream_id=0)


def test_rst_stream_frame():
    frame = RstStreamFrame(stream_id=5, error_code=H2ErrorCode.CANCEL)
    assert frame.payload_length == 4
    with pytest.raises(ValueError):
        RstStreamFrame(stream_id=0)


def test_settings_frame_sizing():
    assert SettingsFrame(settings={1: 4096, 4: 65535}).payload_length == 12
    assert SettingsFrame(ack=True).payload_length == 0
    with pytest.raises(ValueError):
        SettingsFrame(ack=True, settings={1: 1})
    with pytest.raises(ValueError):
        SettingsFrame(stream_id=3)


def test_ping_goaway_window_update():
    assert PingFrame().payload_length == 8
    assert GoAwayFrame(debug_bytes=10).payload_length == 18
    assert WindowUpdateFrame(stream_id=0, increment=100).payload_length == 4
    with pytest.raises(ValueError):
        WindowUpdateFrame(increment=0)


def test_push_promise_frame():
    frame = PushPromiseFrame(stream_id=1, promised_stream_id=2)
    assert frame.payload_length == 4
    with pytest.raises(ValueError):
        PushPromiseFrame(stream_id=1, promised_stream_id=0)


def test_continuation_frame():
    assert ContinuationFrame(stream_id=1, block_bytes=50).payload_length == 50


def test_frame_type_name():
    assert DataFrame(stream_id=1, data_bytes=1).type_name == "DATA"
    assert RstStreamFrame(stream_id=1).type_name == "RSTSTREAM"


# -- settings --------------------------------------------------------------------

def test_settings_defaults_match_rfc():
    settings = H2Settings()
    assert settings.header_table_size == 4096
    assert settings.initial_window_size == 65535
    assert settings.max_frame_size == 16384


def test_settings_changed_from():
    changed = firefox_like_settings().changed_from(H2Settings())
    from repro.h2.settings import (
        SETTINGS_INITIAL_WINDOW_SIZE,
        SETTINGS_MAX_CONCURRENT_STREAMS,
    )
    assert SETTINGS_INITIAL_WINDOW_SIZE in changed
    assert SETTINGS_MAX_CONCURRENT_STREAMS in changed
    assert len(changed) == 2


def test_settings_validation():
    with pytest.raises(ValueError):
        H2Settings(initial_window_size=0)
    with pytest.raises(ValueError):
        H2Settings(max_frame_size=100)
    with pytest.raises(ValueError):
        H2Settings(max_concurrent_streams=0)


# -- flow control ----------------------------------------------------------------

def test_window_consume_and_replenish():
    window = FlowControlWindow(1000)
    window.consume(400)
    assert window.available == 600
    window.replenish(200)
    assert window.available == 800


def test_window_overconsume_raises():
    window = FlowControlWindow(100)
    with pytest.raises(H2Error) as excinfo:
        window.consume(101)
    assert excinfo.value.code is H2ErrorCode.FLOW_CONTROL_ERROR


def test_window_overflow_raises():
    window = FlowControlWindow((1 << 31) - 1)
    with pytest.raises(H2Error):
        window.replenish(1)


def test_window_invalid_args():
    with pytest.raises(ValueError):
        FlowControlWindow(-1)
    window = FlowControlWindow(10)
    with pytest.raises(ValueError):
        window.consume(-1)
    with pytest.raises(ValueError):
        window.replenish(0)


def test_window_adjust_initial():
    window = FlowControlWindow(1000)
    window.adjust_initial(500)
    assert window.available == 1500
    window.adjust_initial(-1200)
    assert window.available == 300


# -- priority tree ------------------------------------------------------------------

def test_priority_single_stream_gets_everything():
    tree = PriorityTree()
    tree.insert(1)
    assert tree.allocate({1}) == [(1, 1.0)]


def test_priority_weight_proportional_shares():
    tree = PriorityTree()
    tree.insert(1, weight=100)
    tree.insert(3, weight=50)
    shares = dict(tree.allocate({1, 3}))
    assert shares[1] == pytest.approx(2 / 3)
    assert shares[3] == pytest.approx(1 / 3)


def test_priority_parent_blocks_children():
    tree = PriorityTree()
    tree.insert(1)
    tree.insert(3, depends_on=1)
    shares = dict(tree.allocate({1, 3}))
    assert shares == {1: 1.0}


def test_priority_child_inherits_when_parent_idle():
    tree = PriorityTree()
    tree.insert(1)
    tree.insert(3, depends_on=1)
    shares = dict(tree.allocate({3}))
    assert shares == {3: 1.0}


def test_priority_exclusive_adopts_siblings():
    tree = PriorityTree()
    tree.insert(1)
    tree.insert(3)
    tree.insert(5, exclusive=True)
    assert tree.parent_of(1) == 5
    assert tree.parent_of(3) == 5
    assert tree.parent_of(5) == 0


def test_priority_remove_reparents():
    tree = PriorityTree()
    tree.insert(1)
    tree.insert(3, depends_on=1)
    tree.remove(1)
    assert tree.parent_of(3) == 0


def test_priority_reprioritize_moves():
    tree = PriorityTree()
    tree.insert(1)
    tree.insert(3)
    tree.reprioritize(3, depends_on=1, weight=32)
    assert tree.parent_of(3) == 1
    assert tree.weight_of(3) == 32


def test_priority_dependency_cycle_resolved():
    tree = PriorityTree()
    tree.insert(1)
    tree.insert(3, depends_on=1)
    # 1 now depends on its descendant 3: RFC moves 3 up first.
    tree.reprioritize(1, depends_on=3, weight=16)
    assert tree.parent_of(1) == 3
    assert tree.parent_of(3) == 0


def test_priority_insert_stream_zero_rejected():
    tree = PriorityTree()
    with pytest.raises(ValueError):
        tree.insert(0)


def test_priority_allocation_sums_to_one():
    tree = PriorityTree()
    for stream_id in (1, 3, 5, 7):
        tree.insert(stream_id, weight=stream_id * 10)
    shares = dict(tree.allocate({1, 3, 5, 7}))
    assert sum(shares.values()) == pytest.approx(1.0)
