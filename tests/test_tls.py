"""Unit and integration tests for the TLS record layer."""

import pytest

from repro.netsim.topology import build_adversary_path
from repro.tcp.connection import TCPConnection
from repro.tcp.listener import TCPListener
from repro.tls.cipher import AES_128_GCM_TLS12, AES_128_GCM_TLS13, CipherSpec
from repro.tls.record import (
    APPLICATION_DATA,
    HANDSHAKE,
    MAX_PLAINTEXT_FRAGMENT,
    TLS_RECORD_HEADER_BYTES,
    TLSRecord,
)
from repro.tls.session import TLSRole, TLSSession


class _Payload:
    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return f"_Payload({self.name})"


# -- CipherSpec / TLSRecord -----------------------------------------------------

def test_cipher_overhead_applied():
    assert AES_128_GCM_TLS12.ciphertext_length(100) == 124
    assert AES_128_GCM_TLS13.ciphertext_length(100) == 117


def test_cipher_negative_plaintext_raises():
    with pytest.raises(ValueError):
        AES_128_GCM_TLS12.ciphertext_length(-1)


def test_cipher_negative_overhead_raises():
    with pytest.raises(ValueError):
        CipherSpec("bad", -1)


def test_record_wire_length():
    record = TLSRecord(APPLICATION_DATA, 1000)
    assert record.wire_length == TLS_RECORD_HEADER_BYTES + 1000 + 24


def test_record_fragment_bounds():
    with pytest.raises(ValueError):
        TLSRecord(APPLICATION_DATA, 0)
    with pytest.raises(ValueError):
        TLSRecord(APPLICATION_DATA, MAX_PLAINTEXT_FRAGMENT + 1)
    TLSRecord(APPLICATION_DATA, MAX_PLAINTEXT_FRAGMENT)  # boundary ok


def test_record_unknown_type_raises():
    with pytest.raises(ValueError):
        TLSRecord(99, 100)


def test_record_is_application_data():
    assert TLSRecord(APPLICATION_DATA, 1).is_application_data
    assert not TLSRecord(HANDSHAKE, 1).is_application_data


def test_record_ids_unique():
    a = TLSRecord(APPLICATION_DATA, 1)
    b = TLSRecord(APPLICATION_DATA, 1)
    assert a.record_id != b.record_id


# -- TLSSession over TCP ------------------------------------------------------------

def _tls_pair():
    topology = build_adversary_path(seed=11)
    sim = topology.sim
    server_sessions = []

    def on_accept(connection):
        server_sessions.append(TLSSession(connection, TLSRole.SERVER))

    TCPListener(sim, topology.server, 443, on_accept)
    client_tcp = TCPConnection(
        sim, topology.client, 50000, topology.server.endpoint(443),
        name="client:tls",
    )
    client = TLSSession(client_tcp, TLSRole.CLIENT)
    return sim, client, server_sessions, client_tcp, topology


def test_handshake_completes_both_sides():
    sim, client, server_sessions, client_tcp, _ = _tls_pair()
    done = []
    client.on_handshake_complete = lambda: done.append("client")
    client_tcp.connect()
    sim.run_until(2.0)
    assert client.handshake_complete
    assert server_sessions and server_sessions[0].handshake_complete
    assert done == ["client"]


def test_application_payloads_delivered():
    sim, client, server_sessions, client_tcp, _ = _tls_pair()
    received = []
    client_tcp.connect()
    sim.run_until(2.0)
    server_sessions[0].on_application_record = (
        lambda payload, dup: received.append(payload.name)
    )
    client.send_application(_Payload("ping"), 400)
    sim.run_until(3.0)
    assert received == ["ping"]


def test_large_payload_fragmented_single_delivery():
    sim, client, server_sessions, client_tcp, _ = _tls_pair()
    received = []
    client_tcp.connect()
    sim.run_until(2.0)
    server_sessions[0].on_application_record = (
        lambda payload, dup: received.append(payload.name)
    )
    records = client.send_application(_Payload("big"), 50_000)
    assert len(records) == 4  # ceil(50000 / 16384)
    sim.run_until(5.0)
    assert received == ["big"]  # one delivery despite fragmentation


def test_send_before_handshake_raises():
    sim, client, server_sessions, client_tcp, _ = _tls_pair()
    with pytest.raises(RuntimeError):
        client.send_application(_Payload("early"), 100)


def test_send_zero_length_raises():
    sim, client, server_sessions, client_tcp, _ = _tls_pair()
    client_tcp.connect()
    sim.run_until(2.0)
    with pytest.raises(ValueError):
        client.send_application(_Payload("zero"), 0)


def test_handshake_records_have_handshake_type():
    sim, client, server_sessions, client_tcp, topology = _tls_pair()
    client_tcp.connect()
    sim.run_until(2.0)
    types = [
        content_type
        for record in topology.middlebox.capture
        for content_type in record.tls_content_types
    ]
    assert HANDSHAKE in types


def test_wire_bytes_match_record_model():
    """Bytes on the wire equal the sum of record wire lengths."""
    sim, client, server_sessions, client_tcp, topology = _tls_pair()
    client_tcp.connect()
    sim.run_until(2.0)
    records = client.send_application(_Payload("p"), 5_000)
    sim.run_until(3.0)
    expected = sum(record.wire_length for record in records)
    # Sequence space consumed since before the send equals the total.
    assert client_tcp.layout.next_seq >= expected


# -- padding and chaff (the repro.infer defense primitives) --------------


def _padded_pair(pad_block=0):
    topology = build_adversary_path(seed=12)
    sim = topology.sim
    server_sessions = []

    def on_accept(connection):
        server_sessions.append(
            TLSSession(connection, TLSRole.SERVER, pad_block=pad_block)
        )

    TCPListener(sim, topology.server, 443, on_accept)
    client_tcp = TCPConnection(
        sim, topology.client, 50001, topology.server.endpoint(443),
        name="client:tls-pad",
    )
    client = TLSSession(client_tcp, TLSRole.CLIENT, pad_block=pad_block)
    client_tcp.connect()
    sim.run_until(2.0)
    assert client.handshake_complete
    return sim, client, server_sessions[0]


def test_padded_length_is_the_single_padding_source():
    from repro.tls.record import padded_length

    assert padded_length(400, 256) == 512
    assert padded_length(512, 256) == 512
    assert padded_length(0, 256) == 0
    assert padded_length(400, 0) == 400
    assert padded_length(400, 1) == 400
    with pytest.raises(ValueError):
        padded_length(-5, 256)


def test_session_pads_application_records_to_block():
    sim, client, server = _padded_pair(pad_block=256)
    records = client.send_application(_Payload("p"), 400)
    assert [record.plaintext_length for record in records] == [512]
    assert client.padding_bytes_sent == 112
    received = []
    server.on_application_record = (
        lambda payload, dup: received.append(payload.name)
    )
    sim.run_until(3.0)
    assert received == ["p"]  # padding is invisible to the application


def test_session_padding_covers_every_fragment():
    sim, client, server = _padded_pair(pad_block=1024)
    records = client.send_application(_Payload("big"), 40_000)
    assert len(records) > 1
    for record in records:
        assert record.plaintext_length % 1024 == 0
        assert record.wire_length == record.plaintext_length + 29


def test_session_rejects_bad_pad_block():
    topology = build_adversary_path(seed=13)
    tcp = TCPConnection(
        topology.sim, topology.client, 50002,
        topology.server.endpoint(443),
    )
    with pytest.raises(ValueError):
        TLSSession(tcp, TLSRole.CLIENT, pad_block=-1)
    with pytest.raises(ValueError):
        # 3000 does not divide the 16 KiB fragment ceiling.
        TLSSession(tcp, TLSRole.CLIENT, pad_block=3000)


def test_chaff_dropped_before_application_layer():
    sim, client, server = _padded_pair(pad_block=256)
    received = []
    server.on_application_record = (
        lambda payload, dup: received.append(payload)
    )
    record = client.send_chaff(400)
    assert record.plaintext_length == 512  # chaff is padded like data
    sim.run_until(3.0)
    assert received == []  # never surfaces
    assert client.chaff_records_sent == 1
    assert server.chaff_records_received == 1


def test_chaff_requires_completed_handshake_and_positive_length():
    topology = build_adversary_path(seed=14)
    tcp = TCPConnection(
        topology.sim, topology.client, 50003,
        topology.server.endpoint(443),
    )
    session = TLSSession(tcp, TLSRole.CLIENT)
    with pytest.raises(RuntimeError):
        session.send_chaff(100)
    sim, client, _ = _padded_pair()
    with pytest.raises(ValueError):
        client.send_chaff(0)
