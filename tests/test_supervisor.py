"""Campaign supervision: checkpoint integrity, degradation, manifests.

The contract under test: no matter what happens to a checkpoint file
or a shard, a supervised campaign either recovers to the bit-identical
digest of an uninterrupted run, or returns an explicitly-accounted
partial result — and in both cases leaves machine-readable evidence.
"""

import json
import os

import pytest

from repro.campaign import (
    CampaignConfig,
    CampaignError,
    build_manifest,
    checkpoint_path,
    render_shard_errors,
    run_campaign,
    validate_manifest,
    write_manifest,
)
from repro.experiments.executor import (
    Checkpoint,
    TrialError,
    retry_backoff,
)

CONFIG = CampaignConfig(sessions=600, shard_size=100, seed=5)


# ---------------------------------------------------------------------------
# Checkpoint integrity: the corruption matrix
# ---------------------------------------------------------------------------

def _checkpointed_digest(tmp_path):
    """Run the reference campaign with a checkpoint; return its digest."""
    result = run_campaign(CONFIG, workers=1, checkpoint_dir=str(tmp_path))
    return result.digest()


def _corrupt_truncated_bytes(path):
    with open(path, "r+b") as handle:
        handle.truncate(os.path.getsize(path) // 2)


def _corrupt_invalid_json(path):
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("{not json at all")


def _corrupt_wrong_version(path):
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"version": 99, "results": {}}, handle)


def _corrupt_foreign_digest(path):
    # A structurally valid, correctly-sealed checkpoint that belongs to
    # a *different* campaign config: resume must not adopt its results.
    foreign = Checkpoint(path + ".foreign", config_digest="feedfacecafe")
    foreign.record(0, {"counts": {"sessions": 100}})
    os.replace(path + ".foreign", path)


CORRUPTIONS = {
    "truncated-bytes": _corrupt_truncated_bytes,
    "invalid-json": _corrupt_invalid_json,
    "wrong-version": _corrupt_wrong_version,
    "foreign-config": _corrupt_foreign_digest,
}


@pytest.mark.parametrize("kind", sorted(CORRUPTIONS))
def test_corrupted_checkpoint_quarantined_and_recomputed(tmp_path, kind):
    reference = run_campaign(CONFIG, workers=1).digest()
    assert _checkpointed_digest(tmp_path) == reference
    path = checkpoint_path(CONFIG, str(tmp_path))
    CORRUPTIONS[kind](path)

    result = run_campaign(CONFIG, workers=1, checkpoint_dir=str(tmp_path))
    sidecar = path + ".corrupt"
    assert os.path.exists(sidecar)  # evidence preserved, not deleted
    assert result.quarantined == [sidecar]
    assert result.resumed_shards == 0  # nothing trusted from the wreck
    assert result.digest() == reference  # clean recompute, bit-identical
    assert not result.partial


def test_intact_checkpoint_still_resumes(tmp_path):
    reference = _checkpointed_digest(tmp_path)
    result = run_campaign(CONFIG, workers=1, checkpoint_dir=str(tmp_path))
    assert result.resumed_shards == CONFIG.shard_count
    assert result.quarantined == []
    assert result.digest() == reference


def test_resealed_truncation_resumes_the_prefix(tmp_path):
    # Checkpoint.truncate models a kill *between* atomic flushes: the
    # surviving prefix is sealed and must be trusted on resume.
    reference = _checkpointed_digest(tmp_path)
    path = checkpoint_path(CONFIG, str(tmp_path))
    kept = Checkpoint.truncate(path, keep=2)
    assert kept == 2
    result = run_campaign(CONFIG, workers=1, checkpoint_dir=str(tmp_path))
    assert result.resumed_shards == 2
    assert result.quarantined == []
    assert result.digest() == reference


def test_checkpoint_flush_fsyncs_file_and_directory(tmp_path, monkeypatch):
    # Crash durability: the temp file must be fsynced before the rename
    # and the directory after it, else a power cut can lose the rename.
    import repro.experiments.executor as executor_module

    synced = []
    real_fsync = os.fsync

    def counting_fsync(fd):
        synced.append(fd)
        return real_fsync(fd)

    monkeypatch.setattr(executor_module.os, "fsync", counting_fsync)
    checkpoint = Checkpoint(str(tmp_path / "checkpoint.json"))
    checkpoint.record(0, {"value": 1}, flush_every=1)
    assert len(synced) >= 2  # one for the payload fd, one for the dir fd


# ---------------------------------------------------------------------------
# Deterministic retry backoff
# ---------------------------------------------------------------------------

def test_retry_backoff_is_deterministic(monkeypatch):
    monkeypatch.delenv("REPRO_BACKOFF", raising=False)
    first = retry_backoff(0.1, "digest", index=3, attempt=2)
    again = retry_backoff(0.1, "digest", index=3, attempt=2)
    assert first == again
    assert first > 0
    # Different (seed, index, attempt) tuples jitter differently.
    assert retry_backoff(0.1, "other", 3, 2) != first
    assert retry_backoff(0.1, "digest", 4, 2) != first
    assert retry_backoff(0.1, "digest", 3, 3) != first


def test_retry_backoff_grows_exponentially(monkeypatch):
    monkeypatch.delenv("REPRO_BACKOFF", raising=False)
    # jitter is in [0.5, 1.5) of base * 2^(attempt-1): attempt 4 always
    # exceeds attempt 1's maximum.
    assert retry_backoff(0.1, "d", 0, 4) > retry_backoff(0.1, "d", 0, 1)


def test_retry_backoff_env_disables_waiting(monkeypatch):
    monkeypatch.setenv("REPRO_BACKOFF", "0")
    assert retry_backoff(10.0, "digest", 0, 5) == 0.0


def test_retry_backoff_env_overrides_base(monkeypatch):
    monkeypatch.setenv("REPRO_BACKOFF", "2.0")
    scaled = retry_backoff(0.0, "digest", 1, 1)
    assert 1.0 <= scaled < 3.0  # 2.0 * (0.5 + jitter)
    monkeypatch.setenv("REPRO_BACKOFF", "banana")
    with pytest.raises(ValueError):
        retry_backoff(1.0, "digest", 1, 1)


# ---------------------------------------------------------------------------
# Graceful degradation and coverage accounting
# ---------------------------------------------------------------------------

def test_deadline_without_allow_partial_raises(tmp_path):
    with pytest.raises(CampaignError) as excinfo:
        run_campaign(CONFIG, workers=1, deadline=0.0,
                     failure_manifest=str(tmp_path / "m.json"))
    error = excinfo.value
    assert len(error.errors) == CONFIG.shard_count
    assert error.manifest_path == str(tmp_path / "m.json")
    assert "failure manifest" in str(error)
    payload = json.loads((tmp_path / "m.json").read_text())
    validate_manifest(payload)
    assert payload["status"] == "failed"


def test_allow_partial_returns_coverage_accounting():
    result = run_campaign(CONFIG, workers=1, deadline=0.0,
                          allow_partial=True)
    assert result.partial
    assert result.failed_shards == []
    assert len(result.skipped_shards) == CONFIG.shard_count
    assert result.sessions_covered == 0
    coverage = result.coverage()
    assert coverage["completed_shards"] == 0
    assert coverage["error_kinds"] == ["deadline"]
    assert "coverage" in result.to_json()
    assert "coverage (PARTIAL)" in result.render()


def test_full_coverage_json_and_render_carry_no_degraded_fields():
    result = run_campaign(CONFIG, workers=1)
    assert not result.partial
    assert "coverage" not in result.to_json()
    assert "PARTIAL" not in result.render()


def test_deadline_skips_are_not_persisted(tmp_path):
    # A deadline-skipped shard must stay recomputable: the checkpoint
    # holds only real results, so a later unconstrained resume finishes.
    reference = run_campaign(CONFIG, workers=1).digest()
    partial = run_campaign(CONFIG, workers=1, deadline=0.0,
                           allow_partial=True,
                           checkpoint_dir=str(tmp_path))
    assert partial.sessions_covered == 0
    resumed = run_campaign(CONFIG, workers=1,
                           checkpoint_dir=str(tmp_path))
    assert not resumed.partial
    assert resumed.digest() == reference


# ---------------------------------------------------------------------------
# Failure manifest schema
# ---------------------------------------------------------------------------

def _sample_errors():
    return [
        TrialError(trial=2, attempts=2, error="ValueError: boom",
                   traceback="tb", kind="exception",
                   history=({"attempt": 1, "kind": "exception"},)),
        TrialError(trial=4, attempts=0, error="deadline: exhausted",
                   traceback="", kind="deadline"),
    ]


def test_build_manifest_validates_and_accounts():
    manifest = build_manifest(CONFIG, _sample_errors(), status="partial",
                              quarantined=["x.corrupt"], workers=2,
                              resumed_shards=1, elapsed_s=1.23456)
    validate_manifest(manifest)  # must not raise
    assert manifest["coverage"]["completed_shards"] == CONFIG.shard_count - 2
    assert manifest["coverage"]["failed_shards"] == 1
    assert manifest["coverage"]["skipped_shards"] == 1
    assert manifest["quarantined_checkpoints"] == ["x.corrupt"]
    assert manifest["execution"]["elapsed_s"] == 1.235
    shard_record = manifest["shards"][0]
    assert shard_record["shard"] == 2
    assert shard_record["sessions"] == [200, 300]
    assert shard_record["history"] == [{"attempt": 1, "kind": "exception"}]


def test_write_manifest_round_trips(tmp_path):
    path = str(tmp_path / "nested" / "manifest.json")
    manifest = build_manifest(CONFIG, _sample_errors(), status="partial")
    write_manifest(path, manifest)
    assert json.loads(open(path, encoding="utf-8").read()) == manifest
    assert not os.path.exists(path + ".tmp")


@pytest.mark.parametrize("mutate, defect", [
    (lambda m: m.pop("coverage"), "missing keys"),
    (lambda m: m.update(version=99), "version"),
    (lambda m: m.update(schema="bogus/v9"), "schema"),
    (lambda m: m.update(status="meh"), "status"),
    (lambda m: m["coverage"].update(completed_shards=0), "account"),
    (lambda m: m["shards"][0].pop("history"), "missing"),
    (lambda m: m["shards"][0].update(kind="gremlins"), "kind"),
    (lambda m: m.update(status="complete"), "complete"),
])
def test_validate_manifest_rejects_malformed(mutate, defect):
    manifest = build_manifest(CONFIG, _sample_errors(), status="partial")
    mutate(manifest)
    with pytest.raises(ValueError, match=defect):
        validate_manifest(manifest)


def test_validate_manifest_rejects_empty_partial():
    manifest = build_manifest(CONFIG, [], status="partial")
    with pytest.raises(ValueError, match="no shard records"):
        validate_manifest(manifest)


def test_render_shard_errors_table():
    table = render_shard_errors(CONFIG, _sample_errors())
    assert "Campaign shard failures (2)" in table
    assert "200-299" in table  # shard 2's session span
    assert "exception" in table and "deadline" in table
