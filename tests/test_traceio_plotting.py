"""Tests for capture persistence and terminal plotting."""

import pytest

from repro.experiments.plotting import bar_chart, line_chart, series_from_rows
from repro.netsim.capture import CaptureLog, Direction, PacketRecord
from repro.netsim.traceio import load_capture, save_capture


def _record(time=1.0, dropped=False):
    return PacketRecord(
        time=time, direction=Direction.SERVER_TO_CLIENT, packet_id=7,
        wire_size=1500, payload_bytes=1448, flags=("ACK",), seq=100,
        ack=50, tls_content_types=(23,), dropped_by_adversary=dropped,
    )


def test_capture_roundtrip(tmp_path):
    capture = CaptureLog()
    capture.append(_record(1.0))
    capture.append(_record(2.0, dropped=True))
    path = tmp_path / "trace.jsonl"
    assert save_capture(capture, path) == 2
    loaded = load_capture(path)
    assert len(loaded) == 2
    assert loaded[0] == capture[0]
    assert loaded[1].dropped_by_adversary


def test_capture_roundtrip_preserves_analysis(tmp_path):
    """A reloaded trace feeds the monitor identically."""
    from repro.core.monitor import TrafficMonitor
    from repro.experiments.harness import TrialConfig, run_trial
    from repro.web.workload import VolunteerWorkload

    outcome = run_trial(0, VolunteerWorkload(seed=7), TrialConfig())
    path = tmp_path / "trial.jsonl"
    save_capture(outcome.topology.middlebox.capture, path)
    reloaded = TrafficMonitor(load_capture(path))
    original = outcome.monitor
    assert len(reloaded.get_requests()) == len(original.get_requests())
    assert len(reloaded.response_packets()) == len(original.response_packets())


def test_load_rejects_wrong_format(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"format": "pcap"}\n')
    with pytest.raises(ValueError):
        load_capture(path)


def test_load_rejects_empty(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    with pytest.raises(ValueError):
        load_capture(path)


def test_load_rejects_future_version(tmp_path):
    path = tmp_path / "future.jsonl"
    path.write_text('{"format": "repro-capture", "version": 99}\n')
    with pytest.raises(ValueError):
        load_capture(path)


# -- plotting ----------------------------------------------------------------

def test_bar_chart_renders():
    chart = bar_chart(["a", "bb"], [1.0, 2.0], width=10, title="T", unit="%")
    lines = chart.splitlines()
    assert lines[0] == "T"
    assert "bb" in lines[2]
    assert lines[2].count("█") == 10  # the max fills the width
    assert lines[1].count("█") == 5


def test_bar_chart_zero_values():
    chart = bar_chart(["x"], [0.0])
    assert "x" in chart


def test_bar_chart_validation():
    with pytest.raises(ValueError):
        bar_chart([], [])
    with pytest.raises(ValueError):
        bar_chart(["a"], [1.0, 2.0])


def test_line_chart_renders():
    chart = line_chart([0, 1, 2, 3], [0, 1, 4, 9], width=20, height=6,
                       title="squares")
    assert "squares" in chart
    assert "●" in chart
    assert chart.count("\n") >= 7


def test_line_chart_flat_series():
    chart = line_chart([0, 1], [5, 5])
    assert "●" in chart


def test_line_chart_validation():
    with pytest.raises(ValueError):
        line_chart([1], [1])


def test_series_from_rows():
    rows = [["1000", "29", "87%"], ["800", "31", "90%"]]
    xs, ys = series_from_rows(rows, 0, 2)
    assert xs == [1000.0, 800.0]
    assert ys == [87.0, 90.0]
