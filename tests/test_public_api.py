"""Tests of the top-level public API surface."""

import pytest

import repro
from repro import quick_attack


def test_version_and_exports():
    assert repro.__version__ == "1.0.0"
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_quick_attack_returns_analysis():
    result = quick_attack(trial=0, seed=7)
    assert len(result.sequence_truth) == 8
    assert result.sequence_prediction
    assert "result-html" in result.single_object
    assert result.single_object["result-html"].success


def test_quick_attack_custom_config():
    from repro import AdversaryConfig

    result = quick_attack(
        trial=1, seed=7,
        adversary=AdversaryConfig(enable_escalation=False),
    )
    assert len(result.sequence_truth) == 8


def test_tls_handshake_survives_handshake_loss():
    """SYN/handshake-era loss retries until established."""
    from repro.netsim.link import LinkConfig
    from repro.netsim.topology import build_adversary_path
    from repro.tcp.connection import TCPConnection, TCPState
    from repro.tcp.listener import TCPListener
    from repro.tls.session import TLSRole, TLSSession

    topology = build_adversary_path(
        seed=17,
        server_link_config=LinkConfig(propagation_delay=0.01, loss_rate=0.25),
    )
    sim = topology.sim
    sessions = []
    TCPListener(
        sim, topology.server, 443,
        lambda conn: sessions.append(TLSSession(conn, TLSRole.SERVER)),
    )
    tcp = TCPConnection(sim, topology.client, 50_000,
                        topology.server.endpoint(443))
    client = TLSSession(tcp, TLSRole.CLIENT)
    tcp.connect()
    sim.run_until(60.0)
    assert tcp.state is TCPState.ESTABLISHED
    assert client.handshake_complete


def test_server_response_headers_realistic():
    from repro.h2.server import H2Server, ResourceSpec
    from repro.netsim.topology import build_adversary_path

    topology = build_adversary_path(seed=18)
    server = H2Server(topology.sim, topology.server, 443, lambda p: None)
    headers = dict(server.response_headers(ResourceSpec("/x", 1234, "text/css")))
    assert headers[":status"] == "200"
    assert headers["content-length"] == "1234"
    assert headers["content-type"] == "text/css"
    assert "server" in headers and "date" in headers


def test_priority_scheduler_flush_clears_credits():
    from repro.h2.frames import DataFrame
    from repro.h2.mux import PriorityScheduler

    scheduler = PriorityScheduler()
    scheduler.enqueue(1, DataFrame(stream_id=1, data_bytes=10))
    scheduler.next_frame()
    scheduler.enqueue(1, DataFrame(stream_id=1, data_bytes=10))
    scheduler.flush_stream(1)
    assert 1 not in scheduler._credits
    assert scheduler.pending_frames == 0
