"""Unit tests for the degree-of-multiplexing metric."""

import pytest

from repro.core.metrics import (
    MultiplexingReport,
    degree_of_multiplexing,
    instance_byte_ranges,
)
from repro.h2.frames import DataFrame, HeadersFrame
from repro.h2.server import ResponseInstance
from repro.tcp.stream import StreamLayout
from repro.tls.record import APPLICATION_DATA, TLSRecord


def _instance(object_id, stream_id=1, duplicate=False, instance_id=None):
    _instance.counter = getattr(_instance, "counter", 0) + 1
    return ResponseInstance(
        instance_id=instance_id or _instance.counter,
        object_id=object_id,
        path=f"/{object_id}",
        stream_id=stream_id,
        body_bytes=1000,
        duplicate=duplicate,
        started_at=0.0,
    )


def _layout_with(*sequence):
    """Build a layout from (instance, byte_count) pairs in stream order."""
    layout = StreamLayout()
    for instance, size in sequence:
        frame = DataFrame(stream_id=1, data_bytes=size, context=instance)
        record = TLSRecord(APPLICATION_DATA, size, payload=frame)
        layout.append(record, length=size)
    return layout


def test_contiguous_object_degree_zero():
    a, b = _instance("a"), _instance("b")
    layout = _layout_with((a, 1000), (b, 1000))
    ranges = instance_byte_ranges(layout)
    assert degree_of_multiplexing(a, ranges) == 0.0
    assert degree_of_multiplexing(b, ranges) == 0.0


def test_fully_interleaved_degree_one():
    a, b = _instance("a"), _instance("b")
    layout = _layout_with((a, 500), (b, 500), (a, 500), (b, 500))
    ranges = instance_byte_ranges(layout)
    assert degree_of_multiplexing(a, ranges) == 1.0
    assert degree_of_multiplexing(b, ranges) == 1.0


def test_split_object_fully_interleaved():
    # a: [0,1000); b: [1000,2000); a: [2000,3000) — a is split by b, so
    # neither is sizable: the split rule gives a 1.0, and b lies fully
    # inside a's extent → 1.0 as well.
    a, b = _instance("a"), _instance("b")
    layout = _layout_with((a, 1000), (b, 1000), (a, 1000))
    ranges = instance_byte_ranges(layout)
    assert degree_of_multiplexing(a, ranges) == 1.0
    assert degree_of_multiplexing(b, ranges) == 1.0


def test_edge_overlap_partial_degree():
    # b is split (by a's tail chunk), so b = 1.0; c is contiguous and
    # partially covered by b's extent → fractional degree.
    # Stream: b[0,500) a[500,1000) b[1000,1100) c[1100,2100)
    # b extent = [0,1100): covers c's bytes in [1100, ...)? No — extent
    # ends at 1100, c starts at 1100 → c clean.  Use overlap instead:
    # Stream: b[0,500) c[500,1500) b[1500,1600) → b extent [0,1600)
    # covers all of c → 1.0.  A genuinely partial case needs the foreign
    # extent to end inside the target:
    # Stream: b[0,500) b2? … simplest: three objects.
    # d[0,100) e[100,1100) d[1100,1200) f[1200,2200):
    #   d split by e → 1.0; e inside d's extent → 1.0;
    #   f: d's extent = [0,1200) ends before f; e's extent [100,1100)
    #   before f → f clean 0.0.
    d, e, f = _instance("d"), _instance("e"), _instance("f")
    layout = _layout_with((d, 100), (e, 1000), (d, 100), (f, 1000))
    ranges = instance_byte_ranges(layout)
    assert degree_of_multiplexing(d, ranges) == 1.0
    assert degree_of_multiplexing(e, ranges) == 1.0
    assert degree_of_multiplexing(f, ranges) == 0.0


def test_partial_cover_degree():
    # Target g contiguous at [200,1200); h split around g's head only:
    # h[0,200) g[200,1200) ... h extent must end inside g without h
    # bytes inside g's extent → impossible for two objects; use three:
    # h[0,100) i[100,200) h? — no.  Partial cover arises when the OTHER
    # object is split around a region that overlaps the target's edge:
    # h[0,100) i[100,600) h[600,700) j[700,1700):
    #   i: split rule? h bytes inside i's extent [100,600)? No (h at
    #   [0,100) and [600,700) are outside). Cover: h's extent [0,700)
    #   covers i fully → 1.0.
    #   j: h extent [0,700) ends at 700 = j's start → clean; i extent
    #   [100,600) before j → j = 0.0.
    h, i, j = _instance("h"), _instance("i"), _instance("j")
    layout = _layout_with((h, 100), (i, 500), (h, 100), (j, 1000))
    ranges = instance_byte_ranges(layout)
    assert degree_of_multiplexing(i, ranges) == 1.0
    assert degree_of_multiplexing(j, ranges) == 0.0


def test_single_object_alone_degree_zero():
    a = _instance("a")
    layout = _layout_with((a, 3000))
    ranges = instance_byte_ranges(layout)
    assert degree_of_multiplexing(a, ranges) == 0.0


def test_unknown_instance_raises():
    a, b = _instance("a"), _instance("b")
    layout = _layout_with((a, 1000))
    ranges = instance_byte_ranges(layout)
    with pytest.raises(KeyError):
        degree_of_multiplexing(b, ranges)


def test_headers_frames_count_toward_instance():
    a = _instance("a")
    layout = StreamLayout()
    headers = HeadersFrame(stream_id=1, context=a)
    layout.append(TLSRecord(APPLICATION_DATA, 100, payload=headers), length=100)
    ranges = instance_byte_ranges(layout)
    assert a in ranges


def test_non_response_records_ignored():
    layout = StreamLayout()
    layout.append(TLSRecord(APPLICATION_DATA, 100, payload=object()), length=100)
    assert instance_byte_ranges(layout) == {}


def test_report_for_object_and_min_degree():
    a1 = _instance("x")
    a2 = _instance("x", duplicate=True)
    b = _instance("y")
    layout = _layout_with((a1, 500), (b, 500), (a1, 500), (b, 500), (a2, 1000))
    report = MultiplexingReport.from_layout(layout)
    assert report.original_degree("x") == 1.0
    assert report.min_degree("x") == 0.0  # the duplicate went out clean
    pairs = report.for_object("x")
    assert len(pairs) == 2
    originals = report.for_object("x", include_duplicates=False)
    assert len(originals) == 1


def test_report_unknown_object_none():
    report = MultiplexingReport.from_layout(StreamLayout())
    assert report.original_degree("nope") is None
    assert report.min_degree("nope") is None
