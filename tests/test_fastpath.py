"""Vectorized backend: scalar/vector equivalence and event batching.

Two independent exactness surfaces back the ``fast`` backend's
bit-identity claim:

* **analytic kernel** — Hypothesis drives random :class:`PageSpec`s
  (including shapes the zipf population never generates, like
  zero-object pages) through both the scalar
  :func:`~repro.campaign.engine.evaluate_page_analytic` and the numpy
  :func:`~repro.fastpath.analytic.evaluate_pages_analytic` and demands
  identical fold kwargs, value for value;
* **event-run batching** — unit tests pin the simulator's homogeneous
  run machinery to per-event dispatch semantics: run collection,
  cancelled-member skipping, heap-head abort/requeue, and the
  compaction-rebind regression (a cancellation storm inside a run used
  to leave the order check reading a dead heap list).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign.engine import AnalyticModel, evaluate_page_analytic
from repro.fastpath import (
    BACKEND_ENV,
    fast_backend_active,
    resolve_backend,
)
from repro.fastpath.analytic import (
    counter_seeds,
    evaluate_pages_analytic,
    evaluate_shard_analytic,
    generate_pages,
)
from repro.simkernel.randomstream import (
    CounterStream,
    counter_stream_seed,
)
from repro.simkernel.simulator import Simulator
from repro.web.workload import PageSpec, PopulationConfig, PopulationWorkload


# -- Backend resolution --------------------------------------------------


def test_resolve_backend_precedence(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV, raising=False)
    assert resolve_backend() == "python"
    assert not fast_backend_active()
    monkeypatch.setenv(BACKEND_ENV, "fast")
    assert resolve_backend() == "fast"
    assert fast_backend_active()
    # An explicit argument wins over the environment.
    assert resolve_backend("python") == "python"
    assert resolve_backend(" Fast ") == "fast"
    with pytest.raises(ValueError, match="hyperdrive"):
        resolve_backend("hyperdrive")


# -- Scalar vs. vector analytic equivalence ------------------------------


MODELS = [
    AnalyticModel(),
    AnalyticModel(record_miscount_rate=1.0, noise_bytes=0),
    AnalyticModel(tolerance_abs=0, tolerance_rel=0.0, serialize_slope=0.1),
]

page_specs = st.builds(
    PageSpec,
    session=st.integers(0, 2**20),
    object_sizes=st.tuples() | st.lists(
        st.integers(1, 5_000_000), min_size=1, max_size=12
    ).map(tuple),
    target_size=st.integers(1, 5_000_000),
)


@settings(max_examples=200, deadline=None)
@given(
    specs=st.lists(page_specs, min_size=1, max_size=6),
    seeds=st.lists(st.integers(0, 2**64 - 1), min_size=6, max_size=6),
    model=st.sampled_from(MODELS),
)
def test_evaluate_pages_analytic_matches_scalar(specs, seeds, model):
    seeds = seeds[: len(specs)]
    batch = evaluate_pages_analytic(specs, seeds, model)
    for spec, seed, fold in zip(specs, seeds, batch):
        expected = evaluate_page_analytic(spec, CounterStream(seed), model)
        assert fold == expected, spec


def test_generate_pages_matches_page_spec():
    workload = PopulationWorkload(seed=123)
    start, stop = 40, 300
    pages = generate_pages(workload, start, stop)
    cursor = 0
    for row, session in enumerate(range(start, stop)):
        spec = workload.page_spec(session)
        count = int(pages["counts"][row])
        assert count == spec.object_count
        flat = pages["sizes"][cursor:cursor + count]
        assert tuple(int(size) for size in flat) == spec.object_sizes
        assert (pages["session_of"][cursor:cursor + count] == row).all()
        assert int(pages["targets"][row]) == spec.target_size
        cursor += count
    assert cursor == len(pages["sizes"])


def test_evaluate_shard_analytic_matches_scalar_fold():
    config = PopulationConfig(min_objects=1, max_objects=8)
    workload = PopulationWorkload(seed=77, config=config)
    model = AnalyticModel()
    fast = evaluate_shard_analytic(workload, 0, 500, model)

    from repro.campaign.columnar import ColumnarSummary

    scalar = ColumnarSummary()
    for session in range(500):
        spec = workload.page_spec(session)
        stream = workload.analytic_stream(session)
        scalar.fold_session(**evaluate_page_analytic(spec, stream, model))
    assert fast.to_json() == scalar.to_json()


def test_counter_stream_seed_vectorization():
    import numpy as np

    base = 0x1234_5678_9ABC_DEF0
    indices = np.arange(0, 64, dtype=np.uint64)
    vector = counter_seeds(base, indices)
    for index in range(64):
        assert int(vector[index]) == counter_stream_seed(base, index)


# -- Event-run batching --------------------------------------------------


class _Key:
    """Batch key recording delivery order."""

    def __init__(self, sim=None):
        self.delivered = []
        self._sim = sim

    def deliver(self, payload):
        self.delivered.append(payload)


def test_batchable_events_run_without_batching():
    # Batching off: batchable events dispatch one-by-one, same order.
    sim = Simulator(batching=False)
    key = _Key()
    for index in range(5):
        sim.schedule_batch(0.001 * index, key, index)
    sim.run()
    assert key.delivered == [0, 1, 2, 3, 4]
    assert sim.batch_runs == 0 and sim.batched_events == 0


def test_homogeneous_run_batches_and_counts():
    sim = Simulator(batching=True)
    key = _Key()
    for index in range(5):
        sim.schedule_batch(0.001, key, index)
    sim.schedule(0.002, lambda: None)
    sim.run()
    assert key.delivered == [0, 1, 2, 3, 4]
    assert sim.batch_runs == 1
    assert sim.batched_events == 5
    assert sim.events_executed == 6


def test_run_aborts_when_member_schedules_earlier_event():
    # The first delivery schedules a plain event that must fire before
    # the rest of the run; the unexecuted suffix is requeued with its
    # original keys and the global time/priority order is preserved.
    sim = Simulator(batching=True)

    class CallKey:
        @staticmethod
        def deliver(payload):
            payload()

    key = CallKey()
    order = []

    def first_payload():
        order.append("first")
        sim.schedule(0.0005, lambda: order.append("interleaved"))

    sim.schedule_batch(0.001, key, first_payload)
    sim.schedule_batch(0.002, key, lambda: order.append("second"))
    sim.schedule_batch(0.002, key, lambda: order.append("third"))
    sim.run()
    assert order == ["first", "interleaved", "second", "third"]


def test_cancelled_run_member_is_skipped():
    # A member's callback cancels a later member mid-run: the cancelled
    # event must not be delivered (and not requeued either).
    sim = Simulator(batching=True)

    class CallKey:
        @staticmethod
        def deliver(payload):
            payload()

    key = CallKey()
    order = []
    events = []

    def cancel_third():
        order.append("first")
        events[2].cancel()

    events.append(sim.schedule_batch(0.001, key, cancel_third))
    events.append(
        sim.schedule_batch(0.001, key, lambda: order.append("second"))
    )
    events.append(
        sim.schedule_batch(0.001, key, lambda: order.append("third"))
    )
    sim.run()
    assert order == ["first", "second"]
    assert sim.pending_events == 0


def test_run_survives_compaction_rebind():
    # Regression: a cancellation storm inside a run member triggers
    # EventQueue._compact(), which rebinds the heap list.  The run
    # executor must re-read the heap for its order check — a stale
    # reference made it compare against dead state and dispatch events
    # out of order.
    sim = Simulator(batching=True)

    class CallKey:
        @staticmethod
        def deliver(payload):
            payload()

    key = CallKey()
    order = []
    victims = []

    def cancel_storm():
        order.append("storm")
        for event in victims:
            event.cancel()
        # Schedule something earlier than the remaining run members so
        # the (post-compaction) order check must fire.
        sim.schedule(0.0005, lambda: order.append("interleaved"))

    # A large cancelled population forces compaction when the storm
    # cancels them (compaction triggers when cancelled > half).
    for index in range(64):
        victims.append(sim.schedule(0.010, lambda: order.append("victim")))
    sim.schedule_batch(0.001, key, cancel_storm)
    sim.schedule_batch(0.002, key, lambda: order.append("late"))
    sim.run()
    assert order == ["storm", "interleaved", "late"]


def test_timer_batching_preserves_cancellation(monkeypatch):
    # Timers under the fast backend go through the shared run key;
    # restarting and cancelling must behave exactly as per-event.
    from repro.simkernel.timers import Timer

    sim = Simulator(batching=True)
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now), name="rto")
    timer.start(0.5)
    timer.start(1.0)  # restart supersedes the first deadline
    other = Timer(sim, lambda: fired.append(-1.0))
    other.start(1.0)
    other.cancel()
    sim.run()
    assert fired == [1.0]
    assert not timer.armed


def test_simulator_resolves_backend_from_env(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV, "fast")
    assert Simulator().batching is True
    monkeypatch.setenv(BACKEND_ENV, "python")
    assert Simulator().batching is False
    monkeypatch.delenv(BACKEND_ENV, raising=False)
    assert Simulator().batching is False
