"""Unit tests for TCP building blocks: segments, layout, reassembly,
RTT estimation, congestion control."""

import pytest

from repro.tcp.congestion import RenoCongestionControl
from repro.tcp.reassembly import ReassemblyBuffer
from repro.tcp.rtt import RTOEstimator
from repro.tcp.segment import ACK, FIN, RST, SYN, TCPSegment
from repro.tcp.stream import StreamLayout


class _Msg:
    def __init__(self, length, name=""):
        self.wire_length = length
        self.name = name

    def __repr__(self):
        return f"_Msg({self.name})"


# -- TCPSegment ----------------------------------------------------------------

def test_segment_end_seq():
    layout = StreamLayout()
    layout.append(_Msg(100))
    segment = TCPSegment(seq=10, ack=0, flags=frozenset({ACK}),
                         payload_bytes=100, layout=layout)
    assert segment.end_seq == 110


def test_data_segment_requires_layout():
    with pytest.raises(ValueError):
        TCPSegment(seq=0, ack=0, flags=frozenset({ACK}), payload_bytes=10)


def test_pure_ack_detection():
    ack = TCPSegment(seq=0, ack=5, flags=frozenset({ACK}))
    assert ack.is_pure_ack
    syn = TCPSegment(seq=0, ack=0, flags=frozenset({SYN, ACK}))
    assert not syn.is_pure_ack


def test_segment_flag_query():
    segment = TCPSegment(seq=0, ack=0, flags=frozenset({SYN}))
    assert segment.has(SYN)
    assert not segment.has(FIN)


# -- StreamLayout ---------------------------------------------------------------

def test_layout_assigns_contiguous_ranges():
    layout = StreamLayout()
    first = layout.append(_Msg(100))
    second = layout.append(_Msg(50))
    assert (first.start, first.end) == (0, 100)
    assert (second.start, second.end) == (100, 150)
    assert layout.next_seq == 150


def test_layout_rejects_nonpositive_length():
    layout = StreamLayout()
    with pytest.raises(ValueError):
        layout.append(_Msg(0))
    with pytest.raises(ValueError):
        layout.append(object())  # no wire_length


def test_layout_explicit_length_overrides():
    layout = StreamLayout()
    span = layout.append(_Msg(100), length=25)
    assert span.length == 25


def test_layout_spans_overlapping():
    layout = StreamLayout()
    layout.append(_Msg(100, "a"))
    layout.append(_Msg(100, "b"))
    layout.append(_Msg(100, "c"))
    names = [s.message.name for s in layout.spans_overlapping(50, 150)]
    assert names == ["a", "b"]


def test_layout_spans_contained():
    layout = StreamLayout()
    layout.append(_Msg(100, "a"))
    layout.append(_Msg(100, "b"))
    names = [s.message.name for s in layout.spans_contained(0, 150)]
    assert names == ["a"]


def test_layout_spans_starting_in():
    layout = StreamLayout()
    layout.append(_Msg(100, "a"))
    layout.append(_Msg(100, "b"))
    names = [s.message.name for s in layout.spans_starting_in(50, 150)]
    assert names == ["b"]


def test_layout_spans_completed_by():
    layout = StreamLayout()
    layout.append(_Msg(100, "a"))
    layout.append(_Msg(100, "b"))
    names = [s.message.name for s in layout.spans_completed_by(100)]
    assert names == ["a"]


def test_layout_empty_queries():
    layout = StreamLayout()
    assert layout.spans_overlapping(0, 10) == []
    assert layout.spans_completed_by(10) == []


# -- ReassemblyBuffer --------------------------------------------------------------

def test_reassembly_in_order():
    buffer = ReassemblyBuffer()
    rcv_nxt, duplicate = buffer.receive(0, 100)
    assert (rcv_nxt, duplicate) == (100, False)


def test_reassembly_out_of_order_then_fill():
    buffer = ReassemblyBuffer()
    rcv_nxt, _ = buffer.receive(100, 200)
    assert rcv_nxt == 0
    assert buffer.has_gap
    rcv_nxt, _ = buffer.receive(0, 100)
    assert rcv_nxt == 200
    assert not buffer.has_gap


def test_reassembly_full_duplicate():
    buffer = ReassemblyBuffer()
    buffer.receive(0, 100)
    rcv_nxt, duplicate = buffer.receive(0, 100)
    assert duplicate
    assert rcv_nxt == 100
    assert buffer.duplicate_bytes == 100


def test_reassembly_partial_overlap_not_duplicate():
    buffer = ReassemblyBuffer()
    buffer.receive(0, 100)
    rcv_nxt, duplicate = buffer.receive(50, 150)
    assert not duplicate
    assert rcv_nxt == 150


def test_reassembly_overlapping_out_of_order_merge():
    buffer = ReassemblyBuffer()
    buffer.receive(100, 200)
    buffer.receive(150, 300)
    assert buffer.out_of_order_ranges == [(100, 300)]
    rcv_nxt, _ = buffer.receive(0, 100)
    assert rcv_nxt == 300


def test_reassembly_duplicate_of_buffered_out_of_order():
    buffer = ReassemblyBuffer()
    buffer.receive(100, 200)
    rcv_nxt, duplicate = buffer.receive(100, 200)
    assert duplicate
    assert rcv_nxt == 0


def test_reassembly_empty_range_is_duplicate():
    buffer = ReassemblyBuffer()
    _, duplicate = buffer.receive(10, 10)
    assert duplicate


def test_reassembly_multiple_holes():
    buffer = ReassemblyBuffer()
    buffer.receive(100, 200)
    buffer.receive(300, 400)
    assert len(buffer.out_of_order_ranges) == 2
    buffer.receive(0, 100)
    assert buffer.rcv_nxt == 200
    buffer.receive(200, 300)
    assert buffer.rcv_nxt == 400


# -- RTOEstimator ------------------------------------------------------------------

def test_rto_initial_default():
    estimator = RTOEstimator()
    assert estimator.rto == 1.0  # initial RTO before samples


def test_rto_first_sample():
    estimator = RTOEstimator(min_rto=0.2)
    estimator.on_sample(0.1)
    assert estimator.srtt == 0.1
    assert estimator.rttvar == 0.05
    assert estimator.rto == pytest.approx(max(0.2, 0.1 + 4 * 0.05))


def test_rto_smoothing_converges():
    estimator = RTOEstimator(min_rto=0.0001)
    for _ in range(100):
        estimator.on_sample(0.050)
    assert estimator.srtt == pytest.approx(0.050, rel=0.01)
    assert estimator.rttvar < 0.01


def test_rto_min_floor():
    estimator = RTOEstimator(min_rto=0.2)
    for _ in range(50):
        estimator.on_sample(0.001)
    assert estimator.rto == 0.2


def test_rto_backoff_doubles_and_caps():
    estimator = RTOEstimator(min_rto=0.2, max_rto=60.0)
    estimator.on_sample(0.1)
    base = estimator.rto
    estimator.on_timeout()
    assert estimator.rto == pytest.approx(2 * base)
    for _ in range(20):
        estimator.on_timeout()
    # Backoff multiplier caps at 64; max_rto caps the product.
    assert estimator.rto == pytest.approx(min(60.0, base * 64))


def test_rto_backoff_reset_on_sample():
    estimator = RTOEstimator()
    estimator.on_sample(0.1)
    estimator.on_timeout()
    estimator.on_sample(0.1)
    assert estimator.backoff == 1


def test_rto_reset_backoff_explicit():
    estimator = RTOEstimator()
    estimator.on_timeout()
    estimator.reset_backoff()
    assert estimator.backoff == 1


def test_rto_negative_sample_raises():
    with pytest.raises(ValueError):
        RTOEstimator().on_sample(-0.1)


def test_rto_invalid_bounds():
    with pytest.raises(ValueError):
        RTOEstimator(min_rto=0.5, max_rto=0.1)


# -- RenoCongestionControl ------------------------------------------------------------

def test_reno_initial_window():
    cc = RenoCongestionControl(mss=1000, initial_window_segments=10)
    assert cc.cwnd == 10_000
    assert cc.in_slow_start


def test_reno_slow_start_growth():
    cc = RenoCongestionControl(mss=1000, initial_window_segments=1)
    cc.on_ack_progress(1000, snd_una=1000)
    assert cc.cwnd == 2000


def test_reno_congestion_avoidance_linear():
    cc = RenoCongestionControl(mss=1000, initial_window_segments=4)
    cc.ssthresh = 4000  # at threshold: avoidance
    start = cc.cwnd
    # One full window of ACKs grows cwnd by one MSS.
    for _ in range(4):
        cc.on_ack_progress(1000, snd_una=0)
    assert cc.cwnd == start + 1000


def test_reno_fast_retransmit_halves():
    cc = RenoCongestionControl(mss=1000, initial_window_segments=10)
    cc.on_fast_retransmit(flight_size=10_000, snd_nxt=10_000)
    assert cc.ssthresh == 5000
    assert cc.cwnd == 5000 + 3000
    assert cc.in_recovery


def test_reno_recovery_inflation_and_exit():
    cc = RenoCongestionControl(mss=1000, initial_window_segments=10)
    cc.on_fast_retransmit(flight_size=10_000, snd_nxt=10_000)
    inflated = cc.cwnd
    cc.on_duplicate_ack_in_recovery()
    assert cc.cwnd == inflated + 1000
    cc.on_ack_progress(10_000, snd_una=10_000)
    assert not cc.in_recovery
    assert cc.cwnd == cc.ssthresh


def test_reno_timeout_collapses():
    cc = RenoCongestionControl(mss=1000, initial_window_segments=10)
    cc.on_timeout(flight_size=10_000)
    assert cc.cwnd == 1000
    assert cc.ssthresh == 5000
    assert cc.timeouts == 1


def test_reno_ssthresh_floor_two_mss():
    cc = RenoCongestionControl(mss=1000)
    cc.on_timeout(flight_size=1000)
    assert cc.ssthresh == 2000


def test_reno_invalid_mss():
    with pytest.raises(ValueError):
        RenoCongestionControl(mss=0)
