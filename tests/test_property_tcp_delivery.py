"""Property-based end-to-end TCP tests: reliable in-order delivery.

The single invariant everything above TCP depends on: whatever the
loss pattern, whatever the message mix, every message is delivered
exactly once (duplicates only when the quirk asks for them) and in
order.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.link import LinkConfig
from repro.netsim.topology import build_adversary_path
from repro.tcp.config import TCPConfig
from repro.tcp.connection import TCPConnection
from repro.tcp.listener import TCPListener


class _Msg:
    def __init__(self, length, name):
        self.wire_length = length
        self.name = name


@given(
    seed=st.integers(0, 10_000),
    loss=st.sampled_from([0.0, 0.01, 0.05, 0.12]),
    lengths=st.lists(st.integers(1, 20_000), min_size=1, max_size=12),
)
@settings(max_examples=30, deadline=None)
def test_all_messages_delivered_in_order_despite_loss(seed, loss, lengths):
    topology = build_adversary_path(
        seed=seed,
        server_link_config=LinkConfig(propagation_delay=0.01, loss_rate=loss),
    )
    sim = topology.sim
    accepted = []
    TCPListener(sim, topology.server, 443, accepted.append)
    client = TCPConnection(
        sim, topology.client, 50_000, topology.server.endpoint(443)
    )
    received = []
    client.connect()
    sim.run_until(3.0)
    if not accepted:
        # Extreme loss can delay the handshake; give it longer.
        sim.run_until(20.0)
    assert accepted, "handshake must eventually complete"
    accepted[0].on_message = lambda m, dup: received.append((m.name, dup))
    for index, length in enumerate(lengths):
        client.send_message(_Msg(length, index))
    sim.run_until(120.0)
    names = [name for name, _ in received]
    assert names == list(range(len(lengths)))
    assert all(not dup for _, dup in received)


@given(
    seed=st.integers(0, 10_000),
    lengths=st.lists(st.integers(1, 5_000), min_size=1, max_size=8),
    algorithm=st.sampled_from(["reno", "cubic"]),
)
@settings(max_examples=20, deadline=None)
def test_delivery_independent_of_congestion_control(seed, lengths, algorithm):
    topology = build_adversary_path(seed=seed)
    sim = topology.sim
    accepted = []
    config = TCPConfig(congestion_control=algorithm)
    TCPListener(sim, topology.server, 443, accepted.append, config=config)
    client = TCPConnection(
        sim, topology.client, 50_000, topology.server.endpoint(443),
        config=config,
    )
    received = []
    client.connect()
    sim.run_until(2.0)
    accepted[0].on_message = lambda m, dup: received.append(m.name)
    for index, length in enumerate(lengths):
        client.send_message(_Msg(length, index))
    sim.run_until(60.0)
    assert received == list(range(len(lengths)))


@given(seed=st.integers(0, 10_000))
@settings(max_examples=20, deadline=None)
def test_sequence_space_conservation(seed):
    """Bytes acked never exceed bytes appended; reassembly point never
    exceeds the peer's appended bytes."""
    topology = build_adversary_path(seed=seed)
    sim = topology.sim
    accepted = []
    TCPListener(sim, topology.server, 443, accepted.append)
    client = TCPConnection(
        sim, topology.client, 50_000, topology.server.endpoint(443)
    )
    client.connect()
    sim.run_until(2.0)
    for index in range(5):
        client.send_message(_Msg(3_000, index))
        sim.run_until(sim.now + 0.1)
        assert client.snd_una <= client.layout.next_seq + 1  # +1: FIN space
        assert accepted[0].reassembly.rcv_nxt <= client.layout.next_seq
    sim.run_until(30.0)
    assert client.snd_una == client.layout.next_seq
    assert accepted[0].reassembly.rcv_nxt == client.layout.next_seq
