"""Tests for HTTP/2 server push and the §VII push defense."""

import pytest

from repro.core.defenses import ServerPushDefense
from repro.core.metrics import MultiplexingReport
from repro.experiments.harness import TrialConfig, run_trial
from repro.h2.client import H2Client
from repro.h2.errors import H2Error
from repro.h2.server import H2Server, ResourceSpec, ServerConfig
from repro.netsim.topology import build_adversary_path
from repro.web.isidewith import PARTIES, build_isidewith_site
from repro.web.workload import VolunteerWorkload

RESOURCES = {
    "/page.html": ResourceSpec("/page.html", 8000, "text/html"),
    "/style.css": ResourceSpec("/style.css", 4000, "text/css"),
    "/logo.png": ResourceSpec("/logo.png", 6000, "image/png"),
}


def _stack(push_map=None):
    topology = build_adversary_path(seed=41)
    server = H2Server(
        topology.sim, topology.server, 443,
        lambda path: RESOURCES.get(path),
        config=ServerConfig(push_map=push_map or {}),
        trace=topology.trace,
    )
    client = H2Client(
        topology.sim, topology.client, topology.server.endpoint(443),
        trace=topology.trace, authority="push.example",
    )
    return topology, server, client


def test_push_delivers_associated_resources():
    push_map = {"/page.html": ("/style.css", "/logo.png")}
    topology, server, client = _stack(push_map)
    client.on_ready = lambda: client.get("/page.html")
    client.connect()
    topology.sim.run_until(5.0)
    by_path = {h.path: h for h in client.handles.values()}
    assert by_path["/page.html"].complete
    assert by_path["/style.css"].complete and by_path["/style.css"].pushed
    assert by_path["/logo.png"].complete and by_path["/logo.png"].pushed
    assert by_path["/style.css"].received_bytes == 4000
    # Promised streams are even (server-initiated).
    assert by_path["/style.css"].stream_id % 2 == 0


def test_pushed_instances_tracked_server_side():
    push_map = {"/page.html": ("/style.css",)}
    topology, server, client = _stack(push_map)
    client.on_ready = lambda: client.get("/page.html")
    client.connect()
    topology.sim.run_until(5.0)
    pushed = [i for i in server.all_instances if i.path == "/style.css"]
    assert len(pushed) == 1
    assert pushed[0].complete
    assert pushed[0].stream_id % 2 == 0


def test_duplicate_request_does_not_repush():
    push_map = {"/page.html": ("/style.css",)}
    topology, server, client = _stack(push_map)
    client.on_ready = lambda: client.get("/page.html")
    client.connect()
    sim = topology.sim
    sim.run_until(5.0)
    # Retransmit the GET (quirk re-serves the page, but must not re-push).
    layout = client.tcp.layout
    for span in layout.spans_completed_by(layout.next_seq):
        payload = getattr(span.message, "payload", None)
        if getattr(payload, "type_name", "") == "HEADERS":
            client.tcp._send_data_segment(span.start, span.length, True)
            break
    sim.run_until(10.0)
    pushed = [i for i in server.all_instances if i.path == "/style.css"]
    assert len(pushed) == 1


def test_client_push_disabled_raises():
    from repro.h2.settings import H2Settings
    topology = build_adversary_path(seed=42)
    server = H2Server(
        topology.sim, topology.server, 443,
        lambda path: RESOURCES.get(path),
        trace=topology.trace,
    )
    client = H2Client(
        topology.sim, topology.client, topology.server.endpoint(443),
        settings=H2Settings(enable_push=False,
                            initial_window_size=12 * 1024 * 1024),
        trace=topology.trace,
    )
    client.on_ready = lambda: client.get("/page.html")
    client.connect()
    topology.sim.run_until(2.0)
    with pytest.raises(H2Error):
        server.connections[0].h2.send_push_promise(1, [(":path", "/x")])


def test_push_defense_page_load_completes():
    """A defended isidewith deployment: emblems pushed, page completes,
    and the browser never requests the emblem paths."""
    workload = VolunteerWorkload(seed=7)
    site = workload.session(0)
    defense = ServerPushDefense()
    config = TrialConfig(
        server=ServerConfig(push_map=defense.push_map(site))
    )
    outcome = run_trial(0, workload, config)
    assert outcome.completed
    # All emblems arrived by push.
    pushed_paths = {
        h.path for h in outcome.client.handles.values() if h.pushed
    }
    assert len([p for p in pushed_paths if "/parties/" in p]) == 8
    # No GET for any emblem path appears in the browser's requests.
    emblem_requests = [
        record for record in outcome.trace.select(category="browser.request")
        if "/parties/" in record["path"]
    ]
    assert emblem_requests == []


def _lossless_push_stack(config):
    """Push stack over a lossless server link: observed record counts
    at the gateway are exact (no retransmitted record headers)."""
    from repro.netsim.link import LinkConfig

    topology = build_adversary_path(
        seed=43, server_link_config=LinkConfig(propagation_delay=0.015),
    )
    server = H2Server(
        topology.sim, topology.server, 443,
        lambda path: RESOURCES.get(path), config=config,
        trace=topology.trace,
    )
    client = H2Client(
        topology.sim, topology.client, topology.server.endpoint(443),
        trace=topology.trace, authority="push.example",
    )
    client.on_ready = lambda: client.get("/page.html")
    client.connect()
    topology.sim.run_until(10.0)
    assert client.handles and all(
        handle.complete for handle in client.handles.values()
    )
    return topology, client


def test_pushed_response_record_lengths_observed_at_middlebox():
    """Each pushed response's framing is individually visible at the
    gateway: one TLS record per 2048-byte DATA chunk plus its tail —
    the raw material of the repro.infer size-inference attack."""
    from repro.infer.features import observed_record_lengths
    from repro.netsim.capture import Direction

    push_map = {"/page.html": ("/style.css", "/logo.png")}
    topology, client = _lossless_push_stack(ServerConfig(push_map=push_map))
    lengths = observed_record_lengths(
        topology.middlebox.capture, Direction.SERVER_TO_CLIENT,
    )
    # Full 2048-byte chunks: 3 (/page.html) + 1 (/style.css) + 2
    # (/logo.png); each tail chunk is distinct and appears once.
    assert lengths.count(2048 + 9 + 29) == 6
    assert lengths.count(8000 % 2048 + 9 + 29) == 1   # /page.html tail
    assert lengths.count(4000 % 2048 + 9 + 29) == 1   # /style.css tail
    assert lengths.count(6000 % 2048 + 9 + 29) == 1   # /logo.png tail


def test_chaff_records_visible_on_wire_but_transparent_to_client():
    """Chaff dilutes what the middlebox counts, while the client's TLS
    layer discards it without touching the HTTP/2 session."""
    from repro.infer.features import observed_record_lengths
    from repro.netsim.capture import Direction

    push_map = {"/page.html": ("/style.css", "/logo.png")}
    topology, client = _lossless_push_stack(
        ServerConfig(push_map=push_map, chaff_records=2,
                     chaff_plaintext=1024)
    )
    lengths = observed_record_lengths(
        topology.middlebox.capture, Direction.SERVER_TO_CLIENT,
    )
    # Two chaff records per completed response, three responses.
    assert lengths.count(1024 + 29) == 6
    assert client.tls.chaff_records_received == 6
    # The real framing is unchanged underneath the chaff.
    assert lengths.count(2048 + 9 + 29) == 6


def test_push_defense_canonical_order_independent_of_user():
    defense = ServerPushDefense()
    first = defense.canonical_order(build_isidewith_site(PARTIES))
    second = defense.canonical_order(
        build_isidewith_site(tuple(reversed(PARTIES)))
    )
    assert first == second == tuple(sorted(PARTIES))
