"""Tests for HTTP/2 server push and the §VII push defense."""

import pytest

from repro.core.defenses import ServerPushDefense
from repro.core.metrics import MultiplexingReport
from repro.experiments.harness import TrialConfig, run_trial
from repro.h2.client import H2Client
from repro.h2.errors import H2Error
from repro.h2.server import H2Server, ResourceSpec, ServerConfig
from repro.netsim.topology import build_adversary_path
from repro.web.isidewith import PARTIES, build_isidewith_site
from repro.web.workload import VolunteerWorkload

RESOURCES = {
    "/page.html": ResourceSpec("/page.html", 8000, "text/html"),
    "/style.css": ResourceSpec("/style.css", 4000, "text/css"),
    "/logo.png": ResourceSpec("/logo.png", 6000, "image/png"),
}


def _stack(push_map=None):
    topology = build_adversary_path(seed=41)
    server = H2Server(
        topology.sim, topology.server, 443,
        lambda path: RESOURCES.get(path),
        config=ServerConfig(push_map=push_map or {}),
        trace=topology.trace,
    )
    client = H2Client(
        topology.sim, topology.client, topology.server.endpoint(443),
        trace=topology.trace, authority="push.example",
    )
    return topology, server, client


def test_push_delivers_associated_resources():
    push_map = {"/page.html": ("/style.css", "/logo.png")}
    topology, server, client = _stack(push_map)
    client.on_ready = lambda: client.get("/page.html")
    client.connect()
    topology.sim.run_until(5.0)
    by_path = {h.path: h for h in client.handles.values()}
    assert by_path["/page.html"].complete
    assert by_path["/style.css"].complete and by_path["/style.css"].pushed
    assert by_path["/logo.png"].complete and by_path["/logo.png"].pushed
    assert by_path["/style.css"].received_bytes == 4000
    # Promised streams are even (server-initiated).
    assert by_path["/style.css"].stream_id % 2 == 0


def test_pushed_instances_tracked_server_side():
    push_map = {"/page.html": ("/style.css",)}
    topology, server, client = _stack(push_map)
    client.on_ready = lambda: client.get("/page.html")
    client.connect()
    topology.sim.run_until(5.0)
    pushed = [i for i in server.all_instances if i.path == "/style.css"]
    assert len(pushed) == 1
    assert pushed[0].complete
    assert pushed[0].stream_id % 2 == 0


def test_duplicate_request_does_not_repush():
    push_map = {"/page.html": ("/style.css",)}
    topology, server, client = _stack(push_map)
    client.on_ready = lambda: client.get("/page.html")
    client.connect()
    sim = topology.sim
    sim.run_until(5.0)
    # Retransmit the GET (quirk re-serves the page, but must not re-push).
    layout = client.tcp.layout
    for span in layout.spans_completed_by(layout.next_seq):
        payload = getattr(span.message, "payload", None)
        if getattr(payload, "type_name", "") == "HEADERS":
            client.tcp._send_data_segment(span.start, span.length, True)
            break
    sim.run_until(10.0)
    pushed = [i for i in server.all_instances if i.path == "/style.css"]
    assert len(pushed) == 1


def test_client_push_disabled_raises():
    from repro.h2.settings import H2Settings
    topology = build_adversary_path(seed=42)
    server = H2Server(
        topology.sim, topology.server, 443,
        lambda path: RESOURCES.get(path),
        trace=topology.trace,
    )
    client = H2Client(
        topology.sim, topology.client, topology.server.endpoint(443),
        settings=H2Settings(enable_push=False,
                            initial_window_size=12 * 1024 * 1024),
        trace=topology.trace,
    )
    client.on_ready = lambda: client.get("/page.html")
    client.connect()
    topology.sim.run_until(2.0)
    with pytest.raises(H2Error):
        server.connections[0].h2.send_push_promise(1, [(":path", "/x")])


def test_push_defense_page_load_completes():
    """A defended isidewith deployment: emblems pushed, page completes,
    and the browser never requests the emblem paths."""
    workload = VolunteerWorkload(seed=7)
    site = workload.session(0)
    defense = ServerPushDefense()
    config = TrialConfig(
        server=ServerConfig(push_map=defense.push_map(site))
    )
    outcome = run_trial(0, workload, config)
    assert outcome.completed
    # All emblems arrived by push.
    pushed_paths = {
        h.path for h in outcome.client.handles.values() if h.pushed
    }
    assert len([p for p in pushed_paths if "/parties/" in p]) == 8
    # No GET for any emblem path appears in the browser's requests.
    emblem_requests = [
        record for record in outcome.trace.select(category="browser.request")
        if "/parties/" in record["path"]
    ]
    assert emblem_requests == []


def test_push_defense_canonical_order_independent_of_user():
    defense = ServerPushDefense()
    first = defense.canonical_order(build_isidewith_site(PARTIES))
    second = defense.canonical_order(
        build_isidewith_site(tuple(reversed(PARTIES)))
    )
    assert first == second == tuple(sorted(PARTIES))
