"""Tests for the fingerprinting feature extraction and classifier."""

import pytest

from repro.core.fingerprint import (
    PageFingerprinter,
    TOP_BURSTS,
    trace_features,
)
from repro.core.monitor import TrafficMonitor
from repro.experiments.fingerprint_study import (
    PAGE_TOTAL_BYTES,
    build_closed_world,
    _page_schedule,
    _visit,
)
from repro.netsim.capture import CaptureLog, Direction, PacketRecord
from repro.simkernel.randomstream import RandomStreams


def _burst(log, start, sizes):
    """Append one burst (full packets then a sub-MTU delimiter)."""
    time = start
    for size in sizes:
        log.append(PacketRecord(
            time=time, direction=Direction.SERVER_TO_CLIENT, packet_id=0,
            wire_size=1500 if size >= 1448 else 44 + size,
            payload_bytes=size, flags=(), seq=0, ack=0,
            tls_content_types=(23,),
        ))
        time += 0.0005
    return time


def test_trace_features_shape_and_order():
    log = CaptureLog()
    _burst(log, 0.0, [1448, 1448, 600])
    _burst(log, 1.0, [1448, 200])
    features = trace_features(TrafficMonitor(log))
    assert len(features) == TOP_BURSTS + 2
    assert features[0] == 1448 + 1448 + 600  # largest first
    assert features[1] == 1448 + 200
    assert features[2] == 0.0  # padding
    assert features[-2] == features[0] + features[1]  # total
    assert features[-1] == 2.0  # burst count


def test_trace_features_dedups_replayed_sizes():
    log = CaptureLog()
    _burst(log, 0.0, [1448, 1448, 600])
    _burst(log, 1.0, [1448, 1448, 600])  # duplicate serving
    _burst(log, 2.0, [1448, 200])
    features = trace_features(TrafficMonitor(log))
    assert features[-1] == 2.0  # duplicate folded away


def test_fingerprinter_classifies():
    fingerprinter = PageFingerprinter(k=1).fit(
        [[100.0, 0.0], [900.0, 0.0], [100.0, 1.0]],
        ["a", "b", "a"],
    )
    assert fingerprinter.predict([110.0, 0.5]) == "a"
    assert fingerprinter.accuracy([[890.0, 0.0]], ["b"]) == 1.0


def test_fingerprinter_untrained_raises():
    with pytest.raises(RuntimeError):
        PageFingerprinter().predict([1.0])
    with pytest.raises(RuntimeError):
        PageFingerprinter().accuracy([[1.0]], ["a"])


def test_closed_world_pages_equal_totals():
    world = build_closed_world(RandomStreams(3), pages=4)
    totals = {
        sum(obj.size for obj in website.objects.values())
        for website in world.values()
    }
    assert len(world) == 4
    assert totals == {PAGE_TOTAL_BYTES}
    # Compositions differ.
    compositions = {
        tuple(sorted(obj.size for obj in website.objects.values()))
        for website in world.values()
    }
    assert len(compositions) == 4


def test_visit_produces_trace():
    world = build_closed_world(RandomStreams(3), pages=2)
    website = next(iter(world.values()))
    monitor = _visit(website, RandomStreams(11), attacked=False)
    assert len(monitor.response_packets()) > 50
