"""Tests for the parallel trial executor and picklable summaries.

The load-bearing property is the determinism contract: any experiment
run with ``workers=N`` must produce byte-identical rendered tables to
the serial run.  Parallel legs here use 2 spawn workers on miniature
experiment configurations to keep the suite fast.
"""

import pickle
from dataclasses import dataclass

import pytest

from repro.core.adversary import AdversaryConfig
from repro.experiments import fig6, table1
from repro.experiments.executor import (
    WORKERS_ENV,
    TrialExecutor,
    map_trials,
    resolve_workers,
)
from repro.experiments.harness import (
    TrialConfig,
    TrialSummary,
    summarize_trial,
)
from repro.web.isidewith import HTML_OBJECT_ID
from repro.web.workload import VolunteerWorkload


def _square(index):
    return index * index


@dataclass(frozen=True)
class _Offset:
    base: int

    def __call__(self, index: int) -> int:
        return self.base + index


# ---------------------------------------------------------------------------
# Worker resolution
# ---------------------------------------------------------------------------

def test_resolve_workers_defaults_to_serial(monkeypatch):
    monkeypatch.delenv(WORKERS_ENV, raising=False)
    assert resolve_workers(None) == 1


def test_resolve_workers_reads_environment(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV, "3")
    assert resolve_workers(None) == 3


def test_explicit_argument_beats_environment(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV, "3")
    assert resolve_workers(2) == 2


def test_resolve_workers_rejects_nonpositive():
    with pytest.raises(ValueError):
        resolve_workers(0)
    with pytest.raises(ValueError):
        resolve_workers(-4)


def test_resolve_workers_rejects_non_integer_environment(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV, "garbage")
    with pytest.raises(ValueError, match=WORKERS_ENV):
        resolve_workers(None)


def test_cli_rejects_bad_worker_count_cleanly(capsys):
    from repro import cli

    with pytest.raises(SystemExit) as excinfo:
        cli.main(["table1", "--trials", "1", "--workers", "0"])
    assert excinfo.value.code == 2
    captured = capsys.readouterr()
    assert "worker count must be >= 1" in captured.err


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        TrialExecutor(workers=1, backend="threads")


def test_backend_defaults_follow_worker_count():
    assert TrialExecutor(workers=1).backend == "serial"
    assert TrialExecutor(workers=2).backend == "process"


# ---------------------------------------------------------------------------
# Mapping semantics
# ---------------------------------------------------------------------------

def test_serial_map_preserves_order():
    assert map_trials(5, _square) == [0, 1, 4, 9, 16]


def test_process_map_preserves_order():
    executor = TrialExecutor(workers=2)
    assert executor.map_trials(8, _square) == [i * i for i in range(8)]


def test_map_accepts_explicit_indices():
    executor = TrialExecutor(workers=2)
    assert executor.map_trials(range(3, 7), _Offset(10)) == [13, 14, 15, 16]


def test_map_empty_input():
    assert TrialExecutor(workers=2).map_trials(0, _square) == []


def test_process_map_with_callable_dataclass():
    assert TrialExecutor(workers=2).map_trials(3, _Offset(100)) == [100, 101, 102]


# ---------------------------------------------------------------------------
# TrialSummary picklability
# ---------------------------------------------------------------------------

def test_trial_summary_pickle_round_trip():
    workload = VolunteerWorkload(seed=7)
    summary = summarize_trial(
        0, workload, TrialConfig(adversary=AdversaryConfig())
    )
    clone = pickle.loads(pickle.dumps(summary))
    assert clone.trial == summary.trial
    assert clone.completed == summary.completed
    assert clone.duration == summary.duration
    assert clone.object_degrees == summary.object_degrees
    assert clone.inter_get_gaps == summary.inter_get_gaps
    assert clone.trace_categories == summary.trace_categories
    assert clone.min_degree(HTML_OBJECT_ID) == summary.min_degree(HTML_OBJECT_ID)
    assert (
        clone.analysis.sequence_prediction
        == summary.analysis.sequence_prediction
    )
    assert (
        clone.analysis.single_object[HTML_OBJECT_ID].success
        == summary.analysis.single_object[HTML_OBJECT_ID].success
    )


def test_trial_summary_without_analysis_pickles():
    workload = VolunteerWorkload(seed=7)
    summary = summarize_trial(0, workload, TrialConfig(), analyze=False)
    assert summary.analysis is None
    clone = pickle.loads(pickle.dumps(summary))
    assert clone.analysis is None
    assert clone.get_requests == summary.get_requests


# ---------------------------------------------------------------------------
# End-to-end determinism: serial vs process on real experiments
# ---------------------------------------------------------------------------

@pytest.mark.slow
def test_table1_identical_across_worker_counts():
    kwargs = dict(trials=3, seed=7, delays=(0.0, 0.050))
    serial = table1.run(workers=1, **kwargs)
    parallel = table1.run(workers=2, **kwargs)
    assert serial.render() == parallel.render()
    assert [row.retransmissions for row in serial.rows_data] == [
        row.retransmissions for row in parallel.rows_data
    ]


@pytest.mark.slow
def test_fig6_identical_across_worker_counts():
    kwargs = dict(trials=2, seed=7, drop_rates=(0.8,))
    serial = fig6.run(workers=1, **kwargs)
    parallel = fig6.run(workers=2, **kwargs)
    assert serial.render() == parallel.render()
    serial_row, parallel_row = serial.rows_data[0], parallel.rows_data[0]
    assert serial_row.resets_observed == parallel_row.resets_observed
    assert serial_row.successes == parallel_row.successes


def test_workers_env_drives_experiments(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV, "2")
    from_env = table1.run(trials=2, seed=7, delays=(0.050,))
    monkeypatch.delenv(WORKERS_ENV)
    serial = table1.run(trials=2, seed=7, delays=(0.050,))
    assert from_env.render() == serial.render()


# ---------------------------------------------------------------------------
# Table I zero-baseline fallback (satellite)
# ---------------------------------------------------------------------------

def test_table1_zero_baseline_renders_dash():
    import math

    from repro.experiments.table1 import JitterRow, Table1Result

    result = Table1Result()
    result.rows_data.append(JitterRow(delay=0.0, trials=5, retransmissions=0))
    result.rows_data.append(JitterRow(delay=0.050, trials=5, retransmissions=4))
    row = result.rows_data[1]
    assert math.isinf(row.retransmission_increase_pct(baseline=0))
    rendered_rows = result.rows()
    assert rendered_rows[1][2] == "—"
    # A zero-retransmission row against the zero baseline is just +0%.
    assert rendered_rows[0][2] == "+0%"


def test_table1_nonzero_baseline_keeps_percentages():
    from repro.experiments.table1 import JitterRow, Table1Result

    result = Table1Result()
    result.rows_data.append(JitterRow(delay=0.0, trials=5, retransmissions=3))
    result.rows_data.append(JitterRow(delay=0.050, trials=5, retransmissions=9))
    rendered_rows = result.rows()
    assert rendered_rows[0][2] == "+0%"
    assert rendered_rows[1][2] == "+200%"
