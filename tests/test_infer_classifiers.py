"""Classifier registry: determinism, digests, and learning sanity.

Model digests are the seed-determinism surface: fitting the same
classifier on the same data with the same seed must produce the same
digest on every machine and worker, because the digest hashes the raw
parameter bytes.  The learning checks are intentionally easy — cleanly
separable toy classes — because the point is wiring, not benchmarking.
"""

import pytest

from repro.infer.classifiers import (
    CLASSIFIER_REGISTRY,
    UNMATCHED,
    ExactMatchClassifier,
    classifier_names,
    resolve_classifier,
)


def _toy_data(spread=0, classes=3, reps=4):
    """Separable classes: feature index 1 (the total) dominates."""
    rows, labels = [], []
    for label in range(classes):
        base = 10_000 * (label + 1)
        for rep in range(reps):
            jitter = (rep * 37 + spread) % 200
            rows.append((reps, base + jitter, 100, 500, rep, label))
            labels.append(label)
    return rows, labels


# -- registry ------------------------------------------------------------

def test_registry_names_and_order():
    assert classifier_names() == ("exact", "centroid", "knn", "logistic")
    assert set(CLASSIFIER_REGISTRY) == set(classifier_names())


def test_resolve_unknown_classifier():
    with pytest.raises(ValueError, match="nope"):
        resolve_classifier("nope", seed=1)


@pytest.mark.parametrize("name", classifier_names())
def test_resolved_classifier_roundtrips(name):
    clf = resolve_classifier(name, seed=99)
    assert clf.name == name
    assert clf.seed == 99


# -- model digests -------------------------------------------------------

@pytest.mark.parametrize("name", classifier_names())
def test_model_digest_is_seed_deterministic(name):
    rows, labels = _toy_data()
    first = resolve_classifier(name, seed=7)
    second = resolve_classifier(name, seed=7)
    first.fit(rows, labels)
    second.fit(rows, labels)
    assert first.model_digest() == second.model_digest()


def test_model_digest_depends_on_training_data():
    rows, labels = _toy_data()
    other_rows, other_labels = _toy_data(spread=13)
    for name in classifier_names():
        one = resolve_classifier(name, seed=7)
        two = resolve_classifier(name, seed=7)
        one.fit(rows, labels)
        two.fit(other_rows, other_labels)
        assert one.model_digest() != two.model_digest(), name


def test_logistic_digest_depends_on_seed():
    rows, labels = _toy_data()
    one = resolve_classifier("logistic", seed=1)
    two = resolve_classifier("logistic", seed=2)
    one.fit(rows, labels)
    two.fit(rows, labels)
    assert one.model_digest() != two.model_digest()


# -- learning sanity -----------------------------------------------------

@pytest.mark.parametrize("name", classifier_names())
def test_separable_classes_are_learned(name):
    rows, labels = _toy_data()
    clf = resolve_classifier(name, seed=5)
    clf.fit(rows, labels)
    probes = [(4, 10_050, 100, 500, 1, 0),
              (4, 20_050, 100, 500, 2, 1),
              (4, 30_050, 100, 500, 3, 2)]
    assert clf.predict(probes) == [0, 1, 2]


def test_predictions_are_repeatable():
    rows, labels = _toy_data()
    probes = rows[::2]
    for name in classifier_names():
        one = resolve_classifier(name, seed=3)
        one.fit(rows, labels)
        assert one.predict(probes) == one.predict(probes), name


# -- the exact-match baseline -------------------------------------------

def test_exact_match_tolerance_window():
    clf = ExactMatchClassifier(seed=0)
    rows = [(1, 100_000, 0, 0), (1, 200_000, 0, 0)]
    clf.fit(rows, [0, 1])
    tolerance = max(
        ExactMatchClassifier.TOLERANCE_ABS,
        100_000 * ExactMatchClassifier.TOLERANCE_PERMILLE // 1000,
    )
    inside = (1, 100_000 + tolerance, 0, 0)
    outside = (1, 100_000 + tolerance + 1, 0, 0)
    assert clf.predict([inside]) == [0]
    # Outside every class window: the paper's matcher reports nothing.
    far = (1, 150_000, 0, 0)
    assert clf.predict([far, outside]) == [UNMATCHED, UNMATCHED]


def test_exact_match_prefers_closest_class():
    clf = ExactMatchClassifier(seed=0)
    clf.fit([(1, 10_000, 0, 0), (1, 10_400, 0, 0)], [0, 1])
    # 10_180 is within both windows (abs tolerance 350) but closer to 0.
    assert clf.predict([(1, 10_180, 0, 0)]) == [0]
    assert clf.predict([(1, 10_320, 0, 0)]) == [1]
