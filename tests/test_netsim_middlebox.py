"""Unit tests for the middlebox, capture, and topology builder."""

import pytest

from repro.netsim.address import Endpoint
from repro.netsim.capture import CaptureLog, Direction, PacketRecord
from repro.netsim.link import Link, LinkConfig
from repro.netsim.middlebox import Middlebox, PacketAction, Verdict
from repro.netsim.node import Host
from repro.netsim.packet import Packet
from repro.netsim.topology import build_adversary_path
from repro.simkernel.units import MBPS
from repro.tls.record import TLSRecord


class _Drop:
    def classify(self, packet, direction, now):
        return Verdict.drop()


class _Delay:
    def __init__(self, delay):
        self.delay = delay

    def classify(self, packet, direction, now):
        return Verdict.delayed(self.delay)


def _wired_middlebox(sim):
    """client — mbox — server with sinks recording arrivals."""
    topo = build_adversary_path(sim=sim, seed=0)
    received = {"client": [], "server": []}
    topo.client.bind(1, lambda p: received["client"].append((sim.now, p)))
    topo.server.bind(2, lambda p: received["server"].append((sim.now, p)))
    return topo, received


def test_middlebox_forwards_both_directions(sim):
    topo, received = _wired_middlebox(sim)
    topo.client.send(Packet(Endpoint("client", 1), Endpoint("server", 2), None))
    topo.server.send(Packet(Endpoint("server", 2), Endpoint("client", 1), None))
    sim.run()
    assert len(received["server"]) == 1
    assert len(received["client"]) == 1
    assert topo.middlebox.forwarded == 2


def test_middlebox_capture_records_direction(sim):
    topo, _ = _wired_middlebox(sim)
    topo.client.send(Packet(Endpoint("client", 1), Endpoint("server", 2), None))
    sim.run()
    assert len(topo.middlebox.capture) == 1
    record = topo.middlebox.capture[0]
    assert record.direction is Direction.CLIENT_TO_SERVER


def test_middlebox_drop_filter(sim):
    topo, received = _wired_middlebox(sim)
    topo.middlebox.add_filter(Direction.CLIENT_TO_SERVER, _Drop())
    topo.client.send(Packet(Endpoint("client", 1), Endpoint("server", 2), None))
    sim.run()
    assert received["server"] == []
    assert topo.middlebox.dropped == 1
    assert topo.middlebox.capture[0].dropped_by_adversary


def test_middlebox_drop_only_applies_to_direction(sim):
    topo, received = _wired_middlebox(sim)
    topo.middlebox.add_filter(Direction.CLIENT_TO_SERVER, _Drop())
    topo.server.send(Packet(Endpoint("server", 2), Endpoint("client", 1), None))
    sim.run()
    assert len(received["client"]) == 1


def test_middlebox_delay_filter(sim):
    topo, received = _wired_middlebox(sim)
    topo.middlebox.add_filter(Direction.CLIENT_TO_SERVER, _Delay(0.5))
    topo.client.send(Packet(Endpoint("client", 1), Endpoint("server", 2), None))
    sim.run()
    assert received["server"][0][0] >= 0.5


def test_middlebox_delays_accumulate_across_filters(sim):
    topo, received = _wired_middlebox(sim)
    topo.middlebox.add_filter(Direction.CLIENT_TO_SERVER, _Delay(0.2))
    topo.middlebox.add_filter(Direction.CLIENT_TO_SERVER, _Delay(0.3))
    topo.client.send(Packet(Endpoint("client", 1), Endpoint("server", 2), None))
    sim.run()
    assert received["server"][0][0] >= 0.5


def test_middlebox_remove_and_clear_filters(sim):
    topo, received = _wired_middlebox(sim)
    drop = _Drop()
    topo.middlebox.add_filter(Direction.CLIENT_TO_SERVER, drop)
    topo.middlebox.remove_filter(Direction.CLIENT_TO_SERVER, drop)
    topo.client.send(Packet(Endpoint("client", 1), Endpoint("server", 2), None))
    sim.run()
    assert len(received["server"]) == 1
    topo.middlebox.add_filter(Direction.CLIENT_TO_SERVER, _Drop())
    topo.middlebox.clear_filters()
    topo.client.send(Packet(Endpoint("client", 1), Endpoint("server", 2), None))
    sim.run()
    assert len(received["server"]) == 2


def test_middlebox_bandwidth_limit_paces(sim):
    topo, received = _wired_middlebox(sim)
    # 8 kbit/s with a 100-byte burst: 40-byte packets conform slowly.
    topo.middlebox.set_bandwidth_limit(8_000, burst_bytes=100)
    for _ in range(5):
        topo.client.send(
            Packet(Endpoint("client", 1), Endpoint("server", 2), None)
        )
    sim.run()
    times = [t for t, _ in received["server"]]
    assert len(times) == 5
    assert times[-1] - times[0] > 0.05  # paced, not a burst


def test_middlebox_bandwidth_limit_lift(sim):
    topo, received = _wired_middlebox(sim)
    topo.middlebox.set_bandwidth_limit(8_000, burst_bytes=100)
    topo.middlebox.set_bandwidth_limit(None)
    for _ in range(5):
        topo.client.send(
            Packet(Endpoint("client", 1), Endpoint("server", 2), None)
        )
    sim.run()
    times = [t for t, _ in received["server"]]
    assert times[-1] - times[0] < 0.01


def test_verdict_validation():
    with pytest.raises(ValueError):
        Verdict(PacketAction.DELAY, delay=-1.0)
    assert Verdict.forward().action is PacketAction.FORWARD
    assert Verdict.drop().action is PacketAction.DROP
    assert Verdict.delayed(0.1).delay == 0.1


# -- CaptureLog / PacketRecord ------------------------------------------------

def _record(direction, time=0.0, payload=0, content_types=(), dropped=False):
    return PacketRecord(
        time=time, direction=direction, packet_id=1, wire_size=40 + payload,
        payload_bytes=payload, flags=(), seq=0, ack=0,
        tls_content_types=tuple(content_types),
        dropped_by_adversary=dropped,
    )


def test_capture_in_direction_excludes_dropped():
    log = CaptureLog()
    log.append(_record(Direction.CLIENT_TO_SERVER))
    log.append(_record(Direction.CLIENT_TO_SERVER, dropped=True))
    assert len(log.in_direction(Direction.CLIENT_TO_SERVER)) == 1
    assert len(
        log.in_direction(Direction.CLIENT_TO_SERVER, include_dropped=True)
    ) == 2


def test_capture_application_data_filter():
    log = CaptureLog()
    log.append(_record(Direction.SERVER_TO_CLIENT, content_types=(23,)))
    log.append(_record(Direction.SERVER_TO_CLIENT, content_types=(22,)))
    assert len(log.application_data()) == 1


def test_capture_since_clips():
    log = CaptureLog()
    log.append(_record(Direction.SERVER_TO_CLIENT, time=1.0))
    log.append(_record(Direction.SERVER_TO_CLIENT, time=2.0))
    assert len(log.since(1.5)) == 1


def test_record_is_application_stream_continuation():
    record = _record(Direction.SERVER_TO_CLIENT, payload=500, content_types=())
    assert record.is_application_stream
    handshake = _record(
        Direction.SERVER_TO_CLIENT, payload=500, content_types=(22,)
    )
    assert not handshake.is_application_stream
    empty = _record(Direction.SERVER_TO_CLIENT, payload=0)
    assert not empty.is_application_stream


def test_record_from_packet_reads_tls_types(sim):
    record_obj = TLSRecord(content_type=23, plaintext_length=100)

    class _Segment:
        seq = 10
        ack = 20
        flags = frozenset({"ACK"})
        payload_bytes = 129
        option_bytes = 12
        tls_records = (record_obj,)

    packet = Packet(Endpoint("a", 1), Endpoint("b", 2), _Segment())
    captured = PacketRecord.from_packet(1.0, Direction.CLIENT_TO_SERVER, packet)
    assert captured.tls_content_types == (23,)
    assert captured.seq == 10
    assert captured.is_application_data


def test_direction_opposite():
    assert Direction.CLIENT_TO_SERVER.opposite() is Direction.SERVER_TO_CLIENT
    assert Direction.SERVER_TO_CLIENT.opposite() is Direction.CLIENT_TO_SERVER


def test_topology_builder_wires_everything():
    topo = build_adversary_path(seed=3)
    assert topo.client.name == "client"
    assert topo.server.name == "server"
    assert topo.middlebox.name == "gateway"
    assert topo.client_link.config.propagation_delay < \
        topo.server_link.config.propagation_delay
