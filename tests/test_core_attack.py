"""Tests for the adversary state machine, sequence scoring and defense."""

import pytest

from repro.core.adversary import Adversary, AdversaryConfig, AttackPhase
from repro.core.controller import NetworkController
from repro.core.defenses import PriorityShuffleDefense
from repro.core.sequence import ObjectVerdict, SequenceAttack
from repro.experiments.harness import TrialConfig, run_trial
from repro.netsim.topology import build_adversary_path
from repro.simkernel.randomstream import RandomStreams
from repro.web.isidewith import HTML_OBJECT_ID, PARTIES, build_isidewith_site
from repro.web.workload import VolunteerWorkload


# -- AdversaryConfig -----------------------------------------------------------

def test_adversary_config_defaults_match_paper():
    config = AdversaryConfig()
    assert config.initial_jitter == 0.050
    assert config.escalated_jitter == 0.080
    assert config.drop_rate == 0.80
    assert config.drop_duration == 6.0
    assert config.trigger_get_index == 6
    assert config.bandwidth_limit == 800e6


def test_adversary_config_validation():
    with pytest.raises(ValueError):
        AdversaryConfig(initial_jitter=-1)
    with pytest.raises(ValueError):
        AdversaryConfig(drop_rate=2.0)
    with pytest.raises(ValueError):
        AdversaryConfig(trigger_get_index=0)
    with pytest.raises(ValueError):
        AdversaryConfig(jitter_mode="bogus")


# -- Adversary state machine ------------------------------------------------------

def _armed_adversary(config=None):
    topology = build_adversary_path(seed=9)
    controller = NetworkController(
        topology.sim, topology.middlebox, RandomStreams(1)
    )
    adversary = Adversary(controller, config or AdversaryConfig())
    adversary.arm()
    return topology, controller, adversary


def test_arm_installs_spacing_and_trigger():
    topology, controller, adversary = _armed_adversary()
    assert adversary.phase is AttackPhase.SPACING
    assert controller.spacing_filter is not None
    assert controller.spacing_filter.spacing == 0.050


def test_double_arm_raises():
    topology, controller, adversary = _armed_adversary()
    with pytest.raises(RuntimeError):
        adversary.arm()


def test_trigger_starts_drops_and_throttle():
    topology, controller, adversary = _armed_adversary()
    adversary._on_trigger(now=topology.sim.now)
    assert adversary.phase is AttackPhase.DROPPING
    assert controller.drop_filter is not None
    assert controller.drop_filter.active(topology.sim.now)
    assert adversary.trigger_time is not None


def test_escalation_after_drop_window():
    topology, controller, adversary = _armed_adversary()
    adversary._on_trigger(now=topology.sim.now)
    topology.sim.run_until(7.0)
    assert adversary.phase is AttackPhase.ESCALATED
    assert controller.spacing_filter.spacing == 0.080
    assert adversary.escalation_time is not None


def test_drops_disabled_goes_straight_to_escalation():
    config = AdversaryConfig(enable_drops=False)
    topology, controller, adversary = _armed_adversary(config)
    adversary._on_trigger(now=topology.sim.now)
    assert adversary.phase is AttackPhase.ESCALATED


def test_ideal_mode_uses_noise_free_spacing():
    config = AdversaryConfig(jitter_mode="ideal")
    topology, controller, adversary = _armed_adversary(config)
    assert controller.spacing_filter.noise_fraction == 0.0


def test_random_mode_uses_jitter_filter():
    config = AdversaryConfig(jitter_mode="random")
    topology, controller, adversary = _armed_adversary(config)
    assert controller.jitter_filter is not None
    assert controller.spacing_filter is None


# -- ObjectVerdict -----------------------------------------------------------------

def test_verdict_success_requires_both():
    verdict = ObjectVerdict("x", identified=True, degree_zero=False,
                            degree_zero_original=False, original_degree=1.0)
    assert not verdict.success
    verdict = ObjectVerdict("x", identified=True, degree_zero=True,
                            degree_zero_original=True, original_degree=0.0)
    assert verdict.success
    assert not verdict.success_via_duplicate_only


def test_verdict_duplicate_only_flag():
    verdict = ObjectVerdict("x", identified=True, degree_zero=True,
                            degree_zero_original=False, original_degree=1.0)
    assert verdict.success
    assert verdict.success_via_duplicate_only


# -- End-to-end sanity ---------------------------------------------------------------

def test_full_attack_trial_end_to_end():
    workload = VolunteerWorkload(seed=7)
    outcome = run_trial(0, workload, TrialConfig(adversary=AdversaryConfig()))
    assert outcome.completed
    assert outcome.adversary.trigger_time is not None
    analysis = outcome.analyze()
    # The single-object attack on the HTML succeeds (Table II row 3).
    assert analysis.single_object[HTML_OBJECT_ID].success
    # The sequence prediction recovers most of the image order.
    correct = sum(
        1 for object_id in analysis.sequence_truth
        if analysis.sequence_correct.get(object_id)
    )
    assert correct >= 5


def test_baseline_trial_attack_fails():
    """Without the adversary, multiplexing protects the HTML."""
    workload = VolunteerWorkload(seed=7)
    successes = 0
    for trial in range(3):
        outcome = run_trial(trial, workload, TrialConfig())
        analysis = outcome.analyze()
        if analysis.single_object[HTML_OBJECT_ID].success:
            successes += 1
    assert successes <= 1  # occasionally non-multiplexed by chance


# -- PriorityShuffleDefense -----------------------------------------------------------

def test_defense_shuffles_wire_order_only():
    site = build_isidewith_site(PARTIES)
    rng = RandomStreams(13)
    defense = PriorityShuffleDefense()
    schedule, wire_order = defense.apply(site, rng)
    assert sorted(wire_order) == sorted(PARTIES)
    assert len(schedule) == len(site.schedule)
    # The display (ground-truth) order is untouched.
    assert site.party_order == tuple(PARTIES)
    # Gaps of the image slots are preserved (timing signature unchanged).
    for index in site.image_indices:
        assert schedule[index].gap == site.schedule[index].gap
    # The slots still hold emblem objects, still script-triggered (the
    # reload wave behaviour must survive the shuffle).
    for index in site.image_indices:
        assert schedule[index].obj.object_id.startswith("emblem-")
        assert schedule[index].script_triggered


def test_defense_weights_randomized():
    site = build_isidewith_site(PARTIES)
    rng = RandomStreams(13)
    schedule, _ = PriorityShuffleDefense().apply(site, rng)
    weights = {
        schedule[index].priority_weight for index in site.image_indices
    }
    assert len(weights) > 1
    assert all(1 <= weight <= 256 for weight in weights if weight)


def test_defense_no_shuffle_mode():
    site = build_isidewith_site(PARTIES)
    rng = RandomStreams(13)
    defense = PriorityShuffleDefense(shuffle_order=False,
                                     randomize_weights=False)
    schedule, wire_order = defense.apply(site, rng)
    assert wire_order == tuple(PARTIES)
