"""Unit tests for restartable timers and processes."""

import pytest

from repro.simkernel.errors import SimulationError
from repro.simkernel.process import Process
from repro.simkernel.timers import Timer


def test_timer_fires_once(sim):
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(2.0)
    sim.run()
    assert fired == [2.0]
    assert not timer.armed


def test_timer_restart_supersedes(sim):
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(2.0)
    sim.schedule(1.0, lambda: timer.start(5.0))
    sim.run()
    assert fired == [6.0]


def test_timer_cancel(sim):
    fired = []
    timer = Timer(sim, lambda: fired.append(1))
    timer.start(2.0)
    sim.schedule(1.0, timer.cancel)
    sim.run()
    assert fired == []
    assert not timer.armed


def test_timer_cancel_idle_is_noop(sim):
    timer = Timer(sim, lambda: None)
    timer.cancel()  # must not raise
    assert timer.expiry is None


def test_timer_expiry_reports_deadline(sim):
    timer = Timer(sim, lambda: None)
    timer.start(3.0)
    assert timer.expiry == 3.0


def test_timer_can_rearm_after_firing(sim):
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(1.0)
    sim.run()
    timer.start(1.0)
    sim.run()
    assert fired == [1.0, 2.0]


def test_process_yields_delays(sim):
    log = []

    def script():
        log.append(("start", sim.now))
        yield 1.0
        log.append(("middle", sim.now))
        yield 2.0
        log.append(("end", sim.now))

    process = Process(sim, script())
    process.start()
    sim.run()
    assert log == [("start", 0.0), ("middle", 1.0), ("end", 3.0)]
    assert process.finished


def test_process_start_delay(sim):
    times = []

    def script():
        times.append(sim.now)
        yield 0.5
        times.append(sim.now)

    Process(sim, script()).start(delay=2.0)
    sim.run()
    assert times == [2.0, 2.5]


def test_process_double_start_raises(sim):
    def script():
        yield 1.0

    process = Process(sim, script()).start()
    with pytest.raises(SimulationError):
        process.start()


def test_process_stop_aborts(sim):
    log = []

    def script():
        log.append("a")
        yield 1.0
        log.append("b")

    process = Process(sim, script()).start()
    sim.schedule(0.5, process.stop)
    sim.run()
    assert log == ["a"]
    assert process.finished


def test_process_negative_yield_raises(sim):
    def script():
        yield -1.0

    Process(sim, script()).start()
    with pytest.raises(SimulationError):
        sim.run()
