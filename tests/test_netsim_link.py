"""Unit tests for links and hosts."""

import pytest

from repro.netsim.address import Endpoint
from repro.netsim.link import Link, LinkConfig
from repro.netsim.node import Host
from repro.netsim.packet import Packet
from repro.simkernel.randomstream import RandomStreams
from repro.simkernel.units import MBPS


class _Sink:
    def __init__(self):
        self.received = []

    def on_packet(self, packet):
        self.received.append(packet)


def _packet(size_payload=0):
    return Packet(Endpoint("a", 1), Endpoint("b", 2), None)


def test_link_delivers_after_propagation(sim):
    link = Link(sim, LinkConfig(propagation_delay=0.01), name="l")
    sink = _Sink()
    link.b.attach(sink)
    link.a.send(_packet())
    sim.run()
    assert len(sink.received) == 1
    assert sim.now >= 0.01


def test_link_is_full_duplex(sim):
    link = Link(sim, LinkConfig(propagation_delay=0.01))
    sink_a, sink_b = _Sink(), _Sink()
    link.a.attach(sink_a)
    link.b.attach(sink_b)
    link.a.send(_packet())
    link.b.send(_packet())
    sim.run()
    assert len(sink_a.received) == 1
    assert len(sink_b.received) == 1


def test_link_serialization_spaces_packets(sim):
    # 40-byte headers at 1 Mbps → 320 µs each.
    link = Link(sim, LinkConfig(bandwidth_bps=1 * MBPS, propagation_delay=0.0))
    sink = _Sink()
    link.b.attach(sink)
    times = []

    class _Recorder:
        def on_packet(self, packet):
            times.append(sim.now)

    link.b.attach(_Recorder())
    link.a.send(_packet())
    link.a.send(_packet())
    sim.run()
    assert len(times) == 2
    assert times[1] - times[0] == pytest.approx(40 * 8 / 1e6)


def test_link_loss_drops_packets(sim):
    rng = RandomStreams(1)
    link = Link(sim, LinkConfig(loss_rate=0.5), rng=rng, name="lossy")
    sink = _Sink()
    link.b.attach(sink)
    for _ in range(200):
        link.a.send(_packet())
    sim.run()
    assert 40 < len(sink.received) < 160  # ≈100 expected


def test_link_jitter_requires_rng_else_disabled(sim):
    link = Link(sim, LinkConfig(jitter=0.01), rng=None)
    sink = _Sink()
    link.b.attach(sink)
    link.a.send(_packet())
    sim.run()
    assert sim.now == pytest.approx(
        LinkConfig().propagation_delay + 40 * 8 / LinkConfig().bandwidth_bps
    )


def test_link_fifo_preserved_without_reordering(sim):
    rng = RandomStreams(2)
    link = Link(sim, LinkConfig(jitter=0.05, propagation_delay=0.001),
                rng=rng, name="jittery")
    order = []
    tagged = []

    class _Order:
        def on_packet(self, packet):
            order.append(packet.packet_id)

    link.b.attach(_Order())
    for _ in range(20):
        packet = _packet()
        tagged.append(packet.packet_id)
        link.a.send(packet)
    sim.run()
    assert order == tagged


def test_link_config_validation():
    with pytest.raises(ValueError):
        LinkConfig(bandwidth_bps=0)
    with pytest.raises(ValueError):
        LinkConfig(propagation_delay=-1)
    with pytest.raises(ValueError):
        LinkConfig(loss_rate=1.5)
    with pytest.raises(ValueError):
        LinkConfig(jitter=-0.1)


def test_unattached_end_raises(sim):
    link = Link(sim, LinkConfig())
    link.a.send(_packet())
    with pytest.raises(RuntimeError):
        sim.run()


# -- Host ----------------------------------------------------------------

def test_host_dispatches_by_port(sim):
    host = Host(sim, "h")
    received = []
    host.bind(443, received.append)
    packet = Packet(Endpoint("x", 1), Endpoint("h", 443), None)
    host.on_packet(packet)
    assert received == [packet]


def test_host_unrouted_counted(sim):
    host = Host(sim, "h")
    host.on_packet(Packet(Endpoint("x", 1), Endpoint("h", 999), None))
    assert host.unrouted_packets == 1


def test_host_double_bind_raises(sim):
    host = Host(sim, "h")
    host.bind(1, lambda p: None)
    with pytest.raises(RuntimeError):
        host.bind(1, lambda p: None)


def test_host_unbind_releases_port(sim):
    host = Host(sim, "h")
    host.bind(1, lambda p: None)
    host.unbind(1)
    host.bind(1, lambda p: None)  # must not raise


def test_host_send_requires_link(sim):
    host = Host(sim, "h")
    with pytest.raises(RuntimeError):
        host.send(Packet(Endpoint("h", 1), Endpoint("x", 2), None))


def test_host_double_attach_raises(sim, wire):
    _, host_a, _ = wire
    link = Link(sim, LinkConfig())
    with pytest.raises(RuntimeError):
        host_a.attach_link(link.a)
