"""Tests for the streaming traffic model and study (§VII)."""

import pytest

from repro.experiments.streaming_study import _classify_bursts, _score
from repro.h2.client import H2Client
from repro.h2.server import H2Server
from repro.netsim.topology import build_adversary_path
from repro.simkernel.randomstream import RandomStreams
from repro.web.streaming import (
    DEFAULT_LADDER,
    StreamingPlayer,
    StreamingSession,
    generate_session,
    segment_path,
)


def test_generate_session_reproducible():
    first = generate_session(RandomStreams(3), segments=10)
    second = generate_session(RandomStreams(3), segments=10)
    assert first.qualities == second.qualities
    assert first.sizes == second.sizes


def test_generate_session_walk_properties():
    session = generate_session(RandomStreams(5), segments=20)
    assert session.segment_count == 20
    rungs = list(DEFAULT_LADDER)
    assert session.qualities[0] == rungs[0]  # starts at the bottom
    levels = [rungs.index(quality) for quality in session.qualities]
    # The ABR walk moves at most one rung per step upward.
    for previous, current in zip(levels, levels[1:]):
        assert current - previous <= 1


def test_session_sizes_near_nominal():
    session = generate_session(RandomStreams(5), segments=15, vbr_noise=0.08)
    for quality, size in zip(session.qualities, session.sizes):
        nominal = DEFAULT_LADDER[quality]
        assert 0.92 * nominal <= size <= 1.08 * nominal


def test_session_router():
    session = generate_session(RandomStreams(5), segments=3)
    path = segment_path(0, session.qualities[0])
    resource = session.router(path)
    assert resource is not None
    assert resource.body_bytes == session.sizes[0]
    assert session.router("/nope") is None


def test_player_downloads_all_segments():
    rng = RandomStreams(9)
    session = generate_session(rng, segments=6)
    topology = build_adversary_path(seed=1)
    H2Server(topology.sim, topology.server, 443, session.router,
             trace=topology.trace)
    client = H2Client(topology.sim, topology.client,
                      topology.server.endpoint(443), trace=topology.trace)
    player = StreamingPlayer(topology.sim, client, session)
    player.start()
    topology.sim.run_until(40.0)
    assert player.finished
    assert len(player.handles) == 6
    assert all(handle.complete for handle in player.handles)
    received = [handle.received_bytes for handle in player.handles]
    assert received == list(session.sizes)


def test_player_respects_pipeline_depth():
    rng = RandomStreams(9)
    session = generate_session(rng, segments=8)
    topology = build_adversary_path(seed=2)
    H2Server(topology.sim, topology.server, 443, session.router,
             trace=topology.trace)
    client = H2Client(topology.sim, topology.client,
                      topology.server.endpoint(443), trace=topology.trace)
    player = StreamingPlayer(topology.sim, client, session, pipeline_depth=2)
    player.start()
    # Sample outstanding count as the simulation progresses.
    max_outstanding = 0
    sim = topology.sim
    while sim.now < 30.0 and not player.finished:
        sim.run_until(sim.now + 0.05)
        max_outstanding = max(max_outstanding, player._outstanding)
    assert max_outstanding <= 2


def test_score_counts_lcs():
    session = StreamingSession(
        qualities=("q240", "q360", "q480"),
        ladder=dict(DEFAULT_LADDER),
        sizes=(70_000, 125_000, 225_000),
    )
    assert _score(session, ["q240", "q360", "q480"]) == 3
    assert _score(session, ["q240", None, "q480"]) == 2
    assert _score(session, ["q1080"]) == 0
