"""Tests for the §VII learning-based trigger."""

import pytest

from repro.core.monitor import GetRequestObservation
from repro.core.trigger import (
    ClassifierTrigger,
    HTML_LABEL,
    HtmlGetClassifier,
    get_features,
)
from repro.experiments.trigger_study import cached_variant
from repro.simkernel.randomstream import RandomStreams
from repro.web.isidewith import HTML_OBJECT_ID, PARTIES, build_isidewith_site


def _obs(index, time, payload):
    return GetRequestObservation(index=index, time=time, payload_bytes=payload)


def _session(html_position=3, html_gap=0.5):
    """A synthetic GET sequence: small gaps, one long-gap large GET."""
    observations = []
    time = 0.0
    for position in range(6):
        if position == html_position:
            time += html_gap
            payload = 160
        else:
            time += 0.05
            payload = 60
        observations.append(_obs(position + 1, time, payload))
    return observations


def test_get_features_gaps():
    features = get_features(_session())
    assert features[0][0] == 0.0
    assert features[3][0] == pytest.approx(0.5)
    assert features[3][1] == 160.0


def test_classifier_learns_html_signature():
    sessions = [_session(html_position=p) for p in (2, 3, 4, 5)]
    classifier = HtmlGetClassifier(k=1).fit(sessions, [2, 3, 4, 5])
    assert classifier.is_html(gap=0.5, payload_bytes=160)
    assert not classifier.is_html(gap=0.05, payload_bytes=60)


def test_classifier_predict_index():
    sessions = [_session(html_position=p) for p in (2, 3, 4, 5)]
    classifier = HtmlGetClassifier(k=1).fit(sessions, [2, 3, 4, 5])
    assert classifier.predict_index(_session(html_position=4)) == 4


def test_classifier_untrained_raises():
    with pytest.raises(RuntimeError):
        HtmlGetClassifier().is_html(0.5, 160)


def test_classifier_fit_length_mismatch():
    with pytest.raises(ValueError):
        HtmlGetClassifier().fit([_session()], [1, 2])


def test_live_trigger_fires_once():
    sessions = [_session(html_position=p) for p in (2, 3, 4, 5)]
    classifier = HtmlGetClassifier(k=1).fit(sessions, [2, 3, 4, 5])
    fired = []
    trigger = ClassifierTrigger(classifier, fired.append)
    time = 0.0
    for position in range(6):
        gap = 0.5 if position == 3 else 0.05
        payload = 160 if position == 3 else 60
        time += gap
        trigger.observe(position + 1, time, payload)
    assert len(fired) == 1
    assert trigger.fired_index == 4  # the 4th GET (1-based)


def test_cached_variant_moves_html_earlier():
    site = build_isidewith_site(PARTIES)
    rng = RandomStreams(5)
    schedule, html_index = cached_variant(site, rng, cache_probability=0.9)
    assert html_index < site.html_index
    assert schedule[html_index].obj.object_id == HTML_OBJECT_ID
    # Total nominal time to the HTML is preserved (gaps folded).
    original = sum(r.gap for r in site.schedule[: site.html_index + 1])
    variant = sum(r.gap for r in schedule[: html_index + 1])
    assert variant == pytest.approx(original)


def test_cached_variant_zero_probability_identity():
    site = build_isidewith_site(PARTIES)
    rng = RandomStreams(5)
    schedule, html_index = cached_variant(site, rng, cache_probability=0.0)
    assert html_index == site.html_index
    assert len(schedule) == len(site.schedule)
