"""Feature extraction: layout, invariance properties, scalar vs vector.

The extractor's two load-bearing claims are pinned here with
Hypothesis:

* the *invariant prefix* of the feature vector depends only on the
  multiset of record lengths — permuting which length arrives at which
  timestamp cannot change it;
* the numpy batch kernel (:mod:`repro.fastpath.infer`) and the scalar
  loop produce identical integers for every observation batch, so the
  ``fast`` backend cannot drift the study.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fastpath.infer import extract_features_batch
from repro.infer.features import (
    FeatureConfig,
    capture_record_sequence,
    extract_features,
    extract_features_auto,
    feature_length,
    invariant_prefix_length,
    observed_record_lengths,
)
from repro.netsim.capture import CaptureLog, Direction, PacketRecord


# -- strategies ----------------------------------------------------------

def observations(min_records=1, max_records=40):
    """Time-ordered (time_us, wire_length) observations."""
    return st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=20_000),
            st.integers(min_value=29, max_value=18_000),
        ),
        min_size=min_records,
        max_size=max_records,
    ).map(
        # Cumulative gaps -> sorted times; keeps arbitrary gap shapes.
        lambda pairs: tuple(
            (sum(gap for gap, _ in pairs[: i + 1]), length)
            for i, (_, length) in enumerate(pairs)
        )
    )


CONFIGS = st.builds(
    FeatureConfig,
    hist_bin_bytes=st.integers(min_value=64, max_value=4096),
    hist_bins=st.integers(min_value=1, max_value=20),
    curve_points=st.integers(min_value=1, max_value=12),
    burst_gap_us=st.integers(min_value=1, max_value=5_000),
)


# -- layout and scalar basics --------------------------------------------

def test_feature_vector_layout_pinned():
    config = FeatureConfig(hist_bin_bytes=100, hist_bins=3, curve_points=2,
                           burst_gap_us=1000)
    obs = ((0, 120), (400, 250), (2400, 120))
    features = extract_features(obs, config)
    assert len(features) == feature_length(config)
    assert features[: invariant_prefix_length(config)] == (
        3, 490, 120, 250,  # count, total, min, max
        0, 2, 1,           # histogram: [0,100), [100,200), [200,..)
    )
    assert features[7:9] == (120, 120)          # first, last length
    assert features[9:11] == (370, 490)         # curve at ceil(n*k/2)
    assert features[11:14] == (2, 370, 2)       # bursts: split at gap 2000
    assert features[14:] == (2400, 2000, 1)     # ia sum, max, over-count


def test_empty_observation_rejected():
    with pytest.raises(ValueError, match="empty observation"):
        extract_features((), FeatureConfig())
    with pytest.raises(ValueError, match="empty observation"):
        extract_features_batch([((0, 100),), ()], FeatureConfig())


def test_all_features_are_plain_ints():
    features = extract_features(((0, 100), (5, 200)), FeatureConfig())
    assert all(type(value) is int for value in features)
    (batch,) = extract_features_batch([((0, 100), (5, 200))], FeatureConfig())
    assert all(type(value) is int for value in batch)


# -- permutation invariance (Hypothesis) ---------------------------------

@settings(max_examples=120, deadline=None)
@given(obs=observations(), config=CONFIGS, seed=st.integers(0, 2**32 - 1))
def test_invariant_prefix_is_permutation_stable(obs, config, seed):
    import random

    lengths = [length for _, length in obs]
    random.Random(seed).shuffle(lengths)
    permuted = tuple(
        (time, length) for (time, _), length in zip(obs, lengths)
    )
    prefix = invariant_prefix_length(config)
    assert (
        extract_features(obs, config)[:prefix]
        == extract_features(permuted, config)[:prefix]
    )


# -- scalar vs vector equivalence (Hypothesis) ---------------------------

@settings(max_examples=120, deadline=None)
@given(
    batch=st.lists(observations(), min_size=0, max_size=8),
    config=CONFIGS,
)
def test_vector_kernel_matches_scalar_exactly(batch, config):
    scalar = [extract_features(obs, config) for obs in batch]
    vector = extract_features_batch(batch, config)
    assert vector == scalar


def test_auto_dispatch_follows_backend(monkeypatch):
    from repro.fastpath import BACKEND_ENV

    batch = [((0, 120), (2500, 2086)), ((0, 326),)]
    config = FeatureConfig()
    monkeypatch.delenv(BACKEND_ENV, raising=False)
    python_result = extract_features_auto(batch, config)
    monkeypatch.setenv(BACKEND_ENV, "fast")
    assert extract_features_auto(batch, config) == python_result


# -- capture adapters ----------------------------------------------------

def _packet(time, direction, content_types, lengths, dropped=False):
    return PacketRecord(
        time=time, direction=direction, packet_id=1,
        wire_size=sum(lengths) + 40, payload_bytes=sum(lengths),
        flags=("ACK",), seq=0, ack=0,
        tls_content_types=tuple(content_types),
        tls_record_lengths=tuple(lengths),
        dropped_by_adversary=dropped,
    )


def test_capture_record_sequence_filters_and_scales():
    capture = CaptureLog()
    s2c = Direction.SERVER_TO_CLIENT
    capture.append(_packet(0.001, s2c, (22, 23), (90, 120)))
    capture.append(_packet(0.002, Direction.CLIENT_TO_SERVER, (23,), (64,)))
    capture.append(_packet(0.003, s2c, (23, 23), (2086, 326)))
    capture.append(_packet(0.004, s2c, (23,), (999,), dropped=True))
    sequence = capture_record_sequence(capture, s2c)
    # Handshake record (type 22), c2s traffic and dropped packets are
    # all excluded; times are integer microseconds.
    assert sequence == [(1000, 120), (3000, 2086), (3000, 326)]
    assert observed_record_lengths(capture, s2c) == (120, 2086, 326)
    assert capture.record_length_sequence(s2c) == [
        (0.001, 120), (0.003, 2086), (0.003, 326)
    ]
