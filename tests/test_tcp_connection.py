"""Integration tests for TCP connections over a simulated wire."""

import pytest

from repro.netsim.capture import Direction
from repro.netsim.link import Link, LinkConfig
from repro.netsim.middlebox import Verdict
from repro.netsim.node import Host
from repro.netsim.topology import build_adversary_path
from repro.simkernel.randomstream import RandomStreams
from repro.simkernel.trace import TraceLog
from repro.tcp.config import TCPConfig
from repro.tcp.connection import TCPConnection, TCPState
from repro.tcp.listener import TCPListener


class _Msg:
    """A fixed-size application message."""

    def __init__(self, length, name=""):
        self.wire_length = length
        self.name = name


def _pair(wire, client_config=None, server_config=None, trace=None):
    """A connected client/server pair over the plain wire fixture."""
    sim, host_a, host_b = wire
    accepted = []
    listener = TCPListener(
        sim, host_b, 443, accepted.append,
        config=server_config or TCPConfig(), trace=trace,
    )
    client = TCPConnection(
        sim, host_a, 50000, host_b.endpoint(443),
        config=client_config or TCPConfig(), trace=trace, name="client:t",
    )
    return sim, client, listener, accepted


def test_three_way_handshake(wire):
    sim, client, listener, accepted = _pair(wire)
    established = []
    client.on_established = lambda: established.append("client")
    client.connect()
    sim.run_until(1.0)
    assert client.state is TCPState.ESTABLISHED
    assert accepted and accepted[0].state is TCPState.ESTABLISHED
    assert established == ["client"]


def test_message_transfer_small(wire):
    sim, client, listener, accepted = _pair(wire)
    received = []
    def on_accept_message(connection):
        connection.on_message = lambda m, dup: received.append((m.name, dup))
    client.connect()
    sim.run_until(0.1)
    accepted[0].on_message = lambda m, dup: received.append((m.name, dup))
    client.send_message(_Msg(500, "hello"))
    sim.run_until(1.0)
    assert received == [("hello", False)]


def test_large_transfer_segments_and_reassembles(wire):
    sim, client, listener, accepted = _pair(wire)
    received = []
    client.connect()
    sim.run_until(0.1)
    accepted[0].on_message = lambda m, dup: received.append(m.name)
    client.send_message(_Msg(100_000, "big"))
    sim.run_until(5.0)
    assert received == ["big"]
    assert accepted[0].reassembly.rcv_nxt == 100_000


def test_bidirectional_transfer(wire):
    sim, client, listener, accepted = _pair(wire)
    got_client, got_server = [], []
    client.on_message = lambda m, dup: got_client.append(m.name)
    client.connect()
    sim.run_until(0.1)
    accepted[0].on_message = lambda m, dup: got_server.append(m.name)
    client.send_message(_Msg(5000, "up"))
    accepted[0].send_message(_Msg(7000, "down"))
    sim.run_until(2.0)
    assert got_server == ["up"]
    assert got_client == ["down"]


def test_messages_delivered_in_order(wire):
    sim, client, listener, accepted = _pair(wire)
    received = []
    client.connect()
    sim.run_until(0.1)
    accepted[0].on_message = lambda m, dup: received.append(m.name)
    for index in range(20):
        client.send_message(_Msg(1000, f"m{index}"))
    sim.run_until(5.0)
    assert received == [f"m{index}" for index in range(20)]


def test_fin_teardown(wire):
    sim, client, listener, accepted = _pair(wire)
    closed = []
    client.on_close = lambda reset: closed.append(("client", reset))
    client.connect()
    sim.run_until(0.1)
    accepted[0].on_close = lambda reset: closed.append(("server", reset))
    client.close()
    sim.run_until(0.5)
    # Server saw FIN → CLOSE_WAIT; it closes too.
    assert accepted[0].state in (TCPState.CLOSE_WAIT, TCPState.LAST_ACK)
    accepted[0].close()
    sim.run_until(5.0)
    assert client.state is TCPState.CLOSED
    assert accepted[0].state is TCPState.CLOSED
    assert ("server", False) in closed


def test_rst_aborts_both_sides(wire):
    sim, client, listener, accepted = _pair(wire)
    closed = []
    client.connect()
    sim.run_until(0.1)
    accepted[0].on_close = lambda reset: closed.append(reset)
    client.reset()
    sim.run_until(0.5)
    assert client.state is TCPState.CLOSED
    assert accepted[0].state is TCPState.CLOSED
    assert closed == [True]


def test_send_before_established_raises(wire):
    sim, client, listener, accepted = _pair(wire)
    with pytest.raises(RuntimeError):
        client.send_message(_Msg(10, "early"))


def test_listener_demuxes_multiple_clients(wire):
    sim, host_a, host_b = wire
    accepted = []
    TCPListener(sim, host_b, 443, accepted.append)
    clients = [
        TCPConnection(sim, host_a, 50000 + index, host_b.endpoint(443))
        for index in range(3)
    ]
    for client in clients:
        client.connect()
    sim.run_until(1.0)
    assert len(accepted) == 3
    assert all(conn.state is TCPState.ESTABLISHED for conn in accepted)


def test_duplicate_syn_handled(wire, trace):
    """A retransmitted SYN must not create a second connection."""
    sim, host_a, host_b = wire
    accepted = []
    TCPListener(sim, host_b, 443, accepted.append)
    client = TCPConnection(sim, host_a, 50000, host_b.endpoint(443))
    client.connect()
    sim.run_until(2.0)
    assert len(accepted) == 1


def test_on_writable_called_as_acks_arrive(wire):
    sim, client, listener, accepted = _pair(wire)
    client.connect()
    sim.run_until(0.1)
    calls = []
    client.on_writable = lambda: calls.append(sim.now)
    client.send_message(_Msg(50_000, "big"))
    sim.run_until(3.0)
    assert calls  # progress ACKs fired the writable callback
    assert client.unacked_buffered_bytes == 0


def test_retransmission_recovers_from_loss():
    """Data crosses a lossy link; retransmissions fill every hole."""
    sim_topology = build_adversary_path(
        seed=5,
        server_link_config=LinkConfig(propagation_delay=0.01, loss_rate=0.05),
    )
    sim = sim_topology.sim
    trace = sim_topology.trace
    accepted = []
    TCPListener(sim, sim_topology.server, 443, accepted.append, trace=trace)
    client = TCPConnection(
        sim, sim_topology.client, 50000,
        sim_topology.server.endpoint(443), trace=trace, name="client:lossy",
    )
    received = []
    client.connect()
    sim.run_until(1.0)
    assert accepted, "handshake must survive loss"
    accepted[0].on_message = lambda m, dup: received.append(m.name)
    for index in range(30):
        client.send_message(_Msg(3000, f"m{index}"))
    sim.run_until(30.0)
    assert received == [f"m{index}" for index in range(30)]
    assert trace.count(category="tcp.retransmit") > 0


def test_go_back_n_after_drop_burst():
    """An 80% drop window wedges the stream only transiently."""
    from repro.netsim.middlebox import PacketAction

    topology = build_adversary_path(seed=6)
    sim, trace = topology.sim, topology.trace

    class _WindowDrop:
        def __init__(self):
            self.active = False
            self.rng = RandomStreams(1)

        def classify(self, packet, direction, now):
            if self.active and packet.payload_bytes > 0:
                if self.rng.stream("d").random() < 0.8:
                    return Verdict.drop()
            return Verdict.forward()

    dropper = _WindowDrop()
    topology.middlebox.add_filter(Direction.SERVER_TO_CLIENT, dropper)

    accepted = []
    TCPListener(sim, topology.server, 443, accepted.append, trace=trace)
    client = TCPConnection(
        sim, topology.client, 50000, topology.server.endpoint(443),
        trace=trace, name="client:burst",
    )
    received = []
    client.on_message = lambda m, dup: received.append(m.name)
    client.connect()
    sim.run_until(0.5)
    sim.schedule(0.0, lambda: setattr(dropper, "active", True))
    sim.schedule(3.0, lambda: setattr(dropper, "active", False))
    for index in range(40):
        accepted[0].send_message(_Msg(2000, f"m{index}"))
    sim.run_until(30.0)
    assert received == [f"m{index}" for index in range(40)]


def test_duplicate_delivery_quirk(wire):
    """With the quirk on, a retransmitted covered message re-delivers."""
    sim, host_a, host_b = wire
    accepted = []
    TCPListener(
        sim, host_b, 443, accepted.append,
        config=TCPConfig(deliver_duplicate_messages=True),
    )
    client = TCPConnection(sim, host_a, 50000, host_b.endpoint(443))
    client.connect()
    sim.run_until(0.1)
    deliveries = []
    accepted[0].on_message = lambda m, dup: deliveries.append((m.name, dup))
    client.send_message(_Msg(300, "req"))
    sim.run_until(0.5)
    # Manually retransmit the request segment (as an RTO would).
    client._send_data_segment(0, 300, retransmission=True)
    sim.run_until(1.0)
    assert ("req", False) in deliveries
    assert ("req", True) in deliveries


def test_no_duplicate_delivery_without_quirk(wire):
    sim, host_a, host_b = wire
    accepted = []
    TCPListener(
        sim, host_b, 443, accepted.append,
        config=TCPConfig(deliver_duplicate_messages=False),
    )
    client = TCPConnection(sim, host_a, 50000, host_b.endpoint(443))
    client.connect()
    sim.run_until(0.1)
    deliveries = []
    accepted[0].on_message = lambda m, dup: deliveries.append((m.name, dup))
    client.send_message(_Msg(300, "req"))
    sim.run_until(0.5)
    client._send_data_segment(0, 300, retransmission=True)
    sim.run_until(1.0)
    assert deliveries == [("req", False)]
