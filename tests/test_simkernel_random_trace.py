"""Unit tests for random streams, the trace log and units."""

import pytest

from repro.simkernel.randomstream import RandomStreams
from repro.simkernel.trace import TraceLog
from repro.simkernel.units import (
    MBPS,
    MILLISECONDS,
    bandwidth_to_bytes_per_second,
    transmission_delay,
)


# -- RandomStreams -----------------------------------------------------------

def test_same_name_same_stream():
    streams = RandomStreams(1)
    assert streams.stream("x") is streams.stream("x")


def test_streams_reproducible_across_instances():
    first = [RandomStreams(5).stream("jitter").random() for _ in range(3)]
    second = [RandomStreams(5).stream("jitter").random() for _ in range(3)]
    # Each instance creates a fresh stream; drawing 3 values must match.
    a = RandomStreams(5).stream("jitter")
    b = RandomStreams(5).stream("jitter")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_names_are_independent():
    streams = RandomStreams(1)
    assert streams.stream("a").random() != streams.stream("b").random()


def test_creation_order_does_not_matter():
    forward = RandomStreams(9)
    forward.stream("first")
    first_draw = forward.stream("second").random()
    backward = RandomStreams(9)
    second_draw = backward.stream("second").random()
    assert first_draw == second_draw


def test_spawn_derives_new_master():
    parent = RandomStreams(3)
    child_a = parent.spawn("trial-0")
    child_b = parent.spawn("trial-1")
    assert child_a.master_seed != child_b.master_seed
    assert RandomStreams(3).spawn("trial-0").master_seed == child_a.master_seed


def test_uniform_within_bounds():
    streams = RandomStreams(2)
    for _ in range(100):
        value = streams.uniform("u", 1.0, 2.0)
        assert 1.0 <= value <= 2.0


def test_shuffled_preserves_elements_and_input():
    streams = RandomStreams(4)
    items = [1, 2, 3, 4, 5]
    shuffled = streams.shuffled("s", items)
    assert sorted(shuffled) == items
    assert items == [1, 2, 3, 4, 5]


def test_choice_picks_member():
    streams = RandomStreams(4)
    assert streams.choice("c", ["only"]) == "only"


# -- TraceLog ----------------------------------------------------------------

def test_trace_record_and_select():
    log = TraceLog()
    log.record(1.0, "tcp.retransmit", kind="fast")
    log.record(2.0, "tcp.retransmit", kind="rto")
    log.record(3.0, "h2.request", path="/x")
    assert log.count(category="tcp.retransmit") == 2
    assert log.count(prefix="tcp.") == 2
    fast = log.select(
        category="tcp.retransmit", predicate=lambda r: r["kind"] == "fast"
    )
    assert len(fast) == 1 and fast[0].time == 1.0


def test_trace_disabled_records_nothing():
    log = TraceLog(enabled=False)
    log.record(1.0, "x")
    assert len(log) == 0


def test_trace_categories_histogram():
    log = TraceLog()
    log.record(1.0, "a")
    log.record(2.0, "a")
    log.record(3.0, "b")
    assert log.categories() == {"a": 2, "b": 1}


def test_trace_record_get_with_default():
    log = TraceLog()
    log.record(1.0, "x", field=5)
    record = log.select(category="x")[0]
    assert record.get("field") == 5
    assert record.get("missing", "d") == "d"


def test_trace_clear():
    log = TraceLog()
    log.record(1.0, "x")
    log.clear()
    assert len(log) == 0


# -- units -------------------------------------------------------------------

def test_bandwidth_conversion():
    assert bandwidth_to_bytes_per_second(8 * MBPS) == 1_000_000


def test_bandwidth_must_be_positive():
    with pytest.raises(ValueError):
        bandwidth_to_bytes_per_second(0)


def test_transmission_delay():
    assert transmission_delay(1250, 1 * MBPS) == pytest.approx(0.01)


def test_transmission_delay_zero_size():
    assert transmission_delay(0, 1 * MBPS) == 0.0


def test_transmission_delay_negative_size_raises():
    with pytest.raises(ValueError):
        transmission_delay(-1, 1 * MBPS)


def test_milliseconds_constant():
    assert 25 * MILLISECONDS == pytest.approx(0.025)


# ---------------------------------------------------------------------------
# Indexed TraceLog vs a linear-scan reference
# ---------------------------------------------------------------------------

def _reference_select(log, category=None, prefix=None, predicate=None):
    """The pre-index semantics: one linear scan over every record."""
    out = []
    for record in log:
        if category is not None and record.category != category:
            continue
        if prefix is not None and not record.category.startswith(prefix):
            continue
        if predicate is not None and not predicate(record):
            continue
        out.append(record)
    return out


def _populated_log():
    log = TraceLog()
    categories = ["tcp.send", "tcp.recv", "tcp.retransmit",
                  "h2.frame", "h2.reset", "adversary.drop", "tcp"]
    for i in range(200):
        log.record(float(i) / 10.0, categories[i % len(categories)], n=i)
    return log


def test_indexed_select_matches_linear_scan():
    log = _populated_log()
    cases = [
        {},
        {"category": "tcp.send"},
        {"category": "missing"},
        {"prefix": "tcp."},
        {"prefix": "tcp"},          # matches "tcp" and "tcp.*"
        {"prefix": "nothing."},
        {"category": "h2.frame", "prefix": "h2."},
        {"category": "h2.frame", "prefix": "tcp."},   # contradictory
        {"predicate": lambda r: r["n"] % 2 == 0},
        {"category": "tcp.recv", "predicate": lambda r: r["n"] > 100},
        {"prefix": "h2.", "predicate": lambda r: r.time < 5.0},
    ]
    for kwargs in cases:
        assert log.select(**kwargs) == _reference_select(log, **kwargs), kwargs


def test_indexed_select_preserves_record_order():
    log = _populated_log()
    for kwargs in ({"prefix": "tcp."}, {"category": "h2.reset"}, {}):
        times = [record.time for record in log.select(**kwargs)]
        assert times == sorted(times)


def test_indexed_count_matches_select_length():
    log = _populated_log()
    cases = [
        {},
        {"category": "tcp.send"},
        {"category": "missing"},
        {"prefix": "tcp."},
        {"prefix": "tcp"},
        {"category": "h2.frame", "prefix": "tcp."},
    ]
    for kwargs in cases:
        assert log.count(**kwargs) == len(_reference_select(log, **kwargs)), kwargs


def test_index_survives_clear_and_reuse():
    log = _populated_log()
    log.clear()
    assert log.count() == 0
    assert log.categories() == {}
    assert log.select(prefix="tcp.") == []
    log.record(1.0, "tcp.send", n=1)
    assert log.count(category="tcp.send") == 1
    assert log.categories() == {"tcp.send": 1}


def test_disabled_log_keeps_index_empty():
    log = TraceLog(enabled=False)
    log.record(1.0, "tcp.send", n=1)
    assert log.count() == 0
    assert log.count(category="tcp.send") == 0
    assert log.select(category="tcp.send") == []
    assert log.categories() == {}


def test_select_returns_copy_not_internal_storage():
    log = _populated_log()
    everything = log.select()
    everything.append("sentinel")
    assert log.count() == 200
