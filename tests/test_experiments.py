"""Smoke tests for the experiment modules (small trial counts)."""

import pytest

from repro.experiments import ablations, baseline, delay_ablation, fig1
from repro.experiments.report import format_table, percentage


def test_format_table_alignment():
    text = format_table(["col", "x"], [["a", "1"], ["bb", "22"]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "col" in lines[1]
    assert len(lines) == 5


def test_format_table_empty_rows():
    text = format_table(["a", "b"], [])
    assert "a" in text


def test_percentage_zero_denominator():
    assert percentage(1, 0) == 0.0
    assert percentage(1, 4) == 25.0


def test_fig1_sequential_identifies_both():
    result = fig1.run(seed=7)
    assert result.sequential.both_identified
    assert not result.pipelined.both_identified
    assert "Figure 1" in result.render()


@pytest.mark.slow
def test_baseline_experiment_small():
    result = baseline.run(trials=4, seed=7)
    assert result.trials == 4
    assert 0.0 <= result.html_mean_degree <= 1.0
    assert result.image_mean_degree > 0.5  # heavily multiplexed
    assert "baseline" in result.render()


@pytest.mark.slow
def test_delay_ablation_gaps_unchanged():
    result = delay_ablation.run(trials=3, seed=7, delays=(0.0, 0.1))
    rows = result.rows_data
    assert rows[0].mean_get_gap_ms == pytest.approx(
        rows[1].mean_get_gap_ms, rel=0.02
    )
    assert rows[0].not_multiplexed_pct == rows[1].not_multiplexed_pct


@pytest.mark.slow
def test_quirk_ablation_shapes():
    result = ablations.run_quirk(trials=4, seed=7)
    assert len(result.rows_data) == 2
    assert "duplicate" in result.render()


@pytest.mark.slow
def test_h1_baseline_ablation():
    result = ablations.run_h1_baseline(trials=2, seed=7)
    rows = {row[0]: row[1] for row in result.rows_data}
    h1_pct = float(rows["HTTP/1.1 (sequential)"].rstrip("%"))
    h2_pct = float(rows["HTTP/2 (multiplexed)"].rstrip("%"))
    assert h1_pct > h2_pct  # the paper's core premise
    assert h1_pct >= 75.0
