"""Property-based tests for the lazily-formatted trace log.

The optimized :class:`TraceLog` stores raw ``(time, category, fields)``
tuples and only materializes/renders records on demand, with a
per-category index answering exact-category queries.  These tests pit
that implementation against a straight-line eager reference on
randomized record streams: same rendered lines, same query results,
same counts.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simkernel.trace import TraceLog, TraceRecord, format_record

categories = st.sampled_from(
    ["tcp.retransmit", "tcp.send", "h2.rst_stream", "h2.headers", "link.send"]
)

field_values = st.one_of(
    st.integers(-1000, 1000),
    st.text(alphabet="abcxyz:/?=", max_size=8),
    st.booleans(),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
)

records_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        categories,
        st.dictionaries(
            st.sampled_from(["seq", "stream", "size", "flags", "why"]),
            field_values,
            max_size=4,
        ),
    ),
    max_size=60,
)


def _fill(rows):
    """Append ``rows`` to a fresh log and an eager reference."""
    log = TraceLog()
    eager_lines = []
    eager_records = []
    for time, category, fields in rows:
        log.record(time, category, **fields)
        # Eager reference: format and materialize at append time.
        eager_lines.append(format_record(time, category, fields))
        eager_records.append(TraceRecord(time, category, dict(fields)))
    return log, eager_lines, eager_records


@given(records_strategy)
@settings(max_examples=150)
def test_lazy_rendering_matches_eager_reference(rows):
    """render()/render_lines on the lazy log equal eager formatting."""
    log, eager_lines, _ = _fill(rows)
    assert [record.render() for record in log] == eager_lines
    assert log.render_lines() == eager_lines


@given(records_strategy, categories)
@settings(max_examples=150)
def test_category_index_agrees_with_linear_scan(rows, category):
    """Indexed select/count match a full scan with a predicate."""
    log, _, eager_records = _fill(rows)
    linear = [rec for rec in eager_records if rec.category == category]
    assert log.select(category=category) == linear
    assert log.count(category=category) == len(linear)

    prefix = category.split(".")[0] + "."
    linear_prefix = [
        rec for rec in eager_records if rec.category.startswith(prefix)
    ]
    assert log.select(prefix=prefix) == linear_prefix
    assert log.count(prefix=prefix) == len(linear_prefix)


@given(records_strategy)
@settings(max_examples=100)
def test_lazy_access_is_stable_and_order_preserving(rows):
    """Materialization caches per index and keeps append order."""
    log, _, eager_records = _fill(rows)
    assert len(log) == len(eager_records)
    assert list(log) == eager_records
    for index in range(len(log)):
        assert log[index] is log[index]  # cached, not re-materialized
        assert log[index] == eager_records[index]
    histogram = log.categories()
    assert sum(histogram.values()) == len(eager_records)
    for category, count in histogram.items():
        assert count == sum(1 for rec in eager_records if rec.category == category)
