"""E19 and the infer campaign: determinism, folding, resume, frontier.

The determinism matrix for the frontier, in miniature: serial vs
parallel workers, python vs fast backend, split-vs-whole summary folds,
and checkpoint resume must all produce bit-identical JSON.  Plus the
two acceptance-criterion shapes: undefended, a statistical classifier
beats the exact-match baseline; and the defense ladder's byte overhead
is monotone in the actual study output.
"""

import json
import os
import pickle

import pytest

from repro.experiments import infer_study
from repro.infer.campaign import (
    InferCampaignConfig,
    InferCampaignError,
    InferShardTask,
    checkpoint_path,
    run_infer_campaign,
)
from repro.infer.dataset import StudyDesign, evaluate_session
from repro.infer.summary import InferSummary

SMALL = StudyDesign(seed=2020, reps=2, max_objects=4)


def _study(trials=3, workers=None, design=SMALL):
    return infer_study.run(trials=trials, workers=workers, design=design)


# -- determinism ---------------------------------------------------------

def test_serial_and_parallel_runs_are_bit_identical():
    serial = _study(workers=1)
    parallel = _study(workers=4)
    assert serial.summary.to_json() == parallel.summary.to_json()
    assert serial.render() == parallel.render()
    assert serial.summary.digest() == parallel.summary.digest()


def test_fast_backend_is_bit_identical(monkeypatch):
    from repro.fastpath import BACKEND_ENV

    monkeypatch.delenv(BACKEND_ENV, raising=False)
    python_run = _study()
    monkeypatch.setenv(BACKEND_ENV, "fast")
    fast_run = _study()
    assert fast_run.summary.to_json() == python_run.summary.to_json()
    assert fast_run.render() == python_run.render()


def test_sessions_are_independent_of_sweep_slicing():
    # Evaluating a session alone equals evaluating it inside a sweep:
    # every observation draws from its own named counter stream.
    alone = evaluate_session(2, SMALL)
    again = evaluate_session(2, SMALL)
    assert alone == again
    json.dumps(alone)  # plain-JSON result (checkpointable)


# -- summary folding -----------------------------------------------------

def test_fold_matches_merge_of_halves():
    results = [evaluate_session(session, SMALL) for session in range(4)]
    whole = InferSummary(SMALL.levels, SMALL.classifiers)
    whole.fold_all(results)
    left = InferSummary(SMALL.levels, SMALL.classifiers)
    right = InferSummary(SMALL.levels, SMALL.classifiers)
    left.fold_all(results[:2])
    right.fold_all(results[2:])
    left.merge(right)
    assert left.to_json() == whole.to_json()
    assert left.digest() == whole.digest()


def test_summary_json_roundtrip():
    summary = _study().summary
    clone = InferSummary.from_json(summary.to_json())
    assert clone.to_json() == summary.to_json()
    assert clone.digest() == summary.digest()


def test_merge_rejects_mismatched_axes():
    one = InferSummary(("off",), ("exact",))
    other = InferSummary(("off", "pad256"), ("exact",))
    with pytest.raises(ValueError):
        one.merge(other)


# -- acceptance shapes ---------------------------------------------------

def test_statistical_beats_exact_baseline_undefended():
    result = infer_study.run(trials=4, workers=1)
    off = result.design.levels[0]
    exact = result.accuracy_permille(off, "exact")
    best = max(
        result.accuracy_permille(off, name)
        for name in result.design.classifiers if name != "exact"
    )
    assert best > exact


def test_byte_overhead_is_monotone_across_the_ladder():
    result = _study()
    overheads = [result.byte_overhead_permille(name)
                 for name in result.design.levels]
    assert overheads == sorted(overheads)
    assert overheads[0] == 0  # "off" costs nothing


def test_render_mentions_the_frontier_and_footer():
    rendered = _study().render()
    assert "E19 / infer" in rendered
    assert "exact-match baseline" in rendered
    for name in SMALL.levels:
        assert name in rendered


# -- the campaign mode ---------------------------------------------------

CAMPAIGN = InferCampaignConfig(
    sessions=5, shard_size=2, reps=2, max_objects=4
)


def test_shard_task_is_picklable_and_pure():
    task = InferShardTask(CAMPAIGN)
    clone = pickle.loads(pickle.dumps(task))
    assert clone(1) == task(1)


def test_campaign_matches_study_on_same_sessions():
    campaign = run_infer_campaign(CAMPAIGN, workers=1)
    study = infer_study.run(
        trials=CAMPAIGN.sessions, workers=1, design=CAMPAIGN.design()
    )
    assert campaign.summary.to_json() == study.summary.to_json()


def test_campaign_is_shard_size_invariant():
    by_two = run_infer_campaign(CAMPAIGN, workers=2)
    import dataclasses

    by_five = run_infer_campaign(
        dataclasses.replace(CAMPAIGN, shard_size=5), workers=1
    )
    assert by_two.summary.to_json() == by_five.summary.to_json()


def test_campaign_checkpoint_resume_is_bit_identical(tmp_path):
    fresh = run_infer_campaign(CAMPAIGN, workers=1)
    first = run_infer_campaign(
        CAMPAIGN, workers=1, checkpoint_dir=str(tmp_path)
    )
    path = checkpoint_path(CAMPAIGN, str(tmp_path))
    assert os.path.exists(path)
    resumed = run_infer_campaign(
        CAMPAIGN, workers=1, checkpoint_dir=str(tmp_path)
    )
    assert resumed.resumed_shards == CAMPAIGN.shard_count
    assert first.to_json() == fresh.to_json()
    assert resumed.to_json() == fresh.to_json()
    # Resume history stays off the rendered frontier (stdout contract).
    assert resumed.render() == fresh.render()


def test_campaign_failure_raises_with_shard_names(tmp_path):
    class Boom(InferShardTask):
        def __call__(self, shard):
            raise RuntimeError("shard exploded")

    from repro.experiments.executor import FaultTolerance, TrialExecutor

    executor = TrialExecutor(workers=1)
    outcomes = executor.map_trials(
        2, Boom(CAMPAIGN),
        fault_tolerance=FaultTolerance(retries=0),
    )
    from repro.experiments.executor import TrialError

    errors = [item for item in outcomes if isinstance(item, TrialError)]
    assert errors
    with pytest.raises(InferCampaignError, match="after retries"):
        raise InferCampaignError(errors)


def test_campaign_config_digest_tracks_parameters():
    import dataclasses

    assert CAMPAIGN.digest() != dataclasses.replace(
        CAMPAIGN, seed=CAMPAIGN.seed + 1
    ).digest()
    assert len(CAMPAIGN.digest()) == 12
