"""End-to-end HTTP/2 flow-control and settings behaviour."""

import pytest

from repro.core.metrics import MultiplexingReport
from repro.h2.client import H2Client
from repro.h2.server import H2Server, ResourceSpec, ServerConfig
from repro.h2.settings import H2Settings
from repro.infer.features import observed_record_lengths
from repro.netsim.capture import Direction
from repro.netsim.link import LinkConfig
from repro.netsim.topology import build_adversary_path
from repro.tls.cipher import AES_128_GCM_TLS13
from repro.tls.session import TLSRole, TLSSession

RESOURCES = {
    "/big.bin": ResourceSpec("/big.bin", 500_000, "application/octet-stream"),
    "/small.bin": ResourceSpec("/small.bin", 6_000, "application/octet-stream"),
}


def _stack(client_settings=None, seed=51):
    topology = build_adversary_path(seed=seed)
    server = H2Server(
        topology.sim, topology.server, 443,
        lambda path: RESOURCES.get(path), trace=topology.trace,
    )
    client = H2Client(
        topology.sim, topology.client, topology.server.endpoint(443),
        settings=client_settings, trace=topology.trace,
    )
    return topology, server, client


def test_small_stream_window_still_completes():
    """A 64 KiB per-stream window forces WINDOW_UPDATE round trips but
    the transfer still finishes."""
    settings = H2Settings(initial_window_size=65_535)
    topology, server, client = _stack(settings)
    done = []
    def go():
        handle = client.get("/big.bin")
        handle.on_complete = done.append
    client.on_ready = go
    client.connect()
    topology.sim.run_until(30.0)
    assert done and done[0].received_bytes == 500_000
    updates = [
        record for record in topology.trace.select(category="h2.frame.sent")
        if record["frame_type"] == "WINDOWUPDATE"
    ]
    # The client had to replenish repeatedly for a 500 KB body.
    assert len(updates) > 5


def test_peer_window_gates_the_pump():
    """The server never overruns the client's advertised stream window."""
    settings = H2Settings(initial_window_size=65_535)
    topology, server, client = _stack(settings)
    client.on_ready = lambda: client.get("/big.bin")
    client.connect()
    sim = topology.sim
    max_unacked_payload = 0
    while sim.now < 30.0:
        sim.run_until(sim.now + 0.05)
        if server.connections:
            stream = server.connections[0].h2.streams.get(1)
            if stream is not None:
                # send_window never goes negative.
                assert stream.send_window.available >= 0
        handles = list(client.handles.values())
        if handles and handles[0].complete:
            break
    assert client.handles[1].complete


def test_settings_ack_exchanged():
    topology, server, client = _stack()
    client.on_ready = lambda: None
    client.connect()
    topology.sim.run_until(2.0)
    acks = [
        record for record in topology.trace.select(category="h2.frame.sent")
        if record["frame_type"] == "SETTINGS"
    ]
    # Client SETTINGS, server SETTINGS, and both ACKs.
    assert len(acks) == 4


def test_tls13_cipher_changes_wire_sizes():
    """TLS 1.3's smaller per-record overhead shrinks the wire image."""
    topology = build_adversary_path(seed=52)
    sizes = {}
    from repro.tcp.connection import TCPConnection
    from repro.tcp.listener import TCPListener

    for cipher_name, cipher in (("tls12", None), ("tls13", AES_128_GCM_TLS13)):
        topo = build_adversary_path(seed=52)
        TCPListener(
            topo.sim, topo.server, 443,
            lambda conn: TLSSession(conn, TLSRole.SERVER),
        )
        tcp = TCPConnection(topo.sim, topo.client, 50_000,
                            topo.server.endpoint(443))
        kwargs = {"cipher": cipher} if cipher else {}
        session = TLSSession(tcp, TLSRole.CLIENT, **kwargs)
        tcp.connect()
        topo.sim.run_until(1.0)
        assert session.handshake_complete
        records = session.send_application(object(), 10_000)
        sizes[cipher_name] = sum(record.wire_length for record in records)
    assert sizes["tls13"] < sizes["tls12"]


def _lossless_stack(config=None, seed=61):
    """Client—gateway—server with no ambient loss: every TLS record
    transits the middlebox exactly once, so observed record counts are
    exact."""
    topology = build_adversary_path(
        seed=seed, server_link_config=LinkConfig(propagation_delay=0.015),
    )
    server = H2Server(
        topology.sim, topology.server, 443,
        lambda path: RESOURCES.get(path), config=config,
        trace=topology.trace,
    )
    client = H2Client(
        topology.sim, topology.client, topology.server.endpoint(443),
        trace=topology.trace,
    )
    return topology, server, client


def _fetch_big(topology, client):
    done = []
    def go():
        handle = client.get("/big.bin")
        handle.on_complete = done.append
    client.on_ready = go
    client.connect()
    topology.sim.run_until(60.0)
    assert done and done[0].received_bytes == 500_000
    return observed_record_lengths(
        topology.middlebox.capture, Direction.SERVER_TO_CLIENT,
    )


def test_middlebox_observes_response_framing():
    """The gateway reads each response record's length from its
    cleartext header: /big.bin's 500 KB in 2048-byte DATA chunks is 244
    full records of 2086 wire bytes plus the 288-byte tail."""
    topology, server, client = _lossless_stack()
    lengths = _fetch_big(topology, client)
    assert lengths.count(2048 + 9 + 29) == 244
    assert lengths.count(288 + 9 + 29) == 1
    # The HEADERS record precedes the first DATA record on the wire.
    first_data = lengths.index(2086)
    assert any(100 < wire < 400 for wire in lengths[:first_data])


def test_middlebox_observes_padded_record_lengths():
    """With the padding defense on, every observed application record
    sits exactly on a block boundary and the transfer still completes
    with identical plaintext."""
    topology, server, client = _lossless_stack(ServerConfig(pad_block=256))
    padded = _fetch_big(topology, client)
    # Wire length = padded plaintext + constant AEAD/record overhead.
    assert all((wire - 29) % 256 == 0 for wire in padded)
    baseline_topology, _, baseline_client = _lossless_stack()
    plain = _fetch_big(baseline_topology, baseline_client)
    assert len(padded) == len(plain)  # padding never splits records
    assert sum(padded) >= sum(plain)  # and never shrinks the load
    assert all(p >= q for p, q in zip(sorted(padded), sorted(plain)))


def test_concurrent_transfers_share_connection_window():
    topology, server, client = _stack()
    def go():
        client.get("/big.bin")
        client.get("/small.bin")
    client.on_ready = go
    client.connect()
    topology.sim.run_until(30.0)
    assert all(handle.complete for handle in client.handles.values())
    report = MultiplexingReport.from_layout(server.connections[0].tcp.layout)
    # The small object finished long before the big one; its data was
    # interleaved within the big transfer.
    degrees = {
        instance.object_id: degree
        for instance, degree in report.degrees.items()
    }
    assert degrees["/small.bin"] == 1.0
