"""Unit tests for the HPACK size model."""

import pytest

from repro.hpack.codec import HpackDecoder, HpackEncoder, prefix_integer_length
from repro.hpack.huffman import huffman_encoded_length, string_literal_length
from repro.hpack.table import DynamicTable, HeaderField, STATIC_TABLE


# -- prefix integers --------------------------------------------------------

def test_prefix_integer_fits_prefix():
    assert prefix_integer_length(10, 5) == 1


def test_prefix_integer_boundary():
    # 2^5 - 1 = 31 does not fit a 5-bit prefix.
    assert prefix_integer_length(30, 5) == 1
    assert prefix_integer_length(31, 5) == 2


def test_prefix_integer_multibyte():
    # RFC 7541 C.1.2: 1337 with a 5-bit prefix takes 3 octets.
    assert prefix_integer_length(1337, 5) == 3


def test_prefix_integer_validation():
    with pytest.raises(ValueError):
        prefix_integer_length(-1, 5)
    with pytest.raises(ValueError):
        prefix_integer_length(1, 9)


# -- Huffman ---------------------------------------------------------------

def test_huffman_known_example():
    # RFC 7541 C.4.1: "www.example.com" Huffman-codes to 12 octets.
    assert huffman_encoded_length("www.example.com") == 12


def test_huffman_digits_efficient():
    # Digits are 5-6 bit codes: 8 digits fit 6 octets or fewer.
    assert huffman_encoded_length("20201103") <= 6


def test_string_literal_picks_shorter_encoding():
    # A string of rare characters is longer Huffman-coded; the literal
    # length must never exceed raw length + prefix.
    text = "~~~~~~~~"
    assert string_literal_length(text) <= 1 + len(text)


# -- static table -------------------------------------------------------------

def test_static_table_size():
    assert len(STATIC_TABLE) == 61


def test_static_table_well_known_entries():
    assert STATIC_TABLE[1] == HeaderField(":method", "GET")
    assert STATIC_TABLE[7] == HeaderField(":status", "200")
    assert STATIC_TABLE[57] == HeaderField("user-agent")


# -- dynamic table --------------------------------------------------------------

def test_dynamic_table_entry_size_accounting():
    table = DynamicTable(max_size=4096)
    field = HeaderField("x-a", "b")
    table.insert(field)
    assert table.size == field.table_size == 3 + 1 + 32


def test_dynamic_table_eviction_fifo():
    table = DynamicTable(max_size=80)
    table.insert(HeaderField("a", "1"))  # 34
    table.insert(HeaderField("b", "2"))  # 34 → 68
    table.insert(HeaderField("c", "3"))  # would be 102 → evict oldest
    assert len(table) == 2
    full, _ = table.lookup(HeaderField("a", "1"))
    assert full is None  # evicted


def test_dynamic_table_oversized_entry_clears():
    table = DynamicTable(max_size=40)
    table.insert(HeaderField("a", "1"))
    table.insert(HeaderField("x" * 100, "y"))
    assert len(table) == 0


def test_dynamic_table_resize_evicts():
    table = DynamicTable(max_size=200)
    for index in range(4):
        table.insert(HeaderField(f"h{index}", "v"))
    table.resize(70)
    assert table.size <= 70


def test_lookup_full_and_name_match():
    table = DynamicTable()
    full, name = table.lookup(HeaderField(":method", "GET"))
    assert full == 2
    full, name = table.lookup(HeaderField(":method", "DELETE"))
    assert full is None and name == 2


def test_entry_at_dynamic_index():
    table = DynamicTable()
    table.insert(HeaderField("x-new", "v"))
    assert table.entry_at(62) == HeaderField("x-new", "v")
    with pytest.raises(IndexError):
        table.entry_at(63)
    with pytest.raises(IndexError):
        table.entry_at(0)


# -- encoder/decoder round trip ----------------------------------------------------

REQUEST_HEADERS = [
    (":method", "GET"),
    (":scheme", "https"),
    (":authority", "www.isidewith.com"),
    (":path", "/polls/2020"),
    ("user-agent", "Mozilla/5.0 Firefox/74.0"),
    ("accept", "*/*"),
]


def test_roundtrip_decodes_same_headers():
    encoder, decoder = HpackEncoder(), HpackDecoder()
    block = encoder.encode(REQUEST_HEADERS)
    assert decoder.decode(block) == REQUEST_HEADERS


def test_second_request_much_smaller():
    encoder = HpackEncoder()
    first = encoder.encode(REQUEST_HEADERS)
    second = encoder.encode(REQUEST_HEADERS)
    assert second.encoded_length < first.encoded_length / 3
    # Fully indexed: one octet per header.
    assert second.encoded_length == len(REQUEST_HEADERS)


def test_decoder_tracks_dynamic_table():
    encoder, decoder = HpackEncoder(), HpackDecoder()
    decoder.decode(encoder.encode(REQUEST_HEADERS))
    decoder.decode(encoder.encode(REQUEST_HEADERS))
    assert decoder.table.size == encoder.table.size


def test_desync_detected():
    encoder, decoder = HpackEncoder(), HpackDecoder()
    encoder.encode(REQUEST_HEADERS)          # block lost on the way
    second = encoder.encode(REQUEST_HEADERS)  # fully dynamic-indexed
    # Decoder missed the first block → dynamic references dangle.
    with pytest.raises(IndexError):
        decoder.decode(second)


def test_indexed_static_header_is_one_octet():
    encoder = HpackEncoder()
    block = encoder.encode([(":method", "GET")])
    assert block.encoded_length == 1


def test_path_change_costs_literal_only():
    encoder = HpackEncoder()
    encoder.encode(REQUEST_HEADERS)
    block = encoder.encode(
        [(":method", "GET"), (":path", "/img/parties/green.png")]
    )
    # method indexed (1) + path: name idx + value literal.
    assert 2 < block.encoded_length < 30


def test_realistic_get_request_block_sizes():
    """The GET-detection threshold (44 B TCP payload) relies on repeat
    requests staying above ~46 B of record payload: 9 B frame header +
    block ≥ 8; and control records staying below."""
    encoder = HpackEncoder()
    first = encoder.encode(REQUEST_HEADERS)
    assert first.encoded_length > 40  # cold table: literal-heavy
    repeat = encoder.encode(REQUEST_HEADERS)
    assert repeat.encoded_length >= 6
