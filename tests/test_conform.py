"""Unit tests for the ``repro verify`` conformance subsystem."""

import json
import os
from pathlib import Path

import pytest

from repro.conform import frames as conform_frames
from repro.conform import golden, matrix, vectors
from repro.conform.report import Section, VerifyReport
from repro.experiments import executor
from repro.experiments.executor import (
    CAPTURE_ENV,
    CHECKPOINT_DIR_ENV,
    Checkpoint,
    auto_fault_tolerance,
    capture_stdout,
    reset_auto_checkpoint_calls,
)


# --------------------------------------------------------------- report

def test_report_verdict_and_exit_codes():
    report = VerifyReport()
    section = Section("Layer")
    section.add("alpha", True, "ok")
    section.add("beta", False, "expected 3, got 4")
    report.sections.append(section)
    assert not report.passed
    assert report.exit_code == 1
    assert [check.name for check in report.failures()] == ["beta"]
    rendered = report.render()
    assert "VERDICT: FAIL — 1 check(s): beta" in rendered
    assert "[FAIL] beta" in rendered
    assert "expected 3, got 4" in rendered


def test_report_all_pass():
    report = VerifyReport()
    section = Section("Layer")
    section.add("alpha", True)
    report.sections.append(section)
    assert report.passed and report.exit_code == 0
    assert "VERDICT: PASS — all 1 checks" in report.render()


# -------------------------------------------------- conformance layers

def test_rfc7541_vectors_all_pass():
    section = vectors.run_checks()
    failed = [check for check in section.checks if not check.passed]
    assert failed == [], "\n" + section.render()


def test_frame_round_trip_checks_pass():
    section = conform_frames.run_checks(examples=25)
    failed = [check for check in section.checks if not check.passed]
    assert failed == [], "\n" + section.render()


# ------------------------------------------------------- golden layer

def test_select_experiments_unknown_name_raises():
    with pytest.raises(ValueError, match="nosuch"):
        golden.select_experiments(only=["fig1", "nosuch"])


def test_select_experiments_profiles():
    assert golden.select_experiments(quick=True) == list(golden.QUICK_SUBSET)
    assert golden.select_experiments() == list(golden.EXPERIMENTS)
    assert golden.select_experiments(only=["table1"]) == ["table1"]


@pytest.mark.parametrize("backend", ["python", "fast"])
def test_golden_fig1_matches_checked_in(monkeypatch, backend):
    # Both backends must reproduce the checked-in capture: the fast
    # backend's event-run batching is exactness-preserving, so golden
    # masters are backend-invariant.
    monkeypatch.setenv("REPRO_BACKEND", backend)
    captures, section = golden.run_checks(["fig1"])
    assert section.passed, "\n" + section.render()
    assert golden.digest(captures["fig1"]) == \
        golden.load_golden()["fig1"]["sha256"]


@pytest.mark.parametrize("backend", ["python", "fast"])
def test_golden_table1_matches_checked_in(monkeypatch, backend):
    monkeypatch.setenv("REPRO_BACKEND", backend)
    captures, section = golden.run_checks(["table1"])
    assert section.passed, "\n" + section.render()
    assert golden.digest(captures["table1"]) == \
        golden.load_golden()["table1"]["sha256"]


@pytest.mark.parametrize("backend", ["python", "fast"])
def test_golden_infer_study_matches_checked_in(monkeypatch, backend):
    # The E19 frontier is integer end to end: both backends (scalar
    # feature loop vs numpy batch kernel) reproduce the sealed bytes.
    monkeypatch.setenv("REPRO_BACKEND", backend)
    captures, section = golden.run_checks(["infer-study"])
    assert section.passed, "\n" + section.render()
    assert golden.digest(captures["infer-study"]) == \
        golden.load_golden()["infer-study"]["sha256"]


def test_infer_study_perturbation_fails_naming_experiment(monkeypatch):
    monkeypatch.setenv(golden.PERTURB_ENV, "infer-study")
    _, section = golden.run_checks(["infer-study"])
    assert not section.passed
    (failure,) = [check for check in section.checks if not check.passed]
    assert failure.name == "golden:infer-study"
    assert "drifted" in failure.detail


def test_single_byte_perturbation_fails_naming_experiment(monkeypatch):
    # The acceptance criterion: flip one byte of one experiment's
    # output (via the env-flag hook) and verify must fail with that
    # experiment named.
    monkeypatch.setenv(golden.PERTURB_ENV, "fig1")
    _, section = golden.run_checks(["fig1"])
    assert not section.passed
    (failure,) = [check for check in section.checks if not check.passed]
    assert failure.name == "golden:fig1"
    assert "drifted" in failure.detail
    assert "+++ current/fig1" in failure.detail  # the diff is shown


def test_update_golden_roundtrip(tmp_path, monkeypatch):
    monkeypatch.setattr(golden, "GOLDEN_PATH", tmp_path / "golden.json")
    assert golden.load_golden() == {}
    captures, section = golden.run_checks(["fig1"], update=True)
    assert section.passed
    assert "recorded" in section.checks[0].detail
    entry = golden.load_golden()["fig1"]
    assert entry["sha256"] == golden.digest(captures["fig1"])
    assert entry["argv"] == golden.EXPERIMENTS["fig1"]
    # A fresh comparison run against the file just written passes.
    _, section = golden.run_checks(["fig1"])
    assert section.passed, "\n" + section.render()
    # Updating again reports "unchanged" and keeps the digest.
    _, section = golden.run_checks(["fig1"], update=True)
    assert "unchanged" in section.checks[0].detail


def test_missing_golden_entry_fails_with_instructions(tmp_path, monkeypatch):
    monkeypatch.setattr(golden, "GOLDEN_PATH", tmp_path / "none.json")
    _, section = golden.run_checks(["fig1"])
    (failure,) = section.checks
    assert not failure.passed
    assert "--update-golden" in failure.detail


# ------------------------------------------------------- matrix layer

def test_first_divergence_pinpoints_line():
    detail = matrix._first_divergence("a\nb\nc", "a\nX\nc")
    assert detail == "first divergence at line 2: 'b' != 'X'"
    detail = matrix._first_divergence("a\nb", "a\nb\nc")
    assert "line counts differ: 2 (serial) vs 3" in detail


def test_truncate_checkpoint_keeps_first_half(tmp_path):
    from repro.experiments.executor import Checkpoint

    path = tmp_path / "ck.json"
    checkpoint = Checkpoint(str(path))
    for index in range(6):
        checkpoint.record(index, index * 10)
    checkpoint.flush()
    kept = matrix._truncate_checkpoint(path)
    assert kept == 3
    payload = json.loads(path.read_text())
    assert payload["results"] == {"0": 0, "1": 10, "2": 20}
    # The truncated file is re-sealed: a resume trusts it, no quarantine.
    reloaded = Checkpoint(str(path))
    assert len(reloaded) == 3
    assert reloaded.quarantined is None
    assert matrix._truncate_checkpoint(tmp_path / "missing.json") == 0


def test_matrix_quick_runs_single_cell():
    name, _ = matrix.QUICK_CELL
    captures, _ = golden.run_checks([name])
    section = matrix.run_checks([name], captures, quick=True)
    assert [check.name for check in section.checks] == \
        [f"matrix:{name}:workers-4"]
    assert section.passed, "\n" + section.render()


@pytest.mark.slow
def test_matrix_kill_resume_cell():
    captures, _ = golden.run_checks(["table1"])
    section = Section("matrix")
    matrix._resume_cell(section, "table1", captures["table1"])
    (check,) = section.checks
    assert check.passed, check.detail
    assert "resumed from" in check.detail


# ------------------------------------------------------ executor hooks

def test_capture_stdout_captures_and_restores(capsys):
    previous_env = os.environ.get(CAPTURE_ENV)
    with capture_stdout() as buffer:
        print("inside")
        assert os.environ.get(CAPTURE_ENV) == "1"
    print("outside")
    assert buffer.getvalue() == "inside\n"
    assert capsys.readouterr().out == "outside\n"
    assert os.environ.get(CAPTURE_ENV) == previous_env


def test_auto_fault_tolerance_disabled_without_env(monkeypatch):
    monkeypatch.delenv(CHECKPOINT_DIR_ENV, raising=False)
    assert auto_fault_tolerance(len, [0, 1]) is None


def test_auto_fault_tolerance_stable_filenames(tmp_path, monkeypatch):
    monkeypatch.setenv(CHECKPOINT_DIR_ENV, str(tmp_path))
    reset_auto_checkpoint_calls()
    first = auto_fault_tolerance(len, [0, 1])
    second = auto_fault_tolerance(len, [0, 1])
    assert first is not None and second is not None
    assert first.retries == 0
    assert Path(first.checkpoint_path).parent == tmp_path
    assert Path(first.checkpoint_path).name.startswith("call000-")
    # Same call sequence + same task ⇒ the resumed run finds the same
    # files; the call counter distinguishes repeated identical calls.
    assert second.checkpoint_path != first.checkpoint_path
    reset_auto_checkpoint_calls()
    replay = auto_fault_tolerance(len, [0, 1])
    assert replay.checkpoint_path == first.checkpoint_path
    different = auto_fault_tolerance(len, [0, 1, 2])
    assert Path(different.checkpoint_path).name.startswith("call001-")
    assert different.checkpoint_path != second.checkpoint_path


def test_checkpoint_round_trips_non_json_results(tmp_path):
    path = str(tmp_path / "ck.json")
    checkpoint = Checkpoint(path)
    checkpoint.record(0, {"plain": "json"})
    checkpoint.record(1, {1, 2, 3})  # not JSON-serializable → pickled
    reloaded = Checkpoint(path)
    assert reloaded.results == {0: {"plain": "json"}, 1: {1, 2, 3}}
    # The on-disk form of the pickled entry is the wrapper dict.
    payload = json.loads(Path(path).read_text())
    assert set(payload["results"]["1"]) == {"__pickled__"}


def test_map_trials_auto_checkpoints_when_env_set(tmp_path, monkeypatch):
    monkeypatch.setenv(CHECKPOINT_DIR_ENV, str(tmp_path))
    reset_auto_checkpoint_calls()
    results = executor.map_trials(4, _square, workers=1)
    assert results == [0, 1, 4, 9]
    files = list(tmp_path.glob("call*.json"))
    assert len(files) == 1
    payload = json.loads(files[0].read_text())
    assert payload["results"] == {"0": 0, "1": 1, "2": 4, "3": 9}


def _square(index):
    return index * index
