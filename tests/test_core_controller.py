"""Unit tests for the adversary's network controller and filters."""

import pytest

from repro.core.controller import (
    GetCounter,
    NetworkController,
    RandomJitterFilter,
    SpacingFilter,
    TargetedDropFilter,
    UniformDelayFilter,
    is_get_like,
)
from repro.netsim.address import Endpoint
from repro.netsim.capture import Direction
from repro.netsim.middlebox import PacketAction
from repro.netsim.packet import Packet
from repro.netsim.topology import build_adversary_path
from repro.simkernel.randomstream import RandomStreams
from repro.tcp.segment import ACK, TCPSegment
from repro.tcp.stream import StreamLayout
from repro.tls.record import APPLICATION_DATA, HANDSHAKE, TLSRecord


def _app_packet(payload=150, content_type=APPLICATION_DATA, seq=0):
    """A packet carrying one TLS record of the given type."""
    record = TLSRecord(content_type, max(payload - 29, 1))
    layout = StreamLayout()

    class _Msg:
        wire_length = payload

    layout.append(_Msg())
    segment = TCPSegment(
        seq=seq, ack=0, flags=frozenset({ACK}), payload_bytes=payload,
        layout=layout, tls_records=(record,),
    )
    return Packet(Endpoint("client", 1), Endpoint("server", 443), segment)


def _ack_packet():
    segment = TCPSegment(seq=0, ack=10, flags=frozenset({ACK}))
    return Packet(Endpoint("client", 1), Endpoint("server", 443), segment)


C2S = Direction.CLIENT_TO_SERVER
S2C = Direction.SERVER_TO_CLIENT


# -- is_get_like ---------------------------------------------------------------

def test_get_like_requires_app_record_and_size():
    assert is_get_like(_app_packet(150))
    assert not is_get_like(_app_packet(40))  # too small
    assert not is_get_like(_app_packet(150, content_type=HANDSHAKE))
    assert not is_get_like(_ack_packet())


# -- UniformDelayFilter ---------------------------------------------------------

def test_uniform_delay_applies_constant():
    filt = UniformDelayFilter(0.05, C2S)
    verdict = filt.classify(_app_packet(), C2S, now=1.0)
    assert verdict.action is PacketAction.DELAY
    assert verdict.delay == 0.05


def test_uniform_delay_other_direction_forwards():
    filt = UniformDelayFilter(0.05, C2S)
    assert filt.classify(_app_packet(), S2C, 1.0).action is PacketAction.FORWARD


def test_uniform_delay_disabled():
    filt = UniformDelayFilter(0.05)
    filt.enabled = False
    assert filt.classify(_app_packet(), C2S, 1.0).action is PacketAction.FORWARD


# -- SpacingFilter -------------------------------------------------------------

def test_spacing_first_get_passes():
    filt = SpacingFilter(0.05, noise_fraction=0.0)
    verdict = filt.classify(_app_packet(), C2S, now=1.0)
    assert verdict.action is PacketAction.FORWARD


def test_spacing_enforces_min_interval():
    filt = SpacingFilter(0.05, noise_fraction=0.0)
    filt.classify(_app_packet(), C2S, now=1.000)
    verdict = filt.classify(_app_packet(), C2S, now=1.001)
    assert verdict.action is PacketAction.DELAY
    assert verdict.delay == pytest.approx(0.049)


def test_spacing_accumulates_over_burst():
    filt = SpacingFilter(0.05, noise_fraction=0.0)
    filt.classify(_app_packet(), C2S, now=1.000)
    filt.classify(_app_packet(), C2S, now=1.001)
    verdict = filt.classify(_app_packet(), C2S, now=1.002)
    assert verdict.delay == pytest.approx(0.098)


def test_spacing_naturally_spaced_untouched():
    filt = SpacingFilter(0.05, noise_fraction=0.0)
    filt.classify(_app_packet(), C2S, now=1.0)
    verdict = filt.classify(_app_packet(), C2S, now=2.0)
    assert verdict.action is PacketAction.FORWARD


def test_spacing_ignores_acks_and_s2c():
    filt = SpacingFilter(0.05, noise_fraction=0.0)
    assert filt.classify(_ack_packet(), C2S, 1.0).action is PacketAction.FORWARD
    assert filt.classify(_app_packet(), S2C, 1.0).action is PacketAction.FORWARD


def test_spacing_noise_adds_to_delay():
    rng = RandomStreams(1)
    filt = SpacingFilter(0.05, noise_fraction=1.0, rng=rng)
    filt.classify(_app_packet(), C2S, now=1.0)
    verdict = filt.classify(_app_packet(), C2S, now=1.0)
    assert 0.05 <= verdict.delay <= 0.10


def test_spacing_retune():
    filt = SpacingFilter(0.05, noise_fraction=0.0)
    filt.set_spacing(0.08)
    filt.classify(_app_packet(), C2S, now=1.0)
    verdict = filt.classify(_app_packet(), C2S, now=1.0)
    assert verdict.delay == pytest.approx(0.08)


def test_spacing_validation():
    with pytest.raises(ValueError):
        SpacingFilter(-0.1)
    with pytest.raises(ValueError):
        SpacingFilter(0.1, noise_fraction=-1)
    with pytest.raises(ValueError):
        SpacingFilter(0.1).set_spacing(-1)


# -- RandomJitterFilter ------------------------------------------------------------

def test_random_jitter_within_two_means():
    rng = RandomStreams(1)
    filt = RandomJitterFilter(0.05, rng)
    for _ in range(50):
        verdict = filt.classify(_app_packet(), C2S, 1.0)
        assert verdict.action is PacketAction.DELAY
        assert 0.0 <= verdict.delay <= 0.10


def test_random_jitter_zero_mean_forwards():
    filt = RandomJitterFilter(0.0, RandomStreams(1))
    assert filt.classify(_app_packet(), C2S, 1.0).action is PacketAction.FORWARD


def test_random_jitter_set_mean():
    filt = RandomJitterFilter(0.05, RandomStreams(1))
    filt.set_mean(0.0)
    assert filt.classify(_app_packet(), C2S, 1.0).action is PacketAction.FORWARD


# -- TargetedDropFilter --------------------------------------------------------------

def test_drop_filter_inactive_by_default():
    filt = TargetedDropFilter(1.0, RandomStreams(1))
    assert filt.classify(_app_packet(), S2C, 1.0).action is PacketAction.FORWARD


def test_drop_filter_drops_app_data_when_active():
    filt = TargetedDropFilter(1.0, RandomStreams(1))
    filt.activate(now=1.0, duration=5.0)
    assert filt.classify(_app_packet(), S2C, 2.0).action is PacketAction.DROP
    assert filt.dropped == 1


def test_drop_filter_spares_acks_and_handshake():
    filt = TargetedDropFilter(1.0, RandomStreams(1))
    filt.activate(now=0.0, duration=5.0)
    assert filt.classify(_ack_packet(), S2C, 1.0).action is PacketAction.FORWARD
    handshake = _app_packet(150, content_type=HANDSHAKE)
    assert filt.classify(handshake, S2C, 1.0).action is PacketAction.FORWARD


def test_drop_filter_expires():
    filt = TargetedDropFilter(1.0, RandomStreams(1))
    filt.activate(now=0.0, duration=1.0)
    assert filt.classify(_app_packet(), S2C, 2.0).action is PacketAction.FORWARD


def test_drop_filter_never_drops_c2s():
    filt = TargetedDropFilter(1.0, RandomStreams(1))
    filt.activate(now=0.0, duration=5.0)
    assert filt.classify(_app_packet(), C2S, 1.0).action is PacketAction.FORWARD


def test_drop_filter_rate_statistical():
    rng = RandomStreams(3)
    filt = TargetedDropFilter(0.5, rng)
    filt.activate(now=0.0, duration=100.0)
    drops = sum(
        1 for _ in range(400)
        if filt.classify(_app_packet(), S2C, 1.0).action is PacketAction.DROP
    )
    assert 140 < drops < 260


def test_drop_filter_validation():
    with pytest.raises(ValueError):
        TargetedDropFilter(1.5, RandomStreams(1))


# -- GetCounter ----------------------------------------------------------------------

def _feed_preface(counter):
    """The browser's opening flight: preface, SETTINGS, WINDOW_UPDATE."""
    counter.classify(_app_packet(53, seq=0), C2S, 0.0)
    counter.classify(_app_packet(50, seq=53), C2S, 0.0)
    counter.classify(_app_packet(42, seq=103), C2S, 0.0)


def test_get_counter_skips_preface_and_counts():
    counter = GetCounter()
    fired = []
    counter.at(2, lambda now: fired.append(now))
    _feed_preface(counter)
    assert counter.count == 0
    counter.classify(_app_packet(150, seq=145), C2S, 1.0)
    counter.classify(_app_packet(60, seq=295), C2S, 2.0)
    assert counter.count == 2
    assert fired == [2.0]


def test_get_counter_dedupes_retransmissions():
    counter = GetCounter()
    _feed_preface(counter)
    counter.classify(_app_packet(150, seq=145), C2S, 1.0)
    counter.classify(_app_packet(150, seq=145), C2S, 2.0)  # retransmit
    assert counter.count == 1


def test_get_counter_position_validation():
    with pytest.raises(ValueError):
        GetCounter().at(0, lambda now: None)


# -- NetworkController ------------------------------------------------------------------

def test_controller_installs_and_retunes_spacing():
    topology = build_adversary_path(seed=2)
    controller = NetworkController(
        topology.sim, topology.middlebox, RandomStreams(1)
    )
    first = controller.install_spacing(0.05)
    second = controller.install_spacing(0.08)
    assert first is second
    assert second.spacing == 0.08


def test_controller_drop_workflow():
    topology = build_adversary_path(seed=2)
    controller = NetworkController(
        topology.sim, topology.middlebox, RandomStreams(1)
    )
    with pytest.raises(RuntimeError):
        controller.start_drops(1.0)
    controller.install_drops(0.8)
    controller.start_drops(1.0)
    assert controller.drop_filter.active(topology.sim.now)


def test_controller_jitter_install_retune():
    topology = build_adversary_path(seed=2)
    controller = NetworkController(
        topology.sim, topology.middlebox, RandomStreams(1)
    )
    first = controller.install_jitter(0.05)
    second = controller.install_jitter(0.08)
    assert first is second
    assert second.mean_delay == 0.08
