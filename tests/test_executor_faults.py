"""Tests for the executor's fault tolerance.

Covers the indexed wrapping of worker exceptions (every failure names
its trial), the retry/timeout/crash-isolation semantics of supervised
dispatch, and checkpoint/resume.  All tasks are module-level dataclasses
so they pickle across the spawn boundary.
"""

import json
import os
import pickle
import signal
import time
from dataclasses import dataclass

import pytest

from repro.experiments.executor import (
    Checkpoint,
    FaultTolerance,
    TrialError,
    TrialExecutionError,
    TrialExecutor,
    map_trials,
)
from repro.simkernel.randomstream import RandomStreams


def _square(index):
    return index * index


def _seeded_draw(index):
    """A deterministic per-index result: what a seeded trial computes."""
    return RandomStreams(index).stream("task").random()


@dataclass(frozen=True)
class _Offset:
    base: int

    def __call__(self, index: int) -> int:
        return self.base + index


@dataclass(frozen=True)
class _FailOn:
    """Raises every time for one index."""

    bad: int

    def __call__(self, index: int) -> int:
        if index == self.bad:
            raise ValueError(f"boom at {index}")
        return index * index


@dataclass(frozen=True)
class _FailOnce:
    """Raises on the first attempt for one index (marker on disk)."""

    marker_dir: str
    bad: int

    def __call__(self, index: int) -> int:
        if index == self.bad:
            marker = os.path.join(self.marker_dir, f"failed-{index}")
            if not os.path.exists(marker):
                with open(marker, "w"):
                    pass
                raise ValueError("first attempt fails")
        return index * index


@dataclass(frozen=True)
class _CrashOnce:
    """SIGKILLs its own worker on the first attempt for one index.

    Only meaningful on the supervised process backend — a serial run
    would kill the test process.
    """

    marker_dir: str
    bad: int

    def __call__(self, index: int) -> float:
        if index == self.bad:
            marker = os.path.join(self.marker_dir, f"crashed-{index}")
            if not os.path.exists(marker):
                with open(marker, "w"):
                    pass
                os.kill(os.getpid(), signal.SIGKILL)
        return _seeded_draw(index)


@dataclass(frozen=True)
class _CrashAlways:
    bad: int

    def __call__(self, index: int) -> int:
        if index == self.bad:
            os.kill(os.getpid(), signal.SIGKILL)
        return index * index


@dataclass(frozen=True)
class _Hang:
    bad: int

    def __call__(self, index: int) -> int:
        if index == self.bad:
            time.sleep(60)
        return index * index


# ---------------------------------------------------------------------------
# Satellite: worker exceptions carry the failing trial index
# ---------------------------------------------------------------------------

def test_serial_exception_carries_trial_index():
    with pytest.raises(TrialExecutionError) as excinfo:
        map_trials(5, _FailOn(bad=3))
    assert excinfo.value.trial == 3
    assert "ValueError" in excinfo.value.details
    assert "trial 3" in str(excinfo.value)


def test_process_exception_carries_trial_index():
    executor = TrialExecutor(workers=2)
    with pytest.raises(TrialExecutionError) as excinfo:
        executor.map_trials(5, _FailOn(bad=3))
    assert excinfo.value.trial == 3
    assert "ValueError" in excinfo.value.details


def test_trial_execution_error_pickles():
    error = TrialExecutionError(7, "ValueError: boom")
    clone = pickle.loads(pickle.dumps(error))
    assert clone.trial == 7
    assert clone.details == "ValueError: boom"
    assert str(clone) == str(error)


# ---------------------------------------------------------------------------
# FaultTolerance policy
# ---------------------------------------------------------------------------

def test_fault_tolerance_validation():
    with pytest.raises(ValueError):
        FaultTolerance(timeout=0)
    with pytest.raises(ValueError):
        FaultTolerance(retries=-1)
    with pytest.raises(ValueError):
        FaultTolerance(checkpoint_every=0)


def test_trial_error_to_json():
    error = TrialError(trial=4, attempts=2, error="ValueError: x",
                       traceback="tb",
                       history=({"attempt": 1, "kind": "exception"},))
    assert error.to_json() == {
        "trial": 4, "attempts": 2, "error": "ValueError: x",
        "traceback": "tb", "kind": "exception",
        "history": [{"attempt": 1, "kind": "exception"}],
    }


def test_fault_tolerant_matches_plain_map():
    plain = map_trials(6, _square)
    tolerant = map_trials(6, _square, fault_tolerance=FaultTolerance())
    assert tolerant == plain


# ---------------------------------------------------------------------------
# Serial fallback: retries and error records, no preemption
# ---------------------------------------------------------------------------

def test_serial_retry_recovers_transient_failure(tmp_path):
    task = _FailOnce(marker_dir=str(tmp_path), bad=2)
    results = map_trials(4, task, fault_tolerance=FaultTolerance(retries=1))
    assert results == [0, 1, 4, 9]


def test_serial_exhausted_retries_yield_error_record(tmp_path):
    results = map_trials(
        4, _FailOn(bad=2), fault_tolerance=FaultTolerance(retries=1)
    )
    assert results[0] == 0 and results[1] == 1 and results[3] == 9
    error = results[2]
    assert isinstance(error, TrialError)
    assert error.trial == 2
    assert error.attempts == 2
    assert "ValueError" in error.error
    assert "boom at 2" in error.traceback


# ---------------------------------------------------------------------------
# Supervised dispatch: crash isolation, same-seed retry, timeout
# ---------------------------------------------------------------------------

def test_supervised_retry_reproduces_crashed_trial(tmp_path):
    """Property: a same-seed retry computes what the lost worker would
    have — the final results match an uncrashed run exactly."""
    task = _CrashOnce(marker_dir=str(tmp_path), bad=1)
    executor = TrialExecutor(workers=2)
    results = executor.map_trials(
        4, task, fault_tolerance=FaultTolerance(retries=1)
    )
    assert results == [_seeded_draw(index) for index in range(4)]
    assert os.path.exists(os.path.join(str(tmp_path), "crashed-1"))


def test_supervised_crash_without_budget_yields_error():
    executor = TrialExecutor(workers=2)
    results = executor.map_trials(
        [0, 1, 2], _CrashAlways(bad=1),
        fault_tolerance=FaultTolerance(retries=0),
    )
    assert results[0] == 0 and results[2] == 4
    error = results[1]
    assert isinstance(error, TrialError)
    assert error.trial == 1
    assert "crashed" in error.error
    assert "-9" in error.error  # SIGKILL exit code


def test_supervised_timeout_kills_hung_trial():
    executor = TrialExecutor(workers=2)
    start = time.monotonic()
    results = executor.map_trials(
        [0, 1], _Hang(bad=1),
        fault_tolerance=FaultTolerance(timeout=1.0, retries=0),
    )
    assert time.monotonic() - start < 30  # nowhere near the 60 s sleep
    assert results[0] == 0
    error = results[1]
    assert isinstance(error, TrialError)
    assert "timeout" in error.error


def test_supervised_preserves_order():
    executor = TrialExecutor(workers=2)
    results = executor.map_trials(
        6, _square, fault_tolerance=FaultTolerance()
    )
    assert results == [index * index for index in range(6)]


# ---------------------------------------------------------------------------
# Checkpoint / resume
# ---------------------------------------------------------------------------

def test_checkpoint_resume_skips_completed_trials(tmp_path):
    path = str(tmp_path / "checkpoint.json")
    first = map_trials(
        4, _FailOn(bad=2),
        fault_tolerance=FaultTolerance(retries=0, checkpoint_path=path),
    )
    assert isinstance(first[2], TrialError)
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["version"] == Checkpoint.VERSION
    assert payload["payload_sha256"]  # integrity seal embedded
    assert sorted(payload["results"]) == ["0", "1", "3"]  # no error persisted

    # Resume with a task returning *different* values: completed trials
    # come from the checkpoint, only the failed one is recomputed.
    second = map_trials(
        4, _Offset(base=100),
        fault_tolerance=FaultTolerance(retries=0, checkpoint_path=path),
    )
    assert second == [0, 1, 102, 9]


def test_checkpoint_quarantines_unknown_version(tmp_path):
    path = tmp_path / "checkpoint.json"
    path.write_text('{"version": 99, "results": {}}')
    checkpoint = Checkpoint(str(path))
    assert len(checkpoint) == 0
    assert checkpoint.quarantined == str(path) + ".corrupt"
    assert "version" in checkpoint.quarantine_reason
    assert not path.exists()
    assert (tmp_path / "checkpoint.json.corrupt").exists()


def test_checkpoint_records_and_flushes_atomically(tmp_path):
    path = str(tmp_path / "checkpoint.json")
    checkpoint = Checkpoint(path)
    checkpoint.record(3, {"value": 1}, flush_every=1)
    reloaded = Checkpoint(path)
    assert 3 in reloaded
    assert reloaded.results[3] == {"value": 1}
    assert len(reloaded) == 1
    leftovers = [
        name for name in os.listdir(str(tmp_path))
        if name.startswith(".checkpoint-")
    ]
    assert leftovers == []  # temp file replaced, not left behind


def test_checkpoint_resume_is_deterministic_end_to_end(tmp_path):
    """Interrupted-and-resumed output equals the uninterrupted one."""
    uninterrupted = map_trials(
        5, _square, fault_tolerance=FaultTolerance()
    )
    path = str(tmp_path / "checkpoint.json")
    # Simulate an interrupted run: only trials 0-2 completed.
    partial = Checkpoint(path)
    for index in range(3):
        partial.record(index, _square(index))
    resumed = map_trials(
        5, _square,
        fault_tolerance=FaultTolerance(checkpoint_path=path),
    )
    assert resumed == uninterrupted
