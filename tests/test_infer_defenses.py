"""Defense axis: padding contract, ladder monotonicity, overhead math.

The padding contract is the acceptance-critical property: a padded
record is never smaller than the original and always lands exactly on a
block boundary — Hypothesis sweeps it across arbitrary lengths and
block sizes.  The ladder check pins the other acceptance criterion:
each registered defense level reports a byte overhead at least as large
as the level before it.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.infer.dataset import (
    StudyDesign,
    base_plaintext_records,
    defended_wire_records,
    level_overhead,
)
from repro.infer.defenses import (
    DEFENSE_LEVELS,
    DefenseConfig,
    DefenseOverhead,
    defense_level,
    defense_level_names,
)
from repro.tls.record import MAX_PLAINTEXT_FRAGMENT, padded_length


# -- the padding contract (Hypothesis) -----------------------------------

@settings(max_examples=300, deadline=None)
@given(
    length=st.integers(min_value=0, max_value=3 * MAX_PLAINTEXT_FRAGMENT),
    block=st.integers(min_value=0, max_value=MAX_PLAINTEXT_FRAGMENT),
)
def test_padded_length_contract(length, block):
    padded = padded_length(length, block)
    assert padded >= length          # never below the original
    if block > 1:
        assert padded % block == 0   # exactly on a block boundary
        assert padded - length < block  # minimal padding
    else:
        assert padded == length      # block 0/1 disables padding


def test_padded_length_rejects_negative():
    with pytest.raises(ValueError):
        padded_length(-1, 256)


# -- defense config ------------------------------------------------------

def test_defense_config_validation():
    with pytest.raises(ValueError):
        DefenseConfig(name="bad", pad_block=-1)
    with pytest.raises(ValueError):
        # 3000 does not divide the 16 KiB TLS fragment ceiling: a full
        # fragment could not be padded without splitting.
        DefenseConfig(name="bad", pad_block=3000)
    level = DefenseConfig(name="ok", pad_block=512, chaff_records=2)
    assert level.active
    assert level.pad(1) == 512
    assert level.chaff_record_plaintext % 512 == 0
    assert not DefenseConfig(name="off").active


def test_registered_levels_resolve_by_name():
    assert defense_level_names()[0] == "off"
    for name in defense_level_names():
        assert defense_level(name).name == name
    with pytest.raises(ValueError, match="unknown defense level"):
        defense_level("quantum")


# -- ladder monotonicity (acceptance criterion) --------------------------

def test_defense_ladder_byte_overhead_is_monotone():
    """Each level's byte overhead >= the previous level's, for any page."""
    design = StudyDesign()
    sizes = (288, 2_048, 40_000, 123_457)
    base = [base_plaintext_records(size, design.chunk_bytes)
            for size in sizes]
    previous = -1
    for name in design.levels:
        level = defense_level(name)
        defended = [defended_wire_records(records, level)
                    for records in base]
        base_wire = [defended_wire_records(records, defense_level("off"))
                     for records in base]
        overhead = level_overhead(base_wire, defended, level, design)
        assert overhead.byte_overhead_permille >= previous, name
        previous = overhead.byte_overhead_permille
        assert overhead.extra_bytes >= 0
        assert overhead.latency_us >= 0


def test_padded_records_never_shrink_and_align():
    for name in defense_level_names():
        level = defense_level(name)
        base = base_plaintext_records(100_000, 2048)
        defended = defended_wire_records(base, level)
        assert len(defended) == len(base)
        for plaintext, wire in zip(base, defended):
            assert wire >= plaintext
            if level.pad_block > 1:
                # Wire = padded plaintext + constant record overhead.
                assert (wire - 29) % level.pad_block == 0


# -- overhead accounting -------------------------------------------------

def test_overhead_fold_and_json_roundtrip():
    a = DefenseOverhead(base_bytes=1000, defended_bytes=1200,
                        chaff_bytes=100, latency_us=50)
    b = DefenseOverhead(base_bytes=500, defended_bytes=800,
                        chaff_bytes=0, latency_us=10)
    a.add(b)  # in-place fold, like the summary accumulators
    assert a.base_bytes == 1500
    assert a.extra_bytes == 2000 + 100 - 1500
    assert a.byte_overhead_permille == 600 * 1000 // 1500
    assert DefenseOverhead.from_json(a.to_json()) == a


def test_defense_levels_are_unique_and_ordered():
    names = [level.name for level in DEFENSE_LEVELS]
    assert names == list(defense_level_names())
    assert len(set(names)) == len(names)
    # The ladder's block sizes divide each other: that is what makes
    # per-record padding overhead monotone by construction.
    blocks = [level.pad_block for level in DEFENSE_LEVELS
              if level.pad_block > 1]
    for smaller, larger in zip(blocks, blocks[1:]):
        assert larger % smaller == 0
