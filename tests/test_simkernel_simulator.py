"""Unit tests for the simulator run loop."""

import pytest

from repro.simkernel.errors import SchedulingError
from repro.simkernel.simulator import Simulator


def test_clock_starts_at_zero(sim):
    assert sim.now == 0.0


def test_schedule_and_run_advances_clock(sim):
    fired = []
    sim.schedule(1.5, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [1.5]
    assert sim.now == 1.5


def test_schedule_negative_delay_raises(sim):
    with pytest.raises(SchedulingError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_past_raises(sim):
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SchedulingError):
        sim.schedule_at(0.5, lambda: None)


def test_run_until_stops_at_boundary(sim):
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(3.0, lambda: fired.append(3))
    sim.run_until(2.0)
    assert fired == [1]
    assert sim.now == 2.0
    sim.run_until(4.0)
    assert fired == [1, 3]


def test_run_until_event_exactly_at_boundary_fires(sim):
    fired = []
    sim.schedule(2.0, lambda: fired.append(1))
    sim.run_until(2.0)
    assert fired == [1]


def test_stop_halts_run(sim):
    fired = []

    def fire_and_stop():
        fired.append(1)
        sim.stop()

    sim.schedule(1.0, fire_and_stop)
    sim.schedule(2.0, lambda: fired.append(2))
    sim.run()
    assert fired == [1]
    assert sim.pending_events == 1


def test_nested_scheduling_from_callbacks(sim):
    fired = []

    def outer():
        fired.append("outer")
        sim.schedule(0.5, lambda: fired.append("inner"))

    sim.schedule(1.0, outer)
    sim.run()
    assert fired == ["outer", "inner"]
    assert sim.now == 1.5


def test_call_soon_runs_at_current_time(sim):
    times = []
    sim.schedule(1.0, lambda: sim.call_soon(lambda: times.append(sim.now)))
    sim.run()
    assert times == [1.0]


def test_max_events_limits_execution(sim):
    fired = []
    for index in range(10):
        sim.schedule(float(index + 1), lambda i=index: fired.append(i))
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


def test_events_executed_counter(sim):
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.run()
    assert sim.events_executed == 2


def test_reentrant_run_raises(sim):
    def reenter():
        sim.run()

    sim.schedule(1.0, reenter)
    with pytest.raises(SchedulingError):
        sim.run()


def test_reset_rewinds(sim):
    sim.schedule(5.0, lambda: None)
    sim.run()
    sim.reset()
    assert sim.now == 0.0
    assert sim.pending_events == 0


def test_run_until_clock_advances_even_without_events(sim):
    sim.run_until(7.0)
    assert sim.now == 7.0
