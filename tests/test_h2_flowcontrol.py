"""Flow-control edge cases: exhaustion, reopen, window interaction.

Unit tests pin :class:`~repro.h2.flowcontrol.FlowControlWindow` at its
boundaries; the integration tests drive the full client/server stack
through transfers that *require* WINDOW_UPDATE replenishment (bodies
larger than the 65535-byte RFC 7540 default) and check the connection
window and per-stream windows gate DATA emission independently.
"""

import pytest

from repro.h2.client import H2Client
from repro.h2.errors import H2Error, H2ErrorCode
from repro.h2.frames import DataFrame
from repro.h2.server import H2Server, ResourceSpec, ServerConfig
from repro.h2.settings import MAX_WINDOW_SIZE
from repro.h2.flowcontrol import FlowControlWindow
from repro.netsim.topology import build_adversary_path

RESOURCES = {
    "/index.html": ResourceSpec("/index.html", 9500, "text/html"),
    "/big.js": ResourceSpec("/big.js", 200_000, "application/javascript"),
    "/also-big.js": ResourceSpec(
        "/also-big.js", 150_000, "application/javascript"
    ),
}


def _stack(seed=21):
    topology = build_adversary_path(seed=seed)
    server = H2Server(
        topology.sim, topology.server, 443,
        lambda path: RESOURCES.get(path),
        config=ServerConfig(), trace=topology.trace,
    )
    client = H2Client(
        topology.sim, topology.client, topology.server.endpoint(443),
        trace=topology.trace, authority="test.example",
    )
    return topology, server, client


# ---------------------------------------------------------------------------
# FlowControlWindow boundaries
# ---------------------------------------------------------------------------


def test_exhaustion_to_exactly_zero_then_blocked():
    window = FlowControlWindow(1000)
    window.consume(1000)
    assert window.available == 0
    window.consume(0)  # zero-byte spend is always legal
    with pytest.raises(H2Error) as excinfo:
        window.consume(1)
    assert excinfo.value.code is H2ErrorCode.FLOW_CONTROL_ERROR


def test_window_update_reopens_exhausted_window():
    window = FlowControlWindow(100)
    window.consume(100)
    window.replenish(40)
    assert window.available == 40
    window.consume(40)
    assert window.available == 0


def test_replenish_to_exact_maximum_is_legal():
    window = FlowControlWindow(0)
    window.replenish(MAX_WINDOW_SIZE)
    assert window.available == MAX_WINDOW_SIZE
    with pytest.raises(H2Error):
        window.replenish(1)


def test_adjust_initial_overflow_raises():
    window = FlowControlWindow(MAX_WINDOW_SIZE - 10)
    with pytest.raises(H2Error) as excinfo:
        window.adjust_initial(11)
    assert excinfo.value.code is H2ErrorCode.FLOW_CONTROL_ERROR


# ---------------------------------------------------------------------------
# Connection vs stream window gating (H2Connection._can_send)
# ---------------------------------------------------------------------------


def _ready_connection():
    """A connected client whose h2 connection finished its preface."""
    topology, server, client = _stack()
    client.on_ready = lambda: None
    client.connect()
    topology.sim.run_until(2.0)
    assert client.h2.ready
    return topology, client


def test_connection_window_exhaustion_blocks_every_stream():
    topology, client = _ready_connection()
    conn = client.h2
    handle = client.get("/big.js")
    topology.sim.run_until(2.01)
    assert not conn.streams[handle.stream_id].closed
    frame = DataFrame(stream_id=handle.stream_id, data_bytes=100)
    assert conn._can_send(frame)
    conn.connection_send_window.consume(conn.connection_send_window.available)
    assert not conn._can_send(frame)
    conn.connection_send_window.replenish(100)
    assert conn._can_send(frame)


def test_stream_window_exhaustion_blocks_only_that_stream():
    topology, client = _ready_connection()
    conn = client.h2
    first = client.get("/big.js")
    second = client.get("/also-big.js")
    topology.sim.run_until(2.01)
    assert not conn.streams[first.stream_id].closed
    starved = conn.streams[first.stream_id]
    starved.send_window.consume(starved.send_window.available)
    assert not conn._can_send(DataFrame(stream_id=first.stream_id,
                                        data_bytes=1))
    # The sibling stream and the connection window are untouched.
    assert conn._can_send(DataFrame(stream_id=second.stream_id,
                                    data_bytes=1))
    starved.send_window.replenish(10)
    assert conn._can_send(DataFrame(stream_id=first.stream_id, data_bytes=1))


# ---------------------------------------------------------------------------
# End-to-end: transfers larger than the initial windows
# ---------------------------------------------------------------------------


def _window_updates_sent(client):
    """WINDOW_UPDATE records the client committed to its send stream."""
    layout = client.tcp.layout
    return [
        span for span in layout.spans_completed_by(layout.next_seq)
        if getattr(getattr(span.message, "payload", None), "type_name", "")
        == "WINDOWUPDATE"
    ]


def test_large_body_requires_and_gets_window_updates():
    # 200 kB > the 65535-byte default for both the stream and the
    # connection window: the transfer can only finish because the
    # client replenishes both as it drains data.
    topology, server, client = _stack()
    done = []
    client.on_ready = lambda: setattr(
        client.get("/big.js"), "on_complete", done.append
    )
    client.connect()
    topology.sim.run_until(15.0)
    assert len(done) == 1
    assert done[0].received_bytes == 200_000
    assert _window_updates_sent(client)


def test_concurrent_large_bodies_share_connection_window():
    # Each body alone fits the budget dance; together they exhaust the
    # shared connection window repeatedly.  Both must still complete —
    # per-stream accounting must not starve either one.
    topology, server, client = _stack()
    def go():
        client.get("/big.js")
        client.get("/also-big.js")
    client.on_ready = go
    client.connect()
    topology.sim.run_until(25.0)
    sizes = {h.path: h.received_bytes for h in client.handles.values()}
    assert sizes == {"/big.js": 200_000, "/also-big.js": 150_000}
