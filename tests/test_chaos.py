"""The chaos harness: injectors and scenario machinery.

The expensive process-fault scenarios (worker-kill, stalled-shard) run
in the nightly ``slow`` job; the serial scenarios run in tier 1 — they
are the same code paths the ``repro verify`` chaos section exercises.
"""

import errno
import os

import pytest

from repro.campaign import CampaignConfig, checkpoint_path, run_campaign
from repro.chaos import (
    QUICK_SCENARIOS,
    SCENARIOS,
    corrupt_byte,
    failing_checkpoint_writes,
    render_results,
    run_scenario,
    run_scenarios,
    truncate_bytes,
    verify_section,
)
from repro.experiments.executor import Checkpoint


# ---------------------------------------------------------------------------
# Injectors
# ---------------------------------------------------------------------------

def test_corrupt_byte_flips_in_place(tmp_path):
    path = str(tmp_path / "blob")
    with open(path, "wb") as handle:
        handle.write(b"x" * 90)
    offset = corrupt_byte(path, seed=4)
    blob = open(path, "rb").read()
    assert len(blob) == 90
    assert blob[offset] == ord("x") ^ 0xFF
    assert blob.count(b"x") == 89


def test_corrupt_byte_rejects_empty_file(tmp_path):
    path = tmp_path / "empty"
    path.write_bytes(b"")
    with pytest.raises(ValueError):
        corrupt_byte(str(path))


def test_truncate_bytes_tears_the_file(tmp_path):
    path = str(tmp_path / "blob")
    with open(path, "wb") as handle:
        handle.write(b"y" * 100)
    kept = truncate_bytes(path, fraction=0.6)
    assert kept == 60
    assert os.path.getsize(path) == 60
    with pytest.raises(ValueError):
        truncate_bytes(path, fraction=1.0)


def test_any_single_byte_flip_trips_the_integrity_seal(tmp_path):
    # The property corrupt_byte relies on: no single flipped byte can
    # survive the checkpoint's parse + sha + digest validation.
    path = str(tmp_path / "checkpoint.json")
    checkpoint = Checkpoint(path, config_digest="abc123")
    checkpoint.record(0, {"value": 1}, flush_every=1)
    corrupt_byte(path, seed=7)
    reloaded = Checkpoint(path, config_digest="abc123")
    assert len(reloaded) == 0
    assert reloaded.quarantined == path + ".corrupt"


def test_failing_checkpoint_writes_injects_and_clears(tmp_path):
    import repro.experiments.executor as executor_module

    path = str(tmp_path / "checkpoint.json")
    with failing_checkpoint_writes(failures=1) as faults:
        checkpoint = Checkpoint(path)
        checkpoint.record(0, {"value": 1}, flush_every=1)
        assert faults["raised"] == 1
        assert checkpoint.disabled
        assert "ENOSPC" in checkpoint.write_error or "28" in str(
            checkpoint.write_error
        )
        assert not os.path.exists(path)  # nothing half-written
    assert executor_module._flush_fault_hook is None  # hook cleared
    after = Checkpoint(path + "2")
    after.record(0, {"value": 1}, flush_every=1)
    assert not after.disabled  # writes work again outside the context


def test_failing_checkpoint_writes_custom_errno(tmp_path):
    with failing_checkpoint_writes(failures=1, error_code=errno.EIO):
        checkpoint = Checkpoint(str(tmp_path / "checkpoint.json"))
        checkpoint.record(0, {"value": 1}, flush_every=1)
    assert "Errno 5" in checkpoint.write_error or "I/O" in (
        checkpoint.write_error
    )


def test_enospc_mid_campaign_degrades_without_losing_the_digest(tmp_path):
    config = CampaignConfig(sessions=400, shard_size=100, seed=3)
    reference = run_campaign(config, workers=1).digest()
    with failing_checkpoint_writes(failures=2):
        result = run_campaign(config, workers=1,
                              checkpoint_dir=str(tmp_path))
    assert result.digest() == reference
    assert not result.partial
    # The file was never written; a later healthy run recomputes fully.
    assert not os.path.exists(checkpoint_path(config, str(tmp_path)))


# ---------------------------------------------------------------------------
# Scenario machinery
# ---------------------------------------------------------------------------

def test_registry_shape():
    assert set(QUICK_SCENARIOS) <= set(SCENARIOS)
    assert "worker-kill" in SCENARIOS and "deadline-expiry" in SCENARIOS
    # Process-fault scenarios are deliberately not in the quick subset.
    assert "worker-kill" not in QUICK_SCENARIOS
    assert "stalled-shard" not in QUICK_SCENARIOS


def test_unknown_scenario_raises():
    with pytest.raises(ValueError, match="nosuch"):
        run_scenario("nosuch")


def test_deadline_expiry_scenario_passes(tmp_path):
    result = run_scenario("deadline-expiry", workdir=str(tmp_path))
    assert result.passed, result.detail
    assert result.mode == "partial"
    assert os.path.exists(
        os.path.join(str(tmp_path), "deadline-expiry", "manifest.json")
    )


@pytest.mark.parametrize("name", ["checkpoint-corrupt",
                                  "checkpoint-truncate",
                                  "checkpoint-enospc"])
def test_serial_checkpoint_scenarios_pass(tmp_path, name):
    result = run_scenario(name, workdir=str(tmp_path))
    assert result.passed, result.detail
    assert result.mode == "recovered"


@pytest.mark.slow
@pytest.mark.parametrize("name", ["worker-kill", "stalled-shard"])
def test_process_fault_scenarios_pass(tmp_path, name):
    result = run_scenario(name, workdir=str(tmp_path))
    assert result.passed, result.detail
    assert result.mode == "recovered"


def test_scenario_failure_is_reported_not_raised(monkeypatch):
    # A scenario body blowing up must become a FAIL row, never an
    # unhandled traceback out of the harness.
    import repro.chaos.scenarios as scenarios_module

    spec = scenarios_module.SCENARIOS["deadline-expiry"]

    def explode(workdir, backend):
        raise RuntimeError("scenario machinery broke")

    monkeypatch.setitem(
        scenarios_module.SCENARIOS, "deadline-expiry",
        scenarios_module.ScenarioSpec(
            spec.name, spec.description, spec.quick, explode
        ),
    )
    result = run_scenario("deadline-expiry")
    assert not result.passed
    assert result.mode == "error"
    assert "scenario machinery broke" in result.detail


def test_render_results_and_verify_section(tmp_path):
    results = run_scenarios(names=["deadline-expiry"],
                            workdir=str(tmp_path))
    table = render_results(results)
    assert "Chaos harness" in table
    assert "deadline-expiry" in table
    assert "1/1 passed" in table


@pytest.mark.slow
def test_verify_section_quick_profile():
    section = verify_section(quick=True)
    assert section.passed
    names = [check.name for check in section.checks]
    assert names == [f"chaos:{name}" for name in QUICK_SCENARIOS]
