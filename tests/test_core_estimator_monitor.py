"""Unit tests for the traffic monitor and size estimator."""

import pytest

from repro.core.estimator import ObjectEstimate, SizeEstimator
from repro.core.monitor import (
    GET_PAYLOAD_THRESHOLD,
    PREFACE_FLIGHT_BYTES,
    TrafficMonitor,
)
from repro.netsim.capture import CaptureLog, Direction, PacketRecord


def _packet(time, payload, direction=Direction.SERVER_TO_CLIENT,
            content_types=(23,), seq=0, mtu_full=None, dropped=False):
    wire = 44 + payload
    if mtu_full is True:
        wire = 1500
    elif mtu_full is False:
        wire = min(wire, 1499)
    return PacketRecord(
        time=time, direction=direction, packet_id=0, wire_size=wire,
        payload_bytes=payload, flags=(), seq=seq, ack=0,
        tls_content_types=tuple(content_types), dropped_by_adversary=dropped,
    )


# -- estimator ---------------------------------------------------------------

def test_estimator_single_burst():
    packets = [
        _packet(0.000, 1448, mtu_full=True),
        _packet(0.001, 1448, mtu_full=True),
        _packet(0.002, 600, mtu_full=False),
    ]
    estimates = SizeEstimator().estimate(packets)
    assert len(estimates) == 1
    assert estimates[0].payload_bytes == 1448 + 1448 + 600
    assert estimates[0].packets == 3


def test_estimator_delimiter_plus_silence_splits():
    packets = [
        _packet(0.000, 600, mtu_full=False),
        _packet(0.100, 700, mtu_full=False),
    ]
    estimates = SizeEstimator().estimate(packets)
    assert [e.payload_bytes for e in estimates] == [600, 700]


def test_estimator_sub_mtu_without_silence_does_not_split():
    packets = [
        _packet(0.0000, 1448, mtu_full=True),
        _packet(0.0004, 600, mtu_full=False),   # spurt boundary
        _packet(0.0008, 1448, mtu_full=True),
        _packet(0.0012, 500, mtu_full=False),
    ]
    estimates = SizeEstimator().estimate(packets)
    assert len(estimates) == 1


def test_estimator_full_mtu_stall_does_not_split():
    """A cwnd stall (~1 RTT) after a full packet keeps the burst whole."""
    packets = [
        _packet(0.000, 1448, mtu_full=True),
        _packet(0.031, 1448, mtu_full=True),  # one RTT later
        _packet(0.032, 500, mtu_full=False),
    ]
    estimates = SizeEstimator().estimate(packets)
    assert len(estimates) == 1


def test_estimator_long_idle_splits_even_full_mtu():
    packets = [
        _packet(0.000, 1448, mtu_full=True),
        _packet(0.200, 1448, mtu_full=True),
        _packet(0.201, 500, mtu_full=False),
    ]
    estimates = SizeEstimator().estimate(packets)
    assert len(estimates) == 2


def test_estimator_discards_tiny_bursts():
    packets = [_packet(0.0, 100, mtu_full=False)]
    assert SizeEstimator(min_object_bytes=400).estimate(packets) == []


def test_estimator_request_cut():
    packets = [
        _packet(0.000, 600, mtu_full=False),
        _packet(0.030, 700, mtu_full=False),
    ]
    # A request at 0.010 delimits the responses despite the short gap.
    estimates = SizeEstimator().estimate(packets, request_times=[0.010])
    assert [e.payload_bytes for e in estimates] == [600, 700]


def test_estimator_empty_input():
    assert SizeEstimator().estimate([]) == []


def test_estimator_invalid_gaps():
    with pytest.raises(ValueError):
        SizeEstimator(delimiter_gap=0.1, idle_gap=0.05)


def test_estimate_duration():
    estimate = ObjectEstimate(1.0, 1.5, 1000, 3, 2)
    assert estimate.duration == 0.5


# -- monitor -------------------------------------------------------------------

def _capture_with_gets():
    log = CaptureLog()
    c2s = Direction.CLIENT_TO_SERVER
    # Preface flight: 53 + 50 B (skipped by the byte allowance).
    log.append(_packet(0.00, 53, c2s, seq=0))
    log.append(_packet(0.00, 50, c2s, seq=53))
    log.append(_packet(0.01, 42, c2s, seq=103))   # WINDOW_UPDATE
    # Three GETs.
    log.append(_packet(0.10, 150, c2s, seq=145))
    log.append(_packet(0.20, 60, c2s, seq=295))
    log.append(_packet(0.30, 70, c2s, seq=355))
    return log


def test_monitor_counts_gets_skipping_preface():
    monitor = TrafficMonitor(_capture_with_gets())
    gets = monitor.get_requests()
    assert [g.index for g in gets] == [1, 2, 3]
    assert monitor.nth_get_time(1) == pytest.approx(0.10)
    assert monitor.nth_get_time(9) is None


def test_monitor_dedupes_retransmitted_gets():
    log = _capture_with_gets()
    # Retransmission of the 2nd GET (old sequence number).
    log.append(_packet(0.40, 60, Direction.CLIENT_TO_SERVER, seq=295))
    monitor = TrafficMonitor(log)
    assert len(monitor.get_requests()) == 3


def test_monitor_ignores_small_control_records():
    log = _capture_with_gets()
    log.append(_packet(0.50, 42, Direction.CLIENT_TO_SERVER, seq=425))
    monitor = TrafficMonitor(log)
    assert len(monitor.get_requests()) == 3


def test_monitor_ignores_dropped_packets():
    log = _capture_with_gets()
    log.append(
        _packet(0.50, 80, Direction.CLIENT_TO_SERVER, seq=425, dropped=True)
    )
    monitor = TrafficMonitor(log)
    assert len(monitor.get_requests()) == 3


def test_monitor_inter_get_gaps():
    monitor = TrafficMonitor(_capture_with_gets())
    gaps = monitor.inter_get_gaps()
    assert gaps == [pytest.approx(0.1), pytest.approx(0.1)]


def test_monitor_response_packets_include_continuations():
    log = CaptureLog()
    log.append(_packet(0.0, 1448, content_types=(23,)))
    log.append(_packet(0.001, 638, content_types=()))  # continuation
    log.append(_packet(0.002, 90, content_types=(22,)))  # handshake
    monitor = TrafficMonitor(log)
    packets = monitor.response_packets()
    assert len(packets) == 2


def test_monitor_get_threshold_boundaries():
    assert GET_PAYLOAD_THRESHOLD == 44
    assert PREFACE_FLIGHT_BYTES == 120
