"""Edge-path tests for the HTTP/2 connection layer."""

import pytest

from repro.h2.client import H2Client
from repro.h2.errors import H2Error, H2ErrorCode
from repro.h2.frames import PriorityFrame
from repro.h2.mux import PriorityScheduler
from repro.h2.server import H2Server, ResourceSpec, ServerConfig
from repro.netsim.topology import build_adversary_path

RESOURCES = {
    "/a.bin": ResourceSpec("/a.bin", 30_000, "application/octet-stream"),
    "/b.bin": ResourceSpec("/b.bin", 30_000, "application/octet-stream"),
}


def _stack(seed=61, scheduler_factory=None):
    topology = build_adversary_path(seed=seed)
    server = H2Server(
        topology.sim, topology.server, 443,
        lambda path: RESOURCES.get(path),
        config=ServerConfig(), trace=topology.trace,
        scheduler_factory=scheduler_factory,
    )
    client = H2Client(
        topology.sim, topology.client, topology.server.endpoint(443),
        trace=topology.trace,
    )
    return topology, server, client


def test_oversized_data_frame_rejected():
    topology, server, client = _stack()
    client.on_ready = lambda: None
    client.connect()
    topology.sim.run_until(2.0)
    connection = client.h2
    with pytest.raises(H2Error) as excinfo:
        connection.send_data(1, 20_000)  # > peer max_frame_size 16384
    assert excinfo.value.code is H2ErrorCode.FRAME_SIZE_ERROR


def test_goaway_received_flag():
    topology, server, client = _stack()
    client.on_ready = lambda: None
    client.connect()
    topology.sim.run_until(2.0)
    goaways = []
    client.h2.on_goaway = lambda last, code: goaways.append((last, code))
    server.connections[0].h2.send_goaway(H2ErrorCode.NO_ERROR)
    topology.sim.run_until(3.0)
    assert client.h2.goaway_received
    assert goaways and goaways[0][1] is H2ErrorCode.NO_ERROR


def test_priority_frame_updates_server_tree():
    topology, server, client = _stack(scheduler_factory=PriorityScheduler)
    def go():
        client.get("/a.bin")
        client.get("/b.bin")
        client.h2.send_priority(3, depends_on=1, weight=42)
    client.on_ready = go
    client.connect()
    topology.sim.run_until(5.0)
    tree = server.connections[0].h2.scheduler.tree
    assert tree.weight_of(3) == 42
    # RFC 7540: a dependency on a stream not (yet) in the tree falls
    # back to the root — the PRIORITY raced ahead of the responses.
    assert tree.parent_of(3) in (0, 1)


def test_priority_frame_after_responses_sets_parent():
    topology, server, client = _stack(scheduler_factory=PriorityScheduler)
    def go():
        client.get("/a.bin")
        client.get("/b.bin")
    client.on_ready = go
    client.connect()
    topology.sim.run_until(0.2)  # responses under way: streams in tree
    client.h2.send_priority(3, depends_on=1, weight=42)
    topology.sim.run_until(5.0)
    tree = server.connections[0].h2.scheduler.tree
    assert tree.parent_of(3) == 1


def test_client_counts_junk_data_after_reset():
    topology, server, client = _stack()
    handle_box = []
    def go():
        handle_box.append(client.get("/a.bin"))
    client.on_ready = go
    client.connect()
    sim = topology.sim
    sim.run_until(0.12)
    # Reset while the response is in flight: whatever lands afterwards
    # is junk the browser tolerates.
    client.cancel(handle_box[0].stream_id)
    sim.run_until(5.0)
    assert handle_box[0].reset
    assert client.junk_data_frames >= 0  # tolerated, never crashes


def test_request_priority_weight_reaches_server():
    topology, server, client = _stack(scheduler_factory=PriorityScheduler)
    client.on_ready = lambda: client.get("/a.bin", priority_weight=99)
    client.connect()
    topology.sim.run_until(5.0)
    # The HEADERS carried the priority; the server connection saw it.
    frames = [
        record
        for record in topology.trace.select(category="h2.frame.received")
        if record["frame_type"] == "HEADERS" and record.get("conn", "").startswith("h2-server")
    ]
    assert frames


def test_window_update_on_stream_zero_grows_connection_window():
    topology, server, client = _stack()
    client.on_ready = lambda: None
    client.connect()
    topology.sim.run_until(2.0)
    server_connection = server.connections[0].h2
    # The client granted its 12 MiB connection window at startup.
    assert server_connection.connection_send_window.available > 10_000_000
