"""Tests for the robustness study (fault-intensity sweep)."""

import json

import pytest

from repro.experiments.robustness_study import (
    INTENSITIES,
    OBJECTS_PER_TRIAL,
    QUICK_INTENSITIES,
    IntensityRow,
    RobustnessResult,
    RobustnessTrial,
    noise_schedule,
    run,
)
from repro.netsim.faults import GilbertElliottLoss, Outage


def test_noise_schedule_zero_is_clean():
    assert noise_schedule(0.0) is None
    assert noise_schedule(-1.0) is None


def test_noise_schedule_rejects_overdrive():
    with pytest.raises(ValueError):
        noise_schedule(1.5)


def test_noise_schedule_scales_with_intensity():
    mild = noise_schedule(0.25)
    severe = noise_schedule(1.0)
    assert mild is not None and severe is not None
    # Flaps only join the mix at intensity >= 0.5.
    assert not any(isinstance(i, Outage) for i in mild.impairments)
    assert any(isinstance(i, Outage) for i in severe.impairments)
    assert len(severe) > len(mild)

    def burstiness(schedule):
        ge = next(
            i for i in schedule.impairments
            if isinstance(i, GilbertElliottLoss)
        )
        return ge.mean_bad / ge.mean_good

    assert burstiness(severe) > burstiness(mild)


def test_sweep_constants():
    assert INTENSITIES[0] == 0.0 and INTENSITIES[-1] == 1.0
    assert set(QUICK_INTENSITIES) <= set(INTENSITIES)
    assert OBJECTS_PER_TRIAL == 9


def test_trial_task_returns_json_safe_dict():
    record = RobustnessTrial(seed=7, intensity=0.0)(0)
    clone = json.loads(json.dumps(record))
    assert clone == record
    assert record["trial"] == 0
    assert record["intensity"] == 0.0
    assert record["completed"] is True
    assert record["aborted"] is False
    assert 0 <= record["object_successes"] <= OBJECTS_PER_TRIAL
    assert record["fault_drops"] == 0  # clean links at intensity 0


@pytest.mark.slow
def test_trial_task_is_deterministic():
    task = RobustnessTrial(seed=7, intensity=0.5, horizon=15.0)
    assert task(1) == task(1)


def test_faulted_trial_records_fault_drops():
    record = RobustnessTrial(seed=7, intensity=1.0, horizon=15.0)(0)
    assert record["fault_drops"] > 0


def test_intensity_row_aggregation():
    row = IntensityRow(intensity=0.5)
    row.add({
        "object_successes": 9, "html_success": True, "sequence_correct": 9,
        "completed": True, "aborted": False, "retries": 0, "fault_drops": 3,
    })
    row.add({
        "object_successes": 0, "html_success": False, "sequence_correct": 0,
        "completed": False, "aborted": True, "retries": 2, "fault_drops": 40,
    })
    assert row.trials == 2
    assert row.success_pct == pytest.approx(50.0)
    assert row.html_success_pct == pytest.approx(50.0)
    assert row.broken == 1
    assert row.aborted == 1
    assert row.retries == 2
    assert row.fault_drops == 43
    payload = row.to_json()
    assert payload["intensity"] == 0.5
    assert payload["success_pct"] == 50.0


def test_monotone_story_tolerates_small_noise():
    result = RobustnessResult()
    for intensity, pct in ((0.0, 90.0), (0.5, 93.0), (1.0, 40.0)):
        row = IntensityRow(intensity=intensity)
        row.trials = 1
        row.object_successes = int(round(pct / 100 * OBJECTS_PER_TRIAL))
        result.rows_data.append(row)
    # +3% between adjacent levels is within the 5-point tolerance.
    successes = [row.success_pct for row in result.rows_data]
    assert successes[1] <= successes[0] + 5.0
    assert result.monotone_story

    result.rows_data[1].object_successes = OBJECTS_PER_TRIAL  # 100% > 90+5
    assert not result.monotone_story


@pytest.mark.slow
def test_run_tiny_sweep_renders_and_serializes():
    result = run(trials=1, seed=7, intensities=(0.0,), workers=1)
    assert len(result.rows_data) == 1
    row = result.rows_data[0]
    assert row.trials == 1
    assert row.errors == 0
    rendered = result.render()
    assert "Robustness study" in rendered
    assert "fault intensity" in rendered
    payload = json.loads(json.dumps(result.to_json()))
    assert payload["study"] == "robustness"
    assert payload["trials"] == 1
    assert len(payload["rows"]) == 1
