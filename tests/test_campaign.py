"""Campaign engine: zipf population, columnar folds, kill/resume.

The three properties the ISSUE pins down:

* **workload determinism** — the same seed rebuilds the identical page
  catalog, page by page, in any process;
* **columnar fold associativity** — shard summaries are integer-valued
  and merge to bit-identical totals in any order and any grouping;
* **campaign bit-identity** — worker count, checkpointing, and a
  simulated kill/resume never change the merged output.
"""

import json
import random

import pytest

from repro.campaign import (
    AnalyticModel,
    CampaignConfig,
    CampaignResult,
    ColumnarSummary,
    ShardTask,
    checkpoint_path,
    merge_summaries,
    run_campaign,
)
from repro.campaign.engine import evaluate_page_analytic
from repro.experiments.executor import Checkpoint
from repro.web.workload import (
    PageSpec,
    PopulationConfig,
    PopulationWorkload,
    ZipfSampler,
)


# -- Heavy-tail population workload -------------------------------------


def test_population_same_seed_identical_catalog():
    first = PopulationWorkload(seed=11)
    second = PopulationWorkload(seed=11)
    for session in range(200):
        assert first.page_spec(session) == second.page_spec(session)


def test_population_different_seeds_differ():
    first = PopulationWorkload(seed=11)
    second = PopulationWorkload(seed=12)
    specs_a = [first.page_spec(s) for s in range(50)]
    specs_b = [second.page_spec(s) for s in range(50)]
    assert specs_a != specs_b


def test_population_specs_respect_config_bounds():
    config = PopulationConfig(min_objects=3, max_objects=40,
                              target_range=(5_000, 6_000))
    workload = PopulationWorkload(seed=3, config=config)
    for spec in workload.page_specs(0, 300):
        assert 3 <= spec.object_count <= 40
        assert 5_000 <= spec.target_size <= 6_000
        assert all(size >= config.min_object_bytes
                   for size in spec.object_sizes)
        # Rank-size law: sizes are emitted in (jittered) rank order, so
        # the head object dominates the tail object.
        if spec.object_count >= 8:
            assert spec.object_sizes[0] > spec.object_sizes[-1]


def test_population_count_distribution_is_heavy_tailed():
    workload = PopulationWorkload(seed=5)
    counts = [workload.page_spec(s).object_count for s in range(2_000)]
    low = workload.config.min_objects
    small = sum(1 for count in counts if count < low + 20)
    huge = sum(1 for count in counts if count > 70)
    assert small > huge  # mass concentrates at small pages
    assert huge > 0      # but the tail is populated


def test_page_spec_independent_of_generation_order():
    workload = PopulationWorkload(seed=9)
    late_first = workload.page_spec(150)
    early = workload.page_spec(3)
    fresh = PopulationWorkload(seed=9)
    assert fresh.page_spec(3) == early
    assert fresh.page_spec(150) == late_first


def test_zipf_sampler_bounds_and_skew():
    sampler = ZipfSampler(1, 100, 1.2)
    stream = random.Random(7)
    draws = [sampler.sample(stream) for _ in range(5_000)]
    assert min(draws) >= 1 and max(draws) <= 100
    assert draws.count(1) > draws.count(50)


def test_zipf_sampler_rejects_bad_support():
    with pytest.raises(ValueError):
        ZipfSampler(0, 10, 1.0)
    with pytest.raises(ValueError):
        ZipfSampler(5, 4, 1.0)


# -- Columnar summaries -------------------------------------------------


def _shard_summaries(shards=7, shard_size=60, seed=21):
    config = CampaignConfig(
        sessions=shards * shard_size, shard_size=shard_size, seed=seed
    )
    task = ShardTask(config)
    return [ColumnarSummary.from_json(task(shard)) for shard in range(shards)]


def test_columnar_merge_order_never_changes_result():
    summaries = _shard_summaries()
    reference = merge_summaries(summaries)
    rng = random.Random(0)
    for _ in range(5):
        shuffled = list(summaries)
        rng.shuffle(shuffled)
        merged = merge_summaries(
            ColumnarSummary.from_json(s.to_json()) for s in shuffled
        )
        assert merged.to_json() == reference.to_json()
        assert merged.digest() == reference.digest()


def test_columnar_merge_is_associative_over_groupings():
    a, b, c = _shard_summaries(shards=3)

    def clone(summary):
        return ColumnarSummary.from_json(summary.to_json())

    left = clone(a).merge(clone(b)).merge(clone(c))        # (a+b)+c
    right = clone(a).merge(clone(b).merge(clone(c)))       # a+(b+c)
    assert left.to_json() == right.to_json()


def test_columnar_fold_equals_merge_of_parts():
    config = CampaignConfig(sessions=120, shard_size=40, seed=33)
    whole = ColumnarSummary.from_json(
        ShardTask(CampaignConfig(sessions=120, shard_size=120, seed=33))(0)
    )
    parts = merge_summaries(
        ColumnarSummary.from_json(ShardTask(config)(shard))
        for shard in range(config.shard_count)
    )
    assert parts.to_json() == whole.to_json()


def test_columnar_json_roundtrip_exact():
    summary = _shard_summaries(shards=1)[0]
    encoded = json.dumps(summary.to_json(), sort_keys=True)
    decoded = ColumnarSummary.from_json(json.loads(encoded))
    assert decoded == summary
    assert decoded.digest() == summary.digest()


def test_columnar_rejects_foreign_payloads():
    summary = ColumnarSummary()
    payload = summary.to_json()
    payload["version"] = 99
    with pytest.raises(ValueError):
        ColumnarSummary.from_json(payload)
    payload = summary.to_json()
    payload["hists"]["objects_log2"] = [0]  # wrong width
    with pytest.raises(ValueError):
        ColumnarSummary.from_json(payload)


def test_columnar_derived_stats():
    summary = ColumnarSummary()
    summary.fold_session(
        objects=10, page_bytes=50_000, target_bytes=9_000,
        serialized=True, identified=True, confusers=0, match_error=12,
    )
    summary.fold_session(
        objects=30, page_bytes=150_000, target_bytes=9_000,
        serialized=False, identified=True, confusers=2, match_error=40,
    )
    assert summary.sessions == 2
    assert summary.rate("serialized") == 0.5
    assert summary.rate("succeeded") == 0.5
    assert summary.mean("objects") == 20.0
    assert summary.mins["objects"] == 10
    assert summary.maxs["page_bytes"] == 150_000
    assert sum(summary.hists["objects_log2"]) == 2


# -- Analytic evaluator -------------------------------------------------


def test_analytic_evaluation_deterministic_per_session():
    workload = PopulationWorkload(seed=17)
    model = AnalyticModel()
    spec = workload.page_spec(5)
    first = evaluate_page_analytic(
        spec, workload.session_rng(5).stream("analytic"), model
    )
    second = evaluate_page_analytic(
        spec, workload.session_rng(5).stream("analytic"), model
    )
    assert first == second


def test_analytic_identifies_unique_target_without_noise():
    model = AnalyticModel(record_miscount_rate=0.0, noise_bytes=0,
                          serialize_base=1.0, serialize_slope=0.0,
                          serialize_floor=1.0)
    spec = PageSpec(session=0, object_sizes=(100_000, 50_000, 25_000),
                    target_size=9_000)
    outcome = evaluate_page_analytic(spec, random.Random(1), model)
    assert outcome["identified"] is True
    assert outcome["serialized"] is True
    assert outcome["confusers"] == 0
    assert outcome["match_error"] == 0


def test_analytic_confuser_at_target_size_defeats_uniqueness():
    model = AnalyticModel(record_miscount_rate=0.0, noise_bytes=0)
    spec = PageSpec(session=0, object_sizes=(100_000, 9_000),
                    target_size=9_000)  # exact size collision
    outcome = evaluate_page_analytic(spec, random.Random(1), model)
    assert outcome["confusers"] == 1


def test_analytic_model_validation():
    with pytest.raises(ValueError):
        AnalyticModel(record_miscount_rate=1.5)
    with pytest.raises(ValueError):
        AnalyticModel(serialize_floor=0.9, serialize_base=0.5)


# -- Campaign engine ----------------------------------------------------


def test_campaign_config_validation_and_shards():
    with pytest.raises(ValueError):
        CampaignConfig(sessions=0)
    with pytest.raises(ValueError):
        CampaignConfig(mode="hyperdrive")
    config = CampaignConfig(sessions=250, shard_size=100)
    assert config.shard_count == 3
    assert list(config.shard_range(2)) == list(range(200, 250))
    assert list(config.shard_range(0)) == list(range(0, 100))
    assert config.digest() == CampaignConfig(sessions=250,
                                             shard_size=100).digest()
    assert config.digest() != CampaignConfig(sessions=251,
                                             shard_size=100).digest()


@pytest.mark.parametrize("backend", ["python", "fast"])
def test_campaign_serial_matches_parallel(backend):
    config = CampaignConfig(sessions=600, shard_size=100, seed=19)
    serial = run_campaign(config, workers=1, backend=backend)
    parallel = run_campaign(config, workers=2, backend=backend)
    assert serial.digest() == parallel.digest()
    assert serial.to_json() == parallel.to_json()


def test_campaign_backends_bit_identical():
    # The vectorized backend must reproduce the scalar engine's bytes
    # exactly — same digest, same JSON — on a population large enough
    # to exercise miscount hits, ambiguous pages and zero-error ties.
    config = CampaignConfig(sessions=2_000, shard_size=250, seed=19)
    python = run_campaign(config, backend="python")
    fast = run_campaign(config, backend="fast")
    assert python.digest() == fast.digest()
    assert python.to_json() == fast.to_json()
    assert python.backend == "python" and fast.backend == "fast"
    # The backend tag is deliberately not part of the payload: reports
    # and checkpoints stay interchangeable between backends.
    assert "backend" not in python.to_json()


def test_campaign_shard_size_never_changes_totals():
    coarse = run_campaign(CampaignConfig(sessions=400, shard_size=400,
                                         seed=23))
    fine = run_campaign(CampaignConfig(sessions=400, shard_size=40,
                                       seed=23))
    assert coarse.summary.to_json() == fine.summary.to_json()


@pytest.mark.parametrize("backend", ["python", "fast"])
def test_campaign_checkpoint_resume_bit_identical(tmp_path, backend):
    config = CampaignConfig(sessions=500, shard_size=50, seed=29)
    reference = run_campaign(config)

    # A full checkpointed run produces the reference bytes...
    checkpoint_dir = tmp_path / "checkpoints"
    complete = run_campaign(
        config, checkpoint_dir=str(checkpoint_dir), backend=backend
    )
    assert complete.digest() == reference.digest()

    # ...then simulate a kill after 3 shards by truncating the
    # checkpoint (resealed, as any kill between atomic flushes leaves
    # it), and resume: completed shards are not re-run, and the merged
    # output is bit-identical to the uninterrupted reference.
    path = checkpoint_path(config, str(checkpoint_dir))
    kept = Checkpoint.truncate(path, keep=3)
    assert kept == 3
    resumed = run_campaign(
        config, checkpoint_dir=str(checkpoint_dir), backend=backend
    )
    assert resumed.resumed_shards == 3
    assert resumed.digest() == reference.digest()
    assert resumed.to_json() == reference.to_json()


def test_campaign_checkpoint_files_isolated_per_config(tmp_path):
    first = CampaignConfig(sessions=100, shard_size=50, seed=1)
    second = CampaignConfig(sessions=100, shard_size=50, seed=2)
    run_campaign(first, checkpoint_dir=str(tmp_path))
    run_campaign(second, checkpoint_dir=str(tmp_path))
    assert checkpoint_path(first, str(tmp_path)) != \
        checkpoint_path(second, str(tmp_path))
    assert len(list(tmp_path.glob("campaign-*.json"))) == 2


def test_campaign_result_shape():
    config = CampaignConfig(sessions=200, shard_size=100, seed=41)
    result = run_campaign(config)
    assert isinstance(result, CampaignResult)
    assert result.summary.sessions == 200
    assert result.shards == 2
    payload = result.to_json()
    assert payload["campaign"]["sessions"] == 200
    assert payload["digest"] == result.digest()
    assert 0.0 <= payload["rates"]["succeeded"] <= 1.0
    text = result.render()
    assert "sessions" in text and "attack success" in text
    assert result.digest()[:16] in text


def test_campaign_full_mode_smoke():
    # Four packet-level sessions across two shards: the expensive path
    # must fold into the same columnar schema and stay deterministic.
    config = CampaignConfig(sessions=4, shard_size=2, seed=7, mode="full")
    first = run_campaign(config)
    second = run_campaign(config)
    assert first.digest() == second.digest()
    assert first.summary.sessions == 4
    assert first.summary.sums["duration_us"] > 0
    assert first.summary.counts["serialized"] >= 1
