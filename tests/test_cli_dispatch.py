"""CLI dispatch health: flag validation and per-experiment smoke runs.

Two layers:

* every incoherent flag/experiment combination must be rejected up
  front with argparse's exit code 2 and a message naming the flag —
  scoped flags used to be silently ignored outside their experiment;
* every experiment choice must dispatch, exit 0 and print something at
  the smallest profile (``--trials 1 --workers 1``).  Heavy choices
  (multi-study sweeps, the verify harness) carry the ``slow`` marker
  and run in the nightly job.
"""

import pytest

from repro import cli

BAD_COMBOS = [
    (["table1", "--trial", "3"], "--trial"),
    (["baseline", "--quick"], "--quick"),
    (["table1", "--levels", "0.5"], "--levels"),
    (["fig1", "--checkpoint", "x.json"], "--checkpoint"),
    (["table2", "--json", "out.json"], "--json"),
    (["fig5", "--trial-timeout", "10"], "--trial-timeout"),
    (["fig6", "--trial-retries", "2"], "--trial-retries"),
    (["table1", "--update-golden"], "--update-golden"),
    (["delay", "--only", "fig1"], "--only"),
    (["verify", "--trial", "0"], "--trial"),
    (["table1", "--sessions", "100"], "--sessions"),
    (["fig1", "--shard-size", "50"], "--shard-size"),
    (["attack", "--mode", "analytic"], "--mode"),
    (["verify", "--checkpoint-dir", "ck"], "--checkpoint-dir"),
    (["table2", "--max-objects", "32"], "--max-objects"),
    (["baseline", "--count-exponent", "0.9"], "--count-exponent"),
    (["fig6", "--size-exponent", "1.1"], "--size-exponent"),
    (["campaign", "--trial", "0"], "--trial"),
    (["campaign", "--levels", "0.5"], "--levels"),
    (["table1", "--allow-partial"], "--allow-partial"),
    (["verify", "--deadline", "10"], "--deadline"),
    (["fig1", "--heartbeat-timeout", "5"], "--heartbeat-timeout"),
    (["baseline", "--failure-manifest", "m.json"], "--failure-manifest"),
    (["table1", "--scenario", "worker-kill"], "--scenario"),
    (["campaign", "--scenario", "worker-kill"], "--scenario"),
    (["table1", "--reps", "2"], "--reps"),
    (["campaign", "--defenses", "off,pad256"], "--defenses"),
    (["verify", "--classifiers", "exact"], "--classifiers"),
    (["infer-study", "--sessions", "5"], "--sessions"),
    (["infer-study", "--json", "out.json"], "--json"),
]


@pytest.mark.parametrize(
    "argv, flag", BAD_COMBOS, ids=[" ".join(argv) for argv, _ in BAD_COMBOS]
)
def test_incoherent_flag_combo_exits_2(capsys, argv, flag):
    with pytest.raises(SystemExit) as excinfo:
        cli.main(argv)
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert flag in err
    assert argv[0] in err  # the message names the offending experiment


def test_coherent_scoped_flags_pass_validation():
    parser = cli._build_parser()
    args = parser.parse_args(
        ["robustness-study", "--quick", "--levels", "0.2,0.5",
         "--checkpoint", "ck.json", "--trial-timeout", "10",
         "--trial-retries", "2", "--json", "out.json"]
    )
    cli._validate_args(parser, args)  # must not raise / exit
    args = parser.parse_args(["attack", "--trial", "3"])
    cli._validate_args(parser, args)
    args = parser.parse_args(["verify", "--quick", "--only", "fig1",
                              "--update-golden"])
    cli._validate_args(parser, args)
    args = parser.parse_args(
        ["campaign", "--sessions", "1000", "--shard-size", "100",
         "--mode", "analytic", "--checkpoint-dir", "ck",
         "--max-objects", "48", "--count-exponent", "0.8",
         "--size-exponent", "1.2", "--json", "out.json",
         "--allow-partial", "--deadline", "60",
         "--heartbeat-timeout", "30", "--failure-manifest", "m.json"]
    )
    cli._validate_args(parser, args)
    args = parser.parse_args(["chaos", "--quick",
                              "--scenario", "deadline-expiry"])
    cli._validate_args(parser, args)
    args = parser.parse_args(
        ["infer-study", "--trials", "2", "--reps", "2",
         "--defenses", "off,pad256", "--classifiers", "exact,centroid",
         "--max-objects", "4"]
    )
    cli._validate_args(parser, args)
    args = parser.parse_args(
        ["infer", "--sessions", "10", "--shard-size", "5",
         "--checkpoint-dir", "ck", "--reps", "2", "--json", "out.json"]
    )
    cli._validate_args(parser, args)


def _smoke(capsys, argv):
    code = cli.main(argv)
    out = capsys.readouterr().out
    return code, out


FAST_EXPERIMENTS = [
    "baseline", "table1", "table2", "fig1", "fig5", "fig6",
    "delay", "trigger", "partialmux", "fingerprint", "attack", "profile",
    "transport-study", "infer-study",
]

SLOW_EXPERIMENTS = ["ablations", "streaming", "generalization"]


@pytest.mark.parametrize("experiment", FAST_EXPERIMENTS)
def test_experiment_smoke(capsys, experiment):
    code, out = _smoke(capsys, [experiment, "--trials", "1",
                                "--workers", "1"])
    assert code == 0
    assert out.strip()


@pytest.mark.slow
@pytest.mark.parametrize("experiment", SLOW_EXPERIMENTS)
def test_heavy_experiment_smoke(capsys, experiment):
    code, out = _smoke(capsys, [experiment, "--trials", "1",
                                "--workers", "1"])
    assert code == 0
    assert out.strip()


def test_transport_flag_exports_environment(capsys, monkeypatch):
    import os

    # setenv (not delenv) so teardown restores the pre-test state even
    # though cli.main writes the variable itself.
    monkeypatch.setenv("REPRO_TRANSPORT", "tcp")
    code, out = _smoke(capsys, ["fig1", "--transport", "quic"])
    assert code == 0
    # Mirrors --backend: the choice is exported so campaign workers
    # and env-resolving constructors inherit it.
    assert os.environ.get("REPRO_TRANSPORT") == "quic"


def test_scorecard_smoke(capsys):
    # Scorecard's exit code encodes the shape verdict, not dispatch
    # health — at --trials 1 the paper's shapes legitimately may not
    # hold, so only 0/1 (ran and rendered) count as a healthy dispatch.
    code, out = _smoke(capsys, ["scorecard", "--trials", "1",
                                "--workers", "1"])
    assert code in (0, 1)
    assert out.strip()


def test_infer_study_smoke(capsys):
    code, out = _smoke(capsys, ["infer-study", "--trials", "2",
                                "--workers", "1", "--reps", "2",
                                "--max-objects", "4"])
    assert code == 0
    assert "E19 / infer" in out
    assert "exact-match baseline" in out


def test_infer_campaign_smoke(capsys, tmp_path):
    json_path = tmp_path / "frontier.json"
    code = cli.main(["infer", "--sessions", "4", "--shard-size", "2",
                     "--workers", "1", "--reps", "2",
                     "--max-objects", "4", "--json", str(json_path)])
    captured = capsys.readouterr()
    assert code == 0
    assert "E19 / infer" in captured.out
    assert "shards=2" in captured.out
    assert "sessions in" in captured.err
    import json

    payload = json.loads(json_path.read_text())
    assert payload["sessions"] == 4
    assert payload["format"] == "repro.infer.frontier/v1"
    assert payload["summary_digest"]


def test_infer_unknown_defense_exits_2(capsys):
    code = cli.main(["infer", "--defenses", "nosuch"])
    captured = capsys.readouterr()
    assert code == 2
    assert "nosuch" in captured.err


def test_robustness_study_smoke(capsys):
    code, out = _smoke(capsys, ["robustness-study", "--quick",
                                "--trials", "1", "--workers", "1"])
    assert code == 0
    assert out.strip()


def test_campaign_smoke(capsys, tmp_path):
    json_path = tmp_path / "campaign.json"
    code = cli.main(["campaign", "--sessions", "300", "--shard-size", "100",
                     "--workers", "1", "--json", str(json_path)])
    captured = capsys.readouterr()
    assert code == 0
    assert "campaign" in captured.out
    assert "sessions in" in captured.err
    assert "peak RSS" in captured.err
    import json

    payload = json.loads(json_path.read_text())
    assert payload["campaign"]["sessions"] == 300
    assert payload["summary"]["counts"]["sessions"] == 300


@pytest.mark.slow
def test_verify_smoke(capsys):
    code, out = _smoke(capsys, ["verify", "--only", "fig1",
                                "--fuzz-examples", "25"])
    assert code == 0
    assert "VERDICT: PASS" in out


def test_verify_unknown_only_exits_2(capsys):
    code = cli.main(["verify", "--only", "nosuch"])
    captured = capsys.readouterr()
    assert code == 2
    assert "nosuch" in captured.err


def test_campaign_failed_shards_exit_1_with_error_table(capsys):
    # deadline 0 without --allow-partial: every shard is skipped, the
    # campaign cannot produce a trustworthy total, so it must fail with
    # the concise per-shard table on stderr (not a raw traceback).
    code = cli.main(["campaign", "--sessions", "400", "--shard-size", "100",
                     "--workers", "1", "--deadline", "0"])
    captured = capsys.readouterr()
    assert code == 1
    assert "Campaign shard failures" in captured.err
    assert "deadline" in captured.err
    assert "shard(s) failed after retries" in captured.err


def test_campaign_allow_partial_exits_3(capsys, tmp_path):
    manifest = tmp_path / "manifest.json"
    code = cli.main(["campaign", "--sessions", "400", "--shard-size", "100",
                     "--workers", "1", "--deadline", "0",
                     "--allow-partial", "--failure-manifest", str(manifest)])
    captured = capsys.readouterr()
    assert code == 3
    assert "coverage (PARTIAL)" in captured.out
    assert "PARTIAL coverage" in captured.err
    assert manifest.exists()
    import json

    from repro.campaign import validate_manifest

    payload = json.loads(manifest.read_text())
    validate_manifest(payload)
    assert payload["status"] == "partial"


def test_chaos_unknown_scenario_exits_2(capsys):
    code = cli.main(["chaos", "--scenario", "nosuch"])
    captured = capsys.readouterr()
    assert code == 2
    assert "nosuch" in captured.err


def test_chaos_single_scenario_smoke(capsys):
    code = cli.main(["chaos", "--scenario", "deadline-expiry"])
    captured = capsys.readouterr()
    assert code == 0
    assert "Chaos harness" in captured.out
    assert "deadline-expiry" in captured.out
    assert "PASS" in captured.out
