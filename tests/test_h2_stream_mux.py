"""Unit tests for the stream state machine and multiplexing schedulers."""

import pytest

from repro.h2.errors import H2ErrorCode, StreamError
from repro.h2.frames import DataFrame, HeadersFrame
from repro.h2.mux import FifoScheduler, PriorityScheduler, RoundRobinScheduler
from repro.h2.priority import PriorityTree
from repro.h2.stream import H2Stream, StreamState


def _stream(stream_id=1):
    return H2Stream(stream_id, send_window=65535, receive_window=65535)


# -- H2Stream ----------------------------------------------------------------

def test_request_response_lifecycle():
    stream = _stream()
    # Client view: send request headers with END_STREAM.
    stream.send_headers(end_stream=True)
    assert stream.state is StreamState.HALF_CLOSED_LOCAL
    stream.receive_headers(end_stream=False)
    stream.receive_data(1000, end_stream=True)
    assert stream.state is StreamState.CLOSED
    assert stream.data_received == 1000


def test_server_side_lifecycle():
    stream = _stream()
    stream.receive_headers(end_stream=True)
    assert stream.state is StreamState.HALF_CLOSED_REMOTE
    stream.send_headers(end_stream=False)
    stream.send_data(500, end_stream=True)
    assert stream.state is StreamState.CLOSED
    assert stream.data_sent == 500


def test_data_on_idle_stream_rejected():
    stream = _stream()
    with pytest.raises(StreamError):
        stream.send_data(10, end_stream=False)
    with pytest.raises(StreamError):
        stream.receive_data(10, end_stream=False)


def test_headers_after_close_rejected():
    stream = _stream()
    stream.send_headers(end_stream=True)
    stream.receive_headers(end_stream=True)
    assert stream.closed
    with pytest.raises(StreamError):
        stream.send_headers(end_stream=False)


def test_reset_closes_immediately():
    stream = _stream()
    stream.send_headers(end_stream=False)
    stream.reset(H2ErrorCode.CANCEL)
    assert stream.closed
    assert stream.was_reset
    assert stream.reset_code is H2ErrorCode.CANCEL


def test_send_data_consumes_window():
    stream = _stream()
    stream.send_headers(end_stream=False)
    stream.send_data(1000, end_stream=False)
    assert stream.send_window.available == 65535 - 1000


def test_reserve_transitions():
    stream = _stream()
    stream.reserve_local()
    assert stream.state is StreamState.RESERVED_LOCAL
    other = _stream(2)
    other.reserve_remote()
    assert other.state is StreamState.RESERVED_REMOTE
    with pytest.raises(StreamError):
        other.reserve_remote()


def test_stream_id_positive():
    with pytest.raises(ValueError):
        H2Stream(0, 100, 100)


# -- schedulers -----------------------------------------------------------------

def _data(stream_id, size=100):
    return DataFrame(stream_id=stream_id, data_bytes=size)


def test_round_robin_interleaves():
    scheduler = RoundRobinScheduler()
    for _ in range(3):
        scheduler.enqueue(1, _data(1))
        scheduler.enqueue(3, _data(3))
    order = [scheduler.next_frame().stream_id for _ in range(6)]
    assert order == [1, 3, 1, 3, 1, 3]


def test_round_robin_new_stream_joins_rotation():
    scheduler = RoundRobinScheduler()
    scheduler.enqueue(1, _data(1))
    scheduler.enqueue(1, _data(1))
    assert scheduler.next_frame().stream_id == 1
    scheduler.enqueue(3, _data(3))
    order = [scheduler.next_frame().stream_id for _ in range(2)]
    assert sorted(order) == [1, 3]


def test_fifo_drains_streams_in_arrival_order():
    scheduler = FifoScheduler()
    for index in range(3):
        scheduler.enqueue(1, DataFrame(stream_id=1, data_bytes=100,
                                       end_stream=(index == 2)))
    for index in range(3):
        scheduler.enqueue(3, DataFrame(stream_id=3, data_bytes=100,
                                       end_stream=(index == 2)))
    order = [scheduler.next_frame().stream_id for _ in range(6)]
    assert order == [1, 1, 1, 3, 3, 3]


def test_fifo_holds_wire_through_production_pause():
    scheduler = FifoScheduler()
    scheduler.enqueue(1, DataFrame(stream_id=1, data_bytes=100))
    scheduler.enqueue(3, DataFrame(stream_id=3, data_bytes=100))
    assert scheduler.next_frame().stream_id == 1
    # Stream 1 not finished (no END_STREAM yet): the wire is held even
    # though stream 3 has a frame ready.
    assert scheduler.next_frame() is None
    scheduler.enqueue(1, DataFrame(stream_id=1, data_bytes=50, end_stream=True))
    assert scheduler.next_frame().stream_id == 1
    assert scheduler.next_frame().stream_id == 3


def test_fifo_flush_releases_wire():
    scheduler = FifoScheduler()
    scheduler.enqueue(1, DataFrame(stream_id=1, data_bytes=100))
    scheduler.enqueue(3, DataFrame(stream_id=3, data_bytes=100))
    assert scheduler.next_frame().stream_id == 1
    scheduler.flush_stream(1)
    assert scheduler.next_frame().stream_id == 3


def test_flush_stream_removes_queued_frames():
    scheduler = RoundRobinScheduler()
    scheduler.enqueue(1, _data(1))
    scheduler.enqueue(1, _data(1))
    scheduler.enqueue(3, _data(3))
    assert scheduler.flush_stream(1) == 2
    assert scheduler.pending_frames == 1
    assert scheduler.next_frame().stream_id == 3


def test_flush_unknown_stream_returns_zero():
    assert RoundRobinScheduler().flush_stream(9) == 0


def test_next_frame_empty_returns_none():
    assert RoundRobinScheduler().next_frame() is None
    assert FifoScheduler().next_frame() is None
    assert PriorityScheduler().next_frame() is None


def test_eligibility_skips_blocked_streams():
    scheduler = RoundRobinScheduler()
    scheduler.enqueue(1, _data(1, size=5000))
    scheduler.enqueue(3, _data(3, size=100))
    # Pretend stream 1's frame exceeds the flow-control window.
    frame = scheduler.next_frame(eligible=lambda f: f.data_bytes <= 1000)
    assert frame.stream_id == 3
    # Nothing else eligible.
    assert scheduler.next_frame(eligible=lambda f: f.data_bytes <= 1000) is None
    # Once the window opens, stream 1 sends.
    assert scheduler.next_frame().stream_id == 1


def test_per_stream_order_is_fifo():
    scheduler = RoundRobinScheduler()
    first = HeadersFrame(stream_id=1)
    second = _data(1)
    scheduler.enqueue(1, first)
    scheduler.enqueue(1, second)
    assert scheduler.next_frame() is first
    assert scheduler.next_frame() is second


def test_priority_scheduler_respects_weights():
    tree = PriorityTree()
    scheduler = PriorityScheduler(tree)
    tree.insert(1, weight=200)
    tree.insert(3, weight=10)
    for _ in range(20):
        scheduler.enqueue(1, _data(1, 1000))
        scheduler.enqueue(3, _data(3, 1000))
    first_ten = [scheduler.next_frame().stream_id for _ in range(10)]
    assert first_ten.count(1) > first_ten.count(3)


def test_priority_scheduler_auto_inserts_unknown_streams():
    scheduler = PriorityScheduler()
    scheduler.enqueue(7, _data(7))
    assert scheduler.next_frame().stream_id == 7


def test_pending_frames_counts():
    scheduler = RoundRobinScheduler()
    assert scheduler.pending_frames == 0
    scheduler.enqueue(1, _data(1))
    scheduler.enqueue(3, _data(3))
    assert scheduler.pending_frames == 2
    scheduler.next_frame()
    assert scheduler.pending_frames == 1
