"""Unit tests for the size predictor, kNN classifier and blob analyzer."""

import pytest

from repro.core.analysis import PartialMultiplexingAnalyzer
from repro.core.estimator import ObjectEstimate
from repro.core.predictor import (
    NearestNeighborClassifier,
    SizePredictor,
)

SIZE_MAP = {"small": 5200, "medium": 9900, "large": 15800}


def _estimate(payload, start=1.0):
    return ObjectEstimate(
        start_time=start, end_time=start + 0.01,
        payload_bytes=payload, packets=5, record_starts=4,
    )


def _predictor(**kwargs):
    return SizePredictor(SIZE_MAP, **kwargs)


def test_expected_payload_model():
    predictor = _predictor(chunk_bytes=2048)
    # 5200 B body → 3 DATA frames → 3×(9+29) overhead + headers 120.
    assert predictor.expected_payload(5200) == 5200 + 3 * 38 + 120


def test_expected_for_unknown_raises():
    with pytest.raises(KeyError):
        _predictor().expected_for("nope")


def test_classify_within_tolerance():
    predictor = _predictor()
    expected = predictor.expected_for("medium")
    match = predictor.classify(_estimate(expected + 100))
    assert match is not None and match.object_id == "medium"
    assert match.error == 100


def test_classify_out_of_tolerance_none():
    predictor = _predictor(tolerance_abs=50, tolerance_rel=0.001)
    expected = predictor.expected_for("medium")
    assert predictor.classify(_estimate(expected + 500)) is None


def test_classify_restricted_candidates():
    predictor = _predictor()
    expected = predictor.expected_for("medium")
    match = predictor.classify(
        _estimate(expected), candidates=["small", "large"]
    )
    assert match is None


def test_find_object_best_match():
    predictor = _predictor()
    expected = predictor.expected_for("small")
    estimates = [_estimate(expected + 300), _estimate(expected + 10)]
    best = predictor.find_object(estimates, "small")
    assert best.payload_bytes == expected + 10


def test_predict_sequence_consumes_each_once():
    predictor = _predictor()
    estimates = [
        _estimate(predictor.expected_for("large"), start=1.0),
        _estimate(predictor.expected_for("small"), start=2.0),
        _estimate(predictor.expected_for("small"), start=3.0),  # dup
    ]
    labelled = predictor.predict_sequence(estimates, list(SIZE_MAP))
    ids = [match.object_id for _, match in labelled]
    assert ids == ["large", "small"]


def test_predict_sequence_assignment_recovers_order():
    predictor = _predictor()
    order = ["medium", "large", "small"]
    estimates = [
        _estimate(predictor.expected_for(object_id), start=float(index))
        for index, object_id in enumerate(order)
    ]
    labelled = predictor.predict_sequence_assignment(estimates, list(SIZE_MAP))
    assert [match.object_id for _, match in labelled] == order


def test_predict_sequence_assignment_rejects_early_junk():
    """A dense late window wins over scattered early coincidences."""
    predictor = _predictor()
    early_junk = [
        _estimate(predictor.expected_for("small") + 40, start=0.0),
        _estimate(predictor.expected_for("large") - 60, start=3.0),
    ]
    true_run = [
        _estimate(predictor.expected_for("large"), start=10.0),
        _estimate(predictor.expected_for("small"), start=10.2),
        _estimate(predictor.expected_for("medium"), start=10.4),
    ]
    labelled = predictor.predict_sequence_assignment(
        early_junk + true_run, list(SIZE_MAP)
    )
    assert [match.object_id for _, match in labelled] == [
        "large", "small", "medium"
    ]


def test_predict_sequence_assignment_empty():
    assert _predictor().predict_sequence_assignment([], list(SIZE_MAP)) == []


def test_empty_size_map_rejected():
    with pytest.raises(ValueError):
        SizePredictor({})


# -- NearestNeighborClassifier ---------------------------------------------------

def test_knn_basic_classification():
    classifier = NearestNeighborClassifier(k=1)
    classifier.fit([[0.0], [10.0], [20.0]], ["a", "b", "c"])
    assert classifier.predict([[1.0], [19.0]]) == ["a", "c"]


def test_knn_majority_vote():
    classifier = NearestNeighborClassifier(k=3)
    classifier.fit(
        [[0.0], [0.5], [1.0], [10.0]], ["a", "a", "b", "b"]
    )
    assert classifier.predict([[0.2]]) == ["a"]


def test_knn_score():
    classifier = NearestNeighborClassifier(k=1)
    classifier.fit([[0.0], [10.0]], ["a", "b"])
    assert classifier.score([[0.1], [9.0]], ["a", "b"]) == 1.0


def test_knn_standardizes_features():
    # Second dimension has a huge scale; without standardization it
    # would dominate.
    classifier = NearestNeighborClassifier(k=1)
    classifier.fit(
        [[0.0, 1e6], [1.0, 1e6 + 1]], ["a", "b"]
    )
    assert classifier.predict([[0.1, 1e6]]) == ["a"]


def test_knn_validation():
    with pytest.raises(ValueError):
        NearestNeighborClassifier(k=0)
    classifier = NearestNeighborClassifier(k=3)
    with pytest.raises(ValueError):
        classifier.fit([[1.0]], ["a"])  # fewer points than k
    with pytest.raises(RuntimeError):
        NearestNeighborClassifier().predict([[1.0]])


# -- PartialMultiplexingAnalyzer ----------------------------------------------------

def test_blob_explained_by_pair():
    predictor = _predictor()
    analyzer = PartialMultiplexingAnalyzer(predictor)
    blob = _estimate(
        predictor.expected_for("small") + predictor.expected_for("medium")
    )
    explanations = analyzer.explain(blob)
    assert explanations
    assert explanations[0].object_ids == ("medium", "small")


def test_blob_single_object_explanation():
    predictor = _predictor()
    analyzer = PartialMultiplexingAnalyzer(predictor)
    blob = _estimate(predictor.expected_for("large") + 30)
    explanations = analyzer.explain(blob)
    assert explanations[0].object_ids == ("large",)


def test_blob_identify_members_unambiguous():
    predictor = _predictor()
    analyzer = PartialMultiplexingAnalyzer(predictor, tolerance_abs=200)
    blob = _estimate(
        predictor.expected_for("small") + predictor.expected_for("large")
    )
    assert analyzer.identify_members(blob) == ("large", "small")


def test_blob_identify_members_ambiguous_returns_none():
    # Craft a size map where two subsets sum nearly equal.
    predictor = SizePredictor({"a": 5000, "b": 7000, "c": 12020})
    analyzer = PartialMultiplexingAnalyzer(predictor, tolerance_abs=500)
    blob = _estimate(predictor.expected_for("a") + predictor.expected_for("b"))
    # {a,b} ≈ {c} in size → ambiguous.
    assert analyzer.identify_members(blob) is None


def test_blob_no_explanation():
    predictor = _predictor()
    analyzer = PartialMultiplexingAnalyzer(
        predictor, tolerance_abs=10, tolerance_rel=0.0001
    )
    assert analyzer.explain(_estimate(1234)) == []
    assert analyzer.identify_members(_estimate(1234)) is None


def test_blob_analyzer_validation():
    with pytest.raises(ValueError):
        PartialMultiplexingAnalyzer(_predictor(), max_objects_per_blob=0)
