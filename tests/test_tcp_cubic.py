"""Tests for CUBIC congestion control."""

import pytest

from repro.tcp.config import TCPConfig
from repro.tcp.congestion import (
    CubicCongestionControl,
    RenoCongestionControl,
    make_congestion_control,
)
from repro.tcp.connection import TCPConnection
from repro.tcp.listener import TCPListener


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _cubic(clock=None, iw=10):
    clock = clock or _Clock()
    return CubicCongestionControl(1000, clock, iw), clock


def test_cubic_slow_start():
    cc, clock = _cubic(iw=1)
    cc.on_ack_progress(1000, snd_una=1000)
    assert cc.cwnd == 2000
    assert cc.in_slow_start


def test_cubic_loss_reduces_by_beta():
    cc, clock = _cubic()
    cc.on_fast_retransmit(flight_size=10_000, snd_nxt=10_000)
    assert cc.ssthresh == 7000  # 0.7 × 10000
    assert cc.in_recovery


def test_cubic_concave_regrowth_toward_w_max():
    """After a loss the window climbs back toward w_max along the
    cubic curve: fast at first, flattening near w_max."""
    cc, clock = _cubic(iw=100)  # 100 KB window
    cc.ssthresh = 1  # force congestion avoidance
    cc.on_fast_retransmit(flight_size=100_000, snd_nxt=100_000)
    cc.on_ack_progress(1000, snd_una=100_000)  # exit recovery, new epoch
    start = cc.cwnd
    growth = []
    for step in range(20):
        clock.now += 0.5
        before = cc.cwnd
        for _ in range(10):
            cc.on_ack_progress(1000, snd_una=200_000)
        growth.append(cc.cwnd - before)
    assert cc.cwnd > start
    # Early growth exceeds the late-plateau growth (concavity).
    assert sum(growth[:4]) > sum(growth[8:12])


def test_cubic_convex_probing_past_w_max():
    """Well past K the window exceeds the old w_max (convex region)."""
    cc, clock = _cubic(iw=20)
    cc.ssthresh = 1
    cc.on_fast_retransmit(flight_size=20_000, snd_nxt=20_000)
    cc.on_ack_progress(1000, snd_una=20_000)
    for _ in range(200):
        clock.now += 0.2
        cc.on_ack_progress(1000, snd_una=100_000)
    assert cc.cwnd > 20_000  # grew beyond the pre-loss window


def test_cubic_timeout_collapses():
    cc, clock = _cubic()
    cc.on_timeout(flight_size=10_000)
    assert cc.cwnd == 1000
    assert cc.timeouts == 1


def test_cubic_tcp_friendly_floor():
    """CUBIC never grows slower than the emulated Reno window."""
    cc, clock = _cubic(iw=4)
    cc.ssthresh = 1
    cc.on_fast_retransmit(flight_size=4000, snd_nxt=4000)
    cc.on_ack_progress(1000, snd_una=4000)
    floor_before = cc.cwnd
    # Many ACKs with (almost) no time passing: the cubic term is flat,
    # but the Reno emulation still grows the window.
    for _ in range(50):
        clock.now += 0.001
        cc.on_ack_progress(1000, snd_una=10_000)
    assert cc.cwnd > floor_before


def test_factory_dispatch():
    clock = _Clock()
    assert isinstance(
        make_congestion_control("reno", 1000, 10, clock),
        RenoCongestionControl,
    )
    assert isinstance(
        make_congestion_control("cubic", 1000, 10, clock),
        CubicCongestionControl,
    )
    with pytest.raises(ValueError):
        make_congestion_control("bbr", 1000, 10, clock)


def test_config_validates_algorithm():
    with pytest.raises(ValueError):
        TCPConfig(congestion_control="bbr")


def test_cubic_transfer_end_to_end(wire):
    """A connection configured with CUBIC completes a large transfer."""
    sim, host_a, host_b = wire
    accepted = []
    TCPListener(sim, host_b, 443, accepted.append,
                config=TCPConfig(congestion_control="cubic"))
    client = TCPConnection(
        sim, host_a, 50_000, host_b.endpoint(443),
        config=TCPConfig(congestion_control="cubic"),
    )
    received = []

    class _Msg:
        wire_length = 200_000
        name = "big"

    client.connect()
    sim.run_until(0.1)
    accepted[0].on_message = lambda m, dup: received.append(m.name)
    client.send_message(_Msg())
    sim.run_until(10.0)
    assert received == ["big"]
    assert isinstance(client.cc, CubicCongestionControl)
