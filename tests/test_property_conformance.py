"""Hypothesis twins of the ``repro verify`` conformance layer.

The deterministic fuzz in :mod:`repro.conform.frames` runs inside the
CLI harness with no dependencies; these suites drive the same
round-trip laws through Hypothesis (≥200 examples each in CI) so frame
fields and HPACK header blocks get adversarial shrinking too.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.conform.frames import check_round_trip
from repro.h2.errors import H2ErrorCode
from repro.h2.frames import (
    ContinuationFrame,
    DataFrame,
    GoAwayFrame,
    HeadersFrame,
    PingFrame,
    PriorityFrame,
    PushPromiseFrame,
    RstStreamFrame,
    SettingsFrame,
    WindowUpdateFrame,
)
from repro.h2.wire import decode_frame, decode_frames, encode_frame
from repro.hpack.codec import HeaderBlock, HpackDecoder, HpackEncoder

stream_ids = st.integers(1, (1 << 31) - 1)
error_codes = st.sampled_from(tuple(H2ErrorCode))
block_lengths = st.integers(0, 4096)


def _opt_block(length):
    return HeaderBlock((), length) if length else None


data_frames = st.builds(
    DataFrame,
    stream_id=stream_ids,
    data_bytes=st.integers(0, 1 << 14),
    end_stream=st.booleans(),
    padding=st.integers(0, 255),
)

headers_frames = st.tuples(
    stream_ids, block_lengths, st.booleans(), st.booleans(),
    st.none() | st.integers(1, 256), st.integers(0, (1 << 31) - 1),
    st.booleans(),
).map(lambda t: HeadersFrame(
    stream_id=t[0], block=_opt_block(t[1]), end_stream=t[2],
    end_headers=t[3], priority_weight=t[4],
    priority_depends_on=t[5] if t[4] else 0,
    priority_exclusive=t[6] if t[4] else False,
))

priority_frames = st.builds(
    PriorityFrame,
    stream_id=stream_ids,
    depends_on=st.integers(0, (1 << 31) - 1),
    weight=st.integers(1, 256),
    exclusive=st.booleans(),
)

rst_frames = st.builds(
    RstStreamFrame, stream_id=stream_ids, error_code=error_codes
)

settings_frames = st.one_of(
    st.builds(SettingsFrame, ack=st.just(True)),
    st.builds(
        SettingsFrame,
        settings=st.dictionaries(
            st.integers(0, 0xFFFF), st.integers(0, (1 << 32) - 1),
            max_size=8,
        ),
    ),
)

push_frames = st.builds(
    PushPromiseFrame,
    stream_id=stream_ids,
    promised_stream_id=stream_ids,
    block=block_lengths.map(_opt_block),
)

ping_frames = st.builds(PingFrame, ack=st.booleans())

goaway_frames = st.builds(
    GoAwayFrame,
    last_stream_id=st.integers(0, (1 << 31) - 1),
    error_code=error_codes,
    debug_bytes=st.integers(0, 512),
)

window_frames = st.builds(
    WindowUpdateFrame,
    stream_id=st.integers(0, (1 << 31) - 1),
    increment=st.integers(1, (1 << 31) - 1),
)

continuation_frames = st.builds(
    ContinuationFrame,
    stream_id=stream_ids,
    block_bytes=block_lengths,
    end_headers=st.booleans(),
)

frames = st.one_of(
    data_frames, headers_frames, priority_frames, rst_frames,
    settings_frames, push_frames, ping_frames, goaway_frames,
    window_frames, continuation_frames,
)

header_names = st.sampled_from(
    [":method", ":path", ":authority", "accept", "cookie",
     "cache-control", "x-custom-key", "user-agent", "set-cookie"]
)
header_values = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    min_size=0, max_size=48,
)
header_lists = st.lists(
    st.tuples(header_names, header_values), min_size=1, max_size=12
)


@given(frames)
@settings(max_examples=200)
def test_frame_wire_round_trip(frame):
    """encode→decode→encode is byte-exact and signature-preserving for
    arbitrary frames of every type."""
    assert check_round_trip(frame) == []


@given(st.lists(frames, min_size=1, max_size=8))
@settings(max_examples=100)
def test_frame_stream_round_trip(frame_list):
    """A concatenated frame sequence re-frames and re-encodes exactly."""
    blob = b"".join(encode_frame(frame) for frame in frame_list)
    decoded = decode_frames(blob)
    assert len(decoded) == len(frame_list)
    assert b"".join(encode_frame(frame) for frame in decoded) == blob


@given(
    st.lists(
        st.tuples(header_lists, st.none() | st.sampled_from((0, 256, 4096))),
        min_size=1, max_size=6,
    )
)
@settings(max_examples=200)
def test_hpack_round_trip_with_resizes(blocks):
    """Encoder/decoder stay in sync across blocks and table resizes,
    and every block rides a HEADERS frame with its octet count intact."""
    encoder, decoder = HpackEncoder(), HpackDecoder()
    for headers, resize in blocks:
        block = encoder.encode(headers)
        assert decoder.decode(block) == headers
        frame = HeadersFrame(stream_id=1, block=block)
        wire_frame, _ = decode_frame(encode_frame(frame))
        arrived = wire_frame.block.encoded_length if wire_frame.block else 0
        assert arrived == block.encoded_length
        assert encoder.table.size == decoder.table.size
        if resize is not None:
            encoder.table.resize(resize)
            decoder.table.resize(resize)
            assert encoder.table.size <= resize
