"""Unit tests for the web model: objects, sites, isidewith, workload."""

import pytest

from repro.web.isidewith import (
    GAP_BEFORE_HTML,
    HTML_OBJECT_ID,
    PARTIES,
    PARTY_IMAGE_SIZES,
    RESULT_HTML_BYTES,
    build_isidewith_site,
)
from repro.web.objects import WebObject
from repro.web.site import LoadSchedule, ScheduledRequest, Website
from repro.web.workload import VolunteerWorkload
from repro.simkernel.randomstream import RandomStreams


# -- WebObject ---------------------------------------------------------------

def test_web_object_defaults_object_id_to_path():
    obj = WebObject("/x.png", 100, "image/png")
    assert obj.object_id == "/x.png"


def test_web_object_resource_spec_roundtrip():
    obj = WebObject("/x.png", 100, "image/png", object_id="X",
                    think_time_range=(0.001, 0.002))
    spec = obj.resource_spec()
    assert spec.path == "/x.png"
    assert spec.body_bytes == 100
    assert spec.object_id == "X"
    assert spec.think_time_range == (0.001, 0.002)


def test_web_object_positive_size():
    with pytest.raises(ValueError):
        WebObject("/x", 0)


# -- Website / LoadSchedule ------------------------------------------------------

def test_website_router_and_404():
    site = Website("w", [WebObject("/a", 10)])
    assert site.router("/a").body_bytes == 10
    assert site.router("/missing") is None


def test_website_rejects_duplicate_paths():
    with pytest.raises(ValueError):
        Website("w", [WebObject("/a", 1), WebObject("/a", 2)])


def test_website_object_by_id():
    site = Website("w", [WebObject("/a", 10, object_id="A")])
    assert site.object_by_id("A").path == "/a"
    with pytest.raises(KeyError):
        site.object_by_id("B")


def test_size_map():
    site = Website("w", [WebObject("/a", 10, object_id="A")])
    assert site.size_map() == {"A": 10}


def test_schedule_request_times_cumulative():
    schedule = LoadSchedule([
        ScheduledRequest(0.1, WebObject("/a", 1)),
        ScheduledRequest(0.2, WebObject("/b", 1)),
    ])
    assert schedule.request_times() == [pytest.approx(0.1), pytest.approx(0.3)]


def test_schedule_index_of():
    schedule = LoadSchedule([
        ScheduledRequest(0.1, WebObject("/a", 1, object_id="A")),
        ScheduledRequest(0.2, WebObject("/b", 1, object_id="B")),
    ])
    assert schedule.index_of("B") == 1
    with pytest.raises(KeyError):
        schedule.index_of("C")


def test_schedule_rejects_empty():
    with pytest.raises(ValueError):
        LoadSchedule([])


def test_scheduled_request_negative_gap():
    with pytest.raises(ValueError):
        ScheduledRequest(-0.1, WebObject("/a", 1))


# -- isidewith -------------------------------------------------------------------

def test_isidewith_html_is_sixth_request():
    site = build_isidewith_site(PARTIES)
    assert site.html_index == 5  # 0-based → the 6th request
    assert site.schedule[site.html_index].obj.object_id == HTML_OBJECT_ID
    assert site.schedule[site.html_index].obj.size == RESULT_HTML_BYTES


def test_isidewith_has_48_embedded_plus_html():
    site = build_isidewith_site(PARTIES)
    assert len(site.website) == 49  # HTML + 48 embedded objects
    assert len(site.schedule) == 49  # every object requested once


def test_isidewith_images_in_preference_order():
    order = tuple(reversed(PARTIES))
    site = build_isidewith_site(order)
    scheduled = [
        site.schedule[index].obj.object_id for index in site.image_indices
    ]
    assert scheduled == [f"emblem-{party}" for party in order]


def test_isidewith_images_are_script_triggered():
    site = build_isidewith_site(PARTIES)
    for index, request in enumerate(site.schedule):
        expected = index in site.image_indices
        assert request.script_triggered == expected


def test_isidewith_emblem_sizes_distinct():
    assert len(set(PARTY_IMAGE_SIZES.values())) == 8
    assert all(5000 <= size <= 16000 for size in PARTY_IMAGE_SIZES.values())


def test_isidewith_table2_gaps():
    site = build_isidewith_site(PARTIES)
    assert site.schedule[site.html_index].gap == GAP_BEFORE_HTML
    first_image = site.image_indices[0]
    assert site.schedule[first_image].gap == pytest.approx(0.780)
    # Sub-millisecond gaps between consecutive images (Table II).
    for index in site.image_indices[1:]:
        assert site.schedule[index].gap <= 0.002


def test_isidewith_invalid_party_order():
    with pytest.raises(ValueError):
        build_isidewith_site(("democratic",) * 8)


def test_isidewith_gap_noise_requires_rng():
    with pytest.raises(ValueError):
        build_isidewith_site(PARTIES, gap_noise=0.1)


def test_isidewith_gap_noise_perturbs():
    rng = RandomStreams(1)
    noisy = build_isidewith_site(PARTIES, gap_noise=0.2, rng=rng)
    clean = build_isidewith_site(PARTIES)
    noisy_gaps = [request.gap for request in noisy.schedule]
    clean_gaps = [request.gap for request in clean.schedule]
    assert noisy_gaps != clean_gaps
    for noisy_gap, clean_gap in zip(noisy_gaps, clean_gaps):
        assert 0.79 * clean_gap <= noisy_gap <= 1.21 * clean_gap


def test_objects_of_interest_lists_nine():
    site = build_isidewith_site(PARTIES)
    interest = site.objects_of_interest
    assert len(interest) == 9
    assert interest[0] == HTML_OBJECT_ID


# -- workload ---------------------------------------------------------------------

def test_workload_orders_reproducible():
    first = VolunteerWorkload(seed=5).party_order_for(3)
    second = VolunteerWorkload(seed=5).party_order_for(3)
    assert first == second


def test_workload_orders_vary_by_trial():
    workload = VolunteerWorkload(seed=5)
    orders = {workload.party_order_for(trial) for trial in range(10)}
    assert len(orders) > 5


def test_workload_session_matches_order():
    workload = VolunteerWorkload(seed=5)
    session = workload.session(2)
    assert session.party_order == workload.party_order_for(2)


def test_workload_sessions_iterator():
    workload = VolunteerWorkload(seed=5)
    sessions = list(workload.sessions(3))
    assert [trial for trial, _ in sessions] == [0, 1, 2]
