"""Tests for the chaos layer (repro.netsim.faults).

Covers the impairment specs, their runtime behaviour on a Link and a
Middlebox, and the load-bearing determinism property: the same seed
realizes the same faults, so a whole faulted trial is byte-identical
across runs.
"""

import pytest

from repro.core.adversary import AdversaryConfig
from repro.netsim.address import Endpoint
from repro.netsim.capture import Direction
from repro.netsim.faults import (
    BandwidthDip,
    DelaySpike,
    Duplication,
    FaultSchedule,
    GilbertElliottLoss,
    Outage,
    ReorderWindow,
    flaps,
)
from repro.netsim.link import Link, LinkConfig
from repro.netsim.middlebox import Middlebox
from repro.netsim.packet import Packet
from repro.simkernel.randomstream import RandomStreams
from repro.simkernel.trace import TraceLog
from repro.simkernel.units import MBPS


class _Sink:
    def __init__(self):
        self.received = []
        self.times = []

    def on_packet(self, packet):
        self.received.append(packet)


def _packet():
    return Packet(Endpoint("a", 1), Endpoint("b", 2), None)


# ---------------------------------------------------------------------------
# Spec validation
# ---------------------------------------------------------------------------

def test_impairment_window_validation():
    with pytest.raises(ValueError):
        Outage(start=-1.0, duration=1.0)
    with pytest.raises(ValueError):
        Outage(start=0.0, duration=0.0)
    with pytest.raises(ValueError):
        GilbertElliottLoss(bad_loss=1.5)
    with pytest.raises(ValueError):
        GilbertElliottLoss(mean_good=0.0)
    with pytest.raises(ValueError):
        BandwidthDip(start=0.0, duration=1.0, factor=1.0)
    with pytest.raises(ValueError):
        BandwidthDip(start=0.0, duration=1.0, factor=0.0)
    with pytest.raises(ValueError):
        DelaySpike(start=0.0, duration=1.0, delay=0.0)
    with pytest.raises(ValueError):
        DelaySpike(start=0.0, duration=1.0, delay=-0.1)
    with pytest.raises(ValueError):
        Duplication(start=0.0, duration=1.0, probability=0.0)
    with pytest.raises(ValueError):
        ReorderWindow(start=0.0, duration=1.0, probability=2.0, max_delay=0.01)
    with pytest.raises(ValueError):
        ReorderWindow(start=0.0, duration=1.0, probability=0.5, max_delay=0.0)


def test_flaps_builds_repeated_outages():
    cycle = flaps(start=1.0, count=3, down=0.5, up=1.0)
    assert [outage.start for outage in cycle] == [1.0, 2.5, 4.0]
    assert all(outage.duration == 0.5 for outage in cycle)
    with pytest.raises(ValueError):
        flaps(start=0.0, count=0, down=1.0, up=1.0)
    with pytest.raises(ValueError):
        flaps(start=0.0, count=1, down=1.0, up=0.0)


def test_schedule_composition():
    empty = FaultSchedule()
    assert not empty and len(empty) == 0
    schedule = empty.extended(Outage(1.0, 2.0))
    assert schedule and len(schedule) == 1
    assert not empty, "extended() must not mutate the original"
    bigger = schedule.extended(Duplication(0.0, 1.0, 0.5))
    assert len(bigger) == 2


def test_schedule_is_picklable():
    import pickle

    schedule = FaultSchedule(
        (GilbertElliottLoss(), Outage(1.0, 2.0)) + flaps(5.0, 2, 0.5, 1.0)
    )
    clone = pickle.loads(pickle.dumps(schedule))
    assert clone == schedule


# ---------------------------------------------------------------------------
# Link-level behaviour
# ---------------------------------------------------------------------------

def _faulted_link(sim, schedule, seed=1, trace=None, **config):
    rng = RandomStreams(seed)
    return Link(
        sim, LinkConfig(**config), rng=rng, trace=trace, name="chaotic",
        faults=schedule,
    )


def test_outage_drops_only_inside_window(sim):
    trace = TraceLog()
    link = _faulted_link(
        sim, FaultSchedule((Outage(1.0, 2.0),)), trace=trace,
        propagation_delay=0.001,
    )
    sink = _Sink()
    link.b.attach(sink)
    for when in (0.5, 1.5, 2.5, 3.5):
        sim.schedule_at(when, lambda: link.a.send(_packet()))
    sim.run()
    assert len(sink.received) == 2  # 0.5 and 3.5 pass; 1.5 and 2.5 drop
    assert link.stats(0)["fault_dropped"] == 2
    assert trace.count(category="link.drop.fault") == 2
    assert link.fault_injector(0).drops == 2
    assert link.fault_injector(1).drops == 0


def test_gilbert_elliott_drops_bursts_deterministically(sim):
    schedule = FaultSchedule(
        (GilbertElliottLoss(mean_good=0.05, mean_bad=0.05),)
    )

    def deliveries(seed):
        local_sim = type(sim)()
        link = _faulted_link(local_sim, schedule, seed=seed)
        sink = _Sink()
        link.b.attach(sink)
        for index in range(200):
            local_sim.schedule_at(
                index * 0.01, lambda: link.a.send(_packet())
            )
        local_sim.run()
        return len(sink.received), link.stats(0)["fault_dropped"]

    delivered, dropped = deliveries(seed=3)
    assert dropped > 0 and delivered > 0  # bursty, not all-or-nothing
    assert delivered + dropped == 200
    assert deliveries(seed=3) == (delivered, dropped)  # same seed, same run
    assert deliveries(seed=4) != (delivered, dropped)  # new seed, new bursts


def test_bandwidth_dip_stretches_serialization(sim):
    # 40-byte headers at 1 Mbps: 320 us clean, 640 us at factor 0.5.
    link = _faulted_link(
        sim, FaultSchedule((BandwidthDip(0.0, 1.0, 0.5),)),
        bandwidth_bps=1 * MBPS, propagation_delay=0.0,
    )
    times = []

    class _Recorder:
        def on_packet(self, packet):
            times.append(sim.now)

    link.b.attach(_Recorder())
    link.a.send(_packet())
    sim.run()
    assert times == [pytest.approx(2 * 40 * 8 / 1e6)]


def test_delay_spike_shifts_arrival(sim):
    link = _faulted_link(
        sim, FaultSchedule((DelaySpike(0.0, 1.0, delay=0.030),)),
        propagation_delay=0.001,
    )
    times = []

    class _Recorder:
        def on_packet(self, packet):
            times.append(sim.now)

    link.b.attach(_Recorder())
    link.a.send(_packet())
    sim.run()
    baseline = 0.001 + 40 * 8 / LinkConfig().bandwidth_bps
    assert times == [pytest.approx(baseline + 0.030)]


def test_duplication_delivers_twice(sim):
    link = _faulted_link(
        sim, FaultSchedule((Duplication(0.0, 1.0, probability=1.0),)),
    )
    sink = _Sink()
    link.b.attach(sink)
    link.a.send(_packet())
    sim.run()
    assert len(sink.received) == 2
    assert sink.received[0].packet_id == sink.received[1].packet_id
    assert link.stats(0)["duplicated"] == 1
    assert link.fault_injector(0).duplicates == 1


def test_reorder_window_lifts_fifo_clamp(sim):
    link = _faulted_link(
        sim,
        FaultSchedule(
            (ReorderWindow(0.0, 10.0, probability=0.5, max_delay=0.050),)
        ),
        propagation_delay=0.001,
    )
    order = []
    sent = []

    class _Order:
        def on_packet(self, packet):
            order.append(packet.packet_id)

    link.b.attach(_Order())
    for index in range(30):
        packet = _packet()
        sent.append(packet.packet_id)
        sim.schedule_at(index * 0.001, lambda p=packet: link.a.send(p))
    sim.run()
    assert sorted(order) == sorted(sent)  # nothing lost
    assert order != sent  # but genuinely reordered


def test_faults_require_rng(sim):
    with pytest.raises(ValueError, match="requires an rng"):
        Link(sim, LinkConfig(), faults=FaultSchedule((Outage(0.0, 1.0),)))


def test_loss_rate_requires_rng(sim):
    # Satellite: a lossy link with no rng would silently never drop.
    with pytest.raises(ValueError, match="loss_rate"):
        Link(sim, LinkConfig(loss_rate=0.3), rng=None)


def test_empty_schedule_changes_nothing(sim):
    rng = RandomStreams(1)
    link = Link(sim, LinkConfig(), rng=rng, faults=FaultSchedule())
    assert link.fault_injector(0) is None


# ---------------------------------------------------------------------------
# Middlebox-level behaviour
# ---------------------------------------------------------------------------

def _wired_middlebox(sim, trace=None):
    box = Middlebox(sim, trace=trace)
    client_link = Link(sim, LinkConfig(propagation_delay=0.001), name="lan")
    server_link = Link(sim, LinkConfig(propagation_delay=0.001), name="wan")
    box.attach_client_side(client_link.a)
    box.attach_server_side(server_link.a)
    client_sink, server_sink = _Sink(), _Sink()
    client_link.b.attach(client_sink)
    server_link.b.attach(server_sink)
    return box, client_link, server_link, client_sink, server_sink


def test_middlebox_fault_drop_is_captured_as_dropped(sim):
    trace = TraceLog()
    box, client_link, _, _, server_sink = _wired_middlebox(sim, trace)
    rng = RandomStreams(9)
    injector = FaultSchedule((Outage(0.0, 1.0),)).bind(rng, "gw.c2s")
    box.install_faults(Direction.CLIENT_TO_SERVER, injector)
    # inject directly at the box, as the link adapter would
    box._ingress(_packet(), Direction.CLIENT_TO_SERVER)
    sim.run()
    assert server_sink.received == []
    assert box.fault_dropped == 1
    assert len(box.capture) == 1
    assert box.capture[0].dropped_by_adversary is True
    assert trace.count(category="middlebox.drop.fault") == 1


def test_middlebox_fault_duplication_forwards_twice(sim):
    box, _, _, _, server_sink = _wired_middlebox(sim)
    rng = RandomStreams(9)
    injector = FaultSchedule((Duplication(0.0, 1.0, 1.0),)).bind(rng, "gw")
    box.install_faults(Direction.CLIENT_TO_SERVER, injector)
    box._ingress(_packet(), Direction.CLIENT_TO_SERVER)
    sim.run()
    assert len(server_sink.received) == 2
    assert box.forwarded == 2


def test_middlebox_install_faults_clears_with_none(sim):
    box, _, _, _, server_sink = _wired_middlebox(sim)
    rng = RandomStreams(9)
    injector = FaultSchedule((Outage(0.0, 1.0),)).bind(rng, "gw")
    box.install_faults(Direction.CLIENT_TO_SERVER, injector)
    box.install_faults(Direction.CLIENT_TO_SERVER, None)
    box._ingress(_packet(), Direction.CLIENT_TO_SERVER)
    sim.run()
    assert len(server_sink.received) == 1
    assert box.fault_dropped == 0


# ---------------------------------------------------------------------------
# The determinism property: same seed => byte-identical faulted trial
# ---------------------------------------------------------------------------

FULL_TAXONOMY = FaultSchedule(
    (
        GilbertElliottLoss(start=0.0, duration=30.0, mean_good=1.0,
                           mean_bad=0.05),
        BandwidthDip(start=2.0, duration=3.0, factor=0.5),
        DelaySpike(start=0.5, duration=1.0, delay=0.010, jitter=0.005),
        ReorderWindow(start=4.0, duration=5.0, probability=0.3,
                      max_delay=0.010),
        Duplication(start=0.0, duration=30.0, probability=0.05),
    )
    + flaps(start=6.0, count=2, down=0.3, up=1.0)
)


def test_identical_seed_gives_byte_identical_faulted_trace():
    """Property: any FaultSchedule active, same seed => same trace."""
    import itertools

    from repro.experiments.harness import TrialConfig, run_trial
    from repro.netsim import packet as packet_module
    from repro.web.workload import VolunteerWorkload

    def run_once():
        # Packet ids come from a process-global counter; reset it so the
        # two in-process runs are comparable byte for byte.
        packet_module._packet_ids = itertools.count(1)
        workload = VolunteerWorkload(seed=7)
        config = TrialConfig(
            adversary=AdversaryConfig(max_drop_retries=1),
            faults=FULL_TAXONOMY,
            fault_location="both",
            horizon=12.0,
        )
        result = run_trial(2, workload, config)
        return (
            [record.render() for record in result.trace],
            list(result.topology.middlebox.capture),
            result.completed,
            result.duration,
        )

    first = run_once()
    second = run_once()
    assert first[0] == second[0]  # byte-identical trace
    assert first[1] == second[1]  # identical capture
    assert first[2:] == second[2:]
    # The schedule actually bit: faults left marks in the trace.
    rendered = "\n".join(first[0])
    assert "link.drop.fault" in rendered or "link.dup" in rendered


def test_fault_realizations_differ_across_seeds():
    from repro.experiments.harness import TrialConfig, run_trial
    from repro.web.workload import VolunteerWorkload

    def fault_drops(trial):
        workload = VolunteerWorkload(seed=7)
        config = TrialConfig(
            faults=FaultSchedule(
                (GilbertElliottLoss(mean_good=0.5, mean_bad=0.1),)
            ),
            fault_location="server",
            horizon=6.0,
        )
        result = run_trial(trial, workload, config)
        return result.trace.count(category="link.drop.fault")

    assert fault_drops(0) != fault_drops(5)
