"""Tests for the HTTP/1.1 baseline stack."""

import pytest

from repro.core.estimator import SizeEstimator
from repro.core.metrics import MultiplexingReport
from repro.core.monitor import TrafficMonitor
from repro.core.predictor import SizePredictor
from repro.h1.client import H1Client
from repro.h1.message import H1Chunk, H1RequestMessage, H1ResponseHead
from repro.h1.server import H1Server, H1ServerConfig
from repro.h2.server import ResourceSpec
from repro.netsim.topology import build_adversary_path

RESOURCES = {
    "/a": ResourceSpec("/a", 9500, "text/html"),
    "/b": ResourceSpec("/b", 12000, "image/png"),
    "/c": ResourceSpec("/c", 30000, "application/javascript"),
}


def _stack(seed=31):
    topology = build_adversary_path(seed=seed)
    server = H1Server(
        topology.sim, topology.server, 443,
        lambda path: RESOURCES.get(path), trace=topology.trace,
    )
    client = H1Client(
        topology.sim, topology.client, topology.server.endpoint(443),
        trace=topology.trace,
    )
    return topology, server, client


def test_message_sizes():
    request = H1RequestMessage("/index.html", "example.com")
    assert request.wire_length > 300
    head = H1ResponseHead(200, 12345, "text/html")
    assert head.wire_length > 200
    chunk = H1Chunk(2048, last=False)
    assert chunk.wire_length == 2048


def test_sequential_fetch_all_complete():
    topology, server, client = _stack()
    client.on_ready = lambda: [client.get(path) for path in RESOURCES]
    client.connect()
    topology.sim.run_until(10.0)
    assert client.all_complete
    sizes = {handle.path: handle.received_bytes for handle in client.handles}
    assert sizes == {p: r.body_bytes for p, r in RESOURCES.items()}


def test_responses_strictly_sequential():
    """HTTP/1.1 never interleaves: every instance has degree 0."""
    topology, server, client = _stack()
    client.on_ready = lambda: [client.get(path) for path in RESOURCES]
    client.connect()
    topology.sim.run_until(10.0)
    layout = server.connections[0].tcp.layout
    report = MultiplexingReport.from_layout(layout)
    assert len(report.degrees) == 3
    assert all(degree == 0.0 for degree in report.degrees.values())


def test_response_order_matches_request_order():
    topology, server, client = _stack()
    completed = []
    def go():
        for path in RESOURCES:
            handle = client.get(path)
            handle.on_complete = lambda h: completed.append(h.path)
    client.on_ready = go
    client.connect()
    topology.sim.run_until(10.0)
    assert completed == list(RESOURCES)


def test_passive_estimator_succeeds_against_h1():
    """The paper's premise: HTTP/1.x leaks sizes to a passive observer."""
    topology, server, client = _stack()
    client.on_ready = lambda: [client.get(path) for path in RESOURCES]
    client.connect()
    topology.sim.run_until(10.0)
    monitor = TrafficMonitor(topology.middlebox.capture)
    from repro.netsim.capture import Direction
    request_times = [
        record.time
        for record in topology.middlebox.capture
        if record.direction is Direction.CLIENT_TO_SERVER
        and record.is_application_stream
        and record.payload_bytes > 200  # H1 GETs are ~370 B
    ]
    estimates = SizeEstimator(delimiter_gap=0.040).estimate(
        monitor.response_packets(), request_times=request_times
    )
    # HTTP/1.1 framing differs from HTTP/2 (no frame headers), so allow
    # a looser tolerance: the burst still sits within a few hundred
    # bytes of the body size.
    loose = SizePredictor(
        {p: r.body_bytes for p, r in RESOURCES.items()},
        tolerance_abs=700,
    )
    assert len(estimates) >= 3
    for path in RESOURCES:
        assert loose.find_object(estimates, path) is not None


def test_h1_404_served():
    topology, server, client = _stack()
    done = []
    def go():
        handle = client.get("/nope")
        handle.on_complete = done.append
    client.on_ready = go
    client.connect()
    topology.sim.run_until(10.0)
    assert done and done[0].head.status == 404


def test_h1_server_config_validation():
    with pytest.raises(ValueError):
        H1ServerConfig(chunk_bytes=0)
