"""Validation and error-path tests across public constructors."""

import pytest

from repro.core.adversary import Adversary, AdversaryConfig, AttackPhase
from repro.core.controller import NetworkController
from repro.h2.server import ResourceSpec, ServerConfig
from repro.h2.settings import (
    H2Settings,
    default_server_settings,
    firefox_like_settings,
)
from repro.netsim.topology import build_adversary_path
from repro.simkernel.randomstream import RandomStreams
from repro.web.browser import BrowserConfig


def test_resource_spec_validation():
    with pytest.raises(ValueError):
        ResourceSpec("/x", 0)
    with pytest.raises(ValueError):
        ResourceSpec("/x", 100, think_time_range=(-1.0, 2.0))
    with pytest.raises(ValueError):
        ResourceSpec("/x", 100, think_time_range=(2.0, 1.0))
    spec = ResourceSpec("/x", 100)
    assert spec.object_id == "/x"


def test_server_config_validation():
    with pytest.raises(ValueError):
        ServerConfig(chunk_bytes=0)
    with pytest.raises(ValueError):
        ServerConfig(think_time=-1)
    with pytest.raises(ValueError):
        ServerConfig(chunk_interval=-1)


def test_settings_profiles():
    firefox = firefox_like_settings()
    assert firefox.initial_window_size == 12 * 1024 * 1024
    server = default_server_settings()
    assert server.max_concurrent_streams == 128
    # Identical settings diff to nothing.
    assert H2Settings().changed_from(H2Settings()) == {}


def test_settings_changed_from_every_field():
    custom = H2Settings(
        header_table_size=8192,
        enable_push=False,
        max_concurrent_streams=7,
        initial_window_size=100_000,
        max_frame_size=32_768,
        max_header_list_size=500,
    )
    diff = custom.changed_from(H2Settings())
    assert len(diff) == 6


def test_adversary_phases_enum_values():
    assert AttackPhase.IDLE.value == "idle"
    assert AttackPhase.ESCALATED.value == "escalated"


def test_adversary_trigger_ignored_outside_spacing_phase():
    topology = build_adversary_path(seed=99)
    controller = NetworkController(
        topology.sim, topology.middlebox, RandomStreams(1)
    )
    adversary = Adversary(controller, AdversaryConfig())
    # Not armed: a stray trigger does nothing.
    adversary._on_trigger(0.0)
    assert adversary.phase is AttackPhase.IDLE
    assert adversary.trigger_time is None


def test_adversary_double_trigger_idempotent():
    topology = build_adversary_path(seed=99)
    controller = NetworkController(
        topology.sim, topology.middlebox, RandomStreams(1)
    )
    adversary = Adversary(controller, AdversaryConfig(enable_drops=False))
    adversary.arm()
    adversary._on_trigger(1.0)
    first_time = adversary.trigger_time
    adversary._on_trigger(2.0)
    assert adversary.trigger_time == first_time


def test_browser_config_defaults_sane():
    config = BrowserConfig()
    assert config.reset_timeout > 0
    assert config.max_resets >= 1
    assert config.reset_backoff >= 1.0


def test_bandwidth_limit_none_is_lifted():
    topology = build_adversary_path(seed=99)
    controller = NetworkController(
        topology.sim, topology.middlebox, RandomStreams(1)
    )
    controller.limit_bandwidth(1e6)
    controller.limit_bandwidth(None)
    from repro.netsim.capture import Direction
    assert topology.middlebox._throttle[Direction.CLIENT_TO_SERVER] is None
