"""Tests for selective acknowledgments."""

import pytest

from repro.netsim.link import LinkConfig
from repro.netsim.topology import build_adversary_path
from repro.tcp.config import TCPConfig
from repro.tcp.connection import TCPConnection
from repro.tcp.listener import TCPListener


class _Msg:
    def __init__(self, length, name):
        self.wire_length = length
        self.name = name


def _transfer(sack: bool, loss: float, seed: int = 13, total_messages: int = 20):
    """A lossy transfer; returns (received names, retransmitted bytes)."""
    topology = build_adversary_path(
        seed=seed,
        server_link_config=LinkConfig(propagation_delay=0.01, loss_rate=loss),
    )
    sim = topology.sim
    config = TCPConfig(sack=sack)
    accepted = []
    TCPListener(sim, topology.server, 443, accepted.append, config=config)
    client = TCPConnection(
        sim, topology.client, 50_000, topology.server.endpoint(443),
        config=config,
    )
    received = []
    client.connect()
    sim.run_until(2.0)
    accepted[0].on_message = lambda m, dup: received.append(m.name)
    for index in range(total_messages):
        client.send_message(_Msg(4_000, index))
    sim.run_until(60.0)
    return received, client.retransmitted_segments


def test_sack_transfer_reliable_under_loss():
    received, _ = _transfer(sack=True, loss=0.08)
    assert received == list(range(20))


def test_sack_reduces_retransmissions_under_loss():
    """SACK retransmits only the holes; go-back-N resends sacked data."""
    _, without_sack = _transfer(sack=False, loss=0.08)
    _, with_sack = _transfer(sack=True, loss=0.08)
    assert with_sack <= without_sack


def test_sack_blocks_advertised_on_out_of_order(wire):
    sim, host_a, host_b = wire
    config = TCPConfig(sack=True)
    accepted = []
    TCPListener(sim, host_b, 443, accepted.append, config=config)
    client = TCPConnection(
        sim, host_a, 50_000, host_b.endpoint(443), config=config
    )
    client.connect()
    sim.run_until(0.1)
    server = accepted[0]
    # Simulate an out-of-order arrival directly on the reassembly
    # buffer, then let the server emit an ACK.
    server.reassembly.receive(5_000, 6_000)
    blocks = server._own_sack_blocks()
    assert blocks == ((5_000, 6_000),)


def test_sack_scoreboard_merging(wire):
    sim, host_a, host_b = wire
    client = TCPConnection(
        sim, host_a, 50_000, host_b.endpoint(443),
        config=TCPConfig(sack=True),
    )
    client._record_sack_blocks([(100, 200), (150, 300), (400, 500)])
    assert client._sack_scoreboard == [(100, 300), (400, 500)]
    assert client._skip_sacked(150) == 300
    assert client._skip_sacked(350) == 350
    assert client._next_sacked_start(150) == 400
    client.snd_una = 250
    client._prune_sack_scoreboard()
    assert client._sack_scoreboard == [(250, 300), (400, 500)]


def test_sack_off_advertises_nothing(wire):
    sim, host_a, host_b = wire
    client = TCPConnection(
        sim, host_a, 50_000, host_b.endpoint(443), config=TCPConfig()
    )
    client.reassembly.receive(5_000, 6_000)
    assert client._own_sack_blocks() == ()


def test_sack_option_bytes_accounted(wire):
    sim, host_a, host_b = wire
    sent = []
    original_send = host_a.send
    host_a.send = lambda packet: (sent.append(packet), original_send(packet))
    client = TCPConnection(
        sim, host_a, 50_000, host_b.endpoint(443),
        config=TCPConfig(sack=True),
    )
    accepted = []
    TCPListener(sim, host_b, 443, accepted.append, config=TCPConfig(sack=True))
    client.connect()
    sim.run_until(0.1)
    client.reassembly.receive(5_000, 6_000)
    sent.clear()
    client._send_ack_now()
    assert sent
    segment = sent[-1].segment
    assert segment.sack_blocks == ((5_000, 6_000),)
    assert segment.option_bytes == 12 + 2 + 8
