"""Unit-level tests of browser behaviours on the real stack."""

import pytest

from repro.experiments.harness import TrialConfig, run_trial
from repro.h2.client import H2Client
from repro.h2.server import H2Server, ResourceSpec, ServerConfig
from repro.netsim.capture import Direction
from repro.netsim.middlebox import Verdict
from repro.netsim.topology import build_adversary_path
from repro.web.browser import Browser, BrowserConfig
from repro.web.objects import WebObject
from repro.web.site import LoadSchedule, ScheduledRequest, Website
from repro.web.workload import VolunteerWorkload


def _mini_setup(schedule_objects, browser_config=None, server_config=None):
    objects = [WebObject(f"/o{i}", size) for i, size in
               enumerate(schedule_objects)]
    website = Website("mini", objects)
    schedule = LoadSchedule([
        ScheduledRequest(0.01 if i else 0.02, obj)
        for i, obj in enumerate(objects)
    ])
    topology = build_adversary_path(seed=77)
    server = H2Server(
        topology.sim, topology.server, 443, website.router,
        config=server_config or ServerConfig(), trace=topology.trace,
    )
    client = H2Client(
        topology.sim, topology.client, topology.server.endpoint(443),
        trace=topology.trace,
    )
    browser = Browser(topology.sim, client, schedule,
                      config=browser_config or BrowserConfig(),
                      trace=topology.trace)
    return topology, server, client, browser


def test_browser_completes_mini_page():
    topology, server, client, browser = _mini_setup([5000, 8000, 3000])
    browser.start()
    topology.sim.run_until(10.0)
    assert browser.page_complete
    assert not browser.missing_objects


def test_browser_double_start_raises():
    topology, server, client, browser = _mini_setup([5000])
    browser.start()
    with pytest.raises(RuntimeError):
        browser.start()


def test_browser_requests_follow_schedule_order():
    topology, server, client, browser = _mini_setup([5000, 8000, 3000])
    browser.start()
    topology.sim.run_until(10.0)
    requested = [
        record["path"]
        for record in topology.trace.select(category="browser.request")
    ]
    assert requested == ["/o0", "/o1", "/o2"]


def test_browser_resets_on_blackhole_and_recovers():
    """Total s→c application blackhole → reset, retry, then recovery."""
    topology, server, client, browser = _mini_setup(
        [40_000, 30_000],
        browser_config=BrowserConfig(reset_timeout=1.0, check_interval=0.1),
    )

    class _Blackhole:
        def __init__(self):
            self.active = True

        def classify(self, packet, direction, now):
            segment = packet.segment
            records = getattr(segment, "tls_records", ()) if segment else ()
            carries_app = any(
                getattr(r, "content_type", 0) == 23 for r in records or ()
            ) or packet.payload_bytes > 0
            if self.active and carries_app:
                return Verdict.drop()
            return Verdict.forward()

    hole = _Blackhole()
    # Let the handshake through, then drop all server data for a while.
    topology.sim.schedule(0.2, lambda: None)
    browser.start()
    topology.sim.run_until(0.15)
    topology.middlebox.add_filter(Direction.SERVER_TO_CLIENT, hole)
    topology.sim.schedule(3.0, lambda: setattr(hole, "active", False))
    topology.sim.run_until(30.0)
    assert browser.resets_sent >= 1
    assert browser.page_complete


def test_browser_gives_up_after_max_resets():
    topology, server, client, browser = _mini_setup(
        [40_000],
        browser_config=BrowserConfig(
            reset_timeout=0.5, check_interval=0.1, max_resets=2,
            reset_backoff=1.0,
        ),
    )

    class _ForeverHole:
        def classify(self, packet, direction, now):
            if packet.payload_bytes > 0:
                return Verdict.drop()
            return Verdict.forward()

    browser.start()
    topology.sim.run_until(0.15)
    topology.middlebox.add_filter(Direction.SERVER_TO_CLIENT, _ForeverHole())
    topology.sim.run_until(60.0)
    assert browser.broken
    assert browser.resets_sent == 2


def test_browser_reset_timeout_backs_off():
    config = BrowserConfig(reset_timeout=1.0, reset_backoff=3.0)
    topology, server, client, browser = _mini_setup([5000], config)
    browser._reset_and_retry()
    assert browser._current_reset_timeout == pytest.approx(3.0)
    browser._reset_and_retry()
    assert browser._current_reset_timeout == pytest.approx(9.0)


def test_harness_schedule_override_used():
    workload = VolunteerWorkload(seed=7)
    site = workload.session(0)
    shortened = LoadSchedule(list(site.schedule)[:10])
    outcome = run_trial(
        0, workload, TrialConfig(schedule_override=shortened, horizon=20.0)
    )
    assert outcome.completed
    assert len(outcome.monitor.get_requests()) == 10
