"""The pluggable transport layer and the QUIC-like datagram transport.

Covers the registry/env resolution seam, the backward-compatibility
shim for the relocated :class:`StreamLayout`, reliable delivery of the
QUIC transport under loss, and the full HTTP/2 stack running over
``transport="quic"``.
"""

import pytest

from repro.h2.client import H2Client
from repro.h2.server import H2Server, ResourceSpec, ServerConfig
from repro.netsim.link import LinkConfig
from repro.netsim.topology import build_adversary_path
from repro.tcp.config import TCPConfig
from repro.tcp.connection import TCPConnection
from repro.transport import (
    TRANSPORT_ENV,
    Transport,
    get_transport,
    resolve_transport,
)
from repro.transport.quic import QuicConfig, QuicConnection, QuicListener


class _Msg:
    def __init__(self, length, name):
        self.wire_length = length
        self.name = name


# ---------------------------------------------------------------------------
# Resolution and registry
# ---------------------------------------------------------------------------


def test_resolve_transport_defaults_to_tcp(monkeypatch):
    monkeypatch.delenv(TRANSPORT_ENV, raising=False)
    assert resolve_transport() == "tcp"
    assert resolve_transport(None) == "tcp"


def test_resolve_transport_env_and_argument_precedence(monkeypatch):
    monkeypatch.setenv(TRANSPORT_ENV, "quic")
    assert resolve_transport() == "quic"
    # An explicit argument always beats the environment.
    assert resolve_transport("tcp") == "tcp"


def test_resolve_transport_normalizes_and_rejects(monkeypatch):
    monkeypatch.delenv(TRANSPORT_ENV, raising=False)
    assert resolve_transport(" QUIC ") == "quic"
    with pytest.raises(ValueError, match="unknown transport"):
        resolve_transport("sctp")
    monkeypatch.setenv(TRANSPORT_ENV, "sctp")
    with pytest.raises(ValueError, match="unknown transport"):
        resolve_transport()


def test_builtin_factories_registered(monkeypatch):
    monkeypatch.delenv(TRANSPORT_ENV, raising=False)
    assert get_transport("tcp").name == "tcp"
    assert get_transport("quic").name == "quic"
    assert get_transport().name == "tcp"


def test_tcp_server_config_carries_duplicate_quirk():
    factory = get_transport("tcp")
    explicit = TCPConfig(mss=900)
    assert factory.server_config(explicit, True) is explicit
    assert factory.server_config(None, True).deliver_duplicate_messages
    assert not factory.server_config(None, False).deliver_duplicate_messages


def test_quic_config_adapts_tcp_config():
    adapted = QuicConfig.adapt(TCPConfig(mss=900, congestion_control="cubic"))
    assert adapted.max_datagram_payload == 900
    assert adapted.congestion_control == "cubic"
    assert QuicConfig.adapt(None) == QuicConfig()


def test_stream_layout_shim_reexports_transport_module():
    from repro.tcp import stream as tcp_stream
    from repro.transport import stream as transport_stream

    assert tcp_stream.StreamLayout is transport_stream.StreamLayout
    assert tcp_stream.MessageSpan is transport_stream.MessageSpan


def test_connections_satisfy_transport_protocol():
    topology = build_adversary_path(seed=3)
    tcp = TCPConnection(
        topology.sim, topology.client, 50_000, topology.server.endpoint(443)
    )
    quic = QuicConnection(
        topology.sim, topology.client, 50_001, topology.server.endpoint(444)
    )
    assert isinstance(tcp, Transport)
    assert isinstance(quic, Transport)


# ---------------------------------------------------------------------------
# QUIC reliable delivery
# ---------------------------------------------------------------------------


def _quic_pair(seed, loss=0.0):
    topology = build_adversary_path(
        seed=seed,
        server_link_config=LinkConfig(propagation_delay=0.01, loss_rate=loss),
    )
    sim = topology.sim
    accepted = []
    QuicListener(sim, topology.server, 443, accepted.append)
    client = QuicConnection(
        sim, topology.client, 50_000, topology.server.endpoint(443)
    )
    return topology, sim, accepted, client


@pytest.mark.parametrize("loss", [0.0, 0.05, 0.12])
@pytest.mark.parametrize("seed", [1, 17])
def test_quic_delivers_all_messages_in_order_despite_loss(seed, loss):
    topology, sim, accepted, client = _quic_pair(seed, loss)
    received = []
    client.connect()
    sim.run_until(20.0)
    assert accepted, "handshake must eventually complete"
    accepted[0].on_message = lambda m, dup: received.append((m.name, dup))
    lengths = [1, 800, 15_000, 3, 40_000, 1200, 7]
    for index, length in enumerate(lengths):
        client.send_message(_Msg(length, index))
    sim.run_until(120.0)
    names = [name for name, _ in received]
    assert names == list(range(len(lengths)))
    assert all(not dup for _, dup in received)
    if loss:
        assert client.retransmitted_segments > 0


def test_quic_clean_link_never_retransmits():
    topology, sim, accepted, client = _quic_pair(seed=5)
    client.connect()
    sim.run_until(5.0)
    for index in range(6):
        client.send_message(_Msg(2000, index))
    sim.run_until(30.0)
    assert client.retransmitted_segments == 0
    assert accepted[0].retransmitted_segments == 0


def test_quic_orderly_close_reaches_both_ends():
    topology, sim, accepted, client = _quic_pair(seed=9)
    closed = []
    client.connect()
    sim.run_until(5.0)
    accepted[0].on_close = lambda reset: closed.append(("server", reset))
    client.on_close = lambda reset: closed.append(("client", reset))
    client.send_message(_Msg(5000, 0))
    sim.run_until(10.0)
    client.close()
    sim.run_until(30.0)
    assert client.is_closed
    assert ("server", False) in closed


# ---------------------------------------------------------------------------
# HTTP/2 over QUIC
# ---------------------------------------------------------------------------

RESOURCES = {
    "/index.html": ResourceSpec("/index.html", 9500, "text/html"),
    "/a.png": ResourceSpec("/a.png", 12000, "image/png"),
    "/b.png": ResourceSpec("/b.png", 15000, "image/png"),
    "/big.js": ResourceSpec("/big.js", 80000, "application/javascript"),
}


def _h2_stack(seed=21, loss=0.0):
    topology = build_adversary_path(
        seed=seed,
        server_link_config=LinkConfig(propagation_delay=0.01, loss_rate=loss),
    )
    server = H2Server(
        topology.sim, topology.server, 443,
        lambda path: RESOURCES.get(path),
        config=ServerConfig(), trace=topology.trace, transport="quic",
    )
    client = H2Client(
        topology.sim, topology.client, topology.server.endpoint(443),
        trace=topology.trace, authority="test.example", transport="quic",
    )
    return topology, server, client


def test_h2_page_load_over_quic():
    topology, server, client = _h2_stack()
    def go():
        for path in RESOURCES:
            client.get(path)
    client.on_ready = go
    client.connect()
    topology.sim.run_until(10.0)
    assert all(handle.complete for handle in client.handles.values())
    sizes = {h.path: h.received_bytes for h in client.handles.values()}
    assert sizes == {path: spec.body_bytes for path, spec in RESOURCES.items()}


def test_h2_over_quic_survives_loss_without_duplicates():
    topology, server, client = _h2_stack(seed=33, loss=0.08)
    def go():
        for path in RESOURCES:
            client.get(path)
    client.on_ready = go
    client.connect()
    topology.sim.run_until(60.0)
    assert all(handle.complete for handle in client.handles.values())
    # QUIC has no wire-level redelivery quirk: the server never sees a
    # retransmitted GET as a new request.
    assert all(
        not instance.duplicate for instance in server.all_instances
    )
    assert client.tcp.retransmitted_segments > 0


def test_h2_harness_trial_runs_over_quic():
    from repro.experiments.harness import TrialConfig, run_trial
    from repro.web.workload import VolunteerWorkload

    result = run_trial(
        0, VolunteerWorkload(seed=11), TrialConfig(transport="quic")
    )
    assert result.completed
    assert result.trace.count(category="quic.established") > 0
    assert result.trace.count(category="tcp.retransmit") == 0


def test_trial_config_rejects_unknown_transport():
    from repro.experiments.harness import TrialConfig

    with pytest.raises(ValueError, match="unknown transport"):
        TrialConfig(transport="carrier-pigeon")


# ---------------------------------------------------------------------------
# Campaign engine integration
# ---------------------------------------------------------------------------


def test_campaign_config_transport_rules():
    from repro.campaign import CampaignConfig

    tcp = CampaignConfig(sessions=10, shard_size=5, mode="full")
    quic = CampaignConfig(sessions=10, shard_size=5, mode="full",
                          transport="quic")
    # Different transports must never share a checkpoint identity.
    assert tcp.digest() != quic.digest()
    with pytest.raises(ValueError, match="unknown transport"):
        CampaignConfig(transport="sctp")
    # The analytic model is calibrated against TCP serialization.
    with pytest.raises(ValueError, match="analytic"):
        CampaignConfig(transport="quic")


def test_campaign_full_mode_session_runs_over_quic():
    from repro.campaign.engine import evaluate_page_full
    from repro.campaign import AnalyticModel
    from repro.web.workload import PopulationWorkload

    workload = PopulationWorkload(seed=13)
    outcome = evaluate_page_full(
        workload.page_spec(0), workload.session_rng(0), AnalyticModel(),
        transport="quic",
    )
    assert not outcome["broken"]
    assert outcome["objects"] > 0
