"""Integration tests for HTTP/2 client/server over the full stack."""

import pytest

from repro.h2.client import H2Client
from repro.h2.errors import H2ErrorCode
from repro.h2.mux import FifoScheduler
from repro.h2.server import H2Server, ResourceSpec, ServerConfig
from repro.netsim.topology import build_adversary_path
from repro.core.metrics import MultiplexingReport


RESOURCES = {
    "/index.html": ResourceSpec("/index.html", 9500, "text/html"),
    "/a.png": ResourceSpec("/a.png", 12000, "image/png"),
    "/b.png": ResourceSpec("/b.png", 15000, "image/png"),
    "/big.js": ResourceSpec("/big.js", 80000, "application/javascript"),
}


def _headers_span(client):
    """The layout span of the client's first GET HEADERS record."""
    layout = client.tcp.layout
    for span in layout.spans_completed_by(layout.next_seq):
        payload = getattr(span.message, "payload", None)
        if getattr(payload, "type_name", "") == "HEADERS":
            return span
    raise AssertionError("no HEADERS record found in client layout")


def _stack(seed=21, server_config=None, scheduler_factory=None):
    topology = build_adversary_path(seed=seed)
    server = H2Server(
        topology.sim, topology.server, 443,
        lambda path: RESOURCES.get(path),
        config=server_config or ServerConfig(),
        trace=topology.trace,
        scheduler_factory=scheduler_factory,
    )
    client = H2Client(
        topology.sim, topology.client, topology.server.endpoint(443),
        trace=topology.trace, authority="test.example",
    )
    return topology, server, client


def test_single_get_roundtrip():
    topology, server, client = _stack()
    done = []
    client.on_ready = lambda: setattr(
        client.get("/index.html"), "on_complete", done.append
    )
    client.connect()
    topology.sim.run_until(5.0)
    assert len(done) == 1
    assert done[0].received_bytes == 9500
    assert done[0].headers is not None
    header_map = dict(done[0].headers)
    assert header_map[":status"] == "200"
    assert header_map["content-length"] == "9500"


def test_many_concurrent_gets_all_complete():
    topology, server, client = _stack()
    def go():
        for path in RESOURCES:
            client.get(path)
    client.on_ready = go
    client.connect()
    topology.sim.run_until(10.0)
    assert all(handle.complete for handle in client.handles.values())
    sizes = {h.path: h.received_bytes for h in client.handles.values()}
    assert sizes == {path: spec.body_bytes for path, spec in RESOURCES.items()}


def test_404_for_unknown_path():
    topology, server, client = _stack()
    done = []
    def go():
        handle = client.get("/missing")
        handle.on_complete = done.append
    client.on_ready = go
    client.connect()
    topology.sim.run_until(5.0)
    assert done and dict(done[0].headers)[":status"] == "404"


def test_concurrent_responses_interleave():
    """Two pipelined objects multiplex under round-robin."""
    topology, server, client = _stack()
    def go():
        client.get("/a.png")
        client.get("/b.png")
    client.on_ready = go
    client.connect()
    topology.sim.run_until(10.0)
    report = MultiplexingReport.from_layout(server.connections[0].tcp.layout)
    degrees = [
        degree for instance, degree in report.degrees.items()
        if instance.object_id in ("/a.png", "/b.png")
    ]
    assert len(degrees) == 2
    assert all(degree > 0.5 for degree in degrees)


def test_fifo_scheduler_serializes():
    topology, server, client = _stack(scheduler_factory=FifoScheduler)
    def go():
        client.get("/a.png")
        client.get("/b.png")
    client.on_ready = go
    client.connect()
    topology.sim.run_until(10.0)
    report = MultiplexingReport.from_layout(server.connections[0].tcp.layout)
    degrees = [
        degree for instance, degree in report.degrees.items()
        if instance.object_id in ("/a.png", "/b.png")
    ]
    assert degrees and all(degree == 0.0 for degree in degrees)


def test_rst_stream_cancels_and_flushes():
    topology, server, client = _stack(
        server_config=ServerConfig(chunk_interval=0.010)  # slow producer
    )
    handle_box = []
    def go():
        handle_box.append(client.get("/big.js"))
    client.on_ready = go
    client.connect()
    sim = topology.sim
    sim.run_until(0.25)
    assert handle_box
    client.cancel(handle_box[0].stream_id)
    sim.run_until(5.0)
    handle = handle_box[0]
    assert handle.reset
    assert not handle.complete
    assert handle.received_bytes < 80000
    # The server cancelled its worker.
    instance = server.all_instances[0]
    assert instance.cancelled


def test_duplicate_request_spawns_second_instance():
    """The §IV-B quirk end to end: a duplicate GET delivery re-serves."""
    topology, server, client = _stack()
    def go():
        client.get("/a.png")
    client.on_ready = go
    client.connect()
    sim = topology.sim
    sim.run_until(5.0)
    assert len(server.all_instances) == 1
    # Retransmit exactly the GET's record range (an RTO of that segment).
    span = _headers_span(client)
    client.tcp._send_data_segment(span.start, span.length, True)
    sim.run_until(10.0)
    duplicates = [i for i in server.all_instances if i.duplicate]
    assert len(duplicates) == 1
    assert duplicates[0].object_id == "/a.png"


def test_quirk_disabled_no_duplicate_instances():
    topology, server, client = _stack(
        server_config=ServerConfig(serve_duplicate_requests=False)
    )
    def go():
        client.get("/a.png")
    client.on_ready = go
    client.connect()
    sim = topology.sim
    sim.run_until(5.0)
    span = _headers_span(client)
    client.tcp._send_data_segment(span.start, span.length, True)
    sim.run_until(10.0)
    assert all(not instance.duplicate for instance in server.all_instances)


def test_stream_ids_odd_and_increasing():
    topology, server, client = _stack()
    ids = []
    def go():
        ids.append(client.get("/a.png").stream_id)
        ids.append(client.get("/b.png").stream_id)
    client.on_ready = go
    client.connect()
    topology.sim.run_until(5.0)
    assert ids == [1, 3]


def test_hpack_stays_synchronized_across_rst():
    """Flushing queued HEADERS must not desync the HPACK tables."""
    topology, server, client = _stack(
        server_config=ServerConfig(chunk_interval=0.002)
    )
    def go():
        for path in ("/a.png", "/b.png", "/big.js"):
            client.get(path)
    client.on_ready = go
    client.connect()
    sim = topology.sim
    sim.run_until(0.25)
    client.reset_all_active()
    sim.run_until(0.5)
    # New requests after the reset must decode fine.
    late = client.get("/index.html")
    done = []
    late.on_complete = done.append
    sim.run_until(8.0)
    assert done and done[0].received_bytes == 9500


def test_ping_answered():
    topology, server, client = _stack()
    client.on_ready = lambda: client.h2.send_ping()
    client.connect()
    topology.sim.run_until(3.0)
    pings = [
        record for record in topology.trace.select(category="h2.frame.sent")
        if record["frame_type"] == "PING"
    ]
    assert len(pings) == 2  # request + ack


def test_get_before_ready_raises():
    topology, server, client = _stack()
    with pytest.raises(RuntimeError):
        client.get("/index.html")
