"""Property-based tests for the estimator, priority tree and queues."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.estimator import SizeEstimator
from repro.h2.priority import PriorityTree
from repro.netsim.capture import Direction, PacketRecord
from repro.netsim.queue import DropTailQueue, TokenBucket
from repro.simkernel.units import MBPS


def _packet(time, payload, full_mtu):
    return PacketRecord(
        time=time, direction=Direction.SERVER_TO_CLIENT, packet_id=0,
        wire_size=1500 if full_mtu else 44 + min(payload, 1400),
        payload_bytes=payload, flags=(), seq=0, ack=0,
        tls_content_types=(23,),
    )


packet_streams = st.lists(
    st.tuples(
        st.floats(0.0001, 0.2, allow_nan=False),  # inter-packet gap
        st.integers(100, 1448),                   # payload
        st.booleans(),                            # full MTU?
    ),
    min_size=1, max_size=40,
)


@given(packet_streams)
@settings(max_examples=150)
def test_estimator_conserves_bytes(stream):
    """Estimates partition the input: summed payloads of all estimates
    equal the total payload of packets not filtered as too-small."""
    time = 0.0
    packets = []
    for gap, payload, full in stream:
        time += gap
        packets.append(_packet(time, payload, full))
    estimator = SizeEstimator(min_object_bytes=0)
    estimates = estimator.estimate(packets)
    assert sum(e.payload_bytes for e in estimates) == \
        sum(p.payload_bytes for p in packets)


@given(packet_streams)
@settings(max_examples=150)
def test_estimator_intervals_ordered_and_disjoint(stream):
    time = 0.0
    packets = []
    for gap, payload, full in stream:
        time += gap
        packets.append(_packet(time, payload, full))
    estimates = SizeEstimator(min_object_bytes=0).estimate(packets)
    for first, second in zip(estimates, estimates[1:]):
        assert first.end_time <= second.start_time
    for estimate in estimates:
        assert estimate.start_time <= estimate.end_time
        assert estimate.packets >= 1


@given(st.lists(st.integers(1, 100), min_size=1, max_size=30),
       st.integers(1, 20))
def test_droptail_never_exceeds_capacity(items, capacity):
    queue = DropTailQueue(capacity=capacity)
    for item in items:
        queue.push(item)
        assert len(queue) <= capacity
    assert queue.enqueues + queue.drops == len(items)


@given(st.lists(st.tuples(st.floats(0, 1), st.integers(1, 2000)),
                min_size=1, max_size=30))
def test_token_bucket_delay_nonnegative_and_conforms(events):
    bucket = TokenBucket(10 * MBPS, burst_bytes=5000)
    now = 0.0
    for dt, size in events:
        now += dt
        delay = bucket.delay_until_conformant(size, now)
        assert delay >= 0.0
        bucket.consume_at(size, now + delay)


priority_ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "remove", "reprioritize"]),
        st.integers(1, 15),
        st.integers(0, 15),
        st.integers(1, 256),
    ),
    min_size=1, max_size=40,
)


@given(priority_ops, st.sets(st.integers(1, 15), min_size=1, max_size=8))
@settings(max_examples=150)
def test_priority_tree_allocations_sum_to_one(operations, ready):
    tree = PriorityTree()
    live = set()
    for op, stream_id, depends_on, weight in operations:
        if op == "insert":
            tree.insert(stream_id, depends_on if depends_on in live else 0,
                        weight)
            live.add(stream_id)
        elif op == "remove" and stream_id in live:
            tree.remove(stream_id)
            live.discard(stream_id)
        elif op == "reprioritize" and stream_id in live:
            tree.reprioritize(
                stream_id, depends_on if depends_on in live else 0, weight
            )
    ready_live = ready & live
    shares = tree.allocate(ready_live)
    allocated = {stream_id for stream_id, _ in shares}
    assert allocated <= ready_live
    if ready_live:
        total = sum(share for _, share in shares)
        # Every ready stream is reachable from the root, so the whole
        # bandwidth is handed out.
        assert abs(total - 1.0) < 1e-9
        assert all(share > 0 for _, share in shares)


@given(priority_ops)
@settings(max_examples=100)
def test_priority_tree_no_cycles(operations):
    """Walking parents from any node terminates at the root."""
    tree = PriorityTree()
    live = set()
    for op, stream_id, depends_on, weight in operations:
        if op == "insert":
            tree.insert(stream_id, depends_on if depends_on in live else 0,
                        weight)
            live.add(stream_id)
        elif op == "remove" and stream_id in live:
            tree.remove(stream_id)
            live.discard(stream_id)
        elif op == "reprioritize" and stream_id in live:
            tree.reprioritize(
                stream_id, depends_on if depends_on in live else 0, weight
            )
    for stream_id in live:
        seen = set()
        current = stream_id
        while current is not None and current != 0:
            assert current not in seen, "cycle in priority tree"
            seen.add(current)
            current = tree.parent_of(current)
