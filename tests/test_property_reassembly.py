"""Property-based tests for TCP reassembly and the stream layout."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tcp.reassembly import ReassemblyBuffer
from repro.tcp.stream import StreamLayout


class _Msg:
    def __init__(self, length):
        self.wire_length = length


segments_strategy = st.lists(
    st.tuples(st.integers(0, 500), st.integers(1, 80)).map(
        lambda pair: (pair[0], pair[0] + pair[1])
    ),
    min_size=1,
    max_size=40,
)


@given(segments_strategy)
@settings(max_examples=200)
def test_reassembly_rcv_nxt_is_monotone_and_correct(segments):
    """rcv_nxt only grows, and equals the contiguous prefix length."""
    buffer = ReassemblyBuffer()
    covered = set()
    previous = 0
    for start, end in segments:
        covered.update(range(start, end))
        rcv_nxt, _ = buffer.receive(start, end)
        assert rcv_nxt >= previous
        previous = rcv_nxt
    expected = 0
    while expected in covered:
        expected += 1
    assert buffer.rcv_nxt == expected


@given(segments_strategy)
@settings(max_examples=200)
def test_reassembly_buffered_ranges_disjoint_and_sorted(segments):
    buffer = ReassemblyBuffer()
    for start, end in segments:
        buffer.receive(start, end)
    ranges = buffer.out_of_order_ranges
    for (a_start, a_end), (b_start, b_end) in zip(ranges, ranges[1:]):
        assert a_end < b_start  # disjoint, strictly ordered
    for start, end in ranges:
        assert start > buffer.rcv_nxt or start <= buffer.rcv_nxt <= end is False
        assert end > start


@given(segments_strategy)
@settings(max_examples=200)
def test_reassembly_duplicate_replay_changes_nothing(segments):
    """Replaying the whole arrival sequence is a no-op."""
    buffer = ReassemblyBuffer()
    for start, end in segments:
        buffer.receive(start, end)
    state = (buffer.rcv_nxt, buffer.out_of_order_ranges)
    for start, end in segments:
        _, duplicate = buffer.receive(start, end)
        assert duplicate
    assert (buffer.rcv_nxt, buffer.out_of_order_ranges) == state


@given(st.lists(st.integers(1, 5000), min_size=1, max_size=50))
@settings(max_examples=200)
def test_layout_partitions_sequence_space(lengths):
    """Message spans tile [0, next_seq) without gaps or overlaps."""
    layout = StreamLayout()
    for length in lengths:
        layout.append(_Msg(length))
    spans = layout.spans_completed_by(layout.next_seq)
    assert len(spans) == len(lengths)
    cursor = 0
    for span, length in zip(spans, lengths):
        assert span.start == cursor
        assert span.length == length
        cursor = span.end
    assert cursor == layout.next_seq == sum(lengths)


@given(
    st.lists(st.integers(1, 2000), min_size=1, max_size=30),
    st.integers(0, 60000),
    st.integers(1, 3000),
)
@settings(max_examples=200)
def test_layout_queries_consistent(lengths, start, width):
    layout = StreamLayout()
    for length in lengths:
        layout.append(_Msg(length))
    end = start + width
    overlapping = layout.spans_overlapping(start, end)
    contained = layout.spans_contained(start, end)
    starting = layout.spans_starting_in(start, end)
    # Contained and starting spans are subsets of overlapping spans.
    assert set(id(s) for s in contained) <= set(id(s) for s in overlapping)
    assert set(id(s) for s in starting) <= set(id(s) for s in overlapping)
    for span in overlapping:
        assert span.start < end and span.end > start
    for span in contained:
        assert span.start >= start and span.end <= end
    for span in starting:
        assert start <= span.start < end
