"""Unit tests for packets, addresses, and queueing primitives."""

import pytest

from repro.netsim.address import Endpoint
from repro.netsim.packet import IP_HEADER_BYTES, TCP_HEADER_BYTES, Packet
from repro.netsim.queue import DropTailQueue, TokenBucket
from repro.simkernel.units import MBPS
from repro.tcp.segment import ACK, TCPSegment
from repro.tcp.stream import StreamLayout


# -- Endpoint ---------------------------------------------------------------

def test_endpoint_str():
    assert str(Endpoint("server", 443)) == "server:443"


def test_endpoint_port_validation():
    with pytest.raises(ValueError):
        Endpoint("h", 0)
    with pytest.raises(ValueError):
        Endpoint("h", 70000)


def test_endpoint_empty_host():
    with pytest.raises(ValueError):
        Endpoint("", 80)


def test_endpoint_hashable_and_equal():
    assert Endpoint("h", 1) == Endpoint("h", 1)
    assert len({Endpoint("h", 1), Endpoint("h", 1)}) == 1


# -- Packet -----------------------------------------------------------------

def _data_segment(length: int) -> TCPSegment:
    layout = StreamLayout()

    class _Msg:
        wire_length = length

    layout.append(_Msg())
    return TCPSegment(
        seq=0, ack=0, flags=frozenset({ACK}), payload_bytes=length,
        layout=layout,
    )


def test_packet_wire_size_includes_headers():
    packet = Packet(Endpoint("a", 1), Endpoint("b", 2), _data_segment(100))
    assert packet.wire_size == IP_HEADER_BYTES + TCP_HEADER_BYTES + 12 + 100


def test_packet_ids_unique():
    a = Packet(Endpoint("a", 1), Endpoint("b", 2), None)
    b = Packet(Endpoint("a", 1), Endpoint("b", 2), None)
    assert a.packet_id != b.packet_id


def test_bare_ack_packet_payload_zero():
    packet = Packet(Endpoint("a", 1), Endpoint("b", 2), None)
    assert packet.payload_bytes == 0


# -- DropTailQueue ------------------------------------------------------------

def test_droptail_fifo_order():
    queue = DropTailQueue(capacity=3)
    for item in "abc":
        assert queue.push(item)
    assert [queue.pop() for _ in range(3)] == ["a", "b", "c"]


def test_droptail_drops_when_full():
    queue = DropTailQueue(capacity=1)
    assert queue.push("a")
    assert not queue.push("b")
    assert queue.drops == 1


def test_droptail_pop_empty_returns_none():
    assert DropTailQueue(capacity=1).pop() is None


def test_droptail_invalid_capacity():
    with pytest.raises(ValueError):
        DropTailQueue(capacity=0)


# -- TokenBucket ---------------------------------------------------------------

def test_token_bucket_burst_passes_immediately():
    bucket = TokenBucket(8 * MBPS, burst_bytes=10_000)
    assert bucket.try_consume(10_000, now=0.0)
    assert not bucket.try_consume(1, now=0.0)


def test_token_bucket_refills_over_time():
    bucket = TokenBucket(8 * MBPS, burst_bytes=1_000)  # 1 MB/s
    assert bucket.try_consume(1_000, now=0.0)
    assert bucket.try_consume(500, now=0.0005)  # 0.5 ms → 500 B refilled


def test_token_bucket_delay_until_conformant():
    bucket = TokenBucket(8 * MBPS, burst_bytes=1_000)  # 1 MB/s
    bucket.consume_at(1_000, 0.0)
    delay = bucket.delay_until_conformant(500, now=0.0)
    assert delay == pytest.approx(0.0005)


def test_token_bucket_conformant_now_returns_zero():
    bucket = TokenBucket(8 * MBPS, burst_bytes=1_000)
    assert bucket.delay_until_conformant(100, now=0.0) == 0.0


def test_token_bucket_set_rate():
    bucket = TokenBucket(8 * MBPS, burst_bytes=1_000)
    bucket.set_rate(16 * MBPS, now=0.0)
    assert bucket.rate_bits_per_second == 16 * MBPS


def test_token_bucket_never_exceeds_burst():
    bucket = TokenBucket(8 * MBPS, burst_bytes=1_000)
    assert not bucket.try_consume(2_000, now=100.0)
    assert bucket.try_consume(1_000, now=100.0)


def test_token_bucket_invalid_burst():
    with pytest.raises(ValueError):
        TokenBucket(8 * MBPS, burst_bytes=0)
