"""Tests for the random website generator and generalization study."""

import pytest

from repro.experiments.generalization import run_generated_trial
from repro.simkernel.randomstream import RandomStreams
from repro.web.generator import generate_site, generate_site_from_spec
from repro.web.workload import PopulationWorkload


def test_generate_site_shape():
    site = generate_site(RandomStreams(1), object_count=20)
    assert len(site.website) == 21  # target + 20 objects
    assert len(site.schedule) == 21
    assert site.target_object_id == "target"
    assert site.target_size == 9_500


def test_generate_site_reproducible():
    first = generate_site(RandomStreams(4), object_count=15)
    second = generate_site(RandomStreams(4), object_count=15)
    assert [r.obj.path for r in first.schedule] == \
        [r.obj.path for r in second.schedule]
    assert first.website.size_map() == second.website.size_map()


def test_generate_site_sizes_separated_without_collisions():
    site = generate_site(RandomStreams(2), object_count=20)
    target = site.target_size
    for obj in site.website.objects.values():
        if obj.object_id == "target":
            continue
        assert abs(obj.size - target) > target * 0.02


def test_generate_site_collisions_planted():
    site = generate_site(RandomStreams(2), object_count=10, size_collision=3)
    target = site.target_size
    confusers = [
        obj for obj in site.website.objects.values()
        if "confuser" in obj.path
    ]
    assert len(confusers) == 3
    for obj in confusers:
        assert abs(obj.size - target) <= target * 0.02


def test_generate_site_dense_population_terminates():
    # Exclusion zones exceed the size ranges here; generation must
    # still terminate (the separation requirement relaxes).
    site = generate_site(RandomStreams(3), object_count=120)
    assert len(site.website) == 121


def test_generate_site_target_mid_schedule():
    site = generate_site(RandomStreams(5), object_count=20)
    index = site.schedule.index_of("target")
    assert 0 < index < len(site.schedule) - 1


def test_generate_site_from_spec_sizes_verbatim():
    spec = PopulationWorkload(seed=6).page_spec(0)
    site = generate_site_from_spec(RandomStreams(1), spec)
    assert len(site.website) == spec.object_count + 1
    assert site.target_size == spec.target_size
    sizes = sorted(
        obj.size for obj in site.website.objects.values()
        if obj.object_id != "target"
    )
    assert sizes == sorted(spec.object_sizes)  # spec is the ground truth


def test_generate_site_from_spec_reproducible():
    spec = PopulationWorkload(seed=6).page_spec(7)
    first = generate_site_from_spec(RandomStreams(9), spec)
    second = generate_site_from_spec(RandomStreams(9), spec)
    assert [r.obj.path for r in first.schedule] == \
        [r.obj.path for r in second.schedule]
    assert first.website.size_map() == second.website.size_map()


def test_generate_site_from_spec_target_mid_schedule():
    spec = PopulationWorkload(seed=6).page_spec(2)
    site = generate_site_from_spec(RandomStreams(3), spec)
    index = site.schedule.index_of("target")
    assert 0 < index < len(site.schedule) - 1


def test_run_generated_trial_end_to_end():
    site, serialized, identified = run_generated_trial(
        0, seed=7, object_count=15, size_collision=0
    )
    assert site.target_object_id == "target"
    assert isinstance(serialized, bool)
    assert isinstance(identified, bool)
