"""Unit tests for the event queue."""

import pytest

from repro.simkernel.errors import SchedulingError
from repro.simkernel.event import Event, EventQueue


def test_events_pop_in_time_order():
    queue = EventQueue()
    order = []
    queue.push(2.0, 100, lambda: order.append("late"))
    queue.push(1.0, 100, lambda: order.append("early"))
    queue.push(3.0, 100, lambda: order.append("latest"))
    while (event := queue.pop()) is not None:
        event.callback()
    assert order == ["early", "late", "latest"]


def test_same_time_events_pop_in_insertion_order():
    queue = EventQueue()
    first = queue.push(1.0, 100, lambda: None)
    second = queue.push(1.0, 100, lambda: None)
    assert queue.pop() is first
    assert queue.pop() is second


def test_priority_breaks_time_ties():
    queue = EventQueue()
    low_priority = queue.push(1.0, 200, lambda: None)
    high_priority = queue.push(1.0, 100, lambda: None)
    assert queue.pop() is high_priority
    assert queue.pop() is low_priority


def test_cancelled_events_are_skipped():
    queue = EventQueue()
    cancelled = queue.push(1.0, 100, lambda: None)
    kept = queue.push(2.0, 100, lambda: None)
    cancelled.cancel()
    assert queue.pop() is kept
    assert queue.pop() is None


def test_double_cancel_raises():
    queue = EventQueue()
    event = queue.push(1.0, 100, lambda: None)
    event.cancel()
    with pytest.raises(SchedulingError):
        event.cancel()


def test_len_counts_only_live_events():
    queue = EventQueue()
    event = queue.push(1.0, 100, lambda: None)
    queue.push(2.0, 100, lambda: None)
    assert len(queue) == 2
    event.cancel()
    assert len(queue) == 1


def test_peek_time_skips_cancelled():
    queue = EventQueue()
    first = queue.push(1.0, 100, lambda: None)
    queue.push(2.0, 100, lambda: None)
    first.cancel()
    assert queue.peek_time() == 2.0


def test_peek_time_empty_queue():
    assert EventQueue().peek_time() is None


def test_pop_empty_queue():
    assert EventQueue().pop() is None


def test_clear_empties_queue():
    queue = EventQueue()
    queue.push(1.0, 100, lambda: None)
    queue.clear()
    assert len(queue) == 0
    assert queue.pop() is None


def test_event_repr_shows_state():
    event = Event(1.5, 100, 0, lambda: None)
    assert "pending" in repr(event)
    event.cancel()
    assert "cancelled" in repr(event)


def test_compaction_shrinks_heap_after_mass_cancel():
    queue = EventQueue()
    events = [queue.push(float(i), 100, lambda: None) for i in range(200)]
    for event in events[:150]:
        event.cancel()
    # Compaction bounds tombstones to at most half the heap: 150
    # cancels against 200 entries cannot leave the heap at full size.
    assert len(queue._heap) < 200
    assert len(queue._heap) - len(queue) <= len(queue._heap) // 2
    assert len(queue) == 50
    popped = [queue.pop() for _ in range(50)]
    assert popped == events[150:]
    assert queue.pop() is None


def test_no_compaction_below_minimum_size():
    queue = EventQueue()
    events = [queue.push(float(i), 100, lambda: None) for i in range(10)]
    for event in events[:8]:
        event.cancel()
    # Tiny queues keep their tombstones (compaction is not worth it).
    assert len(queue._heap) == 10
    assert len(queue) == 2
    assert queue.pop() is events[8]
    assert queue.pop() is events[9]


def test_compaction_preserves_order_and_cancellation():
    queue = EventQueue()
    keep = []
    cancel = []
    for i in range(300):
        event = queue.push(float(i % 17), 100 + (i % 3), lambda: None)
        (cancel if i % 3 == 0 else keep).append(event)
    for event in cancel:
        event.cancel()
    expected = sorted(keep, key=lambda e: (e.time, e.priority, e.sequence))
    popped = []
    while (event := queue.pop()) is not None:
        popped.append(event)
    assert popped == expected


def test_cancel_after_pop_does_not_corrupt_queue():
    queue = EventQueue()
    event = queue.push(1.0, 100, lambda: None)
    survivor = queue.push(2.0, 100, lambda: None)
    assert queue.pop() is event
    # The popped event is detached: cancelling it must not decrement
    # the queue's live count or mark tombstones that are not there.
    event.cancel()
    assert len(queue) == 1
    assert queue.pop() is survivor


def test_peek_time_discards_cancelled_without_overcounting():
    queue = EventQueue()
    first = queue.push(1.0, 100, lambda: None)
    second = queue.push(2.0, 100, lambda: None)
    first.cancel()
    assert queue.peek_time() == 2.0
    assert len(queue) == 1
    assert queue.pop() is second
