"""Tests for the adversary's adaptive drop-phase recovery.

The retry/backoff state machine (repro.core.adversary): after each drop
window the adversary checks its own capture for the client's reaction —
new GETs after the window opened.  No reaction => retry with exponential
backoff; budget exhausted => ABORTED.  ``max_drop_retries=0`` disables
the machinery entirely (the pre-fault-tolerance behaviour).
"""

import pytest

from repro.core.adversary import Adversary, AdversaryConfig, AttackPhase
from repro.netsim.capture import CaptureLog, Direction, PacketRecord
from repro.netsim.faults import FaultSchedule, Outage


class _StubDropFilter:
    def __init__(self):
        self.deactivated = False

    def deactivate(self):
        self.deactivated = True


class _StubMiddlebox:
    def __init__(self):
        self.capture = CaptureLog()


class _StubController:
    """Records the adversary's actuations; owns a real capture log."""

    def __init__(self, sim):
        self.sim = sim
        self.middlebox = _StubMiddlebox()
        self.drop_filter = None
        self.spacing_installed = []
        self.jitter_installed = []
        self.bandwidth_limits = []
        self.drop_windows = []
        self.trigger_callback = None

    def install_spacing(self, spacing, noise_fraction=0.5):
        self.spacing_installed.append(spacing)

    def install_jitter(self, amount):
        self.jitter_installed.append(amount)

    def limit_bandwidth(self, limit, burst_bytes=64 * 1024):
        self.bandwidth_limits.append(limit)

    def install_drops(self, rate):
        self.drop_filter = _StubDropFilter()

    def start_drops(self, duration):
        self.drop_windows.append((self.sim.now, duration))

    def on_nth_get(self, index, callback):
        self.trigger_callback = callback


def _get_record(time, seq, payload=60):
    """A synthetic client->server GET as the capture tap records it."""
    return PacketRecord(
        time=time,
        direction=Direction.CLIENT_TO_SERVER,
        packet_id=0,
        wire_size=payload + 40,
        payload_bytes=payload,
        flags=("ACK",),
        seq=seq,
        ack=0,
        tls_content_types=(23,),
    )


def _armed_adversary(sim, trace=None, **config_overrides):
    config_overrides.setdefault("drop_duration", 0.5)
    config_overrides.setdefault("retry_backoff", 0.5)
    config_overrides.setdefault("retry_backoff_factor", 2.0)
    config = AdversaryConfig(**config_overrides)
    controller = _StubController(sim)
    adversary = Adversary(controller, config, trace=trace)
    adversary.arm()
    # The monitor skips the first PREFACE_FLIGHT_BYTES of client
    # application data; seed the capture with a preface-sized record so
    # later synthetic GETs count.
    controller.middlebox.capture.append(_get_record(0.0, seq=0, payload=120))
    return adversary, controller


def _append_gets(controller, time, count=2, base_seq=1000):
    for offset in range(count):
        controller.middlebox.capture.append(
            _get_record(time + offset * 0.01, seq=base_seq + offset * 100)
        )


def test_retries_disabled_escalates_unconditionally(sim):
    adversary, controller = _armed_adversary(sim, max_drop_retries=0)
    controller.trigger_callback(sim.now)
    sim.run()
    # Empty capture (no client reaction at all), yet the pre-fault
    # behaviour never checks: the attack escalates right after the window.
    assert adversary.phase is AttackPhase.ESCALATED
    assert adversary.retries_used == 0
    assert not adversary.aborted
    assert len(controller.drop_windows) == 1
    assert adversary.escalation_time == pytest.approx(0.5)


def test_no_retry_when_first_window_succeeds(sim):
    adversary, controller = _armed_adversary(sim, max_drop_retries=2)
    controller.trigger_callback(sim.now)
    # Client visibly re-requests inside the first window.
    sim.schedule_at(0.2, lambda: _append_gets(controller, 0.2))
    sim.run()
    assert adversary.phase is AttackPhase.ESCALATED
    assert adversary.retries_used == 0
    assert len(controller.drop_windows) == 1


def test_success_after_one_retry(sim, trace):
    adversary, controller = _armed_adversary(
        sim, trace=trace, max_drop_retries=2
    )
    controller.trigger_callback(sim.now)
    # Nothing during window 1 (0 -> 0.5); retry opens at 1.0 after the
    # 0.5 s backoff.  The client reacts during window 2.
    sim.schedule_at(1.2, lambda: _append_gets(controller, 1.2))
    sim.run()
    assert adversary.phase is AttackPhase.ESCALATED
    assert adversary.retries_used == 1
    assert not adversary.aborted
    assert [start for start, _ in controller.drop_windows] == [
        pytest.approx(0.0), pytest.approx(1.0)
    ]
    assert trace.count(category="attack.retry_scheduled") == 1
    assert trace.count(category="attack.retry") == 1
    assert trace.count(category="attack.aborted") == 0


def test_budget_exhaustion_aborts(sim, trace):
    adversary, controller = _armed_adversary(
        sim, trace=trace, max_drop_retries=2
    )
    controller.trigger_callback(sim.now)
    sim.run()
    # Windows: 0->0.5, retry@1.0->1.5 (backoff 0.5), retry@2.5->3.0
    # (backoff 1.0); still nothing => abort at 3.0.
    assert adversary.phase is AttackPhase.ABORTED
    assert adversary.aborted
    assert adversary.retries_used == 2
    assert adversary.abort_time == pytest.approx(3.0)
    assert [start for start, _ in controller.drop_windows] == [
        pytest.approx(0.0), pytest.approx(1.0), pytest.approx(2.5)
    ]
    assert controller.drop_filter.deactivated
    assert adversary.escalation_time is None
    assert trace.count(category="attack.aborted") == 1


def test_backoff_grows_exponentially(sim):
    adversary, controller = _armed_adversary(
        sim, max_drop_retries=3, retry_backoff=0.25, retry_backoff_factor=3.0
    )
    controller.trigger_callback(sim.now)
    sim.run()
    starts = [start for start, _ in controller.drop_windows]
    # window ends at 0.5; backoffs 0.25, 0.75, 2.25 between windows.
    assert starts == [
        pytest.approx(0.0),
        pytest.approx(0.75),
        pytest.approx(2.0),
        pytest.approx(4.75),
    ]
    assert adversary.aborted


def test_stale_gets_do_not_count_as_reaction(sim):
    adversary, controller = _armed_adversary(sim, max_drop_retries=1)
    # GETs observed *before* the window opened (the original request
    # burst) must not satisfy the success check.
    _append_gets(controller, time=-0.1, count=5)
    controller.trigger_callback(sim.now)
    sim.run()
    assert adversary.aborted
    assert adversary.retries_used == 1


def test_min_gets_threshold_respected(sim):
    adversary, controller = _armed_adversary(
        sim, max_drop_retries=1, retry_success_min_gets=3
    )
    controller.trigger_callback(sim.now)
    # Two fresh GETs < threshold of 3: not a success, budget exhausts.
    sim.schedule_at(0.2, lambda: _append_gets(controller, 0.2, count=2))
    sim.run()
    assert adversary.aborted


def test_config_validation():
    with pytest.raises(ValueError):
        AdversaryConfig(max_drop_retries=-1)
    with pytest.raises(ValueError):
        AdversaryConfig(retry_backoff=-0.5)
    with pytest.raises(ValueError):
        AdversaryConfig(retry_backoff_factor=0.5)
    with pytest.raises(ValueError):
        AdversaryConfig(retry_success_min_gets=0)


def test_defaults_leave_recovery_disabled():
    config = AdversaryConfig()
    assert config.max_drop_retries == 0


# ---------------------------------------------------------------------------
# End to end: a client-side outage across the drop window => ABORTED
# ---------------------------------------------------------------------------

def test_outage_through_drop_window_aborts_end_to_end():
    from repro.experiments.harness import TrialConfig, summarize_trial
    from repro.web.workload import VolunteerWorkload

    workload = VolunteerWorkload(seed=7)
    summary = summarize_trial(
        0,
        workload,
        TrialConfig(
            adversary=AdversaryConfig(max_drop_retries=2, retry_backoff=0.5),
            # The client link goes dark just after the trigger (~1.1 s)
            # and stays dark past every retry: no reaction is possible.
            faults=FaultSchedule((Outage(1.2, 30.0),)),
            fault_location="client",
            horizon=25.0,
        ),
    )
    assert summary.attack_aborted
    assert summary.attack_phase == AttackPhase.ABORTED.value
    assert summary.attack_retries == 2
    assert summary.analysis.attack_aborted
