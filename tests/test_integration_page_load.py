"""End-to-end integration tests: full page loads and the harness."""

import pytest

from repro.core.adversary import AdversaryConfig
from repro.experiments.harness import TrialConfig, run_trial
from repro.web.browser import BrowserConfig
from repro.web.isidewith import HTML_OBJECT_ID, PARTIES
from repro.web.workload import VolunteerWorkload


@pytest.fixture(scope="module")
def baseline_outcome():
    return run_trial(0, VolunteerWorkload(seed=7), TrialConfig())


@pytest.fixture(scope="module")
def attacked_outcome():
    return run_trial(
        0, VolunteerWorkload(seed=7),
        TrialConfig(adversary=AdversaryConfig()),
    )


def test_baseline_page_completes(baseline_outcome):
    assert baseline_outcome.completed
    assert baseline_outcome.browser.resets_sent == 0
    assert baseline_outcome.duration < 10.0


def test_baseline_all_objects_received(baseline_outcome):
    handles = baseline_outcome.client.handles.values()
    complete = [h for h in handles if h.complete]
    assert len(complete) == len(baseline_outcome.site.schedule)
    by_path = {h.path: h.received_bytes for h in complete}
    for request in baseline_outcome.site.schedule:
        assert by_path[request.obj.path] == request.obj.size


def test_baseline_gets_observed_match_schedule(baseline_outcome):
    gets = baseline_outcome.monitor.get_requests()
    assert len(gets) == len(baseline_outcome.site.schedule)


def test_baseline_sixth_get_is_html(baseline_outcome):
    """The adversary's trigger condition targets the right request."""
    sixth_time = baseline_outcome.monitor.nth_get_time(6)
    html_handles = baseline_outcome.browser.handles_by_object[HTML_OBJECT_ID]
    # The HTML request left the client just before the gateway saw GET #6.
    assert abs(sixth_time - html_handles[0].requested_at) < 0.2


def test_baseline_html_heavily_multiplexed(baseline_outcome):
    degree = baseline_outcome.report.original_degree(HTML_OBJECT_ID)
    # Usually ≈1; the specific seed used here multiplexes.
    assert degree is not None


def test_attack_triggers_at_sixth_get(attacked_outcome):
    adversary = attacked_outcome.adversary
    assert adversary.trigger_time is not None
    sixth = attacked_outcome.monitor.nth_get_time(6)
    assert sixth == pytest.approx(adversary.trigger_time, abs=1e-6)


def test_attack_forces_stream_reset(attacked_outcome):
    assert attacked_outcome.browser.resets_sent >= 1
    assert attacked_outcome.stream_resets() > 0


def test_attack_page_still_completes(attacked_outcome):
    """The attack mimics network trouble; the load finishes anyway."""
    assert attacked_outcome.completed


def test_attack_serializes_most_emblems(attacked_outcome):
    """The calibrated attack serializes the bulk of the image burst;
    the jitter actuator's imprecision loses some tail images (the
    Table II decline)."""
    serialized = sum(
        1 for party in PARTIES
        if attacked_outcome.report.min_degree(f"emblem-{party}") == 0.0
    )
    assert serialized >= 6


def test_attack_analysis_scores(attacked_outcome):
    analysis = attacked_outcome.analyze()
    assert analysis.single_object[HTML_OBJECT_ID].success
    assert len(analysis.sequence_truth) == 8
    assert analysis.sequence_prediction  # recovered something


def test_trials_are_reproducible():
    workload = VolunteerWorkload(seed=7)
    first = run_trial(1, workload, TrialConfig())
    second = run_trial(1, workload, TrialConfig())
    assert first.duration == second.duration
    assert len(first.topology.middlebox.capture) == \
        len(second.topology.middlebox.capture)
    assert first.client_retransmissions() == second.client_retransmissions()


def test_different_trials_differ():
    workload = VolunteerWorkload(seed=7)
    first = run_trial(1, workload, TrialConfig())
    second = run_trial(2, workload, TrialConfig())
    assert first.site.party_order != second.site.party_order


def test_trial_result_counters(baseline_outcome):
    assert baseline_outcome.total_retransmissions() >= \
        baseline_outcome.client_retransmissions()
    assert baseline_outcome.duplicate_servings() == 0
