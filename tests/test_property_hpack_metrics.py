"""Property-based tests for HPACK coding and the multiplexing metric."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import degree_of_multiplexing, instance_byte_ranges
from repro.h2.frames import DataFrame
from repro.h2.server import ResponseInstance
from repro.hpack.codec import HpackDecoder, HpackEncoder, prefix_integer_length
from repro.hpack.huffman import huffman_encoded_length
from repro.tcp.stream import StreamLayout
from repro.tls.record import APPLICATION_DATA, TLSRecord

header_names = st.sampled_from(
    [":method", ":path", ":authority", "accept", "cookie", "x-custom",
     "user-agent", "cache-control"]
)
header_values = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=0, max_size=40,
)
header_lists = st.lists(
    st.tuples(header_names, header_values), min_size=1, max_size=12
)


@given(st.lists(header_lists, min_size=1, max_size=6))
@settings(max_examples=100)
def test_hpack_roundtrip_over_block_sequences(blocks):
    """Decoder reproduces every header list, in order, for any sequence
    of blocks (dynamic-table state carried across blocks)."""
    encoder, decoder = HpackEncoder(), HpackDecoder()
    for headers in blocks:
        block = encoder.encode(headers)
        assert decoder.decode(block) == headers
        assert block.encoded_length >= len(headers)  # ≥1 octet per field


@given(header_lists)
@settings(max_examples=100)
def test_hpack_repeat_block_never_larger(headers):
    """Re-encoding the same header list never grows (indexing pays off)."""
    encoder = HpackEncoder()
    first = encoder.encode(headers)
    second = encoder.encode(headers)
    assert second.encoded_length <= first.encoded_length


@given(st.integers(0, 10_000_000), st.integers(1, 8))
def test_prefix_integer_length_positive_and_monotone(value, prefix):
    length = prefix_integer_length(value, prefix)
    assert length >= 1
    assert prefix_integer_length(value + 1, prefix) >= length


@given(st.text(max_size=200))
def test_huffman_length_bounds(text):
    """Huffman output is positive and at most ~3.75 bytes/char (30-bit
    worst case)."""
    length = huffman_encoded_length(text)
    assert length >= (len(text) * 5 + 7) // 8  # best case 5 bits/char
    assert length <= (len(text) * 30 + 7) // 8 + 1


# -- degree of multiplexing properties ---------------------------------------

_instance_counter = [0]


def _mk_instance(object_id):
    _instance_counter[0] += 1
    return ResponseInstance(
        instance_id=_instance_counter[0], object_id=object_id,
        path=f"/{object_id}", stream_id=1, body_bytes=1,
        duplicate=False, started_at=0.0,
    )


chunk_sequences = st.lists(
    st.tuples(st.integers(0, 3), st.integers(100, 2000)),
    min_size=1, max_size=20,
)


@given(chunk_sequences)
@settings(max_examples=150)
def test_degree_always_in_unit_interval(chunks):
    instances = {index: _mk_instance(f"obj{index}") for index in range(4)}
    layout = StreamLayout()
    present = set()
    for owner, size in chunks:
        frame = DataFrame(stream_id=1, data_bytes=size,
                          context=instances[owner])
        layout.append(TLSRecord(APPLICATION_DATA, size, payload=frame),
                      length=size)
        present.add(owner)
    ranges = instance_byte_ranges(layout)
    for owner in present:
        degree = degree_of_multiplexing(instances[owner], ranges)
        assert 0.0 <= degree <= 1.0


@given(chunk_sequences)
@settings(max_examples=150)
def test_single_object_streams_always_degree_zero(chunks):
    """If only one object is on the stream, its degree is always 0."""
    instance = _mk_instance("solo")
    layout = StreamLayout()
    for _, size in chunks:
        frame = DataFrame(stream_id=1, data_bytes=size, context=instance)
        layout.append(TLSRecord(APPLICATION_DATA, size, payload=frame),
                      length=size)
    ranges = instance_byte_ranges(layout)
    assert degree_of_multiplexing(instance, ranges) == 0.0


@given(chunk_sequences, chunk_sequences)
@settings(max_examples=100)
def test_sequential_objects_degree_zero(first_chunks, second_chunks):
    """Two objects transmitted back to back (no interleaving) are both
    degree 0 regardless of their chunking."""
    a, b = _mk_instance("a"), _mk_instance("b")
    layout = StreamLayout()
    for _, size in first_chunks:
        frame = DataFrame(stream_id=1, data_bytes=size, context=a)
        layout.append(TLSRecord(APPLICATION_DATA, size, payload=frame),
                      length=size)
    for _, size in second_chunks:
        frame = DataFrame(stream_id=3, data_bytes=size, context=b)
        layout.append(TLSRecord(APPLICATION_DATA, size, payload=frame),
                      length=size)
    ranges = instance_byte_ranges(layout)
    assert degree_of_multiplexing(a, ranges) == 0.0
    assert degree_of_multiplexing(b, ranges) == 0.0
