"""E18 — does the attack survive a transport without HOL blocking?

The paper's targeted-drop attack (§V) serializes the emblem images by
dropping in-flight response segments: TCP's single reliable byte
stream head-of-line-blocks every other HTTP/2 stream until the
retransmission lands, the browser panics into RST_STREAM-and-
re-request, and the spaced re-requests drain one object at a time for
the on-path observer to size.  The §VII discussion asks how the attack
fares on transports without that coupling.

This experiment runs the identical adversary (drops, jitter and GET
pacing untouched) over both registered transports:

* ``tcp`` — the paper's setting; one dropped segment stalls the whole
  connection, so the drop window reliably forces the reset storm.
* ``quic`` — the QUIC-like datagram transport
  (:mod:`repro.transport.quic`); a dropped datagram stalls only the
  streams whose frames it carried, the others keep delivering, the
  browser never resets, and the emblems stay fully multiplexed.

Reported per transport: the fraction of emblem images individually
identified, sequence positions recovered (Table II's quantity), the
ground-truth mean minimum multiplexing degree over the emblems
(0 = fully serialized, 1 = fully interleaved), and the collateral each
transport pays — retransmissions, duplicate servings, stream resets.
The result HTML is excluded on purpose: the first object of a page
load is serialized on *any* transport, which is why single-object
identification needs no attack at all (paper §III).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.adversary import AdversaryConfig
from repro.experiments.executor import TrialExecutor
from repro.experiments.harness import TrialConfig, run_trial
from repro.experiments.report import format_table, percentage
from repro.transport import TRANSPORTS
from repro.web.workload import VolunteerWorkload


@dataclass
class TransportStudyResult:
    rows_data: List[List[str]] = field(default_factory=list)

    def rows(self) -> List[List[str]]:
        return self.rows_data

    def render(self) -> str:
        return format_table(
            [
                "transport", "emblems identified", "sequence positions",
                "mean min degree", "retrans/load", "dup servings", "resets",
            ],
            self.rows(),
            title="E18 / §VII — targeted-drop attack across transports",
        )


@dataclass(frozen=True)
class _TransportTrial:
    """One fully attacked load on a pinned transport.

    The transport is pinned in the :class:`TrialConfig` rather than
    inherited from ``REPRO_TRANSPORT`` so both arms of the comparison
    stay honest regardless of the process environment.
    """

    seed: int
    transport: str

    def __call__(self, trial: int) -> Tuple[int, int, int, float, int, int, int]:
        workload = VolunteerWorkload(seed=self.seed)
        config = TrialConfig(
            adversary=AdversaryConfig(), transport=self.transport
        )
        outcome = run_trial(trial, workload, config)
        analysis = outcome.analyze()
        emblems = [f"emblem-{p}" for p in outcome.site.party_order]
        identified = sum(
            1 for emblem in emblems if analysis.single_success(emblem)
        )
        positions = sum(
            1 for a, b in zip(analysis.sequence_prediction,
                              analysis.sequence_truth)
            if a == b
        )
        degrees = [outcome.report.min_degree(e) for e in emblems]
        known = [d for d in degrees if d is not None]
        return (
            identified,
            positions,
            len(emblems),
            sum(known) / len(known) if known else 1.0,
            outcome.total_retransmissions(),
            outcome.duplicate_servings(),
            outcome.stream_resets(),
        )


def run(
    trials: int = 3,
    seed: int = 7,
    workers: Optional[int] = None,
) -> TransportStudyResult:
    """Attack the same volunteer sessions over each transport."""
    result = TransportStudyResult()
    executor = TrialExecutor(workers=workers)
    for transport in TRANSPORTS:
        rows = executor.map_trials(trials, _TransportTrial(seed, transport))
        identified = sum(row[0] for row in rows)
        positions = sum(row[1] for row in rows)
        emblems = sum(row[2] for row in rows)
        degree = sum(row[3] for row in rows) / len(rows)
        retrans = sum(row[4] for row in rows) / len(rows)
        duplicates = sum(row[5] for row in rows)
        resets = sum(row[6] for row in rows)
        result.rows_data.append([
            transport,
            f"{percentage(identified, emblems):.0f}%",
            f"{percentage(positions, emblems):.0f}%",
            f"{degree:.2f}",
            f"{retrans:.1f}",
            str(duplicates),
            str(resets),
        ])
    return result
