"""Robustness study — attack success under realistic network faults.

The paper ran its attack for three months on a live campus gateway
(§VI), where loss bursts, link flaps and cross-traffic perturbed every
phase of it; the other experiment modules run on clean links.  This
study asks the simulated analogue of the paper's most practical
question: **how robust is serialization-by-manipulation under network
faults?**  It sweeps a *fault intensity* knob from 0 (clean links) to 1
(severely impaired) and reports, per level, the attack's success rate,
how often the adaptive adversary had to retry or abort its drop phase,
and how broken the page loads themselves were.

Each intensity compiles to a deterministic :class:`FaultSchedule`
(:func:`noise_schedule`) combining every impairment in the taxonomy —
Gilbert–Elliott loss bursts, link flaps across the drop window,
a bandwidth dip, delay spikes around the trigger, a reordering window
over the re-request phase, and light duplication — with magnitudes
scaled by the intensity.  Trials are seeded from their index alone, so
the whole sweep is reproducible bit-for-bit.

The sweep runs under the executor's fault-tolerance policy (per-trial
timeout, same-seed retry, checkpoint/resume), so the study itself
survives crashed workers and interruption: a killed worker or a killed
run resumes from the JSON checkpoint with an identical final output.

CLI::

    repro robustness-study [--trials N] [--quick] [--checkpoint ck.json]
                           [--json out.json] [--workers W]
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.core.adversary import AdversaryConfig
from repro.experiments.executor import (
    FaultTolerance,
    TrialError,
    TrialExecutor,
)
from repro.experiments.harness import TrialConfig, summarize_trial
from repro.experiments.report import format_table, percentage
from repro.netsim.faults import (
    BandwidthDip,
    DelaySpike,
    Duplication,
    FaultSchedule,
    GilbertElliottLoss,
    ReorderWindow,
    flaps,
)
from repro.web.isidewith import HTML_OBJECT_ID
from repro.web.workload import VolunteerWorkload

#: The default intensity sweep.
INTENSITIES = (0.0, 0.25, 0.5, 0.75, 1.0)

#: Reduced sweep for the CI smoke run (``--quick``).
QUICK_INTENSITIES = (0.0, 0.5, 1.0)

#: Scored objects per trial: the result HTML plus the 8 emblem images.
OBJECTS_PER_TRIAL = 9


def noise_schedule(intensity: float) -> Optional[FaultSchedule]:
    """Compile a fault intensity in [0, 1] into a :class:`FaultSchedule`.

    The windows are anchored to the attack timeline of the canonical
    trial (trigger ≈ 1.1 s, drop window ≈ 1–7 s, spaced re-requests
    ≈ 7–14 s, retries pushing to ≈ 25 s):

    * **loss bursts** all trial long — burst frequency and length grow
      with intensity (Gilbert–Elliott);
    * **link flaps** across the drop window — at high intensity the
      window coincides with an outage, starving the adversary of the
      client reaction it needs (the adaptive-retry trigger);
    * a **bandwidth dip** over the drop/escalation boundary;
    * **delay spikes** around the trigger GET, perturbing when the
      adversary fires;
    * a **reordering window** over the re-request phase — re-interleaving
      the serialized objects the estimator depends on;
    * light **duplication** throughout.
    """
    if intensity <= 0:
        return None
    if intensity > 1:
        raise ValueError("fault intensity must be in [0, 1]")
    impairments = [
        GilbertElliottLoss(
            start=0.0,
            duration=60.0,
            bad_loss=0.85,
            mean_good=max(0.8, 4.0 - 3.0 * intensity),
            mean_bad=0.02 + 0.10 * intensity,
        ),
        BandwidthDip(start=3.0, duration=5.0, factor=1.0 - 0.7 * intensity),
        DelaySpike(
            start=0.5,
            duration=2.0,
            delay=0.005 + 0.020 * intensity,
            jitter=0.015 * intensity,
        ),
        ReorderWindow(
            start=6.5,
            duration=9.0,
            probability=min(1.0, 0.45 * intensity),
            max_delay=0.004 + 0.016 * intensity,
        ),
        Duplication(
            start=0.0, duration=60.0, probability=min(1.0, 0.06 * intensity)
        ),
    ]
    if intensity >= 0.5:
        # Flap the link across the drop window: long enough outages that
        # the client stalls into RTO backoff and the adversary's first
        # serialization attempts see no reaction at all.
        impairments.extend(
            flaps(
                start=2.0,
                count=2,
                down=0.4 + 1.6 * intensity,
                up=1.0,
            )
        )
    return FaultSchedule(tuple(impairments))


@dataclass(frozen=True)
class RobustnessTrial:
    """Picklable per-trial task: one attacked load at one intensity.

    Returns a plain-JSON dict so the executor can checkpoint it.
    """

    seed: int
    intensity: float
    max_drop_retries: int = 2
    horizon: float = 40.0

    def __call__(self, trial: int) -> Dict[str, Any]:
        workload = VolunteerWorkload(seed=self.seed)
        config = TrialConfig(
            adversary=AdversaryConfig(
                max_drop_retries=self.max_drop_retries,
                retry_backoff=0.5,
            ),
            faults=noise_schedule(self.intensity),
            fault_location="both",
            horizon=self.horizon,
        )
        summary = summarize_trial(trial, workload, config)
        analysis = summary.analysis
        scored = not summary.attack_aborted and not summary.broken
        object_successes = (
            sum(
                1 for verdict in analysis.single_object.values()
                if verdict.success
            )
            if scored else 0
        )
        sequence_correct = (
            sum(1 for ok in analysis.sequence_correct.values() if ok)
            if scored else 0
        )
        fault_drops = sum(
            count
            for category, count in summary.trace_categories.items()
            if category in ("link.drop.fault", "middlebox.drop.fault")
        )
        return {
            "trial": trial,
            "intensity": self.intensity,
            "completed": summary.completed,
            "aborted": summary.attack_aborted,
            "attack_phase": summary.attack_phase,
            "retries": summary.attack_retries,
            "html_success": bool(
                scored and analysis.single_success(HTML_OBJECT_ID)
            ),
            "object_successes": object_successes,
            "sequence_correct": sequence_correct,
            "client_retransmissions": summary.client_retransmissions,
            "fault_drops": fault_drops,
            "duration": summary.duration,
        }


@dataclass
class IntensityRow:
    """Aggregate of all trials at one fault intensity."""

    intensity: float
    trials: int = 0
    errors: int = 0
    object_successes: int = 0
    html_successes: int = 0
    sequence_correct: int = 0
    broken: int = 0
    aborted: int = 0
    retries: int = 0
    fault_drops: int = 0

    def add(self, record: Dict[str, Any]) -> None:
        self.trials += 1
        self.object_successes += record["object_successes"]
        self.html_successes += 1 if record["html_success"] else 0
        self.sequence_correct += record["sequence_correct"]
        self.broken += 0 if record["completed"] else 1
        self.aborted += 1 if record["aborted"] else 0
        self.retries += record["retries"]
        self.fault_drops += record["fault_drops"]

    @property
    def success_pct(self) -> float:
        """Mean per-object attack success (the headline curve)."""
        return percentage(
            self.object_successes, self.trials * OBJECTS_PER_TRIAL
        )

    @property
    def html_success_pct(self) -> float:
        return percentage(self.html_successes, self.trials)

    @property
    def sequence_pct(self) -> float:
        return percentage(
            self.sequence_correct, self.trials * OBJECTS_PER_TRIAL
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "intensity": self.intensity,
            "trials": self.trials,
            "errors": self.errors,
            "success_pct": round(self.success_pct, 2),
            "html_success_pct": round(self.html_success_pct, 2),
            "sequence_pct": round(self.sequence_pct, 2),
            "broken": self.broken,
            "aborted": self.aborted,
            "retries": self.retries,
            "fault_drops": self.fault_drops,
        }


@dataclass
class RobustnessResult:
    """The whole sweep, renderable as a table or JSON."""

    rows_data: List[IntensityRow] = field(default_factory=list)
    trials: int = 0
    seed: int = 7

    def rows(self) -> List[List[str]]:
        return [
            [
                f"{row.intensity:.2f}",
                f"{row.success_pct:.0f}%",
                f"{row.html_success_pct:.0f}%",
                f"{row.sequence_pct:.0f}%",
                str(row.aborted),
                str(row.retries),
                str(row.broken),
                str(row.fault_drops),
                str(row.errors),
            ]
            for row in self.rows_data
        ]

    def render(self) -> str:
        return format_table(
            ["fault intensity", "attack success", "HTML success",
             "sequence correct", "aborted", "retries", "broken",
             "fault drops", "trial errors"],
            self.rows(),
            title=(
                "Robustness study — serialization-by-manipulation "
                "under network faults"
            ),
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "study": "robustness",
            "seed": self.seed,
            "trials": self.trials,
            "rows": [row.to_json() for row in self.rows_data],
        }

    @property
    def monotone_story(self) -> bool:
        """Success never *increases* as faults intensify (small
        tolerance for sampling noise at adjacent levels)."""
        successes = [row.success_pct for row in self.rows_data]
        return all(
            later <= earlier + 5.0
            for earlier, later in zip(successes, successes[1:])
        )


def run(
    trials: int = 8,
    seed: int = 7,
    intensities: Sequence[float] = INTENSITIES,
    workers: Optional[int] = None,
    max_drop_retries: int = 2,
    fault_tolerance: Optional[FaultTolerance] = None,
) -> RobustnessResult:
    """Run the fault-intensity sweep.

    Args:
        trials: attacked page loads per intensity level.
        seed: workload master seed.
        intensities: fault levels to sweep, each in [0, 1].
        workers: worker processes (see :class:`TrialExecutor`).
        max_drop_retries: the adversary's retry budget per trial.
        fault_tolerance: executor policy; defaults to per-trial retry
            with a generous timeout.  The checkpoint (when configured)
            is shared across the whole sweep — trial indices are offset
            per level so every (level, trial) pair is distinct.
    """
    executor = TrialExecutor(workers=workers)
    if fault_tolerance is None:
        fault_tolerance = FaultTolerance(timeout=300.0, retries=1)
    result = RobustnessResult(trials=trials, seed=seed)
    for level, intensity in enumerate(intensities):
        row = IntensityRow(intensity=intensity)
        # Distinct index range per level so one checkpoint file covers
        # the whole sweep; the offset is stripped again before the trial
        # runs, so seeds are unchanged.
        offset = level * 100000
        indices = [offset + trial for trial in range(trials)]
        task = _OffsetTask(
            RobustnessTrial(
                seed=seed,
                intensity=intensity,
                max_drop_retries=max_drop_retries,
            ),
            offset,
        )
        outcomes = executor.map_trials(
            indices, task, fault_tolerance=fault_tolerance
        )
        for outcome in outcomes:
            if isinstance(outcome, TrialError):
                row.errors += 1
                row.trials += 1
            else:
                row.add(outcome)
        result.rows_data.append(row)
    return result


@dataclass(frozen=True)
class _OffsetTask:
    """Strips the per-level checkpoint offset before running the trial."""

    task: RobustnessTrial
    offset: int

    def __call__(self, index: int) -> Dict[str, Any]:
        return self.task(index - self.offset)
