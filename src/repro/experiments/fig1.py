"""E1 — Figure 1: size recovery from non-multiplexed vs multiplexed
transmissions.

A two-object micro-site: in *case 1* the client requests O2 only after
O1 completed (sequential), in *case 2* it requests both back to back
(pipelined, so the multi-threaded server interleaves them).  The
passive estimator recovers both sizes in case 1 and sees one merged
blob (or garbage splits) in case 2 — the paper's motivating figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.estimator import ObjectEstimate, SizeEstimator
from repro.core.monitor import TrafficMonitor
from repro.core.predictor import SizePredictor
from repro.experiments.report import format_table
from repro.h2.client import H2Client
from repro.h2.server import H2Server, ServerConfig
from repro.netsim.topology import build_adversary_path
from repro.web.objects import WebObject
from repro.web.site import LoadSchedule, ScheduledRequest, Website

O1_BYTES = 24000
O2_BYTES = 31000


@dataclass
class Fig1Case:
    """Outcome of one case (sequential or pipelined)."""

    name: str
    estimates: List[ObjectEstimate] = field(default_factory=list)
    o1_identified: bool = False
    o2_identified: bool = False

    @property
    def both_identified(self) -> bool:
        return self.o1_identified and self.o2_identified


@dataclass
class Fig1Result:
    sequential: Fig1Case = field(default_factory=lambda: Fig1Case("sequential"))
    pipelined: Fig1Case = field(default_factory=lambda: Fig1Case("pipelined"))

    def rows(self) -> List[List[str]]:
        def describe(case: Fig1Case) -> List[str]:
            sizes = ", ".join(str(e.payload_bytes) for e in case.estimates)
            return [
                case.name,
                str(len(case.estimates)),
                sizes[:60],
                "yes" if case.o1_identified else "no",
                "yes" if case.o2_identified else "no",
            ]
        return [describe(self.sequential), describe(self.pipelined)]

    def render(self) -> str:
        return format_table(
            ["case", "bursts", "burst sizes (B)", "O1 found", "O2 found"],
            self.rows(),
            title="E1 / Figure 1 — size estimation vs multiplexing",
        )


def _run_case(gap: float, seed: int) -> Fig1Case:
    """One page load of the two-object site with the given request gap."""
    objects = [
        WebObject("/o1.bin", O1_BYTES, "application/octet-stream",
                  object_id="O1"),
        WebObject("/o2.bin", O2_BYTES, "application/octet-stream",
                  object_id="O2"),
    ]
    website = Website("fig1", objects)
    topology = build_adversary_path(seed=seed)
    sim = topology.sim
    server = H2Server(
        sim, topology.server, 443, website.router,
        config=ServerConfig(), trace=topology.trace,
    )
    client = H2Client(
        sim, topology.client, topology.server.endpoint(443),
        trace=topology.trace, authority="fig1.example",
    )

    def issue_requests() -> None:
        client.get("/o1.bin")
        # Sequential: O2 well after O1 completes; pipelined: back to back.
        second_gap = gap if gap > 0 else 0.0005
        sim.schedule(second_gap, lambda: client.get("/o2.bin"))

    # Settle after the handshake so connection-setup control records
    # do not merge into O1's burst.
    client.on_ready = lambda: sim.schedule(0.25, issue_requests)
    client.connect()
    sim.run_until(20.0)

    case = Fig1Case("sequential" if gap > 0 else "pipelined")
    monitor = TrafficMonitor(topology.middlebox.capture)
    # A patient passive observer: tolerate slow-start stalls (≈1 RTT)
    # inside a transfer by requiring 40 ms of silence at a delimiter.
    estimator = SizeEstimator(delimiter_gap=0.040)
    case.estimates = estimator.estimate(monitor.response_packets())
    predictor = SizePredictor(website.size_map())
    case.o1_identified = predictor.find_object(case.estimates, "O1") is not None
    case.o2_identified = predictor.find_object(case.estimates, "O2") is not None
    return case


def run(seed: int = 7) -> Fig1Result:
    """Run both Figure 1 cases."""
    result = Fig1Result()
    # Sequential: O2 requested well after O1's transfer completes.
    result.sequential = _run_case(gap=0.8, seed=seed)
    result.sequential.name = "sequential"
    # Pipelined: requests 0.5 ms apart → multiplexed service.
    result.pipelined = _run_case(gap=0.0, seed=seed)
    result.pipelined.name = "pipelined"
    return result
