"""Reference single-trial slices for profiling and the hot-path bench.

Two canonical trials bound the per-trial cost of every sweep:

* the **Table I slice** — one jittered page load (50 ms GET spacing),
  the unit of work the E3 sweep repeats ``trials × delays`` times;
* the **Fig. 6 slice** — one attacked load with 80 % targeted drops,
  the heaviest trial shape (retransmission storms, stream resets, and
  the offline sequence analysis).

``python -m repro profile`` runs both with a profiler attached and
prints the per-subsystem report; ``benchmarks/bench_hotpath.py`` times
them and writes ``BENCH_hotpath.json``.
"""

from __future__ import annotations

from typing import Tuple

from repro import profiling
from repro.core.adversary import AdversaryConfig
from repro.experiments.harness import (
    SpacingSetup,
    TrialConfig,
    TrialSummary,
    summarize_trial,
)
from repro.web.workload import VolunteerWorkload

#: Slice names accepted by :func:`reference_config` / :func:`run_reference_trial`.
KINDS = ("table1", "fig6")


def reference_config(kind: str) -> TrialConfig:
    """The canonical :class:`TrialConfig` of one reference slice."""
    if kind == "table1":
        config = TrialConfig()
        config.controller_setup = SpacingSetup(0.050, noise_fraction=0.5)
        return config
    if kind == "fig6":
        return TrialConfig(
            adversary=AdversaryConfig(drop_rate=0.8, enable_escalation=False)
        )
    raise ValueError(f"unknown reference slice {kind!r}; expected one of {KINDS}")


def run_reference_trial(
    kind: str, trial: int = 0, seed: int = 7
) -> TrialSummary:
    """Run one reference trial end to end (analysis included)."""
    workload = VolunteerWorkload(seed=seed)
    return summarize_trial(trial, workload, reference_config(kind))


def profile_reference(
    seed: int = 7, trials_per_kind: int = 1
) -> Tuple[profiling.Profiler, str]:
    """Profile the reference slices; returns (profiler, report text)."""
    with profiling.profiled() as profiler:
        for kind in KINDS:
            with profiler.timer(f"slice.{kind}"):
                for trial in range(trials_per_kind):
                    run_reference_trial(kind, trial=trial, seed=seed)
    for name, amount in profiling.hpack_cache_counters().items():
        profiler.counters[name] = amount
    return profiler, profiler.render()
