"""Plain-text table rendering for experiment results."""

from __future__ import annotations

from typing import Any, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str = "",
) -> str:
    """Render an aligned text table (paper-style rows)."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [
        max(len(header), *(len(row[index]) for row in cells)) if cells
        else len(header)
        for index, header in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        " | ".join(header.ljust(width) for header, width in zip(headers, widths))
    )
    lines.append("-+-".join("-" * width for width in widths))
    for row in cells:
        lines.append(
            " | ".join(value.ljust(width) for value, width in zip(row, widths))
        )
    return "\n".join(lines)


def percentage(numerator: int, denominator: int) -> float:
    """Percentage with zero-denominator safety."""
    if denominator == 0:
        return 0.0
    return 100.0 * numerator / denominator
