"""E3 — Table I: effect of jitter on HTTP/2 multiplexing.

For each "increase in delay per request" d ∈ {0, 25, 50, 100} ms the
paper downloads the page 100 times and reports (a) the percentage of
cases in which the object of interest (the 6th object, the result HTML)
was not multiplexed, and (b) the increase in TCP retransmissions over
the d=0 baseline.

Paper values: 32/46/54/54 % not multiplexed; +0/+33/+130/+194 %
retransmissions.  Our testbed reproduces the shape — a monotone rise
that saturates beyond 50 ms as retransmission-fed duplicate servings
re-intensify multiplexing — at somewhat higher absolute levels (see
EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.experiments.harness import TrialConfig, run_trial
from repro.experiments.report import format_table, percentage
from repro.web.isidewith import HTML_OBJECT_ID
from repro.web.workload import VolunteerWorkload

#: The paper's sweep points, in seconds.
DELAYS = (0.0, 0.025, 0.050, 0.100)


@dataclass
class JitterRow:
    """One Table I row."""

    delay: float
    trials: int = 0
    not_multiplexed: int = 0
    retransmissions: int = 0
    duplicate_servings: int = 0
    broken: int = 0

    @property
    def not_multiplexed_pct(self) -> float:
        return percentage(self.not_multiplexed, self.trials)

    def retransmission_increase_pct(self, baseline: int) -> float:
        if baseline == 0:
            # An all-but-lossless baseline: report the absolute count as
            # the increase (the paper's baseline was non-zero).
            return float(self.retransmissions) * 100.0
        return 100.0 * (self.retransmissions - baseline) / baseline


@dataclass
class Table1Result:
    rows_data: List[JitterRow] = field(default_factory=list)

    def rows(self) -> List[List[str]]:
        baseline = self.rows_data[0].retransmissions if self.rows_data else 0
        return [
            [
                f"{row.delay * 1000:.0f}",
                f"{row.not_multiplexed_pct:.0f}%",
                f"{row.retransmission_increase_pct(baseline):+.0f}%",
                str(row.retransmissions),
                str(row.duplicate_servings),
            ]
            for row in self.rows_data
        ]

    def render(self) -> str:
        return format_table(
            [
                "delay per request (ms)",
                "object not multiplexed",
                "retransmission increase",
                "retransmissions",
                "duplicate servings",
            ],
            self.rows(),
            title="E3 / Table I — jitter vs multiplexing",
        )


def run(
    trials: int = 30,
    seed: int = 7,
    delays: Sequence[float] = DELAYS,
    noise_fraction: float = 0.5,
) -> Table1Result:
    """Run the jitter sweep.

    Args:
        trials: page downloads per delay value (paper: 100).
        seed: workload master seed.
        delays: spacing values to sweep, in seconds.
        noise_fraction: jitter actuator imprecision (the §IV-B sweep
            uses the crude default).
    """
    workload = VolunteerWorkload(seed=seed)
    result = Table1Result()
    for delay in delays:
        row = JitterRow(delay=delay)
        for trial in range(trials):
            config = TrialConfig()
            if delay > 0:
                config.controller_setup = (
                    lambda controller, d=delay: controller.install_spacing(
                        d, noise_fraction=noise_fraction
                    )
                )
            outcome = run_trial(trial, workload, config)
            row.trials += 1
            degree = outcome.report.min_degree(HTML_OBJECT_ID)
            if degree == 0.0:
                row.not_multiplexed += 1
            row.retransmissions += outcome.client_retransmissions()
            row.duplicate_servings += outcome.duplicate_servings()
            if outcome.broken:
                row.broken += 1
        result.rows_data.append(row)
    return result
