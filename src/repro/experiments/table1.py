"""E3 — Table I: effect of jitter on HTTP/2 multiplexing.

For each "increase in delay per request" d ∈ {0, 25, 50, 100} ms the
paper downloads the page 100 times and reports (a) the percentage of
cases in which the object of interest (the 6th object, the result HTML)
was not multiplexed, and (b) the increase in TCP retransmissions over
the d=0 baseline.

Paper values: 32/46/54/54 % not multiplexed; +0/+33/+130/+194 %
retransmissions.  Our testbed reproduces the shape — a monotone rise
that saturates beyond 50 ms as retransmission-fed duplicate servings
re-intensify multiplexing — at somewhat higher absolute levels (see
EXPERIMENTS.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.experiments.executor import TrialExecutor
from repro.experiments.harness import (
    SpacingSetup,
    TrialConfig,
    TrialSummary,
    summarize_trial,
)
from repro.experiments.report import format_table, percentage
from repro.web.isidewith import HTML_OBJECT_ID
from repro.web.workload import VolunteerWorkload

#: The paper's sweep points, in seconds.
DELAYS = (0.0, 0.025, 0.050, 0.100)


@dataclass
class JitterRow:
    """One Table I row."""

    delay: float
    trials: int = 0
    not_multiplexed: int = 0
    retransmissions: int = 0
    duplicate_servings: int = 0
    broken: int = 0

    @property
    def not_multiplexed_pct(self) -> float:
        return percentage(self.not_multiplexed, self.trials)

    def retransmission_increase_pct(self, baseline: int) -> float:
        """Increase over the d=0 baseline, in percent.

        A zero baseline has no meaningful percentage increase: the
        result is ``inf`` (or 0.0 when this row is also zero), rendered
        as ``—`` in the table.
        """
        if baseline == 0:
            return 0.0 if self.retransmissions == 0 else math.inf
        return 100.0 * (self.retransmissions - baseline) / baseline


@dataclass(frozen=True)
class _JitterTrial:
    """Picklable per-trial task for one sweep point."""

    seed: int
    delay: float
    noise_fraction: float

    def __call__(self, trial: int) -> TrialSummary:
        workload = VolunteerWorkload(seed=self.seed)
        config = TrialConfig()
        if self.delay > 0:
            config.controller_setup = SpacingSetup(
                self.delay, noise_fraction=self.noise_fraction
            )
        return summarize_trial(trial, workload, config, analyze=False)


@dataclass
class Table1Result:
    rows_data: List[JitterRow] = field(default_factory=list)

    def rows(self) -> List[List[str]]:
        baseline = self.rows_data[0].retransmissions if self.rows_data else 0

        def increase(row: JitterRow) -> str:
            value = row.retransmission_increase_pct(baseline)
            if not math.isfinite(value):
                return "—"
            return f"{value:+.0f}%"

        return [
            [
                f"{row.delay * 1000:.0f}",
                f"{row.not_multiplexed_pct:.0f}%",
                increase(row),
                str(row.retransmissions),
                str(row.duplicate_servings),
            ]
            for row in self.rows_data
        ]

    def render(self) -> str:
        return format_table(
            [
                "delay per request (ms)",
                "object not multiplexed",
                "retransmission increase",
                "retransmissions",
                "duplicate servings",
            ],
            self.rows(),
            title="E3 / Table I — jitter vs multiplexing",
        )


def run(
    trials: int = 30,
    seed: int = 7,
    delays: Sequence[float] = DELAYS,
    noise_fraction: float = 0.5,
    workers: Optional[int] = None,
) -> Table1Result:
    """Run the jitter sweep.

    Args:
        trials: page downloads per delay value (paper: 100).
        seed: workload master seed.
        delays: spacing values to sweep, in seconds.
        noise_fraction: jitter actuator imprecision (the §IV-B sweep
            uses the crude default).
        workers: trial-execution worker count (None → ``REPRO_WORKERS``).
    """
    executor = TrialExecutor(workers=workers)
    result = Table1Result()
    for delay in delays:
        row = JitterRow(delay=delay)
        summaries = executor.map_trials(
            trials, _JitterTrial(seed, delay, noise_fraction)
        )
        for summary in summaries:
            row.trials += 1
            if summary.min_degree(HTML_OBJECT_ID) == 0.0:
                row.not_multiplexed += 1
            row.retransmissions += summary.client_retransmissions
            row.duplicate_servings += summary.duplicate_servings
            if summary.broken:
                row.broken += 1
        result.rows_data.append(row)
    return result
