"""E19 — the accuracy/overhead frontier the paper never measured.

The paper's attack (§III) identifies objects by near-exact TLS
record-size matching.  Any padding defense trivially breaks *that* —
but Morla (arXiv:1707.00641, 1607.06709) shows HTTP/2 object sizes
leak statistically under pipelining and multiplexing.  This experiment
sweeps **defense strength × classifier** over seeded page-population
sessions and reports, per defense level:

* its exact integer byte overhead (permille of the undefended load);
* its added latency (chaff slots + pipeline serialization);
* the accuracy of the paper's exact-match baseline *and* of each
  registered statistical classifier (:mod:`repro.infer.classifiers`).

Reading the frontier: with defenses off, the statistical classifiers
beat the exact matcher on multiplexed traffic (contamination pushes
totals outside the exact tolerance; feature-space models learn the
contamination distribution instead).  Padding then buys privacy at a
byte cost — but far less privacy against the statistical attacker than
against the baseline the paper assumed.

All arithmetic is integer end to end, so the table is bit-identical
across worker counts, backends and kill-resume, and is sealed by a
golden master.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.executor import TrialExecutor
from repro.experiments.report import format_table
from repro.infer.dataset import StudyDesign, evaluate_session
from repro.infer.defenses import defense_level
from repro.infer.summary import InferSummary


@dataclass(frozen=True)
class _InferTrial:
    """One page-population session, fully derived from (design, index)."""

    design: StudyDesign

    def __call__(self, trial: int) -> Dict[str, object]:
        return evaluate_session(trial, self.design)


def _permille_str(permille: int) -> str:
    """Fixed-point rendering: integer permille -> 'dd.d%'."""
    return f"{permille // 10}.{permille % 10}%"


@dataclass
class InferStudyResult:
    """The frontier: one row per defense level, plus integer accessors."""

    design: StudyDesign
    summary: InferSummary

    def accuracy_permille(self, level: str, classifier: str) -> int:
        return self.summary.accuracy_permille(level, classifier)

    def byte_overhead_permille(self, level: str) -> int:
        return self.summary.byte_overhead_permille(level)

    def rows(self) -> List[List[str]]:
        rows = []
        for name in self.design.levels:
            level = defense_level(name)
            row = [
                name,
                str(level.pad_block),
                str(level.chaff_records),
                "yes" if level.pipeline else "no",
                _permille_str(self.summary.byte_overhead_permille(name)),
                f"{self.summary.mean_latency_us(name) / 1000:.1f}ms",
            ]
            row.extend(
                _permille_str(self.summary.accuracy_permille(name, clf))
                for clf in self.design.classifiers
            )
            rows.append(row)
        return rows

    def render(self) -> str:
        headers = ["defense", "pad", "chaff", "pipe", "bytes+", "latency+"]
        headers.extend(self.design.classifiers)
        table = format_table(
            headers,
            self.rows(),
            title=(
                "E19 / infer — statistical size inference vs defenses "
                f"({self.summary.sessions} sessions, "
                f"{self.summary.objects} objects)"
            ),
        )
        off = self.design.levels[0]
        statistical = [
            clf for clf in self.design.classifiers if clf != "exact"
        ]
        if "exact" in self.design.classifiers and statistical:
            best = max(
                statistical,
                key=lambda clf: (self.summary.accuracy_permille(off, clf), clf),
            )
            table += (
                f"\nundefended: exact-match baseline "
                f"{_permille_str(self.summary.accuracy_permille(off, 'exact'))}"
                f" vs best statistical ({best}) "
                f"{_permille_str(self.summary.accuracy_permille(off, best))}"
            )
        return table


def run(
    trials: int = 6,
    seed: int = 2020,
    workers: Optional[int] = None,
    design: Optional[StudyDesign] = None,
) -> InferStudyResult:
    """Sweep defense strength × classifier over ``trials`` sessions."""
    if design is None:
        design = StudyDesign(seed=seed)
    executor = TrialExecutor(workers=workers)
    results = executor.map_trials(trials, _InferTrial(design))
    summary = InferSummary(design.levels, design.classifiers)
    summary.fold_all(results)
    return InferStudyResult(design=design, summary=summary)
