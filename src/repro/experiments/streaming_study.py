"""E10 — the attack against streaming traffic (paper §VII).

A DASH player's prefetch pipelining multiplexes consecutive video
segments, so a passive observer sees merged bursts and misreads the
bitrate ladder.  The serialization attack — just the GET-spacing filter,
no resets needed — separates the segments and recovers the quality
sequence.

Reported per deployment: fraction of segments whose quality rung the
observer classified correctly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.controller import NetworkController
from repro.core.estimator import SizeEstimator
from repro.core.monitor import TrafficMonitor
from repro.experiments.executor import TrialExecutor
from repro.experiments.report import format_table, percentage
from repro.h2.client import H2Client
from repro.h2.server import H2Server, ServerConfig
from repro.netsim.topology import build_adversary_path
from repro.web.streaming import (
    StreamingPlayer,
    StreamingSession,
    generate_session,
)
from repro.web.workload import VolunteerWorkload
from repro.simkernel.randomstream import RandomStreams


def _classify_bursts(
    session: StreamingSession,
    monitor: TrafficMonitor,
) -> List[Optional[str]]:
    """Nearest-rung labels for the observed bursts, in order.

    A patient observer: 40 ms of delimiter silence (tolerating slow-
    start stalls inside a multi-hundred-KB segment), and suppression of
    near-identical consecutive bursts (retransmitted duplicate servings
    replay a segment's size).  Only bursts within 25 % of some rung's
    nominal size are labelled; merged double-segment bursts fall
    between/beyond rungs or land on the wrong one.
    """
    estimates = SizeEstimator(
        min_object_bytes=20_000, delimiter_gap=0.040, idle_gap=0.060
    ).estimate(monitor.response_packets())

    deduped = []
    for estimate in estimates:
        duplicate = any(
            abs(estimate.payload_bytes - previous.payload_bytes)
            <= 0.02 * previous.payload_bytes
            for previous in deduped[-2:]
        )
        if not duplicate:
            deduped.append(estimate)

    labels: List[Optional[str]] = []
    for estimate in deduped:
        best_quality = None
        best_error = None
        for quality, nominal in session.ladder.items():
            error = abs(estimate.payload_bytes - nominal)
            if error <= 0.25 * nominal and (
                best_error is None or error < best_error
            ):
                best_quality, best_error = quality, error
        labels.append(best_quality)
    return labels


def _score(session: StreamingSession, labels: List[Optional[str]]) -> int:
    """How much of the quality sequence leaked: the longest common
    subsequence between the recovered labels and the truth."""
    import difflib

    truth = list(session.qualities)
    observed = [label for label in labels if label is not None]
    matcher = difflib.SequenceMatcher(a=truth, b=observed, autojunk=False)
    return sum(block.size for block in matcher.get_matching_blocks())


def _run_session(
    trial: int,
    seed: int,
    attacked: bool,
    segments: int,
    spacing: float = 0.900,
) -> Tuple[StreamingSession, int, bool]:
    """One streaming session; returns (session, correct, finished)."""
    rng = RandomStreams(seed).spawn(f"stream-{trial}")
    session = generate_session(rng, segments=segments)
    topology = build_adversary_path(seed=rng.master_seed)
    sim = topology.sim
    H2Server(
        sim, topology.server, 443, session.router,
        config=ServerConfig(), trace=topology.trace,
    )
    client = H2Client(
        sim, topology.client, topology.server.endpoint(443),
        trace=topology.trace, authority="video.example",
    )
    if attacked:
        controller = NetworkController(
            sim, topology.middlebox, rng, trace=topology.trace
        )
        # Segments are large and naturally ~2 s apart; only the
        # buffer-fill pipeline needs separating, and a coarse spacing
        # comfortably exceeds each segment's transfer time.
        controller.install_spacing(spacing, noise_fraction=0.05)
    player = StreamingPlayer(sim, client, session)
    player.start()
    sim.run_until(segments * 3.0 + 20.0)

    monitor = TrafficMonitor(topology.middlebox.capture)
    labels = _classify_bursts(session, monitor)
    return session, _score(session, labels), player.finished


@dataclass(frozen=True)
class _StreamTrial:
    """One streaming session, scored worker-side (the live session and
    capture stay in the worker; only plain counts come back)."""

    seed: int
    attacked: bool
    segments: int

    def __call__(self, trial: int) -> Tuple[int, int, bool]:
        session, score, done = _run_session(
            trial, self.seed, self.attacked, self.segments
        )
        return score, session.segment_count, done


@dataclass
class StreamingStudyResult:
    rows_data: List[List[str]] = field(default_factory=list)

    def rows(self) -> List[List[str]]:
        return self.rows_data

    def render(self) -> str:
        return format_table(
            ["observer", "segment qualities recovered", "sessions finished"],
            self.rows(),
            title="E10 / §VII — the attack vs adaptive streaming",
        )


def run(
    trials: int = 8,
    seed: int = 7,
    segments: int = 12,
    workers: Optional[int] = None,
) -> StreamingStudyResult:
    """Passive vs attacked quality-sequence recovery."""
    executor = TrialExecutor(workers=workers)
    result = StreamingStudyResult()
    for attacked in (False, True):
        correct = 0
        total = 0
        finished = 0
        outcomes = executor.map_trials(
            trials, _StreamTrial(seed, attacked, segments)
        )
        for score, segment_count, done in outcomes:
            correct += score
            total += segment_count
            finished += 1 if done else 0
        result.rows_data.append([
            "attacked (GET spacing)" if attacked else "passive",
            f"{percentage(correct, total):.0f}%",
            f"{finished}/{trials}",
        ])
    return result
