"""E4 — Figure 5: effect of bandwidth limitation.

The paper applies the 50 ms jitter, then throttles both directions to
{1000, 800, 500, 100, 1} Mbps, reporting per level the number of
retransmissions (declining with bandwidth) and the percentage of
success cases for the object of interest — which *peaks near 800 Mbps*
because many high-bandwidth "successes" were retransmitted copies of
the object rather than the object itself.

Our clean-room token-bucket gateway does not reproduce the paper's
bandwidth sensitivities on this small page (see EXPERIMENTS.md for the
analysis); the experiment reports, per bandwidth, the same quantities
plus the **duplicate-only success** count — the confound the paper
dissects — which our ground truth can separate exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.experiments.executor import TrialExecutor
from repro.experiments.harness import (
    SpacingAndBandwidthSetup,
    TrialConfig,
    TrialSummary,
    summarize_trial,
)
from repro.experiments.report import format_table, percentage
from repro.simkernel.units import MBPS
from repro.web.isidewith import HTML_OBJECT_ID
from repro.web.workload import VolunteerWorkload

#: The paper's sweep, in Mbps.
BANDWIDTHS_MBPS = (1000, 800, 500, 100, 1)


@dataclass(frozen=True)
class _BandwidthTrial:
    """Picklable per-trial task for one bandwidth level."""

    seed: int
    bandwidth_mbps: float
    jitter_spacing: float
    burst_bytes: int

    def __call__(self, trial: int) -> TrialSummary:
        workload = VolunteerWorkload(seed=self.seed)
        config = TrialConfig(
            controller_setup=SpacingAndBandwidthSetup(
                self.jitter_spacing,
                self.bandwidth_mbps * MBPS,
                burst_bytes=self.burst_bytes,
            )
        )
        return summarize_trial(trial, workload, config)


@dataclass
class BandwidthRow:
    bandwidth_mbps: float
    trials: int = 0
    retransmissions: int = 0
    successes: int = 0
    duplicate_only_successes: int = 0
    broken: int = 0

    @property
    def success_pct(self) -> float:
        return percentage(self.successes, self.trials)

    @property
    def duplicate_only_pct(self) -> float:
        return percentage(self.duplicate_only_successes, self.trials)


@dataclass
class Fig5Result:
    rows_data: List[BandwidthRow] = field(default_factory=list)

    def rows(self) -> List[List[str]]:
        return [
            [
                f"{row.bandwidth_mbps:.0f}",
                str(row.retransmissions),
                f"{row.success_pct:.0f}%",
                f"{row.duplicate_only_pct:.0f}%",
                str(row.broken),
            ]
            for row in self.rows_data
        ]

    def render(self) -> str:
        return format_table(
            ["bandwidth (Mbps)", "retransmissions", "success",
             "success via duplicate only", "broken"],
            self.rows(),
            title="E4 / Figure 5 — bandwidth limitation",
        )


def run(
    trials: int = 30,
    seed: int = 7,
    bandwidths_mbps: Sequence[float] = BANDWIDTHS_MBPS,
    jitter_spacing: float = 0.050,
    burst_bytes: int = 32 * 1024,
    workers: Optional[int] = None,
) -> Fig5Result:
    """Run the bandwidth sweep (jitter active throughout, as in §IV-C)."""
    executor = TrialExecutor(workers=workers)
    result = Fig5Result()
    for bandwidth in bandwidths_mbps:
        row = BandwidthRow(bandwidth_mbps=bandwidth)
        summaries = executor.map_trials(
            trials,
            _BandwidthTrial(seed, bandwidth, jitter_spacing, burst_bytes),
        )
        for summary in summaries:
            row.trials += 1
            row.retransmissions += summary.client_retransmissions
            if summary.broken:
                row.broken += 1
            verdict = summary.analysis.single_object[HTML_OBJECT_ID]
            if verdict.success:
                row.successes += 1
            if verdict.success_via_duplicate_only:
                row.duplicate_only_successes += 1
        result.rows_data.append(row)
    return result
