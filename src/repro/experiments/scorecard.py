"""The reproduction scorecard: every headline number in one table.

Runs the paper's primary experiments and renders measured values next
to the paper's, with a coarse shape verdict per row — the one-command
answer to "does this reproduction hold up?".  Per-experiment wall
times are recorded and exportable as JSON (``Scorecard.to_json``) for
machine consumption by the benchmark harness.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments import baseline, fig1, fig6, table1, table2
from repro.experiments.report import format_table

#: Paper reference values (see EXPERIMENTS.md for sources).
PAPER = {
    "baseline html not multiplexed (%)": 32,
    "table1 not multiplexed @50ms (%)": 54,
    "table1 retransmissions grow with jitter": True,
    "fig1 sequential sizes recovered": True,
    "fig1 pipelined sizes recovered": False,
    "fig6 drop-phase success (%)": 90,
    "table2 single-object HTML (%)": 100,
    "table2 sequence I1 (%)": 90,
    "table2 sequence tail declines": True,
}


@dataclass
class ScorecardRow:
    metric: str
    paper: str
    measured: str
    shape_holds: bool


@dataclass
class Scorecard:
    rows_data: List[ScorecardRow] = field(default_factory=list)
    #: Wall-clock seconds per sub-experiment, in execution order.
    timings: Dict[str, float] = field(default_factory=dict)

    def add(self, metric: str, paper, measured, shape_holds: bool) -> None:
        self.rows_data.append(
            ScorecardRow(metric, str(paper), str(measured), shape_holds)
        )

    @property
    def all_shapes_hold(self) -> bool:
        return all(row.shape_holds for row in self.rows_data)

    def rows(self) -> List[List[str]]:
        return [
            [row.metric, row.paper, row.measured,
             "✓" if row.shape_holds else "✗"]
            for row in self.rows_data
        ]

    def render(self) -> str:
        verdict = (
            "all shapes hold" if self.all_shapes_hold
            else "SHAPE DIVERGENCE — inspect rows marked ✗"
        )
        return format_table(
            ["metric", "paper", "measured", "shape"],
            self.rows(),
            title="Reproduction scorecard",
        ) + f"\n{verdict}"

    def to_json(self, indent: int = 2) -> str:
        """Machine-readable scorecard: rows, verdict, and wall times."""
        return json.dumps(
            {
                "all_shapes_hold": self.all_shapes_hold,
                "rows": [
                    {
                        "metric": row.metric,
                        "paper": row.paper,
                        "measured": row.measured,
                        "shape_holds": row.shape_holds,
                    }
                    for row in self.rows_data
                ],
                "timings_seconds": {
                    name: round(seconds, 3)
                    for name, seconds in self.timings.items()
                },
                "total_seconds": round(sum(self.timings.values()), 3),
            },
            indent=indent,
        )


def run(trials: int = 15, seed: int = 7,
        workers: Optional[int] = None) -> Scorecard:
    """Run the primary experiments and score them against the paper."""
    card = Scorecard()

    def timed(name, thunk):
        start = time.perf_counter()
        outcome = thunk()
        card.timings[name] = time.perf_counter() - start
        return outcome

    figure1 = timed("fig1", lambda: fig1.run(seed=seed))
    card.add(
        "Fig 1: sequential sizes recovered", "yes",
        "yes" if figure1.sequential.both_identified else "no",
        figure1.sequential.both_identified,
    )
    card.add(
        "Fig 1: pipelined sizes recovered", "no",
        "yes" if figure1.pipelined.both_identified else "no",
        not figure1.pipelined.both_identified,
    )

    base = timed(
        "baseline",
        lambda: baseline.run(trials=trials, seed=seed, workers=workers),
    )
    measured_pct = base.html_not_multiplexed_pct
    card.add(
        "baseline: HTML not multiplexed",
        f"{PAPER['baseline html not multiplexed (%)']}%",
        f"{measured_pct:.0f}%",
        5.0 <= measured_pct <= 60.0,
    )
    card.add(
        "baseline: images heavily multiplexed", "0.80–0.99",
        f"{base.image_mean_degree:.2f}",
        base.image_mean_degree >= 0.6,
    )

    jitter = timed(
        "table1",
        lambda: table1.run(trials=trials, seed=seed, workers=workers),
    )
    at_50 = jitter.rows_data[2]
    card.add(
        "Table I: not multiplexed @50 ms",
        f"{PAPER['table1 not multiplexed @50ms (%)']}%",
        f"{at_50.not_multiplexed_pct:.0f}%",
        at_50.not_multiplexed_pct > jitter.rows_data[0].not_multiplexed_pct,
    )
    counts = [row.retransmissions for row in jitter.rows_data]
    card.add(
        "Table I: retransmissions grow with jitter", "+33/130/194%",
        "/".join(str(count) for count in counts),
        counts == sorted(counts) and counts[-1] > counts[0],
    )

    drops = timed(
        "fig6",
        lambda: fig6.run(trials=trials, seed=seed, drop_rates=(0.8,),
                         workers=workers),
    )
    success = drops.rows_data[0].success_pct
    card.add(
        "§IV-D: success at 80% drops",
        f"{PAPER['fig6 drop-phase success (%)']}%",
        f"{success:.0f}%",
        success >= 70.0,
    )

    accuracy = timed(
        "table2",
        lambda: table2.run(trials=trials, seed=seed, workers=workers),
    )
    card.add(
        "Table II: single-object HTML",
        f"{PAPER['table2 single-object HTML (%)']}%",
        f"{accuracy.single_pct('HTML'):.0f}%",
        accuracy.single_pct("HTML") >= 90.0,
    )
    card.add(
        "Table II: sequence I1",
        f"{PAPER['table2 sequence I1 (%)']}%",
        f"{accuracy.sequence_pct('I1'):.0f}%",
        accuracy.sequence_pct("I1") >= 60.0,
    )
    early = sum(accuracy.sequence_pct(f"I{i}") for i in (1, 2, 3, 4)) / 4
    late = sum(accuracy.sequence_pct(f"I{i}") for i in (5, 6, 7, 8)) / 4
    card.add(
        "Table II: sequence tail declines", "90 → 62-64%",
        f"{early:.0f}% → {late:.0f}%",
        early >= late,
    )
    return card
