"""Terminal plotting: render experiment series as ASCII charts.

The benchmarks print the paper's tables; for the *figures* (Figure 5's
two curves, Table I's trend) a quick visual in the terminal is often
clearer.  No plotting dependency required.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    title: str = "",
    unit: str = "",
) -> str:
    """A horizontal bar chart.

    Raises:
        ValueError: on mismatched inputs or an empty series.
    """
    if len(labels) != len(values) or not labels:
        raise ValueError("labels and values must be non-empty and aligned")
    peak = max(values)
    scale = (width / peak) if peak > 0 else 0.0
    label_width = max(len(label) for label in labels)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        bar = "█" * max(0, round(value * scale))
        if value > 0 and not bar:
            bar = "▏"
        lines.append(
            f"{label:>{label_width}} │{bar} {value:g}{unit}"
        )
    return "\n".join(lines)


def line_chart(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 60,
    height: int = 12,
    title: str = "",
) -> str:
    """A scatter/line chart on a character grid.

    Raises:
        ValueError: on mismatched inputs or fewer than two points.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two aligned points")
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0
    grid = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, mark: str) -> None:
        column = round((x - x_low) / x_span * (width - 1))
        row = height - 1 - round((y - y_low) / y_span * (height - 1))
        grid[row][column] = mark

    # Linear interpolation between consecutive points.
    points = sorted(zip(xs, ys))
    for (x0, y0), (x1, y1) in zip(points, points[1:]):
        steps = max(2, round((x1 - x0) / x_span * width))
        for step in range(steps + 1):
            fraction = step / steps
            place(x0 + (x1 - x0) * fraction, y0 + (y1 - y0) * fraction, "·")
    for x, y in points:
        place(x, y, "●")

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{y_high:>10.6g} ┐")
    for row in grid:
        lines.append(" " * 11 + "│" + "".join(row))
    lines.append(f"{y_low:>10.6g} ┘")
    lines.append(
        " " * 12 + f"{x_low:<10.6g}" + " " * max(0, width - 20) + f"{x_high:>10.6g}"
    )
    return "\n".join(lines)


def series_from_rows(
    rows: Sequence[Sequence[object]],
    x_column: int,
    y_column: int,
) -> Tuple[List[float], List[float]]:
    """Extract numeric (x, y) series from rendered table rows.

    Percentage signs and unit suffixes are stripped.
    """
    def to_number(value: object) -> float:
        text = str(value).strip().rstrip("%").replace("+", "")
        return float(text)

    xs = [to_number(row[x_column]) for row in rows]
    ys = [to_number(row[y_column]) for row in rows]
    return xs, ys
