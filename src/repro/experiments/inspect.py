"""Trial inspection: human-readable timelines of a trial.

Debugging and exploration aids used throughout development and exposed
as part of the public API: given a
:class:`~repro.experiments.harness.TrialResult`, produce a merged
timeline of attack phases, browser actions, TCP pathology and
ground-truth servings, plus a wire-view of the adversary's burst
estimates next to the truth.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.estimator import SizeEstimator
from repro.experiments.harness import TrialResult

#: Trace categories worth a timeline line, with display labels.
_TIMELINE_CATEGORIES = {
    "attack.armed": "ATTACK armed",
    "attack.triggered": "ATTACK triggered (drop phase)",
    "attack.escalated": "ATTACK escalated jitter",
    "adversary.bandwidth": "ATTACK bandwidth limit",
    "browser.reset": "BROWSER reset all streams",
    "browser.broken": "BROWSER gave up",
    "browser.page_complete": "BROWSER page complete",
    "tcp.retransmit": "TCP retransmit",
    "h2.rst_stream.sent": "H2 RST_STREAM",
}


def timeline(result: TrialResult, max_lines: int = 200) -> str:
    """A merged, time-ordered view of one trial's notable events."""
    lines: List[Tuple[float, str]] = []
    for record in result.trace:
        label = _TIMELINE_CATEGORIES.get(record.category)
        if label is None:
            continue
        detail = ""
        if record.category == "tcp.retransmit":
            detail = f" ({record.get('kind')}, {record.get('conn')})"
        elif record.category == "browser.reset":
            detail = f" ({record.get('streams')} streams)"
        lines.append((record.time, f"{record.time:8.3f}s  {label}{detail}"))
    for instance in result.server.all_instances:
        tag = " [dup]" if instance.duplicate else ""
        tag += " [cancelled]" if instance.cancelled else ""
        lines.append(
            (
                instance.started_at,
                f"{instance.started_at:8.3f}s  SERVE {instance.object_id}"
                f" ({instance.body_bytes} B){tag}",
            )
        )
    lines.sort(key=lambda pair: pair[0])
    shown = [text for _, text in lines[:max_lines]]
    if len(lines) > max_lines:
        shown.append(f"… {len(lines) - max_lines} more events")
    return "\n".join(shown)


def wire_view(
    result: TrialResult,
    since: float = 0.0,
    estimator: Optional[SizeEstimator] = None,
) -> str:
    """The adversary's burst estimates annotated with ground truth.

    Each estimated burst is matched (by time overlap) against the
    response instances the server actually transmitted, so you can see
    at a glance which bursts are clean objects, merges, or duplicates.
    """
    estimator = estimator or SizeEstimator()
    estimates = estimator.estimate(result.monitor.response_packets(since))
    instances = sorted(
        (instance for instance in result.server.all_instances
         if instance.started_at >= since),
        key=lambda instance: instance.started_at,
    )
    lines = []
    for estimate in estimates:
        overlapping = [
            instance for instance in instances
            if instance.started_at <= estimate.end_time
            and (instance.finished_at or instance.started_at)
            >= estimate.start_time - 0.2
        ]
        names = ", ".join(
            f"{i.object_id}{'*' if i.duplicate else ''}"
            for i in overlapping[:4]
        )
        if len(overlapping) > 4:
            names += ", …"
        lines.append(
            f"{estimate.start_time:8.3f}s  {estimate.payload_bytes:>8d} B "
            f"({estimate.packets:>3d} pkts)  ≈ {names or '?'}"
        )
    return "\n".join(lines)


def summary(result: TrialResult) -> str:
    """One-paragraph trial summary."""
    return (
        f"trial {result.trial}: "
        f"{'completed' if result.completed else 'BROKEN'} "
        f"in {result.duration:.1f}s; "
        f"{len(result.topology.middlebox.capture)} packets captured, "
        f"{result.client_retransmissions()} client retransmissions, "
        f"{result.duplicate_servings()} duplicate servings, "
        f"{result.browser.resets_sent} browser resets"
    )
