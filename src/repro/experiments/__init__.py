"""The experiment harness: one module per paper table/figure.

Each experiment module exposes a ``run(...)`` function returning a
result object with a ``rows()`` method producing the same rows/series
the paper reports, plus formatting helpers in
:mod:`repro.experiments.report`.  The benchmarks under ``benchmarks/``
are thin wrappers over these.

Experiment index (see DESIGN.md §4):

* E1  Figure 1  — :mod:`repro.experiments.fig1`
* E2  baseline  — :mod:`repro.experiments.baseline`
* E3  Table I   — :mod:`repro.experiments.table1`
* E4  Figure 5  — :mod:`repro.experiments.fig5`
* E5  §IV-D     — :mod:`repro.experiments.fig6`
* E6  Table II  — :mod:`repro.experiments.table2`
* E7  §IV-A     — :mod:`repro.experiments.delay_ablation`
* E8  ablations — :mod:`repro.experiments.ablations`
"""

from repro.experiments.executor import TrialExecutor, map_trials, resolve_workers
from repro.experiments.harness import (
    TrialConfig,
    TrialResult,
    TrialSummary,
    run_trial,
    summarize_result,
    summarize_trial,
)

__all__ = [
    "TrialConfig",
    "TrialResult",
    "TrialSummary",
    "TrialExecutor",
    "map_trials",
    "resolve_workers",
    "run_trial",
    "summarize_result",
    "summarize_trial",
]
