"""E11 — inference from partly multiplexed objects (paper §VII).

    "Another possible extension would be to infer the object identity
    even when the object is partly multiplexed.  Our preliminary
    experiments suggest that this is indeed possible…"

At a mild jitter setting (25 ms — Table I's weakest point) many objects
of interest stay partly multiplexed: the delimiter estimator produces
*merged* bursts.  This experiment measures how many emblem images the
adversary can still place on the page by explaining merged bursts as
subset sums over the known inventory
(:class:`~repro.core.analysis.PartialMultiplexingAnalyzer`), compared
with exact-size matching alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.core.analysis import PartialMultiplexingAnalyzer
from repro.core.estimator import SizeEstimator
from repro.core.predictor import SizePredictor
from repro.experiments.executor import TrialExecutor
from repro.experiments.harness import SpacingSetup, TrialConfig, run_trial
from repro.experiments.report import format_table, percentage
from repro.web.workload import VolunteerWorkload


@dataclass
class PartialMuxResult:
    rows_data: List[List[str]] = field(default_factory=list)

    def rows(self) -> List[List[str]]:
        return self.rows_data

    def render(self) -> str:
        return format_table(
            ["analysis", "emblems located on the page"],
            self.rows(),
            title="E11 / §VII — inference from partly multiplexed objects",
        )


@dataclass(frozen=True)
class _PartialMuxTrial:
    """One mild-jitter load scored worker-side.

    The blob analysis needs the raw packet capture, which never leaves
    the worker; only the (exact, exact|blob, total) counts come back.
    """

    seed: int
    spacing: float

    def __call__(self, trial: int) -> Tuple[int, int, int]:
        workload = VolunteerWorkload(seed=self.seed)
        config = TrialConfig(controller_setup=SpacingSetup(self.spacing))
        outcome = run_trial(trial, workload, config)
        predictor = SizePredictor(outcome.site.size_map())
        analyzer = PartialMultiplexingAnalyzer(predictor)
        estimates = SizeEstimator().estimate(
            outcome.monitor.response_packets()
        )
        emblems = [f"emblem-{p}" for p in outcome.site.party_order]

        exact: Set[str] = set()
        via_blob: Set[str] = set()
        for object_id in emblems:
            if predictor.find_object(estimates, object_id) is not None:
                exact.add(object_id)
        for estimate in estimates:
            members = analyzer.identify_members(estimate, candidates=emblems)
            if members:
                via_blob.update(members)
        return len(exact), len(exact | via_blob), len(emblems)


def run(
    trials: int = 10,
    seed: int = 7,
    spacing: float = 0.025,
    workers: Optional[int] = None,
) -> PartialMuxResult:
    """Mild-jitter loads analyzed with and without blob explanation."""
    counts = TrialExecutor(workers=workers).map_trials(
        trials, _PartialMuxTrial(seed, spacing)
    )
    exact_found = sum(exact for exact, _, _ in counts)
    blob_found = sum(blob for _, blob, _ in counts)
    total = sum(size for _, _, size in counts)

    result = PartialMuxResult()
    result.rows_data.append([
        "exact size match only",
        f"{percentage(exact_found, total):.0f}%",
    ])
    result.rows_data.append([
        "+ subset-sum blob explanation",
        f"{percentage(blob_found, total):.0f}%",
    ])
    return result
