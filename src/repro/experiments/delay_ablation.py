"""E7 — §IV-A: uniform delay is useless to the adversary.

    "Introducing uniform delay for all packets on the client→server
    path cannot increase the inter-arrival time between two successive
    packets at the server.  Hence, we do not use this parameter."

The experiment adds a constant per-packet delay and shows (a) the
observed inter-GET gaps at the gateway are unchanged, and (b) the
multiplexing of the object of interest is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean
from typing import List, Optional, Sequence

from repro.experiments.executor import TrialExecutor
from repro.experiments.harness import (
    TrialConfig,
    TrialSummary,
    UniformDelaySetup,
    summarize_trial,
)
from repro.experiments.report import format_table, percentage
from repro.netsim.capture import Direction
from repro.web.isidewith import HTML_OBJECT_ID
from repro.web.workload import VolunteerWorkload

DELAYS = (0.0, 0.050, 0.100)


@dataclass(frozen=True)
class _UniformDelayTrial:
    """Picklable per-trial task for one uniform-delay level."""

    seed: int
    delay: float

    def __call__(self, trial: int) -> TrialSummary:
        workload = VolunteerWorkload(seed=self.seed)
        config = TrialConfig()
        if self.delay > 0:
            config.controller_setup = UniformDelaySetup(
                self.delay, Direction.CLIENT_TO_SERVER
            )
        return summarize_trial(trial, workload, config, analyze=False)


@dataclass
class DelayRow:
    delay: float
    trials: int = 0
    not_multiplexed: int = 0
    mean_get_gap_ms: float = 0.0

    @property
    def not_multiplexed_pct(self) -> float:
        return percentage(self.not_multiplexed, self.trials)


@dataclass
class DelayAblationResult:
    rows_data: List[DelayRow] = field(default_factory=list)

    def rows(self) -> List[List[str]]:
        return [
            [
                f"{row.delay * 1000:.0f}",
                f"{row.mean_get_gap_ms:.1f}",
                f"{row.not_multiplexed_pct:.0f}%",
            ]
            for row in self.rows_data
        ]

    def render(self) -> str:
        return format_table(
            ["uniform delay (ms)", "mean inter-GET gap (ms)",
             "object not multiplexed"],
            self.rows(),
            title="E7 / §IV-A — uniform delay changes nothing",
        )


def run(
    trials: int = 20,
    seed: int = 7,
    delays: Sequence[float] = DELAYS,
    workers: Optional[int] = None,
) -> DelayAblationResult:
    """Run the uniform-delay ablation."""
    executor = TrialExecutor(workers=workers)
    result = DelayAblationResult()
    for delay in delays:
        row = DelayRow(delay=delay)
        gap_means: List[float] = []
        for summary in executor.map_trials(
            trials, _UniformDelayTrial(seed, delay)
        ):
            row.trials += 1
            if summary.min_degree(HTML_OBJECT_ID) == 0.0:
                row.not_multiplexed += 1
            if summary.inter_get_gaps:
                gap_means.append(mean(summary.inter_get_gaps))
        row.mean_get_gap_ms = mean(gap_means) * 1000 if gap_means else 0.0
        result.rows_data.append(row)
    return result
