"""E9 — learning-based attack triggering (paper §VII, future work).

The §V attack fires at the 6th GET.  Against a returning visitor whose
browser serves some of the pre-HTML objects from cache, the HTML slides
to an earlier position and a fixed-index trigger attacks the wrong
object.  This experiment:

1. generates *cached-visitor* sessions (each pre-HTML request dropped
   with some probability — the HTML is then the 3rd..6th GET);
2. trains :class:`~repro.core.trigger.HtmlGetClassifier` on profiling
   runs (the adversary loading the site itself, assumption 4); and
3. compares trigger accuracy — did the drop phase fire on the HTML's
   GET? — between the fixed-index and the classifier trigger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.trigger import HtmlGetClassifier
from repro.experiments.executor import TrialExecutor
from repro.experiments.harness import TrialConfig, summarize_trial
from repro.experiments.report import format_table, percentage
from repro.web.isidewith import HTML_OBJECT_ID, IsideWithSite
from repro.web.site import LoadSchedule, ScheduledRequest
from repro.web.workload import VolunteerWorkload


def cached_variant(
    site: IsideWithSite,
    rng,
    cache_probability: float = 0.5,
) -> Tuple[LoadSchedule, int]:
    """A returning visitor's schedule: pre-HTML requests may be cached.

    Each request before the HTML is dropped with ``cache_probability``
    (its gap folds into the next request so absolute timing is
    preserved).  Returns the new schedule and the HTML's new 0-based
    position.
    """
    requests: List[ScheduledRequest] = []
    carried_gap = 0.0
    html_index: Optional[int] = None
    stream = rng.stream("cache")
    for index, request in enumerate(site.schedule):
        is_pre_html = index < site.html_index
        if is_pre_html and stream.random() < cache_probability:
            carried_gap += request.gap
            continue
        requests.append(
            ScheduledRequest(
                request.gap + carried_gap,
                request.obj,
                request.priority_weight,
                request.script_triggered,
            )
        )
        carried_gap = 0.0
        if request.obj.object_id == HTML_OBJECT_ID:
            html_index = len(requests) - 1
    assert html_index is not None
    return LoadSchedule(requests), html_index


@dataclass(frozen=True)
class _ProfilingTrial:
    """One profiling load (alternating clean / cached schedules).

    Returns the GET observations at the gateway plus the HTML's true
    0-based request index for that schedule.
    """

    seed: int
    cache_probability: float

    def __call__(self, trial: int) -> Tuple[tuple, int]:
        workload = VolunteerWorkload(seed=self.seed)
        site = workload.session(trial)
        rng = workload.trial_rng(trial).spawn("profiling")
        if trial % 2 == 0:
            schedule, html_index = site.schedule, site.html_index
        else:
            schedule, html_index = cached_variant(
                site, rng, self.cache_probability
            )
        summary = summarize_trial(
            trial, workload, TrialConfig(schedule_override=schedule),
            analyze=False,
        )
        return tuple(summary.get_requests), html_index


@dataclass(frozen=True)
class _EvaluationTrial:
    """One cached-visitor evaluation load."""

    seed: int
    cache_probability: float

    def __call__(self, trial: int) -> Tuple[tuple, int]:
        workload = VolunteerWorkload(seed=self.seed)
        site = workload.session(trial)
        rng = workload.trial_rng(trial).spawn("evaluation")
        schedule, html_index = cached_variant(
            site, rng, self.cache_probability
        )
        summary = summarize_trial(
            trial, workload, TrialConfig(schedule_override=schedule),
            analyze=False,
        )
        return tuple(summary.get_requests), html_index


@dataclass
class TriggerStudyResult:
    rows_data: List[List[str]] = field(default_factory=list)

    def rows(self) -> List[List[str]]:
        return self.rows_data

    def render(self) -> str:
        return format_table(
            ["trigger", "fired on the HTML's GET", "mean index error"],
            self.rows(),
            title="E9 / §VII — fixed-index vs learned attack trigger",
        )


def run(
    trials: int = 12,
    training_trials: int = 10,
    seed: int = 7,
    cache_probability: float = 0.5,
    workers: Optional[int] = None,
) -> TriggerStudyResult:
    """Run the trigger study.

    Profiling (training) runs use *clean and cached* baseline loads of
    the adversary's own; evaluation runs are cached-visitor sessions.
    """
    executor = TrialExecutor(workers=workers)

    # ---- profiling phase: train the classifier --------------------------
    sessions = []
    html_indices = []
    profiling = executor.map_trials(
        training_trials, _ProfilingTrial(seed, cache_probability)
    )
    for observations, html_index in profiling:
        sessions.append(list(observations))
        html_indices.append(html_index)
    classifier = HtmlGetClassifier(k=3).fit(sessions, html_indices)

    # ---- evaluation phase ------------------------------------------------
    fixed_hits = 0
    learned_hits = 0
    fixed_errors: List[int] = []
    learned_errors: List[int] = []
    offset = training_trials
    evaluation = executor.map_trials(
        range(offset, offset + trials),
        _EvaluationTrial(seed, cache_probability),
    )
    for observations, html_index in evaluation:
        observations = list(observations)

        fixed_prediction = 5  # "the 6th GET", 0-based
        learned = classifier.predict_index(observations)
        learned_prediction = learned if learned is not None else fixed_prediction

        if fixed_prediction == html_index:
            fixed_hits += 1
        if learned_prediction == html_index:
            learned_hits += 1
        fixed_errors.append(abs(fixed_prediction - html_index))
        learned_errors.append(abs(learned_prediction - html_index))

    result = TriggerStudyResult()
    result.rows_data.append([
        "fixed index (6th GET)",
        f"{percentage(fixed_hits, trials):.0f}%",
        f"{sum(fixed_errors) / trials:.2f}",
    ])
    result.rows_data.append([
        "k-NN classifier",
        f"{percentage(learned_hits, trials):.0f}%",
        f"{sum(learned_errors) / trials:.2f}",
    ])
    return result
