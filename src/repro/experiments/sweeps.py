"""E14 — sensitivity sweeps over the attack's design knobs.

The paper fixes three magic numbers — 50 ms jitter, 6 s of drops, 80 ms
escalated jitter — after coarse experiments.  These sweeps map the
neighbourhoods of those choices so a user can see *why* they are where
they are:

* ``jitter_curve``    — Table I at a finer grain (the §IV-B saturation).
* ``drop_duration``   — too short and the client never resets; longer
  than the client's stall timeout buys nothing (the §IV-D choice).
* ``escalation_curve``— the spacing of the re-requested image burst:
  too small re-multiplexes, too large compounds actuator error and
  stretches the tail (the §V choice).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.adversary import AdversaryConfig
from repro.experiments.executor import TrialExecutor
from repro.experiments.harness import (
    SpacingSetup,
    TrialConfig,
    TrialSummary,
    summarize_trial,
)
from repro.experiments.plotting import bar_chart
from repro.experiments.report import format_table, percentage
from repro.web.isidewith import HTML_OBJECT_ID
from repro.web.workload import VolunteerWorkload


@dataclass
class SweepResult:
    """A labelled 1-D sweep: x values and one or two y series."""

    title: str
    x_label: str
    xs: List[float] = field(default_factory=list)
    primary_label: str = ""
    primary: List[float] = field(default_factory=list)
    secondary_label: str = ""
    secondary: List[float] = field(default_factory=list)

    def rows(self) -> List[List[str]]:
        rows = []
        for index, x in enumerate(self.xs):
            row = [f"{x:g}", f"{self.primary[index]:.0f}"]
            if self.secondary:
                row.append(f"{self.secondary[index]:.0f}")
            rows.append(row)
        return rows

    def render(self) -> str:
        headers = [self.x_label, self.primary_label]
        if self.secondary:
            headers.append(self.secondary_label)
        table = format_table(headers, self.rows(), title=self.title)
        chart = bar_chart(
            [f"{x:g}" for x in self.xs],
            self.primary,
            title=f"{self.primary_label} by {self.x_label}",
        )
        return table + "\n\n" + chart


@dataclass(frozen=True)
class _JitterPointTrial:
    """One trial at one point of the fine-grained jitter sweep."""

    seed: int
    spacing: float

    def __call__(self, trial: int) -> TrialSummary:
        workload = VolunteerWorkload(seed=self.seed)
        config = TrialConfig()
        if self.spacing:
            config.controller_setup = SpacingSetup(self.spacing)
        return summarize_trial(trial, workload, config, analyze=False)


@dataclass(frozen=True)
class _DropDurationTrial:
    """One trial at one drop-window duration."""

    seed: int
    duration: float

    def __call__(self, trial: int) -> TrialSummary:
        workload = VolunteerWorkload(seed=self.seed)
        adversary = AdversaryConfig(
            drop_duration=self.duration, enable_escalation=False
        )
        return summarize_trial(
            trial, workload, TrialConfig(adversary=adversary)
        )


@dataclass(frozen=True)
class _EscalationTrial:
    """One trial at one escalated-jitter spacing."""

    seed: int
    escalated_jitter: float

    def __call__(self, trial: int) -> TrialSummary:
        workload = VolunteerWorkload(seed=self.seed)
        adversary = AdversaryConfig(escalated_jitter=self.escalated_jitter)
        return summarize_trial(
            trial, workload, TrialConfig(adversary=adversary)
        )


def jitter_curve(
    trials: int = 10,
    seed: int = 7,
    spacings_ms: Sequence[float] = (0, 20, 40, 60, 80, 100, 120),
    workers: Optional[int] = None,
) -> SweepResult:
    """Fine-grained Table I: serialization rises then saturates."""
    executor = TrialExecutor(workers=workers)
    result = SweepResult(
        title="E14a — jitter sweep (fine-grained Table I)",
        x_label="spacing (ms)",
        primary_label="HTML not multiplexed (%)",
        secondary_label="client retransmissions",
    )
    for spacing_ms in spacings_ms:
        not_multiplexed = 0
        retransmissions = 0
        summaries = executor.map_trials(
            trials, _JitterPointTrial(seed, spacing_ms / 1000.0)
        )
        for summary in summaries:
            if summary.min_degree(HTML_OBJECT_ID) == 0.0:
                not_multiplexed += 1
            retransmissions += summary.client_retransmissions
        result.xs.append(spacing_ms)
        result.primary.append(percentage(not_multiplexed, trials))
        result.secondary.append(float(retransmissions))
    return result


def drop_duration(
    trials: int = 10,
    seed: int = 7,
    durations: Sequence[float] = (2.0, 4.0, 6.0, 9.0),
    workers: Optional[int] = None,
) -> SweepResult:
    """The §IV-D window length: the client must be starved past its
    stall timeout for the reset to happen."""
    executor = TrialExecutor(workers=workers)
    result = SweepResult(
        title="E14b — drop-window duration",
        x_label="drop duration (s)",
        primary_label="HTML attack success (%)",
        secondary_label="browser resets (total)",
    )
    for duration in durations:
        successes = 0
        resets = 0
        summaries = executor.map_trials(
            trials, _DropDurationTrial(seed, duration)
        )
        for summary in summaries:
            resets += summary.browser_resets
            if summary.analysis.single_object[HTML_OBJECT_ID].success:
                successes += 1
        result.xs.append(duration)
        result.primary.append(percentage(successes, trials))
        result.secondary.append(float(resets))
    return result


def escalation_curve(
    trials: int = 10,
    seed: int = 7,
    spacings_ms: Sequence[float] = (40, 80, 120, 160),
    workers: Optional[int] = None,
) -> SweepResult:
    """The §V escalated spacing for the image burst."""
    executor = TrialExecutor(workers=workers)
    result = SweepResult(
        title="E14c — escalated spacing for the image burst",
        x_label="escalated spacing (ms)",
        primary_label="mean image positions correct (of 8)",
    )
    for spacing_ms in spacings_ms:
        positions = 0
        summaries = executor.map_trials(
            trials, _EscalationTrial(seed, spacing_ms / 1000.0)
        )
        for summary in summaries:
            analysis = summary.analysis
            positions += sum(
                1 for object_id in analysis.sequence_truth
                if analysis.sequence_correct.get(object_id)
            )
        result.xs.append(spacing_ms)
        result.primary.append(positions / trials)
    return result
