"""E5 — §IV-D / Figure 6: targeted drops forcing an HTTP/2 stream reset.

The full pre-escalation attack: 50 ms jitter, 800 Mbps throttle, then
80 % drops on server→client application packets for 6 seconds starting
at the 6th GET.  The client resets its streams; the re-requested object
of interest is then served in single-threaded mode.  The paper reports
≈90 % success for the HTML, and that pushing the drop rate higher broke
the connection.

The drop-rate sweep column reproduces that cliff: at 80 % the attack
succeeds; at ≥95 % connections start breaking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.adversary import AdversaryConfig
from repro.experiments.executor import TrialExecutor
from repro.experiments.harness import TrialConfig, TrialSummary, summarize_trial
from repro.experiments.report import format_table, percentage
from repro.web.isidewith import HTML_OBJECT_ID
from repro.web.workload import VolunteerWorkload

DROP_RATES = (0.5, 0.8, 0.95)


@dataclass(frozen=True)
class _DropTrial:
    """Picklable per-trial task for one drop rate."""

    seed: int
    drop_rate: float

    def __call__(self, trial: int) -> TrialSummary:
        workload = VolunteerWorkload(seed=self.seed)
        adversary = AdversaryConfig(
            drop_rate=self.drop_rate,
            enable_escalation=False,
        )
        return summarize_trial(
            trial, workload, TrialConfig(adversary=adversary)
        )


@dataclass
class DropRow:
    drop_rate: float
    trials: int = 0
    successes: int = 0
    resets_observed: int = 0
    broken: int = 0

    @property
    def success_pct(self) -> float:
        return percentage(self.successes, self.trials)


@dataclass
class Fig6Result:
    rows_data: List[DropRow] = field(default_factory=list)

    def rows(self) -> List[List[str]]:
        return [
            [
                f"{row.drop_rate * 100:.0f}%",
                f"{row.success_pct:.0f}%",
                str(row.resets_observed),
                str(row.broken),
            ]
            for row in self.rows_data
        ]

    def render(self) -> str:
        return format_table(
            ["drop rate", "HTML success", "stream resets", "broken"],
            self.rows(),
            title="E5 / §IV-D — targeted drops and stream reset",
        )


def run(
    trials: int = 30,
    seed: int = 7,
    drop_rates: Sequence[float] = DROP_RATES,
    workers: Optional[int] = None,
) -> Fig6Result:
    """Run the drop-rate experiment (escalation phase disabled: this is
    the single-object §IV-D study)."""
    executor = TrialExecutor(workers=workers)
    result = Fig6Result()
    for drop_rate in drop_rates:
        row = DropRow(drop_rate=drop_rate)
        for summary in executor.map_trials(trials, _DropTrial(seed, drop_rate)):
            row.trials += 1
            row.resets_observed += summary.browser_resets
            if summary.broken:
                row.broken += 1
            if summary.analysis.single_object[HTML_OBJECT_ID].success:
                row.successes += 1
        result.rows_data.append(row)
    return result
