"""Parallel trial execution.

Every paper experiment replays ``run_trial`` over a range of trial
indices.  Each trial is a fully seeded, independent simulation, so the
sweep is embarrassingly parallel — but a live
:class:`~repro.experiments.harness.TrialResult` cannot cross a process
boundary.  :class:`TrialExecutor` therefore maps *picklable task
callables* over trial indices; tasks run the trial and extract a
picklable :class:`~repro.experiments.harness.TrialSummary` (or any
other plain-data result) worker-side.

Backends:

* ``serial``  — a plain in-process loop (the default for 1 worker).
* ``process`` — a spawn-context :mod:`multiprocessing` pool.  Spawn is
  used on every platform so workers never inherit forked simulator
  state, and because tasks must be picklable anyway.

Determinism: trials are seeded from their index alone, dispatch is
chunked over a fixed index order, and results are returned in trial
order (``Pool.map`` preserves input order), so aggregates are
bit-identical regardless of worker count or backend.

Worker count resolution order: explicit ``workers=`` argument, then the
``REPRO_WORKERS`` environment variable, then 1 (serial).

Fault tolerance
---------------

``map_trials`` accepts an optional :class:`FaultTolerance` policy.  With
one active, the executor switches from a shared pool to supervised
one-process-per-trial dispatch and guarantees:

* a worker exception is returned as a structured :class:`TrialError`
  carrying the trial index and traceback instead of poisoning the pool;
* a crashed worker (``SIGKILL``, OOM, hard exit) is detected by its
  exit code and only that trial is affected;
* a hung trial is killed after ``timeout`` wall-clock seconds;
* each failed trial is retried up to ``retries`` times — trials are
  seeded from their index alone, so a retry deterministically
  reproduces what the lost worker would have computed;
* completed results stream into a JSON checkpoint
  (``checkpoint_path``), and a re-run with the same checkpoint skips
  completed trials — a long sweep survives interruption of the whole
  run, with a final output identical to an uninterrupted one.

Even without a :class:`FaultTolerance` policy, worker exceptions are
wrapped as :class:`TrialExecutionError` so the failing trial index is
never lost.
"""

from __future__ import annotations

import base64
import contextlib
import hashlib
import io
import itertools
import json
import multiprocessing
import os
import pickle
import queue as queue_module
import sys
import tempfile
import time
import traceback
from collections import deque
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    TypeVar,
    Union,
)

T = TypeVar("T")

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV = "REPRO_WORKERS"

#: While set, worker processes swallow their own stdout so that a
#: parent-side :func:`capture_stdout` capture stays byte-clean even
#: with ``--workers`` parallelism (experiment tables are rendered
#: parent-side; anything a worker prints is non-deterministic noise).
CAPTURE_ENV = "REPRO_CAPTURE_WORKER_STDOUT"

#: While set to a directory, :meth:`TrialExecutor.map_trials` calls
#: without an explicit policy checkpoint into it (see
#: :func:`auto_fault_tolerance`) — the hook the ``repro verify``
#: determinism matrix uses to kill-and-resume *any* experiment.
CHECKPOINT_DIR_ENV = "REPRO_CHECKPOINT_DIR"

_BACKENDS = ("serial", "process")

#: Grace period between noticing a dead worker and declaring it crashed
#: (its result may still be in flight through the queue feeder).
_CRASH_GRACE = 1.0

#: Supervision loop poll interval, seconds.
_POLL_INTERVAL = 0.05


@contextlib.contextmanager
def capture_stdout() -> Iterator[io.StringIO]:
    """Capture experiment stdout for golden-master comparison.

    Redirects this process's ``sys.stdout`` into the yielded buffer and
    sets :data:`CAPTURE_ENV` so spawned workers (which write to the
    real file descriptor, out of reach of a parent-side redirect)
    silence their own stdout instead of interleaving into the capture.
    """
    buffer = io.StringIO()
    previous = os.environ.get(CAPTURE_ENV)
    os.environ[CAPTURE_ENV] = "1"
    try:
        with contextlib.redirect_stdout(buffer):
            yield buffer
    finally:
        if previous is None:
            os.environ.pop(CAPTURE_ENV, None)
        else:
            os.environ[CAPTURE_ENV] = previous


def _silence_worker_stdout() -> None:
    """Worker-side half of :func:`capture_stdout` (spawn inherits env)."""
    if os.environ.get(CAPTURE_ENV):
        sys.stdout = io.StringIO()


#: Sequence number for :func:`auto_fault_tolerance` checkpoint files,
#: distinguishing repeated ``map_trials`` calls with identical tasks.
#: Reset via :func:`reset_auto_checkpoint_calls` before a run so an
#: interrupted and a resumed run derive the same file names.
_auto_checkpoint_calls = itertools.count()


def reset_auto_checkpoint_calls() -> None:
    """Restart auto-checkpoint file numbering (before each tracked run)."""
    global _auto_checkpoint_calls
    _auto_checkpoint_calls = itertools.count()


def auto_fault_tolerance(
    task: Callable[[int], Any], indices: List[int]
) -> Optional["FaultTolerance"]:
    """The :data:`CHECKPOINT_DIR_ENV`-derived policy, if the env is set.

    The checkpoint file name combines a per-process call sequence
    number with a digest of the task's ``repr`` and the index list, so
    every ``map_trials`` call in a deterministic experiment maps to a
    stable file — which is exactly what lets a killed run resume: the
    re-run replays the same call sequence and finds its own files.
    Tasks are frozen dataclasses or partials of module functions, whose
    reprs are deterministic; an address-bearing repr would only cost a
    cache miss (the trials re-run), never a wrong resume.
    """
    directory = os.environ.get(CHECKPOINT_DIR_ENV, "").strip()
    if not directory:
        return None
    call = next(_auto_checkpoint_calls)
    digest = hashlib.sha256(
        f"{task!r}|{indices!r}".encode()
    ).hexdigest()[:12]
    path = os.path.join(directory, f"call{call:03d}-{digest}.json")
    return FaultTolerance(retries=0, checkpoint_path=path)


def _encode_checkpoint_result(result: Any) -> Any:
    """JSON-encode a result, wrapping non-JSON payloads via pickle.

    Experiment tasks return either plain-JSON dicts (robustness study)
    or picklable dataclasses (``TrialSummary``); the wrapper lets one
    checkpoint format carry both.
    """
    try:
        json.dumps(result)
        return result
    except (TypeError, ValueError):
        payload = base64.b64encode(pickle.dumps(result)).decode("ascii")
        return {"__pickled__": payload}


def _decode_checkpoint_result(value: Any) -> Any:
    if isinstance(value, dict) and set(value) == {"__pickled__"}:
        return pickle.loads(base64.b64decode(value["__pickled__"]))
    return value


class TrialExecutionError(RuntimeError):
    """A worker-side exception, wrapped with the failing trial index.

    Raised in the parent process when a trial task fails and no
    :class:`FaultTolerance` policy asked for structured error records.
    ``trial`` identifies the failing trial; ``details`` carries the
    worker-side ``repr`` (and traceback, when available) of the cause.
    """

    def __init__(self, trial: int, details: str) -> None:
        super().__init__(f"trial {trial} failed: {details}")
        self.trial = trial
        self.details = details

    def __reduce__(self):
        # Exceptions cross the process boundary pickled; rebuild from
        # the two real arguments rather than the formatted message.
        return (TrialExecutionError, (self.trial, self.details))


@dataclass(frozen=True)
class TrialError:
    """Structured record of one trial that exhausted its retries."""

    trial: int
    attempts: int
    error: str
    traceback: str = ""

    def to_json(self) -> Dict[str, Any]:
        return {
            "trial": self.trial,
            "attempts": self.attempts,
            "error": self.error,
            "traceback": self.traceback,
        }


@dataclass(frozen=True)
class FaultTolerance:
    """Fault-tolerance policy for :meth:`TrialExecutor.map_trials`.

    Attributes:
        timeout: per-trial wall-clock budget in seconds; a worker
            running longer is killed and the trial retried (process
            backend only — a serial run cannot preempt itself).
        retries: extra attempts per trial after the first failure.
        checkpoint_path: JSON file streaming completed results; on the
            next run, trials already recorded there are not re-run.
            Results must be JSON-serializable (plain dicts/lists/
            scalars) when checkpointing is enabled.
        checkpoint_every: flush the checkpoint after this many newly
            completed trials (1 = after every trial).
    """

    timeout: Optional[float] = None
    retries: int = 1
    checkpoint_path: Optional[str] = None
    checkpoint_every: int = 1

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")


class _IndexedTask:
    """Wraps the user task so worker failures carry the trial index."""

    def __init__(self, task: Callable[[int], T]) -> None:
        self.task = task

    def __call__(self, index: int) -> T:
        try:
            return self.task(index)
        except Exception as error:
            raise TrialExecutionError(
                index, f"{type(error).__name__}: {error}"
            ) from error


def _trial_worker(task, index, result_queue):  # pragma: no cover - subprocess
    """Spawn target: run one trial, ship (index, ok, payload, tb) back."""
    _silence_worker_stdout()
    try:
        result = task(index)
    except BaseException as error:
        result_queue.put(
            (
                index,
                False,
                f"{type(error).__name__}: {error}",
                traceback.format_exc(),
            )
        )
    else:
        result_queue.put((index, True, result, ""))


class Checkpoint:
    """A JSON file of completed trial results, written atomically.

    Format::

        {"version": 1, "results": {"<trial index>": <result>, ...}}

    Only successes are persisted — errored trials are retried from
    scratch on resume.
    """

    VERSION = 1

    def __init__(self, path: str) -> None:
        self.path = path
        self.results: Dict[int, Any] = {}
        self._dirty = 0
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("version") != self.VERSION:
                raise ValueError(
                    f"checkpoint {path!r} has unsupported version "
                    f"{payload.get('version')!r}"
                )
            self.results = {
                int(key): _decode_checkpoint_result(value)
                for key, value in payload.get("results", {}).items()
            }

    def __len__(self) -> int:
        return len(self.results)

    def __contains__(self, index: int) -> bool:
        return index in self.results

    def record(self, index: int, result: Any, flush_every: int = 1) -> None:
        self.results[index] = result
        self._dirty += 1
        if self._dirty >= flush_every:
            self.flush()

    def flush(self) -> None:
        payload = {
            "version": self.VERSION,
            "results": {
                str(index): _encode_checkpoint_result(value)
                for index, value in sorted(self.results.items())
            },
        }
        directory = os.path.dirname(os.path.abspath(self.path))
        fd, temp_path = tempfile.mkstemp(
            dir=directory, prefix=".checkpoint-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(temp_path, self.path)
        except BaseException:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            raise
        self._dirty = 0


def resolve_workers(workers: Optional[int] = None) -> int:
    """The effective worker count: argument, else env, else 1.

    Raises:
        ValueError: on a non-positive worker count.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if raw:
            try:
                workers = int(raw)
            except ValueError:
                raise ValueError(
                    f"{WORKERS_ENV} must be an integer, got {raw!r}"
                ) from None
        else:
            workers = 1
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"worker count must be >= 1, got {workers}")
    return workers


class TrialExecutor:
    """Maps picklable tasks over trial indices, serially or in a pool.

    Attributes:
        workers: resolved worker count.
        backend: ``"serial"`` or ``"process"``.
        chunk_size: trial indices dispatched per pool task; None picks
            ~4 chunks per worker so stragglers rebalance.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        backend: Optional[str] = None,
        chunk_size: Optional[int] = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        if backend is None:
            backend = "process" if self.workers > 1 else "serial"
        if backend not in _BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {_BACKENDS}"
            )
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.backend = backend
        self.chunk_size = chunk_size

    def _chunk_size(self, count: int, workers: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, count // (workers * 4))

    def map_trials(
        self,
        trials: Union[int, Iterable[int]],
        task: Callable[[int], T],
        fault_tolerance: Optional[FaultTolerance] = None,
    ) -> List[Union[T, TrialError]]:
        """Run ``task(index)`` for every trial index, in index order.

        Args:
            trials: a trial count (mapped over ``range(trials)``) or an
                explicit iterable of indices.
            task: a picklable callable — a module-level function,
                ``functools.partial`` of one, or an instance of a
                module-level class defining ``__call__``.  Its return
                value must be picklable on the process backend.
            fault_tolerance: optional policy adding per-trial timeout,
                retry, crash isolation and checkpoint/resume.  With a
                policy active, trials that exhaust their retries yield
                :class:`TrialError` records in the result list instead
                of raising; without one, a worker exception is raised
                as :class:`TrialExecutionError` naming the trial.

        Returns:
            The task results, ordered like the input indices regardless
            of backend or worker count.
        """
        indices = (
            list(range(trials)) if isinstance(trials, int) else list(trials)
        )
        if fault_tolerance is None:
            fault_tolerance = auto_fault_tolerance(task, indices)
        if fault_tolerance is not None:
            return self._map_fault_tolerant(indices, task, fault_tolerance)
        workers = min(self.workers, len(indices))
        wrapped = _IndexedTask(task)
        if self.backend == "serial" or workers <= 1:
            return [wrapped(index) for index in indices]
        context = multiprocessing.get_context("spawn")
        with context.Pool(
            processes=workers, initializer=_silence_worker_stdout
        ) as pool:
            return pool.map(
                wrapped, indices,
                chunksize=self._chunk_size(len(indices), workers),
            )

    # -- Fault-tolerant dispatch ------------------------------------------

    def _map_fault_tolerant(
        self,
        indices: List[int],
        task: Callable[[int], T],
        policy: FaultTolerance,
    ) -> List[Union[T, TrialError]]:
        checkpoint = (
            Checkpoint(policy.checkpoint_path)
            if policy.checkpoint_path else None
        )
        results: Dict[int, Any] = {}
        if checkpoint is not None:
            results.update(
                (index, checkpoint.results[index])
                for index in indices
                if index in checkpoint
            )
        pending = [index for index in indices if index not in results]
        workers = min(self.workers, len(pending)) if pending else 0
        if pending:
            if self.backend == "serial" or workers <= 1:
                self._run_serial_tolerant(
                    pending, task, policy, results, checkpoint
                )
            else:
                self._run_supervised(
                    pending, task, policy, results, checkpoint, workers
                )
        if checkpoint is not None:
            checkpoint.flush()
        return [results[index] for index in indices]

    def _run_serial_tolerant(
        self, pending, task, policy, results, checkpoint
    ) -> None:
        """In-process fallback: retries and checkpointing, no preemption."""
        for index in pending:
            attempts = 0
            while True:
                attempts += 1
                try:
                    outcome = task(index)
                except Exception as error:
                    if attempts <= policy.retries:
                        continue
                    outcome = TrialError(
                        trial=index,
                        attempts=attempts,
                        error=f"{type(error).__name__}: {error}",
                        traceback=traceback.format_exc(),
                    )
                break
            self._finish_trial(index, outcome, results, checkpoint, policy)

    def _run_supervised(
        self, pending, task, policy, results, checkpoint, workers
    ) -> None:
        """One supervised spawn process per trial, ``workers`` at a time.

        Unlike a shared pool, a crashed or hung worker here is *one
        process* whose exit code and runtime the parent watches — so a
        ``SIGKILL`` mid-trial, an OOM kill or an infinite loop costs one
        attempt of one trial, never the sweep.
        """
        context = multiprocessing.get_context("spawn")
        result_queue = context.Queue()
        todo = deque(pending)
        running: Dict[int, Dict[str, Any]] = {}
        attempts: Dict[int, int] = {}

        def launch(index: int) -> None:
            attempts[index] = attempts.get(index, 0) + 1
            process = context.Process(
                target=_trial_worker,
                args=(task, index, result_queue),
                daemon=True,
            )
            process.start()
            running[index] = {
                "process": process,
                "started": time.monotonic(),
                "dead_since": None,
            }

        def retire(index: int, outcome: Any) -> None:
            state = running.pop(index)
            state["process"].join(timeout=_CRASH_GRACE)
            self._finish_trial(index, outcome, results, checkpoint, policy)

        def retry_or_fail(index: int, error: str, tb: str = "") -> None:
            state = running.pop(index)
            process = state["process"]
            if process.is_alive():
                process.terminate()
                process.join(timeout=_CRASH_GRACE)
                if process.is_alive():
                    process.kill()
                    process.join(timeout=_CRASH_GRACE)
            if attempts[index] <= policy.retries:
                todo.appendleft(index)
            else:
                self._finish_trial(
                    index,
                    TrialError(
                        trial=index,
                        attempts=attempts[index],
                        error=error,
                        traceback=tb,
                    ),
                    results, checkpoint, policy,
                )

        try:
            while todo or running:
                while todo and len(running) < workers:
                    launch(todo.popleft())
                try:
                    message = result_queue.get(timeout=_POLL_INTERVAL)
                except queue_module.Empty:
                    message = None
                if message is not None:
                    index, ok, payload, tb = message
                    if index in running:
                        if ok:
                            retire(index, payload)
                        else:
                            retry_or_fail(index, payload, tb)
                    continue  # drain before supervising
                now = time.monotonic()
                for index in list(running):
                    state = running[index]
                    process = state["process"]
                    if (
                        policy.timeout is not None
                        and now - state["started"] > policy.timeout
                        and process.is_alive()
                    ):
                        retry_or_fail(
                            index,
                            f"timeout: trial exceeded {policy.timeout:.1f}s",
                        )
                        continue
                    if not process.is_alive():
                        # Dead without a result *yet* — allow the queue
                        # feeder a grace period before declaring a crash.
                        if state["dead_since"] is None:
                            state["dead_since"] = now
                        elif now - state["dead_since"] > _CRASH_GRACE:
                            retry_or_fail(
                                index,
                                "worker crashed with exit code "
                                f"{process.exitcode}",
                            )
        finally:
            for state in running.values():
                process = state["process"]
                if process.is_alive():
                    process.terminate()
            result_queue.close()
            result_queue.join_thread()

    def _finish_trial(self, index, outcome, results, checkpoint, policy):
        results[index] = outcome
        if checkpoint is not None and not isinstance(outcome, TrialError):
            checkpoint.record(
                index, outcome, flush_every=policy.checkpoint_every
            )

    def __repr__(self) -> str:
        return (
            f"TrialExecutor(workers={self.workers}, backend={self.backend!r})"
        )


def map_trials(
    trials: Union[int, Iterable[int]],
    task: Callable[[int], T],
    workers: Optional[int] = None,
    fault_tolerance: Optional[FaultTolerance] = None,
) -> List[Union[T, TrialError]]:
    """One-shot convenience wrapper over :class:`TrialExecutor`."""
    return TrialExecutor(workers=workers).map_trials(
        trials, task, fault_tolerance=fault_tolerance
    )
