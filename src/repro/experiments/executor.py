"""Parallel trial execution.

Every paper experiment replays ``run_trial`` over a range of trial
indices.  Each trial is a fully seeded, independent simulation, so the
sweep is embarrassingly parallel — but a live
:class:`~repro.experiments.harness.TrialResult` cannot cross a process
boundary.  :class:`TrialExecutor` therefore maps *picklable task
callables* over trial indices; tasks run the trial and extract a
picklable :class:`~repro.experiments.harness.TrialSummary` (or any
other plain-data result) worker-side.

Backends:

* ``serial``  — a plain in-process loop (the default for 1 worker).
* ``process`` — a spawn-context :mod:`multiprocessing` pool.  Spawn is
  used on every platform so workers never inherit forked simulator
  state, and because tasks must be picklable anyway.

Determinism: trials are seeded from their index alone, dispatch is
chunked over a fixed index order, and results are returned in trial
order (``Pool.map`` preserves input order), so aggregates are
bit-identical regardless of worker count or backend.

Worker count resolution order: explicit ``workers=`` argument, then the
``REPRO_WORKERS`` environment variable, then 1 (serial).

Fault tolerance
---------------

``map_trials`` accepts an optional :class:`FaultTolerance` policy.  With
one active, the executor switches from a shared pool to supervised
one-process-per-trial dispatch and guarantees:

* a worker exception is returned as a structured :class:`TrialError`
  carrying the trial index and traceback instead of poisoning the pool;
* a crashed worker (``SIGKILL``, OOM, hard exit) is detected by its
  exit code and only that trial is affected;
* a hung trial is killed after ``timeout`` wall-clock seconds;
* each failed trial is retried up to ``retries`` times — trials are
  seeded from their index alone, so a retry deterministically
  reproduces what the lost worker would have computed;
* completed results stream into a JSON checkpoint
  (``checkpoint_path``), and a re-run with the same checkpoint skips
  completed trials — a long sweep survives interruption of the whole
  run, with a final output identical to an uninterrupted one.

Even without a :class:`FaultTolerance` policy, worker exceptions are
wrapped as :class:`TrialExecutionError` so the failing trial index is
never lost.

Supervision extensions (campaign supervisor layer)
--------------------------------------------------

The policy also carries the knobs the campaign supervisor needs:

* **checkpoint integrity** — checkpoint files embed a payload SHA-256
  (and optionally the owning config's digest); a corrupted, truncated,
  foreign or unversioned file found on resume is *quarantined* to a
  ``<path>.corrupt`` sidecar and the run restarts those trials cleanly
  instead of crashing.  :meth:`Checkpoint.flush` fsyncs both the temp
  file and its directory before/after the atomic ``os.replace`` so a
  power loss cannot tear the file either.
* **deadline** — a wall-clock budget for the whole ``map_trials`` call;
  once exhausted, no new trials launch, running ones are killed, and
  every unfinished trial yields a :class:`TrialError` with
  ``kind="deadline"`` (never persisted, so a later resume recomputes
  them).
* **heartbeat watchdog** — tasks report progress via :func:`heartbeat`;
  with ``heartbeat_timeout`` set, a supervised worker that stays silent
  longer than that is declared stalled (``kind="stalled"``), killed and
  retried, even if its per-trial ``timeout`` has not expired.
* **deterministic retry backoff** — the wait before a same-seed retry
  is seeded from ``(backoff_seed, trial index, attempt)``, so
  fault-tolerant reruns pause identically; ``REPRO_BACKOFF=0`` (the
  test/CI default) disables waiting entirely.
"""

from __future__ import annotations

import base64
import contextlib
import hashlib
import io
import itertools
import json
import multiprocessing
import os
import pickle
import queue as queue_module
import sys
import tempfile
import time
import traceback
from collections import deque
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    TypeVar,
    Union,
)

T = TypeVar("T")

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV = "REPRO_WORKERS"

#: While set, worker processes swallow their own stdout so that a
#: parent-side :func:`capture_stdout` capture stays byte-clean even
#: with ``--workers`` parallelism (experiment tables are rendered
#: parent-side; anything a worker prints is non-deterministic noise).
CAPTURE_ENV = "REPRO_CAPTURE_WORKER_STDOUT"

#: While set to a directory, :meth:`TrialExecutor.map_trials` calls
#: without an explicit policy checkpoint into it (see
#: :func:`auto_fault_tolerance`) — the hook the ``repro verify``
#: determinism matrix uses to kill-and-resume *any* experiment.
CHECKPOINT_DIR_ENV = "REPRO_CHECKPOINT_DIR"

#: Overrides the retry-backoff base for every policy when set: a float
#: number of seconds, ``0`` disabling backoff waits entirely (tests/CI).
BACKOFF_ENV = "REPRO_BACKOFF"

_BACKENDS = ("serial", "process")

#: Grace period between noticing a dead worker and declaring it crashed
#: (its result may still be in flight through the queue feeder).
_CRASH_GRACE = 1.0

#: Supervision loop poll interval, seconds.
_POLL_INTERVAL = 0.05

#: Minimum spacing between heartbeat messages a worker emits.
_HEARTBEAT_INTERVAL = 0.2

#: Sentinel in a result tuple's ``ok`` slot marking a heartbeat.
_HEARTBEAT = "heartbeat"


@contextlib.contextmanager
def capture_stdout() -> Iterator[io.StringIO]:
    """Capture experiment stdout for golden-master comparison.

    Redirects this process's ``sys.stdout`` into the yielded buffer and
    sets :data:`CAPTURE_ENV` so spawned workers (which write to the
    real file descriptor, out of reach of a parent-side redirect)
    silence their own stdout instead of interleaving into the capture.
    """
    buffer = io.StringIO()
    previous = os.environ.get(CAPTURE_ENV)
    os.environ[CAPTURE_ENV] = "1"
    try:
        with contextlib.redirect_stdout(buffer):
            yield buffer
    finally:
        if previous is None:
            os.environ.pop(CAPTURE_ENV, None)
        else:
            os.environ[CAPTURE_ENV] = previous


def _silence_worker_stdout() -> None:
    """Worker-side half of :func:`capture_stdout` (spawn inherits env)."""
    if os.environ.get(CAPTURE_ENV):
        sys.stdout = io.StringIO()


#: Worker-side heartbeat channel, set by :func:`_trial_worker`:
#: ``(result_queue, trial_index, last_beat_monotonic)`` or ``None``
#: outside a supervised worker.
_worker_heartbeat: Optional[List[Any]] = None


def heartbeat() -> None:
    """Report liveness from inside a supervised trial task.

    A no-op outside supervised workers, so tasks may call it
    unconditionally (the campaign shard loop beats once per session).
    Beats are throttled to one per :data:`_HEARTBEAT_INTERVAL` so a
    tight loop cannot flood the result queue.  The parent's hung-shard
    watchdog (``FaultTolerance.heartbeat_timeout``) kills and retries a
    worker whose beats stop.
    """
    channel = _worker_heartbeat
    if channel is None:
        return
    queue, index, last = channel
    now = time.monotonic()
    if now - last < _HEARTBEAT_INTERVAL:
        return
    channel[2] = now
    try:
        queue.put((index, _HEARTBEAT, None, ""))
    except Exception:  # queue torn down mid-shutdown — liveness only
        pass


def retry_backoff(base: float, seed_key: str, index: int, attempt: int) -> float:
    """Deterministic exponential backoff before a same-seed retry.

    The jitter is derived from ``sha256(seed_key | index | attempt)``
    rather than wall-clock randomness, so a fault-tolerant rerun of the
    same configuration pauses for exactly the same spans — timing noise
    never sneaks into otherwise bit-identical executions.  The
    :data:`BACKOFF_ENV` environment variable overrides ``base`` when
    set (``REPRO_BACKOFF=0`` disables waiting in tests and CI).
    """
    env = os.environ.get(BACKOFF_ENV, "").strip()
    if env:
        try:
            base = float(env)
        except ValueError:
            raise ValueError(
                f"{BACKOFF_ENV} must be a float, got {env!r}"
            ) from None
    if base <= 0:
        return 0.0
    token = hashlib.sha256(
        f"{seed_key}|{index}|{attempt}".encode("utf-8")
    ).digest()
    jitter = int.from_bytes(token[:8], "big") / 2**64
    return base * (2 ** max(0, attempt - 1)) * (0.5 + jitter)


#: Sequence number for :func:`auto_fault_tolerance` checkpoint files,
#: distinguishing repeated ``map_trials`` calls with identical tasks.
#: Reset via :func:`reset_auto_checkpoint_calls` before a run so an
#: interrupted and a resumed run derive the same file names.
_auto_checkpoint_calls = itertools.count()


def reset_auto_checkpoint_calls() -> None:
    """Restart auto-checkpoint file numbering (before each tracked run)."""
    global _auto_checkpoint_calls
    _auto_checkpoint_calls = itertools.count()


def auto_fault_tolerance(
    task: Callable[[int], Any], indices: List[int]
) -> Optional["FaultTolerance"]:
    """The :data:`CHECKPOINT_DIR_ENV`-derived policy, if the env is set.

    The checkpoint file name combines a per-process call sequence
    number with a digest of the task's ``repr`` and the index list, so
    every ``map_trials`` call in a deterministic experiment maps to a
    stable file — which is exactly what lets a killed run resume: the
    re-run replays the same call sequence and finds its own files.
    Tasks are frozen dataclasses or partials of module functions, whose
    reprs are deterministic; an address-bearing repr would only cost a
    cache miss (the trials re-run), never a wrong resume.
    """
    directory = os.environ.get(CHECKPOINT_DIR_ENV, "").strip()
    if not directory:
        return None
    call = next(_auto_checkpoint_calls)
    digest = hashlib.sha256(
        f"{task!r}|{indices!r}".encode()
    ).hexdigest()[:12]
    path = os.path.join(directory, f"call{call:03d}-{digest}.json")
    return FaultTolerance(retries=0, checkpoint_path=path)


def _encode_checkpoint_result(result: Any) -> Any:
    """JSON-encode a result, wrapping non-JSON payloads via pickle.

    Experiment tasks return either plain-JSON dicts (robustness study)
    or picklable dataclasses (``TrialSummary``); the wrapper lets one
    checkpoint format carry both.
    """
    try:
        json.dumps(result)
        return result
    except (TypeError, ValueError):
        payload = base64.b64encode(pickle.dumps(result)).decode("ascii")
        return {"__pickled__": payload}


def _decode_checkpoint_result(value: Any) -> Any:
    if isinstance(value, dict) and set(value) == {"__pickled__"}:
        return pickle.loads(base64.b64decode(value["__pickled__"]))
    return value


class TrialExecutionError(RuntimeError):
    """A worker-side exception, wrapped with the failing trial index.

    Raised in the parent process when a trial task fails and no
    :class:`FaultTolerance` policy asked for structured error records.
    ``trial`` identifies the failing trial; ``details`` carries the
    worker-side ``repr`` (and traceback, when available) of the cause.
    """

    def __init__(self, trial: int, details: str) -> None:
        super().__init__(f"trial {trial} failed: {details}")
        self.trial = trial
        self.details = details

    def __reduce__(self):
        # Exceptions cross the process boundary pickled; rebuild from
        # the two real arguments rather than the formatted message.
        return (TrialExecutionError, (self.trial, self.details))


#: The per-trial failure taxonomy carried by :class:`TrialError.kind`.
ERROR_KINDS = ("exception", "crash", "timeout", "stalled", "deadline")


@dataclass(frozen=True)
class TrialError:
    """Structured record of one trial that exhausted its retries.

    ``kind`` classifies the terminal failure (:data:`ERROR_KINDS`);
    ``history`` is the attempt-by-attempt record — one dict per failed
    attempt with ``attempt``, ``kind``, ``error`` and ``elapsed_s`` —
    which the campaign failure manifest surfaces verbatim.
    """

    trial: int
    attempts: int
    error: str
    traceback: str = ""
    kind: str = "exception"
    history: tuple = ()

    def to_json(self) -> Dict[str, Any]:
        return {
            "trial": self.trial,
            "attempts": self.attempts,
            "error": self.error,
            "traceback": self.traceback,
            "kind": self.kind,
            "history": [dict(entry) for entry in self.history],
        }


@dataclass(frozen=True)
class FaultTolerance:
    """Fault-tolerance policy for :meth:`TrialExecutor.map_trials`.

    Attributes:
        timeout: per-trial wall-clock budget in seconds; a worker
            running longer is killed and the trial retried (process
            backend only — a serial run cannot preempt itself).
        retries: extra attempts per trial after the first failure.
        checkpoint_path: JSON file streaming completed results; on the
            next run, trials already recorded there are not re-run.
            Results must be JSON-serializable (plain dicts/lists/
            scalars) when checkpointing is enabled.
        checkpoint_every: flush the checkpoint after this many newly
            completed trials (1 = after every trial).
        checkpoint_digest: config digest bound into the checkpoint
            file; a file carrying a *different* digest is quarantined
            on resume instead of silently poisoning the run.
        deadline: wall-clock budget in seconds for the whole
            ``map_trials`` call; unfinished trials become
            ``kind="deadline"`` :class:`TrialError` records.
        heartbeat_timeout: a supervised worker silent (no
            :func:`heartbeat`) for longer than this is declared stalled,
            killed and retried (process backend only).
        backoff_base: base seconds of the deterministic exponential
            backoff before each same-seed retry (0 disables; the
            :data:`BACKOFF_ENV` environment variable overrides).
        backoff_seed: seed key mixed into the backoff jitter (the
            campaign passes its config digest).
    """

    timeout: Optional[float] = None
    retries: int = 1
    checkpoint_path: Optional[str] = None
    checkpoint_every: int = 1
    checkpoint_digest: Optional[str] = None
    deadline: Optional[float] = None
    heartbeat_timeout: Optional[float] = None
    backoff_base: float = 0.0
    backoff_seed: str = ""

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.deadline is not None and self.deadline < 0:
            raise ValueError("deadline must be >= 0")
        if self.heartbeat_timeout is not None and self.heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be positive")
        if self.backoff_base < 0:
            raise ValueError("backoff_base must be >= 0")


class _IndexedTask:
    """Wraps the user task so worker failures carry the trial index."""

    def __init__(self, task: Callable[[int], T]) -> None:
        self.task = task

    def __call__(self, index: int) -> T:
        try:
            return self.task(index)
        except Exception as error:
            raise TrialExecutionError(
                index, f"{type(error).__name__}: {error}"
            ) from error


def _trial_worker(task, index, result_queue):  # pragma: no cover - subprocess
    """Spawn target: run one trial, ship (index, ok, payload, tb) back."""
    global _worker_heartbeat
    _silence_worker_stdout()
    # Open the heartbeat channel and announce liveness once, so the
    # parent's watchdog clock starts from task entry, not spawn time.
    _worker_heartbeat = [result_queue, index, 0.0]
    heartbeat()
    try:
        result = task(index)
    except BaseException as error:
        result_queue.put(
            (
                index,
                False,
                f"{type(error).__name__}: {error}",
                traceback.format_exc(),
            )
        )
    else:
        result_queue.put((index, True, result, ""))


#: Chaos/test hook: when set, called at the top of every checkpoint
#: write — raising ``OSError`` there simulates ENOSPC/EIO on the
#: checkpoint writer (see :mod:`repro.chaos.inject`).
_flush_fault_hook: Optional[Callable[[], None]] = None


def set_flush_fault_hook(hook: Optional[Callable[[], None]]) -> None:
    """Install (or clear) the checkpoint-writer fault-injection hook."""
    global _flush_fault_hook
    _flush_fault_hook = hook


class Checkpoint:
    """A JSON file of completed trial results, written atomically.

    Format (version 2)::

        {"version": 2,
         "config_digest": "<owning config digest or ''>",
         "results": {"<trial index>": <result>, ...},
         "payload_sha256": "<sha256 of the canonical rest>"}

    Only successes are persisted — errored trials are retried from
    scratch on resume.

    Integrity: the embedded SHA-256 covers the canonical JSON of every
    other field.  A file that fails to parse, carries an unknown
    version, fails the digest check, or belongs to a *different* config
    (``config_digest`` mismatch) is **quarantined** — atomically renamed
    to ``<path>.corrupt`` — and the checkpoint starts empty, so a
    corrupted or foreign file costs a recompute, never a crash and
    never a silently wrong merge.

    Durability: :meth:`flush` writes to a temp file, fsyncs it, renames
    it over ``path``, then fsyncs the directory — the pair of fsyncs is
    what makes the rename actually atomic across power loss.

    Degradation: a flush that fails with ``OSError`` (disk full, I/O
    error) disables further writes (``disabled``/``write_error``) with
    a one-line stderr warning instead of killing the run; the
    computation continues, merely losing resumability.
    """

    VERSION = 2

    def __init__(
        self, path: str, config_digest: Optional[str] = None
    ) -> None:
        self.path = path
        self.config_digest = config_digest
        self.results: Dict[int, Any] = {}
        self.quarantined: Optional[str] = None
        self.quarantine_reason: Optional[str] = None
        self.disabled = False
        self.write_error: Optional[str] = None
        self._dirty = 0
        if os.path.exists(path):
            self._load(path)

    # -- loading & quarantine -------------------------------------------

    def _quarantine(self, reason: str) -> None:
        corrupt = self.path + ".corrupt"
        try:
            os.replace(self.path, corrupt)
        except OSError as error:  # can't even move it aside: start fresh
            corrupt = f"{self.path} (unmovable: {error})"
        self.quarantined = corrupt
        self.quarantine_reason = reason
        self.results = {}
        print(
            f"repro: warning: quarantined checkpoint {self.path} -> "
            f"{corrupt} ({reason}); affected trials restart cleanly",
            file=sys.stderr,
        )

    def _load(self, path: str) -> None:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as error:
            self._quarantine(f"unreadable: {type(error).__name__}: {error}")
            return
        if not isinstance(payload, dict):
            self._quarantine("not a JSON object")
            return
        if payload.get("version") != self.VERSION:
            self._quarantine(
                f"unsupported version {payload.get('version')!r}"
            )
            return
        recorded_sha = payload.get("payload_sha256")
        body = {k: v for k, v in payload.items() if k != "payload_sha256"}
        actual_sha = self._payload_sha(body)
        if recorded_sha != actual_sha:
            self._quarantine(
                f"payload sha256 mismatch (recorded "
                f"{str(recorded_sha)[:12]}, actual {actual_sha[:12]})"
            )
            return
        file_digest = payload.get("config_digest") or None
        if self.config_digest is None:
            self.config_digest = file_digest
        elif file_digest is not None and file_digest != self.config_digest:
            self._quarantine(
                f"foreign config digest {file_digest!r} "
                f"(expected {self.config_digest!r})"
            )
            return
        self.results = {
            int(key): _decode_checkpoint_result(value)
            for key, value in payload.get("results", {}).items()
        }

    @staticmethod
    def _payload_sha(body: Dict[str, Any]) -> str:
        canonical = json.dumps(body, sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def __len__(self) -> int:
        return len(self.results)

    def __contains__(self, index: int) -> bool:
        return index in self.results

    def record(self, index: int, result: Any, flush_every: int = 1) -> None:
        self.results[index] = result
        self._dirty += 1
        if self._dirty >= flush_every:
            self.flush()

    def flush(self) -> None:
        """Write the sealed payload atomically; degrade on I/O failure."""
        if self.disabled:
            return
        try:
            self._write()
        except OSError as error:
            self.disabled = True
            self.write_error = f"{type(error).__name__}: {error}"
            print(
                f"repro: warning: checkpoint write to {self.path} failed "
                f"({self.write_error}); continuing without checkpointing",
                file=sys.stderr,
            )
        else:
            self._dirty = 0

    def _write(self) -> None:
        if _flush_fault_hook is not None:
            _flush_fault_hook()
        body = {
            "version": self.VERSION,
            "config_digest": self.config_digest or "",
            "results": {
                str(index): _encode_checkpoint_result(value)
                for index, value in sorted(self.results.items())
            },
        }
        payload = dict(body)
        payload["payload_sha256"] = self._payload_sha(body)
        directory = os.path.dirname(os.path.abspath(self.path))
        fd, temp_path = tempfile.mkstemp(
            dir=directory, prefix=".checkpoint-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_path, self.path)
            self._fsync_directory(directory)
        except BaseException:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            raise

    @staticmethod
    def _fsync_directory(directory: str) -> None:
        """Persist the rename itself (no-op where dirs can't be opened)."""
        try:
            dir_fd = os.open(directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - non-POSIX directory open
            return
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)

    @classmethod
    def truncate(cls, path: str, keep: Optional[int] = None) -> int:
        """Drop the tail of a checkpoint's results and re-seal the file.

        Simulates a kill between flushes (every flush is atomic, so a
        real kill always leaves some valid earlier file).  ``keep`` is
        how many results survive, default half.  Returns the kept
        count; a missing or empty file is left alone.
        """
        if not os.path.exists(path):
            return 0
        checkpoint = cls(path)
        keys = sorted(checkpoint.results)
        if keep is None:
            keep = len(keys) // 2
        checkpoint.results = {
            key: checkpoint.results[key] for key in keys[:keep]
        }
        checkpoint.flush()
        return len(checkpoint.results)


def resolve_workers(workers: Optional[int] = None) -> int:
    """The effective worker count: argument, else env, else 1.

    Raises:
        ValueError: on a non-positive worker count.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if raw:
            try:
                workers = int(raw)
            except ValueError:
                raise ValueError(
                    f"{WORKERS_ENV} must be an integer, got {raw!r}"
                ) from None
        else:
            workers = 1
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"worker count must be >= 1, got {workers}")
    return workers


class TrialExecutor:
    """Maps picklable tasks over trial indices, serially or in a pool.

    Attributes:
        workers: resolved worker count.
        backend: ``"serial"`` or ``"process"``.
        chunk_size: trial indices dispatched per pool task; None picks
            ~4 chunks per worker so stragglers rebalance.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        backend: Optional[str] = None,
        chunk_size: Optional[int] = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        if backend is None:
            backend = "process" if self.workers > 1 else "serial"
        if backend not in _BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {_BACKENDS}"
            )
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.backend = backend
        self.chunk_size = chunk_size
        #: The Checkpoint of the most recent fault-tolerant map (None
        #: otherwise) — supervisors read quarantine/write-error state.
        self.last_checkpoint: Optional[Checkpoint] = None

    def _chunk_size(self, count: int, workers: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, count // (workers * 4))

    def map_trials(
        self,
        trials: Union[int, Iterable[int]],
        task: Callable[[int], T],
        fault_tolerance: Optional[FaultTolerance] = None,
    ) -> List[Union[T, TrialError]]:
        """Run ``task(index)`` for every trial index, in index order.

        Args:
            trials: a trial count (mapped over ``range(trials)``) or an
                explicit iterable of indices.
            task: a picklable callable — a module-level function,
                ``functools.partial`` of one, or an instance of a
                module-level class defining ``__call__``.  Its return
                value must be picklable on the process backend.
            fault_tolerance: optional policy adding per-trial timeout,
                retry, crash isolation and checkpoint/resume.  With a
                policy active, trials that exhaust their retries yield
                :class:`TrialError` records in the result list instead
                of raising; without one, a worker exception is raised
                as :class:`TrialExecutionError` naming the trial.

        Returns:
            The task results, ordered like the input indices regardless
            of backend or worker count.
        """
        indices = (
            list(range(trials)) if isinstance(trials, int) else list(trials)
        )
        if fault_tolerance is None:
            fault_tolerance = auto_fault_tolerance(task, indices)
        if fault_tolerance is not None:
            return self._map_fault_tolerant(indices, task, fault_tolerance)
        workers = min(self.workers, len(indices))
        wrapped = _IndexedTask(task)
        if self.backend == "serial" or workers <= 1:
            return [wrapped(index) for index in indices]
        context = multiprocessing.get_context("spawn")
        with context.Pool(
            processes=workers, initializer=_silence_worker_stdout
        ) as pool:
            return pool.map(
                wrapped, indices,
                chunksize=self._chunk_size(len(indices), workers),
            )

    # -- Fault-tolerant dispatch ------------------------------------------

    def _map_fault_tolerant(
        self,
        indices: List[int],
        task: Callable[[int], T],
        policy: FaultTolerance,
    ) -> List[Union[T, TrialError]]:
        started = time.monotonic()
        checkpoint = (
            Checkpoint(
                policy.checkpoint_path,
                config_digest=policy.checkpoint_digest,
            )
            if policy.checkpoint_path else None
        )
        #: Exposed for supervisors (the campaign engine reads quarantine
        #: and write-degradation state off it for the failure manifest).
        self.last_checkpoint = checkpoint
        results: Dict[int, Any] = {}
        if checkpoint is not None:
            results.update(
                (index, checkpoint.results[index])
                for index in indices
                if index in checkpoint
            )
        pending = [index for index in indices if index not in results]
        workers = min(self.workers, len(pending)) if pending else 0
        if pending:
            if self.backend == "serial" or workers <= 1:
                self._run_serial_tolerant(
                    pending, task, policy, results, checkpoint, started
                )
            else:
                self._run_supervised(
                    pending, task, policy, results, checkpoint, workers,
                    started,
                )
        if checkpoint is not None:
            checkpoint.flush()
        return [results[index] for index in indices]

    def _deadline_error(self, index: int, attempts: int,
                        history: tuple = ()) -> TrialError:
        return TrialError(
            trial=index,
            attempts=attempts,
            error="deadline: campaign wall-clock budget exhausted",
            kind="deadline",
            history=history,
        )

    def _run_serial_tolerant(
        self, pending, task, policy, results, checkpoint, started
    ) -> None:
        """In-process fallback: retries and checkpointing, no preemption.

        ``timeout`` and ``heartbeat_timeout`` cannot preempt a trial on
        this backend; ``deadline`` is honoured between trials and
        between retries.
        """
        deadline_at = (
            started + policy.deadline if policy.deadline is not None else None
        )
        for position, index in enumerate(pending):
            if deadline_at is not None and time.monotonic() >= deadline_at:
                for skipped in pending[position:]:
                    self._finish_trial(
                        skipped, self._deadline_error(skipped, 0),
                        results, checkpoint, policy,
                    )
                return
            attempts = 0
            history: List[Dict[str, Any]] = []
            trial_started = time.monotonic()
            while True:
                attempts += 1
                try:
                    outcome = task(index)
                except Exception as error:
                    history.append({
                        "attempt": attempts,
                        "kind": "exception",
                        "error": f"{type(error).__name__}: {error}",
                        "elapsed_s": round(
                            time.monotonic() - trial_started, 3
                        ),
                    })
                    if attempts <= policy.retries:
                        delay = retry_backoff(
                            policy.backoff_base, policy.backoff_seed,
                            index, attempts,
                        )
                        if delay > 0:
                            time.sleep(delay)
                        if (
                            deadline_at is not None
                            and time.monotonic() >= deadline_at
                        ):
                            outcome = self._deadline_error(
                                index, attempts, tuple(history)
                            )
                            break
                        continue
                    outcome = TrialError(
                        trial=index,
                        attempts=attempts,
                        error=f"{type(error).__name__}: {error}",
                        traceback=traceback.format_exc(),
                        kind="exception",
                        history=tuple(history),
                    )
                break
            self._finish_trial(index, outcome, results, checkpoint, policy)

    def _run_supervised(
        self, pending, task, policy, results, checkpoint, workers, started
    ) -> None:
        """One supervised spawn process per trial, ``workers`` at a time.

        Unlike a shared pool, a crashed or hung worker here is *one
        process* whose exit code and runtime the parent watches — so a
        ``SIGKILL`` mid-trial, an OOM kill or an infinite loop costs one
        attempt of one trial, never the sweep.  Workers report progress
        heartbeats over the result queue; with ``heartbeat_timeout``
        set, a silent-but-alive worker (a stalled shard) is killed and
        retried like a hung one.  ``deadline`` bounds the whole call:
        on expiry every unfinished trial is recorded as
        ``kind="deadline"`` and the loop stops.
        """
        context = multiprocessing.get_context("spawn")
        result_queue = context.Queue()
        todo = deque(pending)
        running: Dict[int, Dict[str, Any]] = {}
        attempts: Dict[int, int] = {}
        history: Dict[int, List[Dict[str, Any]]] = {}
        ready_at: Dict[int, float] = {}
        deadline_at = (
            started + policy.deadline if policy.deadline is not None else None
        )

        def launch(index: int) -> None:
            attempts[index] = attempts.get(index, 0) + 1
            process = context.Process(
                target=_trial_worker,
                args=(task, index, result_queue),
                daemon=True,
            )
            process.start()
            now = time.monotonic()
            running[index] = {
                "process": process,
                "started": now,
                "last_beat": now,
                "dead_since": None,
            }

        def retire(index: int, outcome: Any) -> None:
            state = running.pop(index)
            state["process"].join(timeout=_CRASH_GRACE)
            self._finish_trial(index, outcome, results, checkpoint, policy)

        def kill(process) -> None:
            if process.is_alive():
                process.terminate()
                process.join(timeout=_CRASH_GRACE)
                if process.is_alive():
                    process.kill()
                    process.join(timeout=_CRASH_GRACE)

        def retry_or_fail(
            index: int, error: str, tb: str = "", kind: str = "exception"
        ) -> None:
            state = running.pop(index)
            kill(state["process"])
            history.setdefault(index, []).append({
                "attempt": attempts[index],
                "kind": kind,
                "error": error,
                "elapsed_s": round(time.monotonic() - state["started"], 3),
            })
            if attempts[index] <= policy.retries:
                delay = retry_backoff(
                    policy.backoff_base, policy.backoff_seed,
                    index, attempts[index],
                )
                ready_at[index] = time.monotonic() + delay
                todo.appendleft(index)
            else:
                self._finish_trial(
                    index,
                    TrialError(
                        trial=index,
                        attempts=attempts[index],
                        error=error,
                        traceback=tb,
                        kind=kind,
                        history=tuple(history.get(index, ())),
                    ),
                    results, checkpoint, policy,
                )

        def expire_deadline() -> None:
            """Kill everything in flight; record all unfinished trials."""
            for index in list(running):
                state = running.pop(index)
                kill(state["process"])
                self._finish_trial(
                    index,
                    self._deadline_error(
                        index, attempts.get(index, 0),
                        tuple(history.get(index, ())),
                    ),
                    results, checkpoint, policy,
                )
            while todo:
                index = todo.popleft()
                self._finish_trial(
                    index,
                    self._deadline_error(
                        index, attempts.get(index, 0),
                        tuple(history.get(index, ())),
                    ),
                    results, checkpoint, policy,
                )

        try:
            while todo or running:
                if (
                    deadline_at is not None
                    and time.monotonic() >= deadline_at
                ):
                    expire_deadline()
                    break
                while todo and len(running) < workers:
                    # The head of the queue may be backing off; trials
                    # behind it wait too (retries go to the front so a
                    # recovering shard is not starved by fresh work).
                    if ready_at.get(todo[0], 0.0) > time.monotonic():
                        break
                    launch(todo.popleft())
                try:
                    message = result_queue.get(timeout=_POLL_INTERVAL)
                except queue_module.Empty:
                    message = None
                if message is not None:
                    index, ok, payload, tb = message
                    if index in running:
                        if ok == _HEARTBEAT:
                            running[index]["last_beat"] = time.monotonic()
                        elif ok:
                            retire(index, payload)
                        else:
                            retry_or_fail(index, payload, tb)
                    continue  # drain before supervising
                now = time.monotonic()
                for index in list(running):
                    state = running[index]
                    process = state["process"]
                    if (
                        policy.timeout is not None
                        and now - state["started"] > policy.timeout
                        and process.is_alive()
                    ):
                        retry_or_fail(
                            index,
                            f"timeout: trial exceeded {policy.timeout:.1f}s",
                            kind="timeout",
                        )
                        continue
                    if (
                        policy.heartbeat_timeout is not None
                        and now - state["last_beat"]
                        > policy.heartbeat_timeout
                        and process.is_alive()
                    ):
                        retry_or_fail(
                            index,
                            "stalled: no heartbeat for "
                            f"{policy.heartbeat_timeout:.1f}s",
                            kind="stalled",
                        )
                        continue
                    if not process.is_alive():
                        # Dead without a result *yet* — allow the queue
                        # feeder a grace period before declaring a crash.
                        if state["dead_since"] is None:
                            state["dead_since"] = now
                        elif now - state["dead_since"] > _CRASH_GRACE:
                            retry_or_fail(
                                index,
                                "worker crashed with exit code "
                                f"{process.exitcode}",
                                kind="crash",
                            )
        finally:
            for state in running.values():
                process = state["process"]
                if process.is_alive():
                    process.terminate()
            result_queue.close()
            result_queue.join_thread()

    def _finish_trial(self, index, outcome, results, checkpoint, policy):
        results[index] = outcome
        if checkpoint is not None and not isinstance(outcome, TrialError):
            checkpoint.record(
                index, outcome, flush_every=policy.checkpoint_every
            )

    def __repr__(self) -> str:
        return (
            f"TrialExecutor(workers={self.workers}, backend={self.backend!r})"
        )


def map_trials(
    trials: Union[int, Iterable[int]],
    task: Callable[[int], T],
    workers: Optional[int] = None,
    fault_tolerance: Optional[FaultTolerance] = None,
) -> List[Union[T, TrialError]]:
    """One-shot convenience wrapper over :class:`TrialExecutor`."""
    return TrialExecutor(workers=workers).map_trials(
        trials, task, fault_tolerance=fault_tolerance
    )
