"""Parallel trial execution.

Every paper experiment replays ``run_trial`` over a range of trial
indices.  Each trial is a fully seeded, independent simulation, so the
sweep is embarrassingly parallel — but a live
:class:`~repro.experiments.harness.TrialResult` cannot cross a process
boundary.  :class:`TrialExecutor` therefore maps *picklable task
callables* over trial indices; tasks run the trial and extract a
picklable :class:`~repro.experiments.harness.TrialSummary` (or any
other plain-data result) worker-side.

Backends:

* ``serial``  — a plain in-process loop (the default for 1 worker).
* ``process`` — a spawn-context :mod:`multiprocessing` pool.  Spawn is
  used on every platform so workers never inherit forked simulator
  state, and because tasks must be picklable anyway.

Determinism: trials are seeded from their index alone, dispatch is
chunked over a fixed index order, and results are returned in trial
order (``Pool.map`` preserves input order), so aggregates are
bit-identical regardless of worker count or backend.

Worker count resolution order: explicit ``workers=`` argument, then the
``REPRO_WORKERS`` environment variable, then 1 (serial).
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Iterable, List, Optional, TypeVar, Union

T = TypeVar("T")

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV = "REPRO_WORKERS"

_BACKENDS = ("serial", "process")


def resolve_workers(workers: Optional[int] = None) -> int:
    """The effective worker count: argument, else env, else 1.

    Raises:
        ValueError: on a non-positive worker count.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if raw:
            try:
                workers = int(raw)
            except ValueError:
                raise ValueError(
                    f"{WORKERS_ENV} must be an integer, got {raw!r}"
                ) from None
        else:
            workers = 1
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"worker count must be >= 1, got {workers}")
    return workers


class TrialExecutor:
    """Maps picklable tasks over trial indices, serially or in a pool.

    Attributes:
        workers: resolved worker count.
        backend: ``"serial"`` or ``"process"``.
        chunk_size: trial indices dispatched per pool task; None picks
            ~4 chunks per worker so stragglers rebalance.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        backend: Optional[str] = None,
        chunk_size: Optional[int] = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        if backend is None:
            backend = "process" if self.workers > 1 else "serial"
        if backend not in _BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {_BACKENDS}"
            )
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.backend = backend
        self.chunk_size = chunk_size

    def _chunk_size(self, count: int, workers: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, count // (workers * 4))

    def map_trials(
        self,
        trials: Union[int, Iterable[int]],
        task: Callable[[int], T],
    ) -> List[T]:
        """Run ``task(index)`` for every trial index, in index order.

        Args:
            trials: a trial count (mapped over ``range(trials)``) or an
                explicit iterable of indices.
            task: a picklable callable — a module-level function,
                ``functools.partial`` of one, or an instance of a
                module-level class defining ``__call__``.  Its return
                value must be picklable on the process backend.

        Returns:
            The task results, ordered like the input indices regardless
            of backend or worker count.
        """
        indices = (
            list(range(trials)) if isinstance(trials, int) else list(trials)
        )
        workers = min(self.workers, len(indices))
        if self.backend == "serial" or workers <= 1:
            return [task(index) for index in indices]
        context = multiprocessing.get_context("spawn")
        with context.Pool(processes=workers) as pool:
            return pool.map(
                task, indices, chunksize=self._chunk_size(len(indices), workers)
            )

    def __repr__(self) -> str:
        return (
            f"TrialExecutor(workers={self.workers}, backend={self.backend!r})"
        )


def map_trials(
    trials: Union[int, Iterable[int]],
    task: Callable[[int], T],
    workers: Optional[int] = None,
) -> List[T]:
    """One-shot convenience wrapper over :class:`TrialExecutor`."""
    return TrialExecutor(workers=workers).map_trials(trials, task)
