"""E8 — ablations of the modelling and design choices (DESIGN.md §5).

Five studies:

* ``run_quirk``      — duplicate-request serving on vs off (the §IV-B
                       server behaviour): without it, jitter costs the
                       adversary nothing and serialization is easier.
* ``run_actuator``   — ideal (noise-free) vs realistic spacing filter:
                       a perfect actuator pushes Table II's sequence
                       accuracy to ~100 %, locating the paper's losses
                       in jitter imprecision.
* ``run_scheduler``  — FIFO vs round-robin multiplexing scheduler: a
                       FIFO server never multiplexes, so the *passive*
                       estimator already works (HTTP/2 without
                       multiplexing provides no privacy).
* ``run_defense``    — the §VII priority-shuffle defense: randomizing
                       the image request order per load collapses the
                       sequence attack's positional accuracy to chance
                       while single-object identification survives.
* ``run_h1_baseline``— HTTP/1.1 vs HTTP/2: the passive size
                       side-channel against the sequential protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.adversary import AdversaryConfig
from repro.core.defenses import PriorityShuffleDefense
from repro.core.estimator import SizeEstimator
from repro.core.monitor import TrafficMonitor
from repro.core.predictor import SizePredictor
from repro.experiments.executor import TrialExecutor
from repro.experiments.harness import (
    SpacingSetup,
    TrialConfig,
    TrialSummary,
    summarize_result,
    summarize_trial,
)
from repro.experiments.report import format_table, percentage
from repro.h1.client import H1Client
from repro.h1.server import H1Server
from repro.h2.mux import FifoScheduler
from repro.h2.server import ServerConfig
from repro.netsim.topology import build_adversary_path
from repro.tcp.config import TCPConfig
from repro.web.isidewith import HTML_OBJECT_ID
from repro.web.workload import VolunteerWorkload


# ---------------------------------------------------------------------------
# (a) duplicate-serving quirk
# ---------------------------------------------------------------------------

@dataclass
class QuirkResult:
    rows_data: List[List[str]] = field(default_factory=list)

    def rows(self) -> List[List[str]]:
        return self.rows_data

    def render(self) -> str:
        return format_table(
            ["duplicate serving", "HTML not multiplexed", "duplicate servings"],
            self.rows(),
            title="E8a — the §IV-B duplicate-serving quirk",
        )


@dataclass(frozen=True)
class _QuirkTrial:
    seed: int
    spacing: float
    quirk: bool

    def __call__(self, trial: int) -> TrialSummary:
        workload = VolunteerWorkload(seed=self.seed)
        config = TrialConfig(
            server=ServerConfig(serve_duplicate_requests=self.quirk),
            controller_setup=SpacingSetup(self.spacing),
        )
        return summarize_trial(trial, workload, config, analyze=False)


def run_quirk(trials: int = 20, seed: int = 7, spacing: float = 0.050,
              workers: Optional[int] = None) -> QuirkResult:
    """Jitter sweep point at 50 ms with the quirk on vs off."""
    executor = TrialExecutor(workers=workers)
    result = QuirkResult()
    for quirk in (True, False):
        not_multiplexed = 0
        duplicates = 0
        for summary in executor.map_trials(
            trials, _QuirkTrial(seed, spacing, quirk)
        ):
            if summary.min_degree(HTML_OBJECT_ID) == 0.0:
                not_multiplexed += 1
            duplicates += summary.duplicate_servings
        result.rows_data.append([
            "on (paper)" if quirk else "off (textbook TCP)",
            f"{percentage(not_multiplexed, trials):.0f}%",
            str(duplicates),
        ])
    return result


# ---------------------------------------------------------------------------
# (b) actuator precision
# ---------------------------------------------------------------------------

@dataclass
class ActuatorResult:
    rows_data: List[List[str]] = field(default_factory=list)

    def rows(self) -> List[List[str]]:
        return self.rows_data

    def render(self) -> str:
        return format_table(
            ["actuator", "sequence fully correct", "mean positions correct"],
            self.rows(),
            title="E8b — ideal vs realistic jitter actuator",
        )


@dataclass(frozen=True)
class _ActuatorTrial:
    seed: int
    mode: str

    def __call__(self, trial: int) -> TrialSummary:
        workload = VolunteerWorkload(seed=self.seed)
        adversary = AdversaryConfig(jitter_mode=self.mode)
        return summarize_trial(
            trial, workload, TrialConfig(adversary=adversary)
        )


def run_actuator(trials: int = 15, seed: int = 7,
                 workers: Optional[int] = None) -> ActuatorResult:
    """Full attack with a perfect vs noisy spacing actuator."""
    executor = TrialExecutor(workers=workers)
    result = ActuatorResult()
    for mode, label in (("ideal", "ideal (no noise)"),
                        ("spacing", "realistic (tc/netem)")):
        fully_correct = 0
        positions_total = 0
        for summary in executor.map_trials(trials, _ActuatorTrial(seed, mode)):
            analysis = summary.analysis
            correct = sum(
                1 for object_id in analysis.sequence_truth
                if analysis.sequence_correct.get(object_id)
            )
            positions_total += correct
            if correct == len(analysis.sequence_truth):
                fully_correct += 1
        result.rows_data.append([
            label,
            f"{percentage(fully_correct, trials):.0f}%",
            f"{positions_total / trials:.1f}/8",
        ])
    return result


# ---------------------------------------------------------------------------
# (c) multiplexing scheduler
# ---------------------------------------------------------------------------

@dataclass
class SchedulerResult:
    rows_data: List[List[str]] = field(default_factory=list)

    def rows(self) -> List[List[str]]:
        return self.rows_data

    def render(self) -> str:
        return format_table(
            ["scheduler", "HTML not multiplexed (no adversary)",
             "HTML passively identified"],
            self.rows(),
            title="E8c — multiplexing scheduler (privacy source)",
        )


@dataclass(frozen=True)
class _SchedulerTrial:
    seed: int
    fifo: bool

    def __call__(self, trial: int) -> TrialSummary:
        workload = VolunteerWorkload(seed=self.seed)
        if self.fifo:
            outcome = _run_fifo_trial(trial, workload)
            return summarize_result(outcome)
        return summarize_trial(trial, workload, TrialConfig())


def run_scheduler(trials: int = 15, seed: int = 7,
                  workers: Optional[int] = None) -> SchedulerResult:
    """Baseline loads under round-robin vs FIFO response scheduling."""
    executor = TrialExecutor(workers=workers)
    result = SchedulerResult()
    for fifo in (False, True):
        not_multiplexed = 0
        identified = 0
        for summary in executor.map_trials(trials, _SchedulerTrial(seed, fifo)):
            if summary.min_degree(HTML_OBJECT_ID) == 0.0:
                not_multiplexed += 1
            verdict = summary.analysis.single_object[HTML_OBJECT_ID]
            if verdict.identified and verdict.degree_zero:
                identified += 1
        result.rows_data.append([
            "FIFO (sequential)" if fifo else "round-robin (multi-threaded)",
            f"{percentage(not_multiplexed, trials):.0f}%",
            f"{percentage(identified, trials):.0f}%",
        ])
    return result


def _run_fifo_trial(trial: int, workload: VolunteerWorkload):
    """A baseline trial with a FIFO-scheduled server."""
    return _run_trial_with_scheduler(
        trial, workload, TrialConfig(), FifoScheduler
    )


def _run_trial_with_scheduler(trial, workload, config, scheduler_factory):
    """run_trial variant with a custom server scheduler factory."""
    from repro.core.controller import NetworkController
    from repro.core.metrics import MultiplexingReport
    from repro.core.monitor import TrafficMonitor as _Monitor
    from repro.experiments.harness import TrialResult
    from repro.h2.client import H2Client
    from repro.h2.server import H2Server
    from repro.web.browser import Browser

    site = workload.session(trial)
    rng = workload.trial_rng(trial)
    topology = build_adversary_path(seed=rng.master_seed)
    sim = topology.sim
    server = H2Server(
        sim, topology.server, 443, site.website.router,
        config=config.server, trace=topology.trace, rng=rng,
        scheduler_factory=scheduler_factory,
    )
    client = H2Client(
        sim, topology.client, topology.server.endpoint(443),
        trace=topology.trace, authority="www.isidewith.com",
    )
    browser = Browser(sim, client, site.schedule, config=config.browser,
                      trace=topology.trace)
    controller = NetworkController(sim, topology.middlebox, rng,
                                   trace=topology.trace)
    browser.start()
    while sim.now < config.horizon:
        sim.run_until(min(sim.now + 0.5, config.horizon))
        if browser.broken:
            break
        if browser.page_complete:
            sim.run_until(min(sim.now + config.settle_time, config.horizon))
            break
    report = (
        MultiplexingReport.from_layout(server.connections[0].tcp.layout)
        if server.connections else MultiplexingReport()
    )
    return TrialResult(
        trial=trial, site=site, topology=topology, server=server,
        client=client, browser=browser, controller=controller,
        adversary=None, monitor=_Monitor(topology.middlebox.capture),
        report=report, trace=topology.trace,
        completed=browser.page_complete and not browser.broken,
        duration=sim.now,
    )


# ---------------------------------------------------------------------------
# (d) priority-shuffle defense (§VII)
# ---------------------------------------------------------------------------

@dataclass
class DefenseResult:
    rows_data: List[List[str]] = field(default_factory=list)

    def rows(self) -> List[List[str]]:
        return self.rows_data

    def render(self) -> str:
        return format_table(
            ["client", "order recovered (vs true preference)",
             "order recovered (vs wire order)", "sizes identified"],
            self.rows(),
            title="E8d — §VII priority-shuffle defense vs the attack",
        )


@dataclass(frozen=True)
class _DefenseTrial:
    """One attacked load, optionally shuffle-defended.

    Returns the summary plus the wire order actually requested (the
    parent needs it to score order recovery against the network view).
    """

    seed: int
    defense: PriorityShuffleDefense
    defended: bool

    def __call__(self, trial: int) -> Tuple[TrialSummary, Tuple[str, ...]]:
        workload = VolunteerWorkload(seed=self.seed)
        site = workload.session(trial)
        rng = workload.trial_rng(trial)
        config = TrialConfig(adversary=AdversaryConfig())
        wire_order = site.party_order
        if self.defended:
            schedule, wire_order = self.defense.apply(site, rng)
            config.schedule_override = schedule
        return summarize_trial(trial, workload, config), tuple(wire_order)


def run_defense(trials: int = 15, seed: int = 7,
                workers: Optional[int] = None) -> DefenseResult:
    """Full attack against a vanilla vs a shuffle-defended client."""
    workload = VolunteerWorkload(seed=seed)
    defense = PriorityShuffleDefense()
    executor = TrialExecutor(workers=workers)
    result = DefenseResult()
    for defended in (False, True):
        truth_positions = 0
        wire_positions = 0
        sizes_found = 0
        size_total = 0
        outcomes = executor.map_trials(
            trials, _DefenseTrial(seed, defense, defended)
        )
        for trial, (summary, wire_order) in enumerate(outcomes):
            analysis = summary.analysis
            predicted = [
                object_id.replace("emblem-", "")
                for object_id in analysis.sequence_prediction
            ]
            party_order = workload.party_order_for(trial)
            for position, party in enumerate(party_order):
                size_total += 1
                verdict = analysis.single_object.get(f"emblem-{party}")
                if verdict is not None and verdict.identified:
                    sizes_found += 1
                if position < len(predicted) and predicted[position] == party:
                    truth_positions += 1
            for position, party in enumerate(wire_order):
                if position < len(predicted) and predicted[position] == party:
                    wire_positions += 1
        denominator = trials * 8
        result.rows_data.append([
            "defended (shuffled)" if defended else "vanilla",
            f"{percentage(truth_positions, denominator):.0f}%",
            f"{percentage(wire_positions, denominator):.0f}%",
            f"{percentage(sizes_found, size_total):.0f}%",
        ])
    return result


# ---------------------------------------------------------------------------
# (e) HTTP/1.1 baseline
# ---------------------------------------------------------------------------

@dataclass
class H1BaselineResult:
    rows_data: List[List[str]] = field(default_factory=list)

    def rows(self) -> List[List[str]]:
        return self.rows_data

    def render(self) -> str:
        return format_table(
            ["protocol", "objects of interest passively identified"],
            self.rows(),
            title="E8e — HTTP/1.1 vs HTTP/2 under the passive estimator",
        )


@dataclass(frozen=True)
class _H2PassiveTrial:
    """One clean (no adversary) HTTP/2 load scored passively."""

    seed: int

    def __call__(self, trial: int) -> Tuple[int, int]:
        workload = VolunteerWorkload(seed=self.seed)
        site = workload.session(trial)
        summary = summarize_trial(trial, workload, TrialConfig())
        found = 0
        total = 0
        for object_id in site.objects_of_interest:
            total += 1
            verdict = summary.analysis.single_object.get(object_id)
            if verdict is not None and verdict.success:
                found += 1
        return found, total


@dataclass(frozen=True)
class _H1PassiveTrial:
    """Same site over the sequential HTTP/1.1 stack, scored passively."""

    seed: int

    def __call__(self, trial: int) -> Tuple[int, int]:
        workload = VolunteerWorkload(seed=self.seed)
        site = workload.session(trial)
        rng = workload.trial_rng(trial)
        topology = build_adversary_path(seed=rng.master_seed)
        sim = topology.sim
        H1Server(
            sim, topology.server, 443, site.website.router,
            trace=topology.trace, rng=rng,
        )
        client = H1Client(
            sim, topology.client, topology.server.endpoint(443),
            trace=topology.trace, authority="www.isidewith.com",
        )
        def on_ready(site=site, client=client):
            for request in site.schedule:
                client.get(request.obj.path)
        client.on_ready = on_ready
        client.connect()
        sim.run_until(60.0)

        monitor = TrafficMonitor(topology.middlebox.capture)
        from repro.netsim.capture import Direction
        request_times = [
            record.time
            for record in topology.middlebox.capture
            if record.direction is Direction.CLIENT_TO_SERVER
            and record.is_application_stream
            and record.payload_bytes > 200  # H1 GETs are ~370 B
        ]
        estimates = SizeEstimator(delimiter_gap=0.040).estimate(
            monitor.response_packets(), request_times=request_times
        )
        predictor = SizePredictor(site.size_map(), tolerance_abs=700)
        found = 0
        total = 0
        for object_id in site.objects_of_interest:
            total += 1
            if predictor.find_object(estimates, object_id) is not None:
                found += 1
        return found, total


def run_h1_baseline(trials: int = 10, seed: int = 7,
                    workers: Optional[int] = None) -> H1BaselineResult:
    """Passive (no adversary) identification rate: HTTP/1.1 vs HTTP/2."""
    executor = TrialExecutor(workers=workers)
    result = H1BaselineResult()

    # HTTP/2 side: clean baseline trials.
    h2_counts = executor.map_trials(trials, _H2PassiveTrial(seed))
    h2_found = sum(found for found, _ in h2_counts)
    h2_total = sum(total for _, total in h2_counts)

    # HTTP/1.1 side: same sites over the sequential stack.
    h1_counts = executor.map_trials(trials, _H1PassiveTrial(seed))
    h1_found = sum(found for found, _ in h1_counts)
    h1_total = sum(total for _, total in h1_counts)

    result.rows_data.append(
        ["HTTP/2 (multiplexed)", f"{percentage(h2_found, h2_total):.0f}%"]
    )
    result.rows_data.append(
        ["HTTP/1.1 (sequential)", f"{percentage(h1_found, h1_total):.0f}%"]
    )
    return result


# ---------------------------------------------------------------------------
# (f) server-push defense (§VII)
# ---------------------------------------------------------------------------

@dataclass
class PushDefenseResult:
    rows_data: List[List[str]] = field(default_factory=list)

    def rows(self) -> List[List[str]]:
        return self.rows_data

    def render(self) -> str:
        return format_table(
            ["deployment", "order recovered (vs true preference)",
             "pages completed"],
            self.rows(),
            title="E8f — §VII server-push defense vs the attack",
        )


@dataclass(frozen=True)
class _PushDefenseTrial:
    """One attacked load, optionally against a push-defended server."""

    seed: int
    defended: bool

    def __call__(self, trial: int) -> TrialSummary:
        from repro.core.defenses import ServerPushDefense

        workload = VolunteerWorkload(seed=self.seed)
        config = TrialConfig(adversary=AdversaryConfig())
        if self.defended:
            site = workload.session(trial)
            config.server = ServerConfig(
                push_map=ServerPushDefense().push_map(site)
            )
        return summarize_trial(trial, workload, config)


def run_push_defense(trials: int = 10, seed: int = 7,
                     workers: Optional[int] = None) -> PushDefenseResult:
    """Full attack against a vanilla vs a push-defended server.

    The defended server pushes all 8 emblems in a canonical order on
    the HTML's stream; the wire order is user-independent, so the
    recovered sequence decorrelates from the true preference.
    """
    workload = VolunteerWorkload(seed=seed)
    executor = TrialExecutor(workers=workers)
    result = PushDefenseResult()
    for defended in (False, True):
        truth_positions = 0
        completed = 0
        summaries = executor.map_trials(
            trials, _PushDefenseTrial(seed, defended)
        )
        for trial, summary in enumerate(summaries):
            if summary.completed:
                completed += 1
            analysis = summary.analysis
            predicted = [
                object_id.replace("emblem-", "")
                for object_id in analysis.sequence_prediction
            ]
            for position, party in enumerate(workload.party_order_for(trial)):
                if position < len(predicted) and predicted[position] == party:
                    truth_positions += 1
        denominator = trials * 8
        result.rows_data.append([
            "push-defended" if defended else "vanilla",
            f"{percentage(truth_positions, denominator):.0f}%",
            f"{completed}/{trials}",
        ])
    return result


# ---------------------------------------------------------------------------
# (g) success accounting (DESIGN.md §5)
# ---------------------------------------------------------------------------

@dataclass
class AccountingResult:
    rows_data: List[List[str]] = field(default_factory=list)

    def rows(self) -> List[List[str]]:
        return self.rows_data

    def render(self) -> str:
        return format_table(
            ["success criterion", "HTML success"],
            self.rows(),
            title="E8g — success accounting under jitter-only attack",
        )


@dataclass(frozen=True)
class _AccountingTrial:
    """One jitter-only attacked load for the success-accounting study."""

    seed: int
    spacing: float

    def __call__(self, trial: int) -> TrialSummary:
        workload = VolunteerWorkload(seed=self.seed)
        config = TrialConfig(controller_setup=SpacingSetup(self.spacing))
        return summarize_trial(trial, workload, config)


def run_success_accounting(
    trials: int = 15, seed: int = 7, spacing: float = 0.050,
    workers: Optional[int] = None,
) -> AccountingResult:
    """Jitter-only attack scored three ways.

    Figure 5's discussion hinges on the difference between counting a
    success when *any* serving (including retransmitted duplicates)
    of the object went out clean versus requiring the *original*
    serving to be clean.  Ground truth separates the criteria exactly.
    """
    any_serving = 0
    original_only = 0
    identified_only = 0
    summaries = TrialExecutor(workers=workers).map_trials(
        trials, _AccountingTrial(seed, spacing)
    )
    for summary in summaries:
        verdict = summary.analysis.single_object[HTML_OBJECT_ID]
        if verdict.identified:
            identified_only += 1
            if verdict.degree_zero:
                any_serving += 1
            if verdict.degree_zero_original:
                original_only += 1
    result = AccountingResult()
    result.rows_data.append([
        "identified (size match alone)",
        f"{percentage(identified_only, trials):.0f}%",
    ])
    result.rows_data.append([
        "identified + any serving clean (paper's count)",
        f"{percentage(any_serving, trials):.0f}%",
    ])
    result.rows_data.append([
        "identified + original serving clean (strict)",
        f"{percentage(original_only, trials):.0f}%",
    ])
    return result


# ---------------------------------------------------------------------------
# (h) TCP stack variants (SACK, congestion control)
# ---------------------------------------------------------------------------

@dataclass
class TcpVariantResult:
    rows_data: List[List[str]] = field(default_factory=list)

    def rows(self) -> List[List[str]]:
        return self.rows_data

    def render(self) -> str:
        return format_table(
            ["TCP variant", "HTML attack success", "server retransmitted "
             "segments", "mean load time (s)"],
            self.rows(),
            title="E8h — attack robustness across TCP stack variants",
        )


@dataclass(frozen=True)
class _TcpVariantTrial:
    """One fully attacked load over a specific transport stack."""

    seed: int
    algorithm: str
    sack: bool

    def __call__(self, trial: int) -> TrialSummary:
        workload = VolunteerWorkload(seed=self.seed)
        config = TrialConfig(
            adversary=AdversaryConfig(),
            tcp=TCPConfig(congestion_control=self.algorithm, sack=self.sack),
        )
        return summarize_trial(trial, workload, config)


def run_tcp_variants(trials: int = 8, seed: int = 7,
                     workers: Optional[int] = None) -> TcpVariantResult:
    """The full attack under four transport stacks.

    The attack manipulates generic TCP mechanisms (timeouts, loss
    recovery, windows); its success should not hinge on stack details
    — and the drop-phase recovery cost *should* differ (SACK patches
    holes without resending everything).
    """
    executor = TrialExecutor(workers=workers)
    result = TcpVariantResult()
    variants = [
        ("reno", False),
        ("reno + sack", True),
        ("cubic", False),
        ("cubic + sack", True),
    ]
    for label, sack in variants:
        algorithm = "cubic" if label.startswith("cubic") else "reno"
        successes = 0
        retransmitted = 0
        total_time = 0.0
        summaries = executor.map_trials(
            trials, _TcpVariantTrial(seed, algorithm, sack)
        )
        for summary in summaries:
            if summary.analysis.single_object[HTML_OBJECT_ID].success:
                successes += 1
            retransmitted += summary.server_retransmitted_segments
            total_time += summary.duration
        result.rows_data.append([
            label,
            f"{percentage(successes, trials):.0f}%",
            str(retransmitted),
            f"{total_time / trials:.1f}",
        ])
    return result
