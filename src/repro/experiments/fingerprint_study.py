"""E13 — the full-fledged privacy attack: webpage fingerprinting.

Builds a closed world of pages **engineered to defeat total-size
fingerprinting**: every page transfers the same total bytes, but splits
them into a different multiset of object sizes.  Multiplexed, their
traces look alike (one big interleaved transfer of equal volume);
serialized by the attack, the per-object sizes separate them.

This is the end of the paper's §III chain of assumptions: the attack
recovers object sizes, and a classical HTTP/1.x-style fingerprinting
classifier does the rest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.controller import NetworkController
from repro.core.estimator import SizeEstimator
from repro.core.fingerprint import PageFingerprinter, trace_features
from repro.core.monitor import TrafficMonitor
from repro.experiments.executor import TrialExecutor
from repro.experiments.report import format_table, percentage
from repro.h2.client import H2Client
from repro.h2.server import H2Server, ServerConfig
from repro.netsim.topology import build_adversary_path
from repro.simkernel.randomstream import RandomStreams
from repro.web.browser import Browser, BrowserConfig
from repro.web.objects import WebObject
from repro.web.site import LoadSchedule, ScheduledRequest, Website

#: Every page transfers this many application bytes in total.
PAGE_TOTAL_BYTES = 240_000

#: Objects per page.
OBJECTS_PER_PAGE = 8


def build_closed_world(
    rng: RandomStreams,
    pages: int = 6,
) -> Dict[str, Website]:
    """Equal-total pages with distinct object-size compositions."""
    world: Dict[str, Website] = {}
    for page_index in range(pages):
        stream = rng.stream(f"page-{page_index}")
        # Random positive partition of the total into OBJECTS_PER_PAGE.
        cuts = sorted(
            stream.randint(10_000, PAGE_TOTAL_BYTES - 10_000)
            for _ in range(OBJECTS_PER_PAGE - 1)
        )
        bounds = [0] + cuts + [PAGE_TOTAL_BYTES]
        sizes = [max(2_000, b - a) for a, b in zip(bounds, bounds[1:])]
        # Renormalize so the totals match exactly despite the clamping.
        drift = PAGE_TOTAL_BYTES - sum(sizes)
        sizes[-1] = max(2_000, sizes[-1] + drift)
        objects = [
            WebObject(
                f"/p{page_index}/obj{obj_index}.bin",
                size,
                "application/octet-stream",
                think_time_range=(0.0005, 0.004),
            )
            for obj_index, size in enumerate(sizes)
        ]
        world[f"page{page_index}"] = Website(f"page{page_index}", objects)
    return world


def _page_schedule(website: Website, rng: RandomStreams) -> LoadSchedule:
    """A pipelined burst load of the page (requests ~1 ms apart)."""
    requests = [
        ScheduledRequest(
            rng.uniform("fp-gap", 0.0005, 0.002) if index else 0.02,
            obj,
        )
        for index, obj in enumerate(website.objects.values())
    ]
    return LoadSchedule(requests)


def _visit(
    website: Website,
    rng: RandomStreams,
    attacked: bool,
    spacing: float = 0.350,
) -> TrafficMonitor:
    """One page visit; returns the gateway's view of it."""
    topology = build_adversary_path(seed=rng.master_seed)
    sim = topology.sim
    H2Server(
        sim, topology.server, 443, website.router,
        config=ServerConfig(), trace=topology.trace, rng=rng,
    )
    client = H2Client(
        sim, topology.client, topology.server.endpoint(443),
        trace=topology.trace, authority="world.example",
    )
    browser = Browser(sim, client, _page_schedule(website, rng),
                      config=BrowserConfig(), trace=topology.trace)
    if attacked:
        controller = NetworkController(sim, topology.middlebox, rng,
                                       trace=topology.trace)
        controller.install_spacing(spacing, noise_fraction=0.1)
    browser.start()
    while sim.now < 30.0:
        sim.run_until(min(sim.now + 0.5, 30.0))
        if browser.page_complete or browser.broken:
            sim.run_until(min(sim.now + 0.3, 30.0))
            break
    return TrafficMonitor(topology.middlebox.capture)


@dataclass(frozen=True)
class _FingerprintVisit:
    """One page visit of the closed world, featurized worker-side.

    The visit index enumerates ``pages × visits_per_page`` loads; the
    world is rebuilt from the seed in the worker (all substreams are
    key-derived, so the rebuild is bit-identical to the parent's).
    Returns ``(label, visit, features)``.
    """

    seed: int
    pages: int
    visits_per_page: int
    attacked: bool

    def __call__(self, index: int) -> Tuple[str, int, List[float]]:
        master = RandomStreams(self.seed)
        world = build_closed_world(master.spawn("world"), pages=self.pages)
        label = f"page{index // self.visits_per_page}"
        visit = index % self.visits_per_page
        website = world[label]
        rng = master.spawn(
            f"visit-{label}-{visit}-{'atk' if self.attacked else 'base'}"
        )
        monitor = _visit(website, rng, self.attacked)
        # A patient estimator: these pages carry objects large enough
        # that slow-start stalls occur mid-transfer.
        features = trace_features(
            monitor, estimator=SizeEstimator(delimiter_gap=0.040)
        )
        return label, visit, list(features)


@dataclass
class FingerprintStudyResult:
    rows_data: List[List[str]] = field(default_factory=list)
    chance_pct: float = 0.0

    def rows(self) -> List[List[str]]:
        return self.rows_data

    def render(self) -> str:
        table = format_table(
            ["condition", "page classification accuracy"],
            self.rows(),
            title="E13 — closed-world fingerprinting (equal-total pages)",
        )
        return table + f"\nchance: {self.chance_pct:.0f}%"


def run(
    pages: int = 6,
    train_visits: int = 3,
    test_visits: int = 2,
    seed: int = 7,
    workers: Optional[int] = None,
) -> FingerprintStudyResult:
    """Train/test the fingerprinter under both conditions."""
    executor = TrialExecutor(workers=workers)
    visits_per_page = train_visits + test_visits
    result = FingerprintStudyResult(chance_pct=100.0 / pages)

    for attacked in (False, True):
        train_features: List[List[float]] = []
        train_labels: List[str] = []
        test_features: List[List[float]] = []
        test_labels: List[str] = []
        visits = executor.map_trials(
            pages * visits_per_page,
            _FingerprintVisit(seed, pages, visits_per_page, attacked),
        )
        for label, visit, features in visits:
            if visit < train_visits:
                train_features.append(features)
                train_labels.append(label)
            else:
                test_features.append(features)
                test_labels.append(label)
        fingerprinter = PageFingerprinter(k=3).fit(
            train_features, train_labels
        )
        accuracy = fingerprinter.accuracy(test_features, test_labels)
        result.rows_data.append([
            "attacked (serialized)" if attacked else "passive (multiplexed)",
            f"{accuracy * 100:.0f}%",
        ])
    return result
