"""E12 — generalizing the attack beyond isidewith.com (paper §VII).

Runs the §V attack against randomly generated websites, sweeping

* the page's object count (does a busier page hurt the attack?), and
* planted size collisions (§II precondition: the target's size must be
  unique within the site — what happens when it is not?).

Success per trial = the target object served non-multiplexed *and* the
best size match over the whole site inventory points at the target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.adversary import Adversary, AdversaryConfig
from repro.core.controller import NetworkController
from repro.core.estimator import SizeEstimator
from repro.core.metrics import MultiplexingReport
from repro.core.monitor import TrafficMonitor
from repro.core.predictor import SizePredictor
from repro.experiments.executor import TrialExecutor
from repro.experiments.report import format_table, percentage
from repro.h2.client import H2Client
from repro.h2.server import H2Server, ServerConfig
from repro.netsim.topology import build_adversary_path
from repro.simkernel.randomstream import RandomStreams
from repro.web.browser import Browser, BrowserConfig
from repro.web.generator import GeneratedSite, generate_site


def run_generated_trial(
    trial: int,
    seed: int,
    object_count: int,
    size_collision: int,
    escalated_spacing: float = 0.400,
) -> Tuple[GeneratedSite, bool, bool]:
    """One attacked load of a generated site.

    The adversary tunes its escalated spacing to the *profiled* site —
    §IV-B: "the amount of jitter to be introduced should depend on the
    size of the object of interest, the time elapsed since the previous
    GET request, …".  These pages serve a dynamic target with up to
    ≈320 ms of server think time, so the post-reset spacing must exceed
    that for the target to land in a quiet slot (0.4 s default).

    Returns ``(site, serialized, identified)`` — the two halves of the
    paper's success criterion for the target object.
    """
    # The spawn key deliberately omits the collision count: a profile
    # with confusers is the *same site plus confusers*, so the
    # collision comparison is paired rather than across-site noise.
    rng = RandomStreams(seed).spawn(f"gen-{object_count}-{trial}")
    site = generate_site(
        rng, object_count=object_count, size_collision=size_collision
    )
    topology = build_adversary_path(seed=rng.master_seed)
    sim = topology.sim
    server = H2Server(
        sim, topology.server, 443, site.website.router,
        config=ServerConfig(), trace=topology.trace, rng=rng,
    )
    client = H2Client(
        sim, topology.client, topology.server.endpoint(443),
        trace=topology.trace, authority="generated.example",
    )
    browser = Browser(sim, client, site.schedule, config=BrowserConfig(),
                      trace=topology.trace)
    controller = NetworkController(sim, topology.middlebox, rng,
                                   trace=topology.trace)
    target_position = site.schedule.index_of(site.target_object_id) + 1
    adversary = Adversary(
        controller,
        AdversaryConfig(
            trigger_get_index=target_position,
            escalated_jitter=escalated_spacing,
        ),
        trace=topology.trace,
    )
    adversary.arm()
    browser.start()
    while sim.now < 40.0:
        sim.run_until(min(sim.now + 0.5, 40.0))
        if browser.broken or browser.page_complete:
            sim.run_until(min(sim.now + 0.3, 40.0))
            break

    report = (
        MultiplexingReport.from_layout(server.connections[0].tcp.layout)
        if server.connections else MultiplexingReport()
    )
    serialized = report.min_degree(site.target_object_id) == 0.0

    monitor = TrafficMonitor(topology.middlebox.capture)
    estimates = SizeEstimator().estimate(monitor.response_packets())
    predictor = SizePredictor(site.website.size_map())
    identified = False
    candidate = predictor.find_object(estimates, site.target_object_id)
    if candidate is not None:
        best = predictor.classify(candidate)
        identified = best is not None and best.object_id == site.target_object_id
    return site, serialized, identified


@dataclass(frozen=True)
class _GeneratedTrial:
    """One generated-site attack, returning only the picklable verdicts
    (the :class:`GeneratedSite` stays worker-side)."""

    seed: int
    object_count: int
    collisions: int

    def __call__(self, trial: int) -> Tuple[bool, bool]:
        _, serialized, identified = run_generated_trial(
            trial, self.seed, self.object_count, self.collisions
        )
        return serialized, identified


@dataclass
class GeneralizationResult:
    rows_data: List[List[str]] = field(default_factory=list)

    def rows(self) -> List[List[str]]:
        return self.rows_data

    def render(self) -> str:
        return format_table(
            ["site profile", "target serialized", "target identified",
             "attack success"],
            self.rows(),
            title="E12 / §VII — the attack on generated websites",
        )


def run(
    trials: int = 8,
    seed: int = 7,
    profiles: Optional[List[Tuple[str, int, int]]] = None,
    workers: Optional[int] = None,
) -> GeneralizationResult:
    """Sweep site profiles: (label, object_count, size_collisions)."""
    profiles = profiles or [
        ("15 objects", 15, 0),
        ("30 objects", 30, 0),
        ("60 objects", 60, 0),
        ("30 objects + 3 size collisions", 30, 3),
    ]
    executor = TrialExecutor(workers=workers)
    result = GeneralizationResult()
    for label, object_count, collisions in profiles:
        serialized_count = 0
        identified_count = 0
        success_count = 0
        verdicts = executor.map_trials(
            trials, _GeneratedTrial(seed, object_count, collisions)
        )
        for serialized, identified in verdicts:
            serialized_count += serialized
            identified_count += identified
            success_count += serialized and identified
        result.rows_data.append([
            label,
            f"{percentage(serialized_count, trials):.0f}%",
            f"{percentage(identified_count, trials):.0f}%",
            f"{percentage(success_count, trials):.0f}%",
        ])
    return result
