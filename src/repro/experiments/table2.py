"""E6 — Table II: end-to-end prediction accuracy on isidewith.com.

The full four-phase attack against complete volunteer sessions, scored
two ways per object of interest (the HTML plus the 8 emblem images):

* **one object at a time** — the adversary targets just this object;
  success = size identified from traffic AND degree of multiplexing 0.
  Paper: 100 % for all nine objects.
* **all objects at a time** — the adversary recovers the whole image
  sequence in one pass; per object, success additionally requires the
  object to sit at its true position in the predicted order.
  Paper: HTML 90 %, I1..I8 = 90, 85, 81, 80, 62, 64, 78, 64 %.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean
from typing import Dict, List, Optional

from repro.core.adversary import AdversaryConfig
from repro.experiments.executor import TrialExecutor
from repro.experiments.harness import TrialConfig, TrialSummary, summarize_trial
from repro.experiments.report import format_table, percentage
from repro.web.isidewith import HTML_OBJECT_ID
from repro.web.workload import VolunteerWorkload

COLUMNS = ["HTML", "I1", "I2", "I3", "I4", "I5", "I6", "I7", "I8"]


@dataclass(frozen=True)
class _AttackTrial:
    """Picklable per-trial task: one fully attacked volunteer session."""

    seed: int
    adversary: Optional[AdversaryConfig]

    def __call__(self, trial: int) -> TrialSummary:
        workload = VolunteerWorkload(seed=self.seed)
        config = TrialConfig(adversary=self.adversary or AdversaryConfig())
        return summarize_trial(trial, workload, config)

#: Table II reference values from the paper, for EXPERIMENTS.md.
PAPER_SINGLE = {column: 100 for column in COLUMNS}
PAPER_SEQUENCE = dict(
    zip(COLUMNS, [90, 90, 85, 81, 80, 62, 64, 78, 64])
)


@dataclass
class Table2Result:
    trials: int = 0
    single_successes: Dict[str, int] = field(default_factory=dict)
    sequence_successes: Dict[str, int] = field(default_factory=dict)
    broken: int = 0
    mean_gap_before_html_ms: float = 0.0

    def single_pct(self, column: str) -> float:
        return percentage(self.single_successes.get(column, 0), self.trials)

    def sequence_pct(self, column: str) -> float:
        return percentage(self.sequence_successes.get(column, 0), self.trials)

    def rows(self) -> List[List[str]]:
        single = ["one object at a time"] + [
            f"{self.single_pct(column):.0f}%" for column in COLUMNS
        ]
        sequence = ["all objects at a time"] + [
            f"{self.sequence_pct(column):.0f}%" for column in COLUMNS
        ]
        return [single, sequence]

    def render(self) -> str:
        return format_table(
            ["adversary target"] + COLUMNS,
            self.rows(),
            title=f"E6 / Table II — prediction accuracy ({self.trials} sessions)",
        )


def run(
    trials: int = 30,
    seed: int = 7,
    adversary: Optional[AdversaryConfig] = None,
    workers: Optional[int] = None,
) -> Table2Result:
    """Run the end-to-end attack over ``trials`` volunteer sessions."""
    result = Table2Result()
    for column in COLUMNS:
        result.single_successes[column] = 0
        result.sequence_successes[column] = 0
    summaries = TrialExecutor(workers=workers).map_trials(
        trials, _AttackTrial(seed, adversary)
    )
    for summary in summaries:
        result.trials += 1
        if summary.broken:
            result.broken += 1
        analysis = summary.analysis

        # Column "HTML".
        if analysis.single_object[HTML_OBJECT_ID].success:
            result.single_successes["HTML"] += 1
        if analysis.sequence_correct.get(HTML_OBJECT_ID):
            result.sequence_successes["HTML"] += 1

        # Columns I1..I8 follow this session's preference order.
        for position, object_id in enumerate(analysis.sequence_truth):
            column = f"I{position + 1}"
            verdict = analysis.single_object.get(object_id)
            if verdict is not None and verdict.success:
                result.single_successes[column] += 1
            if analysis.sequence_correct.get(object_id):
                result.sequence_successes[column] += 1
    return result
