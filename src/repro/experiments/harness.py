"""Single-trial assembly and execution.

One *trial* is one volunteer's attacked (or baseline) page load: a
fresh topology, server, browser, and optionally an adversary, run to
page completion or a horizon.  Everything is seeded from the trial
index so runs are exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional

from repro.tcp.config import TCPConfig

from repro.core.adversary import Adversary, AdversaryConfig
from repro.core.controller import NetworkController
from repro.core.metrics import MultiplexingReport
from repro.core.monitor import TrafficMonitor
from repro.core.sequence import SequenceAttack, SequenceAttackResult
from repro.h2.client import H2Client
from repro.h2.server import H2Server, ServerConfig
from repro.netsim.topology import PathTopology, build_adversary_path
from repro.simkernel.trace import TraceLog
from repro.web.browser import Browser, BrowserConfig
from repro.web.isidewith import IsideWithSite
from repro.web.site import LoadSchedule
from repro.web.workload import VolunteerWorkload


@dataclass
class TrialConfig:
    """Parameters of one trial run.

    Attributes:
        adversary: attack configuration, or None for a clean baseline.
        controller_setup: hook receiving the
            :class:`~repro.core.controller.NetworkController` before the
            load starts — used by the single-parameter studies (install
            only a spacing filter, only a throttle, …).
        server: server behaviour overrides.
        browser: browser behaviour overrides.
        tcp: TCP parameters for both endpoints (None = defaults; the
            server side additionally gets the duplicate-delivery quirk
            per the server config).
        schedule_override: replace the site's schedule (defenses).
        horizon: absolute simulated-time budget for the load.
        settle_time: extra time after page completion before the
            capture is analyzed (lets in-flight packets land).
    """

    adversary: Optional[AdversaryConfig] = None
    controller_setup: Optional[Callable[[NetworkController], None]] = None
    server: ServerConfig = field(default_factory=ServerConfig)
    browser: BrowserConfig = field(default_factory=BrowserConfig)
    tcp: Optional[TCPConfig] = None
    schedule_override: Optional[LoadSchedule] = None
    horizon: float = 40.0
    settle_time: float = 0.3


@dataclass
class TrialResult:
    """Everything one trial produced."""

    trial: int
    site: IsideWithSite
    topology: PathTopology
    server: H2Server
    client: H2Client
    browser: Browser
    controller: NetworkController
    adversary: Optional[Adversary]
    monitor: TrafficMonitor
    report: MultiplexingReport
    trace: TraceLog
    completed: bool
    duration: float

    @property
    def broken(self) -> bool:
        """The paper's 'broken connection': the load never finished."""
        return not self.completed

    def client_retransmissions(self) -> int:
        """Client-side TCP retransmissions (Table I's counted quantity)."""
        return len(
            self.trace.select(
                category="tcp.retransmit",
                predicate=lambda r: str(r.get("conn", "")).startswith("client"),
            )
        )

    def total_retransmissions(self) -> int:
        return self.trace.count(category="tcp.retransmit")

    def duplicate_servings(self) -> int:
        """Response instances spawned by retransmitted (duplicate) GETs."""
        return sum(1 for inst in self.server.all_instances if inst.duplicate)

    def stream_resets(self) -> int:
        return len(self.trace.select(category="h2.rst_stream.sent"))

    def analyze(
        self, attack: Optional[SequenceAttack] = None
    ) -> SequenceAttackResult:
        """Run the offline attack analysis for this trial."""
        attack = attack or SequenceAttack(self.site)
        analysis_start = 0.0
        if self.adversary is not None:
            # The image sequence is recovered from traffic after the
            # drop window (the adversary controls both timestamps).
            if self.adversary.escalation_time is not None:
                analysis_start = self.adversary.escalation_time
            elif self.adversary.trigger_time is not None:
                analysis_start = self.adversary.trigger_time
        return attack.analyze(
            self.monitor,
            self.report,
            analysis_start=analysis_start,
            broken_connection=self.broken,
        )


def run_trial(
    trial: int,
    workload: VolunteerWorkload,
    config: Optional[TrialConfig] = None,
) -> TrialResult:
    """Assemble and run one trial end to end."""
    config = config or TrialConfig()
    site = workload.session(trial)
    rng = workload.trial_rng(trial)

    topology = build_adversary_path(seed=rng.master_seed)
    sim = topology.sim
    trace = topology.trace

    server_tcp = None
    if config.tcp is not None:
        server_tcp = replace(
            config.tcp,
            deliver_duplicate_messages=config.server.serve_duplicate_requests,
        )
    server = H2Server(
        sim,
        topology.server,
        443,
        site.website.router,
        config=config.server,
        tcp_config=server_tcp,
        trace=trace,
        rng=rng,
    )
    client = H2Client(
        sim,
        topology.client,
        topology.server.endpoint(443),
        tcp_config=config.tcp,
        trace=trace,
        authority="www.isidewith.com",
    )
    schedule = config.schedule_override or site.schedule
    browser = Browser(sim, client, schedule, config=config.browser, trace=trace)

    controller = NetworkController(sim, topology.middlebox, rng, trace=trace)
    adversary: Optional[Adversary] = None
    if config.adversary is not None:
        adversary = Adversary(controller, config.adversary, trace=trace)
        adversary.arm()
    if config.controller_setup is not None:
        config.controller_setup(controller)

    browser.start()

    # Run in slices so we can stop soon after the page completes.
    slice_length = 0.5
    while sim.now < config.horizon:
        sim.run_until(min(sim.now + slice_length, config.horizon))
        if browser.broken:
            break
        if browser.page_complete:
            sim.run_until(min(sim.now + config.settle_time, config.horizon))
            break

    completed = browser.page_complete and not browser.broken
    monitor = TrafficMonitor(topology.middlebox.capture)
    if server.connections:
        report = MultiplexingReport.from_layout(
            server.connections[0].tcp.layout
        )
    else:
        report = MultiplexingReport()

    return TrialResult(
        trial=trial,
        site=site,
        topology=topology,
        server=server,
        client=client,
        browser=browser,
        controller=controller,
        adversary=adversary,
        monitor=monitor,
        report=report,
        trace=trace,
        completed=completed,
        duration=sim.now,
    )
