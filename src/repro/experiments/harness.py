"""Single-trial assembly and execution.

One *trial* is one volunteer's attacked (or baseline) page load: a
fresh topology, server, browser, and optionally an adversary, run to
page completion or a horizon.  Everything is seeded from the trial
index so runs are exactly reproducible.

Besides the live :class:`TrialResult` (which holds the simulator,
topology and server objects and therefore cannot leave the process
that ran the trial), this module defines the picklable
:class:`TrialSummary` — everything the experiment modules aggregate,
extracted worker-side so trials can run in a process pool (see
:mod:`repro.experiments.executor`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro import profiling
from repro.tcp.config import TCPConfig

from repro.core.adversary import Adversary, AdversaryConfig
from repro.core.controller import NetworkController
from repro.core.metrics import MultiplexingReport
from repro.core.monitor import GetRequestObservation, TrafficMonitor
from repro.core.sequence import SequenceAttack, SequenceAttackResult
from repro.h2.client import H2Client
from repro.h2.server import H2Server, ServerConfig
from repro.netsim.capture import Direction
from repro.netsim.faults import FaultSchedule
from repro.netsim.topology import PathTopology, build_adversary_path
from repro.simkernel.trace import TraceLog
from repro.transport import resolve_transport
from repro.web.browser import Browser, BrowserConfig
from repro.web.isidewith import IsideWithSite
from repro.web.site import LoadSchedule
from repro.web.workload import VolunteerWorkload


@dataclass
class TrialConfig:
    """Parameters of one trial run.

    Attributes:
        adversary: attack configuration, or None for a clean baseline.
        controller_setup: hook receiving the
            :class:`~repro.core.controller.NetworkController` before the
            load starts — used by the single-parameter studies (install
            only a spacing filter, only a throttle, …).
        server: server behaviour overrides.
        browser: browser behaviour overrides.
        tcp: TCP parameters for both endpoints (None = defaults; the
            server side additionally gets the duplicate-delivery quirk
            per the server config).
        schedule_override: replace the site's schedule (defenses).
        horizon: absolute simulated-time budget for the load.
        settle_time: extra time after page completion before the
            capture is analyzed (lets in-flight packets land).
        faults: chaos-layer fault schedule (see
            :mod:`repro.netsim.faults`), or None for clean links.
        fault_location: which link(s) the schedule perturbs —
            ``"server"`` (the WAN hop), ``"client"`` (the LAN hop) or
            ``"both"``.
    """

    adversary: Optional[AdversaryConfig] = None
    controller_setup: Optional[Callable[[NetworkController], None]] = None
    server: ServerConfig = field(default_factory=ServerConfig)
    browser: BrowserConfig = field(default_factory=BrowserConfig)
    tcp: Optional[TCPConfig] = None
    schedule_override: Optional[LoadSchedule] = None
    horizon: float = 40.0
    settle_time: float = 0.3
    faults: Optional[FaultSchedule] = None
    fault_location: str = "server"
    #: Transport implementation for the whole stack: an explicit name
    #: ("tcp"/"quic") pins it; None defers to ``REPRO_TRANSPORT`` / the
    #: default at run time (resolved per trial, so spawned workers obey
    #: the environment hop).
    transport: Optional[str] = None

    def __post_init__(self) -> None:
        if self.fault_location not in ("server", "client", "both"):
            raise ValueError(
                f"unknown fault location {self.fault_location!r}"
            )
        if self.transport is not None:
            resolve_transport(self.transport)  # fail fast on bad names


@dataclass
class TrialResult:
    """Everything one trial produced."""

    trial: int
    site: IsideWithSite
    topology: PathTopology
    server: H2Server
    client: H2Client
    browser: Browser
    controller: NetworkController
    adversary: Optional[Adversary]
    monitor: TrafficMonitor
    report: MultiplexingReport
    trace: TraceLog
    completed: bool
    duration: float

    @property
    def broken(self) -> bool:
        """The paper's 'broken connection': the load never finished."""
        return not self.completed

    #: Retransmission trace categories, one per transport.  Exactly one
    #: is non-zero per trial, so summing keeps TCP trials byte-identical
    #: while QUIC trials report through the same counters.
    RETRANSMIT_CATEGORIES = ("tcp.retransmit", "quic.retransmit")

    def client_retransmissions(self) -> int:
        """Client-side retransmissions (Table I's counted quantity)."""
        return sum(
            len(
                self.trace.select(
                    category=category,
                    predicate=lambda r: str(r.get("conn", "")).startswith(
                        "client"
                    ),
                )
            )
            for category in self.RETRANSMIT_CATEGORIES
        )

    def total_retransmissions(self) -> int:
        return sum(
            self.trace.count(category=category)
            for category in self.RETRANSMIT_CATEGORIES
        )

    def duplicate_servings(self) -> int:
        """Response instances spawned by retransmitted (duplicate) GETs."""
        return sum(1 for inst in self.server.all_instances if inst.duplicate)

    def stream_resets(self) -> int:
        return len(self.trace.select(category="h2.rst_stream.sent"))

    def analyze(
        self, attack: Optional[SequenceAttack] = None
    ) -> SequenceAttackResult:
        """Run the offline attack analysis for this trial."""
        attack = attack or SequenceAttack(self.site)
        analysis_start = 0.0
        if self.adversary is not None:
            # The image sequence is recovered from traffic after the
            # drop window (the adversary controls both timestamps).
            if self.adversary.escalation_time is not None:
                analysis_start = self.adversary.escalation_time
            elif self.adversary.trigger_time is not None:
                analysis_start = self.adversary.trigger_time
        return attack.analyze(
            self.monitor,
            self.report,
            analysis_start=analysis_start,
            broken_connection=self.broken,
            attack_aborted=(
                self.adversary is not None and self.adversary.aborted
            ),
        )


# ---------------------------------------------------------------------------
# Picklable controller setups
#
# ``TrialConfig.controller_setup`` must cross a process boundary when
# trials run on the process backend, so the common setups are plain
# module-level dataclasses rather than closures.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SpacingSetup:
    """Install the §IV-B GET-spacing filter."""

    spacing: float
    noise_fraction: float = 0.5

    def __call__(self, controller: NetworkController) -> None:
        controller.install_spacing(
            self.spacing, noise_fraction=self.noise_fraction
        )


@dataclass(frozen=True)
class UniformDelaySetup:
    """Install the §IV-A constant per-packet delay."""

    delay: float
    direction: Optional[Direction] = None

    def __call__(self, controller: NetworkController) -> None:
        controller.install_uniform_delay(self.delay, self.direction)


@dataclass(frozen=True)
class SpacingAndBandwidthSetup:
    """Spacing filter plus a token-bucket throttle (the Fig. 5 sweep)."""

    spacing: float
    bits_per_second: float
    burst_bytes: int = 32 * 1024
    noise_fraction: float = 0.5

    def __call__(self, controller: NetworkController) -> None:
        controller.install_spacing(
            self.spacing, noise_fraction=self.noise_fraction
        )
        controller.limit_bandwidth(
            self.bits_per_second, burst_bytes=self.burst_bytes
        )


# ---------------------------------------------------------------------------
# Picklable trial summaries
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ObjectDegrees:
    """Ground-truth multiplexing degrees of one object in one trial."""

    min_degree: Optional[float]
    original_degree: Optional[float]


@dataclass
class TrialSummary:
    """Everything the experiment modules aggregate from one trial.

    A :class:`TrialResult` holds live simulator, topology and server
    objects and cannot cross a process boundary; this summary is plain
    data, extracted worker-side by :func:`summarize_result`.

    Attributes:
        trial: the trial index.
        completed: the page load finished (not the paper's "broken
            connection").
        duration: simulated seconds the trial ran.
        client_retransmissions: client-side TCP retransmissions
            (Table I's counted quantity).
        total_retransmissions: both endpoints' TCP retransmissions.
        duplicate_servings: response instances spawned by retransmitted
            (duplicate) GETs.
        stream_resets: RST_STREAM frames sent.
        browser_resets: streams the browser reset (the §IV-D count).
        server_retransmitted_segments: TCP segments the server's first
            connection retransmitted (the E8h recovery-cost metric).
        object_degrees: per object id, its ground-truth min/original
            degree of multiplexing.
        inter_get_gaps: gaps between consecutive observed GETs.
        get_requests: the monitor's GET observations (trigger studies).
        trace_categories: histogram of trace categories.
        analysis: the offline attack analysis, when requested.
        attack_phase: the adversary's final phase (None for baselines).
        attack_retries: drop-window retries the adversary spent.
        attack_aborted: the adversary exhausted its retry budget.
    """

    trial: int
    completed: bool
    duration: float
    client_retransmissions: int
    total_retransmissions: int
    duplicate_servings: int
    stream_resets: int
    browser_resets: int
    server_retransmitted_segments: int
    object_degrees: Dict[str, ObjectDegrees] = field(default_factory=dict)
    inter_get_gaps: List[float] = field(default_factory=list)
    get_requests: List[GetRequestObservation] = field(default_factory=list)
    trace_categories: Dict[str, int] = field(default_factory=dict)
    analysis: Optional[SequenceAttackResult] = None
    attack_phase: Optional[str] = None
    attack_retries: int = 0
    attack_aborted: bool = False

    @property
    def broken(self) -> bool:
        """The paper's 'broken connection': the load never finished."""
        return not self.completed

    def min_degree(self, object_id: str) -> Optional[float]:
        """Lowest degree across all servings (duplicates included)."""
        degrees = self.object_degrees.get(object_id)
        return degrees.min_degree if degrees is not None else None

    def original_degree(self, object_id: str) -> Optional[float]:
        """Degree of the first (non-duplicate) serving, or None."""
        degrees = self.object_degrees.get(object_id)
        return degrees.original_degree if degrees is not None else None


def summarize_result(result: "TrialResult", analyze: bool = True) -> TrialSummary:
    """Extract the picklable summary of one finished trial.

    Must run in the process that ran the trial (it walks the live
    server/report/monitor objects).
    """
    per_object: Dict[str, ObjectDegrees] = {}
    for object_id in sorted(
        {instance.object_id for instance in result.report.degrees}
    ):
        per_object[object_id] = ObjectDegrees(
            min_degree=result.report.min_degree(object_id),
            original_degree=result.report.original_degree(object_id),
        )
    get_requests = result.monitor.get_requests()
    times = [observation.time for observation in get_requests]
    return TrialSummary(
        trial=result.trial,
        completed=result.completed,
        duration=result.duration,
        client_retransmissions=result.client_retransmissions(),
        total_retransmissions=result.total_retransmissions(),
        duplicate_servings=result.duplicate_servings(),
        stream_resets=result.stream_resets(),
        browser_resets=result.browser.resets_sent,
        server_retransmitted_segments=(
            result.server.connections[0].tcp.retransmitted_segments
            if result.server.connections else 0
        ),
        object_degrees=per_object,
        inter_get_gaps=[b - a for a, b in zip(times, times[1:])],
        get_requests=get_requests,
        trace_categories=result.trace.categories(),
        analysis=result.analyze() if analyze else None,
        attack_phase=(
            result.adversary.phase.value if result.adversary else None
        ),
        attack_retries=(
            result.adversary.retries_used if result.adversary else 0
        ),
        attack_aborted=(
            result.adversary.aborted if result.adversary else False
        ),
    )


def summarize_trial(
    trial: int,
    workload: VolunteerWorkload,
    config: Optional[TrialConfig] = None,
    analyze: bool = True,
) -> TrialSummary:
    """Run one trial and return its picklable summary."""
    return summarize_result(run_trial(trial, workload, config), analyze=analyze)


def run_trial(
    trial: int,
    workload: VolunteerWorkload,
    config: Optional[TrialConfig] = None,
) -> TrialResult:
    """Assemble and run one trial end to end.

    When a profiler is active (see :mod:`repro.profiling`) the trial's
    phases are wall-clock timed and its subsystem counters harvested
    after the run.  Profiling only *reads* state the simulation already
    maintains, so results are byte-identical with it on or off.
    """
    profiler = profiling.active()
    phase_start = time.perf_counter() if profiler is not None else 0.0
    config = config or TrialConfig()
    site = workload.session(trial)
    rng = workload.trial_rng(trial)

    fault_at = config.fault_location
    topology = build_adversary_path(
        seed=rng.master_seed,
        client_faults=(
            config.faults if fault_at in ("client", "both") else None
        ),
        server_faults=(
            config.faults if fault_at in ("server", "both") else None
        ),
    )
    sim = topology.sim
    trace = topology.trace

    transport = resolve_transport(config.transport)
    server_tcp = None
    if config.tcp is not None:
        server_tcp = replace(
            config.tcp,
            deliver_duplicate_messages=config.server.serve_duplicate_requests,
        )
    server = H2Server(
        sim,
        topology.server,
        443,
        site.website.router,
        config=config.server,
        tcp_config=server_tcp,
        trace=trace,
        rng=rng,
        transport=transport,
    )
    client = H2Client(
        sim,
        topology.client,
        topology.server.endpoint(443),
        tcp_config=config.tcp,
        trace=trace,
        authority="www.isidewith.com",
        transport=transport,
    )
    schedule = config.schedule_override or site.schedule
    browser = Browser(sim, client, schedule, config=config.browser, trace=trace)

    controller = NetworkController(sim, topology.middlebox, rng, trace=trace)
    adversary: Optional[Adversary] = None
    if config.adversary is not None:
        adversary = Adversary(controller, config.adversary, trace=trace)
        adversary.arm()
    if config.controller_setup is not None:
        config.controller_setup(controller)

    if profiler is not None:
        now = time.perf_counter()
        profiler.add_time("trial.setup", now - phase_start)
        phase_start = now

    browser.start()

    # Run in slices so we can stop soon after the page completes.
    slice_length = 0.5
    while sim.now < config.horizon:
        sim.run_until(min(sim.now + slice_length, config.horizon))
        if browser.broken:
            break
        if browser.page_complete:
            sim.run_until(min(sim.now + config.settle_time, config.horizon))
            break

    if profiler is not None:
        now = time.perf_counter()
        profiler.add_time("trial.simulate", now - phase_start)
        phase_start = now

    completed = browser.page_complete and not browser.broken
    monitor = TrafficMonitor(topology.middlebox.capture)
    if server.connections:
        report = MultiplexingReport.from_layout(
            server.connections[0].tcp.layout
        )
    else:
        report = MultiplexingReport()

    if profiler is not None:
        profiler.add_time("trial.collect", time.perf_counter() - phase_start)
        profiler.count("trials")
        profiler.count("sim.events", sim.events_executed)
        if sim.batch_runs:
            # Fast backend only: how much of the event stream the
            # homogeneous batch path actually took (vs inferred).
            profiler.count("sim.batch_runs", sim.batch_runs)
            profiler.count("sim.batched_events", sim.batched_events)
        profiler.count("net.packets", len(topology.middlebox.capture))
        profiler.count("trace.records", len(trace))
        profiler.count(
            "h2.frames_sent",
            client.h2.frames_sent
            + sum(conn.h2.frames_sent for conn in server.connections),
        )
        profiler.count(
            "tcp.retransmitted_segments",
            client.tcp.retransmitted_segments
            + sum(conn.tcp.retransmitted_segments for conn in server.connections),
        )
        profiler.gauge_max("mem.peak_rss_kb", profiling.peak_rss_kb())

    return TrialResult(
        trial=trial,
        site=site,
        topology=topology,
        server=server,
        client=client,
        browser=browser,
        controller=controller,
        adversary=adversary,
        monitor=monitor,
        report=report,
        trace=trace,
        completed=completed,
        duration=sim.now,
    )
