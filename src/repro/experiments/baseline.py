"""E2 — baseline multiplexing without an adversary (paper §IV intro).

The paper reports that, untouched, the result HTML is ≈98 % multiplexed
(and not multiplexed at all in 32 % of downloads — Table I's first
row), and the emblem images are 80–99 % multiplexed.  This experiment
also measures the inter-request gaps at the gateway and compares them
with Table II's first two rows (the timing ground truth the whole
attack is built on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean
from typing import Dict, List, Optional

from repro.experiments.executor import TrialExecutor
from repro.experiments.harness import TrialConfig, TrialSummary, summarize_trial
from repro.experiments.report import format_table, percentage
from repro.web.isidewith import HTML_OBJECT_ID, PARTIES
from repro.web.workload import VolunteerWorkload


@dataclass(frozen=True)
class _BaselineTrial:
    """Picklable per-trial task: one clean (no adversary) page load."""

    seed: int

    def __call__(self, trial: int) -> TrialSummary:
        workload = VolunteerWorkload(seed=self.seed)
        return summarize_trial(trial, workload, TrialConfig(), analyze=False)


@dataclass
class BaselineResult:
    """Aggregates over N clean page loads."""

    trials: int = 0
    html_degrees: List[float] = field(default_factory=list)
    image_degrees: List[float] = field(default_factory=list)
    html_not_multiplexed: int = 0
    images_not_multiplexed: int = 0
    images_observed: int = 0
    mean_get_gaps: List[float] = field(default_factory=list)
    #: Measured gap before the HTML's GET, per trial (Table II: 500 ms).
    html_prev_gaps: List[float] = field(default_factory=list)
    #: Measured gap before the first emblem's GET (Table II: 780 ms).
    first_image_prev_gaps: List[float] = field(default_factory=list)
    #: Measured gaps between consecutive emblem GETs (Table II: ≤2 ms).
    image_burst_gaps: List[float] = field(default_factory=list)

    @property
    def html_mean_degree(self) -> float:
        return mean(self.html_degrees) if self.html_degrees else 0.0

    @property
    def image_mean_degree(self) -> float:
        return mean(self.image_degrees) if self.image_degrees else 0.0

    @property
    def html_not_multiplexed_pct(self) -> float:
        return percentage(self.html_not_multiplexed, self.trials)

    @property
    def image_not_multiplexed_pct(self) -> float:
        return percentage(self.images_not_multiplexed, self.images_observed)

    def rows(self) -> List[List[str]]:
        return [
            ["result HTML", f"{self.html_mean_degree:.2f}",
             f"{self.html_not_multiplexed_pct:.0f}%"],
            ["emblem images", f"{self.image_mean_degree:.2f}",
             f"{self.image_not_multiplexed_pct:.0f}%"],
        ]

    def timing_rows(self) -> List[List[str]]:
        """Measured inter-GET gaps vs Table II's first two rows."""
        def mean_ms(values: List[float]) -> str:
            return f"{mean(values) * 1000:.1f}" if values else "—"

        return [
            ["gap before result HTML", "500", mean_ms(self.html_prev_gaps)],
            ["gap before first emblem", "780",
             mean_ms(self.first_image_prev_gaps)],
            ["gaps within emblem burst", "0.1–2",
             mean_ms(self.image_burst_gaps)],
        ]

    def render(self) -> str:
        degrees = format_table(
            ["object", "mean degree of multiplexing", "not multiplexed"],
            self.rows(),
            title=f"E2 baseline (no adversary, {self.trials} loads)",
        )
        timings = format_table(
            ["inter-request gap", "Table II (ms)", "measured (ms)"],
            self.timing_rows(),
        )
        return degrees + "\n\n" + timings


def run(
    trials: int = 30, seed: int = 7, workers: Optional[int] = None
) -> BaselineResult:
    """Run the baseline experiment."""
    workload = VolunteerWorkload(seed=seed)
    result = BaselineResult()
    summaries = TrialExecutor(workers=workers).map_trials(
        trials, _BaselineTrial(seed)
    )
    for trial, summary in enumerate(summaries):
        result.trials += 1
        degree = summary.original_degree(HTML_OBJECT_ID)
        if degree is not None:
            result.html_degrees.append(degree)
            if degree == 0.0:
                result.html_not_multiplexed += 1
        for party in PARTIES:
            image_degree = summary.original_degree(f"emblem-{party}")
            if image_degree is None:
                continue
            result.images_observed += 1
            result.image_degrees.append(image_degree)
            if image_degree == 0.0:
                result.images_not_multiplexed += 1
        gaps = summary.inter_get_gaps
        if gaps:
            result.mean_get_gaps.append(mean(gaps))
        # Table II timing check: the gateway's measured inter-GET gaps
        # around the objects of interest (a clean load issues exactly
        # the scheduled requests, so schedule positions index the gaps).
        # The site is rebuilt locally — sessions are deterministic in
        # the trial index, and building one runs no simulation.
        site = workload.session(trial)
        if len(gaps) == len(site.schedule) - 1:
            html_gap_index = site.html_index - 1
            if html_gap_index >= 0:
                result.html_prev_gaps.append(gaps[html_gap_index])
            first_image = site.image_indices[0]
            result.first_image_prev_gaps.append(gaps[first_image - 1])
            for image_index in site.image_indices[1:]:
                result.image_burst_gaps.append(gaps[image_index - 1])
    return result
