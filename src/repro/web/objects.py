"""Web objects: the resources a page embeds."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.h2.server import ResourceSpec


@dataclass(frozen=True)
class WebObject:
    """One addressable resource of a website.

    Attributes:
        path: request path.
        size: body size in bytes.
        content_type: MIME type.
        object_id: stable identity used by ground-truth accounting and
            the adversary's size→identity map; defaults to the path.
        think_time_range: server-side processing delay range; dynamic
            content (the survey result HTML) is slow and variable,
            static assets are fast.
    """

    path: str
    size: int
    content_type: str = "application/octet-stream"
    object_id: str = ""
    think_time_range: Optional[Tuple[float, float]] = None

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"object size must be positive: {self.path}")
        if not self.object_id:
            object.__setattr__(self, "object_id", self.path)

    def resource_spec(self) -> ResourceSpec:
        """The server-side spec for this object."""
        return ResourceSpec(
            path=self.path,
            body_bytes=self.size,
            content_type=self.content_type,
            object_id=self.object_id,
            think_time_range=self.think_time_range,
        )
