"""Websites and page-load schedules.

A :class:`Website` is a set of :class:`~repro.web.objects.WebObject`
resources plus a router for the HTTP/2 server.  A :class:`LoadSchedule`
is the browser-side view: the ordered list of requests a page load
issues, each with its gap from the previous request — the quantity
Table II of the paper reports and the adversary's jitter manipulates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.h2.server import ResourceSpec
from repro.web.objects import WebObject


@dataclass(frozen=True)
class ScheduledRequest:
    """One request in a page load.

    Attributes:
        gap: seconds after the *previous* request (the first request's
            gap is measured from load start).
        obj: the object requested.
        priority_weight: optional RFC 7540 weight the browser attaches.
        script_triggered: the request is issued by script execution
            (the emblem images in the isidewith model) rather than by
            document parsing; on a reload after a stream reset these
            fire only once the scripts are back and re-run.
    """

    gap: float
    obj: WebObject
    priority_weight: Optional[int] = None
    script_triggered: bool = False

    def __post_init__(self) -> None:
        if self.gap < 0:
            raise ValueError("request gaps must be non-negative")


class LoadSchedule:
    """The ordered request sequence of one page load."""

    def __init__(self, requests: Sequence[ScheduledRequest]) -> None:
        if not requests:
            raise ValueError("a load schedule needs at least one request")
        self.requests: List[ScheduledRequest] = list(requests)

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)

    def __getitem__(self, index: int) -> ScheduledRequest:
        return self.requests[index]

    def index_of(self, object_id: str) -> int:
        """0-based position of an object in the schedule.

        Raises:
            KeyError: when the object is not scheduled.
        """
        for index, request in enumerate(self.requests):
            if request.obj.object_id == object_id:
                return index
        raise KeyError(object_id)

    def request_times(self) -> List[float]:
        """Nominal issue times (cumulative gaps) of each request."""
        times = []
        elapsed = 0.0
        for request in self.requests:
            elapsed += request.gap
            times.append(elapsed)
        return times


class Website:
    """A set of servable objects with a router."""

    def __init__(self, name: str, objects: Iterable[WebObject]) -> None:
        self.name = name
        self.objects: Dict[str, WebObject] = {}
        for obj in objects:
            if obj.path in self.objects:
                raise ValueError(f"duplicate path {obj.path!r}")
            self.objects[obj.path] = obj

    def __len__(self) -> int:
        return len(self.objects)

    def __contains__(self, path: str) -> bool:
        return path in self.objects

    def object_by_id(self, object_id: str) -> WebObject:
        for obj in self.objects.values():
            if obj.object_id == object_id:
                return obj
        raise KeyError(object_id)

    def router(self, path: str) -> Optional[ResourceSpec]:
        """Server router callable (None → 404)."""
        obj = self.objects.get(path)
        return obj.resource_spec() if obj is not None else None

    def size_map(self) -> Dict[str, int]:
        """object_id → body size; the adversary's pre-compiled map."""
        return {obj.object_id: obj.size for obj in self.objects.values()}

    def __repr__(self) -> str:
        return f"Website({self.name!r}, {len(self.objects)} objects)"
