"""Adaptive-streaming traffic model (paper §VII, future work).

    "Exploring the suitability of our technique for other types of web
    traffic, such as streaming traffic, is an interesting direction."

Models a DASH-like session over HTTP/2: the player downloads fixed-
duration video segments from a bitrate ladder, ramping quality up and
down (a simple ABR walk).  During buffer fill the player keeps several
segment requests outstanding, so consecutive segments **multiplex** on
the connection — and a passive observer sees merged bursts whose sizes
straddle ladder rungs.  The secret is the per-segment quality sequence
(what bitrate the user's network sustained, when they seeked, which
rendition — the ADU-inference setting of the paper's reference [27]).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.h2.client import H2Client, ResponseHandle
from repro.h2.server import ResourceSpec
from repro.simkernel.randomstream import RandomStreams
from repro.simkernel.simulator import Simulator

#: The bitrate ladder: rendition name → nominal bytes per segment.
#: Adjacent rungs differ by ~1.8×, comfortably separable when segments
#: are serialized, blurry when two segments merge into one burst.
DEFAULT_LADDER: Dict[str, int] = {
    "q240": 70_000,
    "q360": 125_000,
    "q480": 225_000,
    "q720": 405_000,
    "q1080": 730_000,
}

#: Segment wall-clock duration in seconds.
SEGMENT_DURATION = 2.0


def segment_path(index: int, quality: str) -> str:
    return f"/video/seg{index:04d}_{quality}.m4s"


@dataclass
class StreamingSession:
    """One viewing session: the ladder, per-segment qualities and sizes."""

    qualities: Tuple[str, ...]
    ladder: Dict[str, int]
    sizes: Tuple[int, ...]  # actual per-segment bytes (VBR noise applied)

    @property
    def segment_count(self) -> int:
        return len(self.qualities)

    def resources(self) -> List[ResourceSpec]:
        """Every segment of this session, at its actual size."""
        return [
            ResourceSpec(
                path=segment_path(index, quality),
                body_bytes=size,
                content_type="video/iso.segment",
                object_id=f"seg{index:04d}",
                think_time_range=(0.0005, 0.003),
            )
            for index, (quality, size) in enumerate(
                zip(self.qualities, self.sizes)
            )
        ]

    def router(self, path: str) -> Optional[ResourceSpec]:
        for resource in self.resources():
            if resource.path == path:
                return resource
        return None


def generate_session(
    rng: RandomStreams,
    segments: int = 12,
    ladder: Optional[Dict[str, int]] = None,
    vbr_noise: float = 0.08,
) -> StreamingSession:
    """Generate a session with an ABR-style quality walk.

    The walk starts at the lowest rung, tends upward, and occasionally
    drops (congestion events) — enough structure that the recovered
    sequence is meaningful, enough randomness that it is a secret.
    """
    ladder = dict(ladder or DEFAULT_LADDER)
    rungs = list(ladder)
    level = 0
    qualities: List[str] = []
    stream = rng.stream("abr-walk")
    for _ in range(segments):
        qualities.append(rungs[level])
        draw = stream.random()
        if draw < 0.55 and level < len(rungs) - 1:
            level += 1
        elif draw > 0.85 and level > 0:
            level -= max(1, int(draw * 10) % 3 + 1) - 1
            level = max(0, level - 1)
    sizes = []
    for index, quality in enumerate(qualities):
        nominal = ladder[quality]
        noise = rng.uniform(f"vbr-{index}", 1 - vbr_noise, 1 + vbr_noise)
        sizes.append(int(nominal * noise))
    return StreamingSession(
        qualities=tuple(qualities), ladder=ladder, sizes=tuple(sizes)
    )


class StreamingPlayer:
    """A buffer-filling DASH player over one HTTP/2 connection.

    Keeps up to ``pipeline_depth`` segment requests outstanding while
    the buffer is below target — the prefetch pipelining that makes
    consecutive segments multiplex — then settles into one request per
    segment duration.
    """

    def __init__(
        self,
        sim: Simulator,
        client: H2Client,
        session: StreamingSession,
        pipeline_depth: int = 3,
        buffer_target_segments: int = 6,
    ) -> None:
        self.sim = sim
        self.client = client
        self.session = session
        self.pipeline_depth = pipeline_depth
        self.buffer_target = buffer_target_segments
        self._next_segment = 0
        self._outstanding = 0
        self._buffered = 0
        self.handles: List[ResponseHandle] = []
        self.finished = False
        self.on_finished: Optional[Callable[[], None]] = None

    def start(self) -> None:
        self.client.on_ready = self._fill
        self.client.connect()

    def _fill(self) -> None:
        """Issue requests up to the pipeline depth / buffer target."""
        while (
            not self.finished
            and self._next_segment < self.session.segment_count
            and self._outstanding < self.pipeline_depth
            and self._buffered + self._outstanding < self.buffer_target
        ):
            index = self._next_segment
            self._next_segment += 1
            self._outstanding += 1
            quality = self.session.qualities[index]
            handle = self.client.get(segment_path(index, quality))
            handle.on_complete = self._on_segment
            self.handles.append(handle)

    def _on_segment(self, handle: ResponseHandle) -> None:
        self._outstanding -= 1
        self._buffered += 1
        if self._next_segment >= self.session.segment_count and \
                self._outstanding == 0:
            self.finished = True
            if self.on_finished:
                self.on_finished()
            return
        self._fill()
        # Playback drains the buffer one segment per SEGMENT_DURATION.
        self.sim.schedule(SEGMENT_DURATION, self._drain)

    def _drain(self) -> None:
        if self._buffered > 0:
            self._buffered -= 1
        self._fill()
