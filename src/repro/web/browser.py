"""A Firefox-like page-load driver.

The browser walks a :class:`~repro.web.site.LoadSchedule`, issuing each
GET after its scheduled gap, and implements the client reaction the
paper's targeted-drop phase relies on (§IV-D): when response data stops
flowing for longer than ``reset_timeout`` while requests are
outstanding, the browser sends **RST_STREAM for every unfinished
stream** and then re-requests the objects it still needs, highest
priority (earliest scheduled) first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.h2.client import H2Client, ResponseHandle
from repro.h2.errors import H2ErrorCode
from repro.simkernel.simulator import Simulator
from repro.simkernel.trace import TraceLog
from repro.web.site import LoadSchedule, ScheduledRequest


@dataclass
class BrowserConfig:
    """Browser behaviour knobs.

    Attributes:
        reset_timeout: stall time (no DATA on any active stream) after
            which the browser resets all active streams.  The paper's
            client reset after ~6 s of adversarial drops; Firefox-class
            stall detection sits in the low seconds.
        reset_backoff: multiplier applied to the stall timeout after
            each reset — a client on a lossy channel waits progressively
            longer (mirroring its TCP's growing retransmit timeouts,
            §IV-D) instead of spamming resets.
        reretry_delay: pause between sending the resets and re-issuing
            the GETs for missing objects.
        rerequest_gap: gap between re-issued GETs within one wave.
        script_rerun_delay: pause between the render-critical wave
            completing and the image wave starting — the scripts must
            re-execute before they re-request the emblem images, which
            is why the paper's image burst reappears intact (and in
            preference order) after the stream reset.
        check_interval: stall-detector polling period.
        max_resets: give up (broken connection) after this many resets.
    """

    reset_timeout: float = 6.0
    reset_backoff: float = 2.0
    reretry_delay: float = 0.050
    rerequest_gap: float = 0.010
    script_rerun_delay: float = 1.2
    check_interval: float = 0.250
    max_resets: int = 12


class Browser:
    """Drives one page load over one HTTP/2 client connection."""

    def __init__(
        self,
        sim: Simulator,
        client: H2Client,
        schedule: LoadSchedule,
        config: Optional[BrowserConfig] = None,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.sim = sim
        self.client = client
        self.schedule = schedule
        self.config = config or BrowserConfig()
        self._trace = trace
        self._next_index = 0
        self._started = False
        self.resets_sent = 0
        self._current_reset_timeout = self.config.reset_timeout
        self._pending_image_wave: List[ScheduledRequest] = []
        self.broken = False
        self.handles_by_object: Dict[str, List[ResponseHandle]] = {}
        self._request_paths: Dict[int, ScheduledRequest] = {}
        self.on_page_complete: Optional[Callable[[], None]] = None
        self._completed_notified = False

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Connect and begin the page load."""
        if self._started:
            raise RuntimeError("browser already started")
        self._started = True
        self.client.on_ready = self._begin_schedule
        self.client.connect()

    def _begin_schedule(self) -> None:
        self._schedule_next_request()
        self.sim.schedule(self.config.check_interval, self._stall_check)

    def _schedule_next_request(self) -> None:
        if self._next_index >= len(self.schedule):
            return
        request = self.schedule[self._next_index]
        self.sim.schedule(request.gap, lambda: self._issue(request))

    def _issue(self, request: ScheduledRequest) -> None:
        if self.broken:
            return
        pushed = self._adopt_pushed(request)
        if pushed is not None:
            # The server already pushed this object; no request needed.
            self._next_index += 1
            self._schedule_next_request()
            return
        handle = self.client.get(
            request.obj.path, priority_weight=request.priority_weight
        )
        handle.on_complete = self._on_object_complete
        self.handles_by_object.setdefault(request.obj.object_id, []).append(handle)
        self._record(
            "browser.request",
            path=request.obj.path,
            index=self._next_index,
        )
        self._next_index += 1
        self._schedule_next_request()

    def _adopt_pushed(self, request: ScheduledRequest):
        """Adopt a server-pushed response for this object, if one exists.

        Returns the adopted handle, or None when the object must be
        requested normally.
        """
        for handle in self.client.handles.values():
            if handle.path != request.obj.path or not handle.pushed:
                continue
            if handle.reset:
                continue
            known = self.handles_by_object.setdefault(
                request.obj.object_id, []
            )
            if handle not in known:
                known.append(handle)
                handle.on_complete = self._on_object_complete
                if handle.complete:
                    self._on_object_complete(handle)
            self._record("browser.push_adopted", path=request.obj.path)
            return handle
        return None

    # ------------------------------------------------------------------
    # Completion tracking
    # ------------------------------------------------------------------

    def _on_object_complete(self, handle: ResponseHandle) -> None:
        if self.page_complete and not self._completed_notified:
            self._completed_notified = True
            self._record("browser.page_complete")
            if self.on_page_complete:
                self.on_page_complete()

    @property
    def page_complete(self) -> bool:
        """True when every scheduled object has completed at least once."""
        if self._next_index < len(self.schedule):
            return False
        for request in self.schedule:
            handles = self.handles_by_object.get(request.obj.object_id, [])
            if not any(h.complete for h in handles):
                return False
        return True

    @property
    def missing_objects(self) -> List[ScheduledRequest]:
        """Scheduled requests whose object has not completed yet."""
        missing = []
        for request in self.schedule:
            handles = self.handles_by_object.get(request.obj.object_id, [])
            if not any(h.complete for h in handles):
                missing.append(request)
        return missing

    # ------------------------------------------------------------------
    # Stall detection and reset-and-retry
    # ------------------------------------------------------------------

    def _stall_check(self) -> None:
        if self.broken or self.page_complete:
            return
        active = self.client.active_handles
        if active:
            # A single starved stream is enough: a request that has
            # received nothing for the whole timeout means the channel
            # is badly lossy, and the client resets all ongoing streams
            # (the paper's §IV-D client reaction).
            starved = min(
                (h.last_data_at or h.requested_at) for h in active
            )
            if self.sim.now - starved >= self._current_reset_timeout:
                self._reset_and_retry()
        self.sim.schedule(self.config.check_interval, self._stall_check)

    def _reset_and_retry(self) -> None:
        if self.resets_sent >= self.config.max_resets:
            self.broken = True
            self._record("browser.broken")
            return
        self.resets_sent += 1
        self._current_reset_timeout *= self.config.reset_backoff
        reset_ids = self.client.reset_all_active(H2ErrorCode.CANCEL)
        self._record("browser.reset", streams=len(reset_ids))
        self.sim.schedule(self.config.reretry_delay, self._rerequest_missing)

    def _rerequest_missing(self) -> None:
        """Re-issue GETs for missing objects in waves.

        Wave 1: everything document-triggered (HTML, stylesheets,
        scripts, fonts, parsed images) in schedule order.  Wave 2,
        once wave 1 has landed and the scripts have re-executed: the
        script-triggered requests — the emblem images — which therefore
        reappear as their own back-to-back run at the very tail of the
        reload, exactly as the paper observes.
        """
        if self.broken:
            return
        document_wave = [
            request for request in self.missing_objects
            if not request.script_triggered
        ]
        script_wave = [
            request for request in self.missing_objects
            if request.script_triggered
        ]
        for position, request in enumerate(document_wave):
            self.sim.schedule(
                position * self.config.rerequest_gap,
                lambda req=request: self._reissue(req),
            )
        if script_wave:
            self._pending_image_wave = script_wave
            self.sim.schedule(self.config.check_interval, self._maybe_start_image_wave)

    def _maybe_start_image_wave(self) -> None:
        if self.broken or not self._pending_image_wave:
            return
        document_missing = [
            request for request in self.missing_objects
            if not request.script_triggered
        ]
        if document_missing:
            # Scripts not back yet; check again shortly.  (A stalled
            # document wave is handled by the stall detector.)
            self.sim.schedule(
                self.config.check_interval, self._maybe_start_image_wave
            )
            return
        script_wave, self._pending_image_wave = self._pending_image_wave, []
        for position, request in enumerate(script_wave):
            self.sim.schedule(
                self.config.script_rerun_delay
                + position * self.config.rerequest_gap,
                lambda req=request: self._reissue(req),
            )

    def _reissue(self, request: ScheduledRequest) -> None:
        if self.broken:
            return
        if self._adopt_pushed(request) is not None:
            # The reloaded page was pushed this object again; no
            # request needed (and none leaks onto the wire).
            return
        handles = self.handles_by_object.get(request.obj.object_id, [])
        if any(h.complete for h in handles) or any(
            not h.finished for h in handles
        ):
            return
        handle = self.client.get(
            request.obj.path, priority_weight=request.priority_weight
        )
        handle.on_complete = self._on_object_complete
        self.handles_by_object.setdefault(request.obj.object_id, []).append(handle)
        self._record("browser.rerequest", path=request.obj.path)

    def _record(self, category: str, **fields) -> None:
        if self._trace is not None:
            self._trace.record(self.sim.now, category, **fields)

    def __repr__(self) -> str:
        return (
            f"Browser({self._next_index}/{len(self.schedule)} issued, "
            f"resets={self.resets_sent})"
        )
