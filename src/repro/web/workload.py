"""Volunteer workload generation.

The paper measured ≈500 volunteer survey sessions over three months;
each volunteer's result page displays the 8 parties in a personal
preference order, which is the ground truth the adversary's prediction
is scored against.  :class:`VolunteerWorkload` generates seeded random
orderings and builds the per-trial site instance.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from repro.simkernel.randomstream import RandomStreams
from repro.web.isidewith import IsideWithSite, PARTIES, build_isidewith_site


class VolunteerWorkload:
    """Generates per-trial isidewith sessions with ground-truth labels."""

    def __init__(
        self,
        seed: int = 0,
        gap_noise: float = 0.15,
    ) -> None:
        self._master = RandomStreams(seed)
        self.gap_noise = gap_noise

    def party_order_for(self, trial: int) -> Tuple[str, ...]:
        """The (seeded) preference order of volunteer ``trial``."""
        rng = self._master.spawn(f"trial-{trial}")
        return tuple(rng.shuffled("party-order", PARTIES))

    def trial_rng(self, trial: int) -> RandomStreams:
        """The independent random substream tree for one trial."""
        return self._master.spawn(f"trial-{trial}")

    def session(self, trial: int) -> IsideWithSite:
        """Build the site + schedule for one volunteer session."""
        rng = self.trial_rng(trial)
        order = tuple(rng.shuffled("party-order", PARTIES))
        return build_isidewith_site(order, gap_noise=self.gap_noise, rng=rng)

    def sessions(self, count: int) -> Iterator[Tuple[int, IsideWithSite]]:
        """Yield ``count`` (trial_index, session) pairs."""
        for trial in range(count):
            yield trial, self.session(trial)
