"""Workload generation: volunteer sessions and synthetic populations.

The paper measured ≈500 volunteer survey sessions over three months;
each volunteer's result page displays the 8 parties in a personal
preference order, which is the ground truth the adversary's prediction
is scored against.  :class:`VolunteerWorkload` generates seeded random
orderings and builds the per-trial site instance.

:class:`PopulationWorkload` scales that study beyond the single
isidewith inventory: a heavy-tailed synthetic page population whose
object counts and sizes follow bounded zipf laws (web object
populations are famously heavy-tailed — the regime Morla's statistical
object-size estimation work targets).  Every page is derived from the
master seed and its session index alone, so a million-session campaign
is exactly reproducible and any session can be rebuilt in isolation.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.simkernel.randomstream import (
    CounterStream,
    RandomStreams,
    counter_stream_base,
    counter_stream_seed,
)
from repro.web.isidewith import IsideWithSite, PARTIES, build_isidewith_site


class VolunteerWorkload:
    """Generates per-trial isidewith sessions with ground-truth labels."""

    def __init__(
        self,
        seed: int = 0,
        gap_noise: float = 0.15,
    ) -> None:
        self._master = RandomStreams(seed)
        self.gap_noise = gap_noise

    def party_order_for(self, trial: int) -> Tuple[str, ...]:
        """The (seeded) preference order of volunteer ``trial``."""
        rng = self._master.spawn(f"trial-{trial}")
        return tuple(rng.shuffled("party-order", PARTIES))

    def trial_rng(self, trial: int) -> RandomStreams:
        """The independent random substream tree for one trial."""
        return self._master.spawn(f"trial-{trial}")

    def session(self, trial: int) -> IsideWithSite:
        """Build the site + schedule for one volunteer session."""
        rng = self.trial_rng(trial)
        order = tuple(rng.shuffled("party-order", PARTIES))
        return build_isidewith_site(order, gap_noise=self.gap_noise, rng=rng)

    def sessions(self, count: int) -> Iterator[Tuple[int, IsideWithSite]]:
        """Yield ``count`` (trial_index, session) pairs."""
        for trial in range(count):
            yield trial, self.session(trial)


# ---------------------------------------------------------------------------
# Heavy-tail synthetic populations (the campaign engine's workload)
# ---------------------------------------------------------------------------


class ZipfSampler:
    """Inverse-CDF sampler for a bounded zipf distribution.

    Rank ``r`` over the support ``[low, high]`` carries probability
    proportional to ``r ** -exponent`` (rank 1 = ``low``).  The
    cumulative table is precomputed once; draws are one uniform plus a
    bisect, so a million-session campaign spends microseconds per draw.
    Results depend only on the sampler parameters and the stream state,
    never on platform or construction order.
    """

    def __init__(self, low: int, high: int, exponent: float) -> None:
        if low < 1 or high < low:
            raise ValueError(f"bad zipf support [{low}, {high}]")
        if exponent < 0:
            raise ValueError("zipf exponent must be non-negative")
        self.low = low
        self.high = high
        self.exponent = exponent
        cdf: List[float] = []
        total = 0.0
        for rank in range(1, high - low + 2):
            total += rank ** -exponent
            cdf.append(total)
        self._cdf = cdf
        self._total = total

    def sample(self, stream) -> int:
        """One draw using the given ``random.Random`` stream."""
        point = stream.random() * self._total
        return self.low + bisect.bisect_left(self._cdf, point)


@dataclass(frozen=True)
class PageSpec:
    """One synthetic page of the population — plain, picklable data.

    The spec is the *entire* ground truth of a campaign session: the
    embedded objects' body sizes, the dynamic target's body size, and
    where in the load order the target sits.  Both campaign modes
    consume it — the analytic evaluator reads the sizes directly, the
    full-simulation mode materialises a
    :class:`~repro.web.site.Website` from it via
    :func:`repro.web.generator.generate_site_from_spec`.

    Attributes:
        session: the session index the spec was derived from.
        object_sizes: body sizes of the embedded (static) objects, in
            rank order (largest first — the zipf rank-size law).
        target_size: body size of the dynamic target object.
    """

    session: int
    object_sizes: Tuple[int, ...]
    target_size: int

    @property
    def object_count(self) -> int:
        return len(self.object_sizes)

    @property
    def page_bytes(self) -> int:
        return sum(self.object_sizes) + self.target_size


@dataclass(frozen=True)
class PopulationConfig:
    """Knobs of the heavy-tail page population.

    Attributes:
        min_objects / max_objects: support of the per-page embedded
            object count, drawn zipf with ``count_exponent`` (small
            pages are common, huge pages are the tail).
        count_exponent: zipf exponent of the object-count draw.
        size_exponent: rank-size exponent — the rank-``r`` object's
            size scales as ``head_bytes * r ** -size_exponent``.
        head_bytes: size scale of a page's rank-1 (largest) object.
        size_jitter: multiplicative noise on each object size (uniform
            in ``[1 - size_jitter, 1 + size_jitter]``) so sizes are
            heavy-tailed but not lattice-aligned.
        min_object_bytes: floor for generated object sizes.
        target_range: uniform support of the dynamic target's size
            (the survey-result-HTML analogue).
    """

    min_objects: int = 4
    max_objects: int = 96
    count_exponent: float = 0.9
    size_exponent: float = 1.1
    head_bytes: int = 220_000
    size_jitter: float = 0.35
    min_object_bytes: int = 420
    target_range: Tuple[int, int] = (2_500, 38_000)

    def __post_init__(self) -> None:
        if self.min_objects < 1 or self.max_objects < self.min_objects:
            raise ValueError("bad object-count support")
        if not 0 <= self.size_jitter < 1:
            raise ValueError("size_jitter must be in [0, 1)")
        if self.target_range[0] < 1 or self.target_range[1] < self.target_range[0]:
            raise ValueError("bad target size range")
        if self.min_object_bytes < 1:
            raise ValueError("min_object_bytes must be positive")


class PopulationWorkload:
    """Seeded heavy-tail page population for campaign sessions.

    Mirrors :class:`VolunteerWorkload`'s contract — everything derives
    from ``(seed, session index)`` — but generates zipf page catalogs
    instead of isidewith volunteer orderings.  Specs are tiny plain
    tuples, so generating a page costs microseconds and holds no
    simulator state; a campaign shard builds and discards them one at
    a time.
    """

    def __init__(
        self,
        seed: int = 0,
        config: PopulationConfig | None = None,
    ) -> None:
        self.seed = int(seed)
        self.config = config or PopulationConfig()
        self._master = RandomStreams(self.seed)
        self._count_sampler = ZipfSampler(
            self.config.min_objects,
            self.config.max_objects,
            self.config.count_exponent,
        )
        # Per-index stream seeds are mix64 functions of these bases, so
        # a batch kernel derives a whole shard's seeds arithmetically.
        self._page_base = counter_stream_base(self.seed, "population/pagegen")
        self._analytic_base = counter_stream_base(
            self.seed, "population/analytic"
        )
        # Nominal rank sizes depend only on the config; precomputing the
        # full support once removes ``**`` from the per-page loop and
        # guarantees scalar and vectorized paths read identical floats.
        self._nominal = tuple(
            self.config.head_bytes * rank ** -self.config.size_exponent
            for rank in range(1, self.config.max_objects + 1)
        )

    @property
    def count_cdf(self) -> Tuple[float, ...]:
        """Cumulative zipf table of the object-count draw (rank order)."""
        return tuple(self._count_sampler._cdf)

    @property
    def nominal_sizes(self) -> Tuple[float, ...]:
        """Nominal (pre-jitter) object size of each rank, largest first."""
        return self._nominal

    @property
    def page_stream_base(self) -> int:
        """Counter-stream family base of the page-generation draws."""
        return self._page_base

    @property
    def analytic_stream_base(self) -> int:
        """Counter-stream family base of the analytic-evaluator draws."""
        return self._analytic_base

    def session_rng(self, session: int) -> RandomStreams:
        """The independent random substream tree for one session.

        Mersenne-Twister streams, used only by ``full``-mode campaigns
        (the packet-level simulator draws far more than the fixed-count
        page/analytic draws below).
        """
        return self._master.spawn(f"page-{session}")

    def page_stream(self, session: int) -> CounterStream:
        """The counter-based page-generation stream of one session."""
        return CounterStream(counter_stream_seed(self._page_base, session))

    def analytic_stream(self, session: int) -> CounterStream:
        """The counter-based analytic-evaluator stream of one session."""
        return CounterStream(
            counter_stream_seed(self._analytic_base, session)
        )

    def page_spec(self, session: int) -> PageSpec:
        """Build the (deterministic) page spec for one session."""
        config = self.config
        stream = self.page_stream(session)
        count = self._count_sampler.sample(stream)
        nominal = self._nominal
        jitter_scale = config.size_jitter
        floor = config.min_object_bytes
        sizes = []
        for rank in range(count):
            jitter = 1.0 + jitter_scale * (2.0 * stream.random() - 1.0)
            size = round(nominal[rank] * jitter)
            sizes.append(size if size > floor else floor)
        target_size = stream.randint(*config.target_range)
        return PageSpec(
            session=session,
            object_sizes=tuple(sizes),
            target_size=target_size,
        )

    def page_specs(self, start: int, stop: int) -> Iterator[PageSpec]:
        """Yield specs for sessions ``start <= session < stop``."""
        for session in range(start, stop):
            yield self.page_spec(session)
