"""Web content and client behaviour models.

Models the target website and the browser driving the page load:
web objects and pages, a request schedule with realistic inter-request
gaps, the isidewith.com replica used throughout the paper's evaluation
(one result HTML plus 47 embedded objects including the 8 political
party emblem images), a Firefox-like browser with pipelined requests
and reset-and-retry behaviour, and the volunteer workload generator
standing in for the paper's ~500 survey participants.
"""

from repro.web.browser import Browser, BrowserConfig
from repro.web.isidewith import (
    IsideWithSite,
    PARTIES,
    PARTY_IMAGE_SIZES,
    RESULT_HTML_BYTES,
    build_isidewith_site,
)
from repro.web.objects import WebObject
from repro.web.site import LoadSchedule, ScheduledRequest, Website
from repro.web.streaming import (
    DEFAULT_LADDER,
    SEGMENT_DURATION,
    StreamingPlayer,
    StreamingSession,
    generate_session,
)
from repro.web.workload import VolunteerWorkload

__all__ = [
    "Browser",
    "BrowserConfig",
    "DEFAULT_LADDER",
    "SEGMENT_DURATION",
    "StreamingPlayer",
    "StreamingSession",
    "generate_session",
    "IsideWithSite",
    "LoadSchedule",
    "PARTIES",
    "PARTY_IMAGE_SIZES",
    "RESULT_HTML_BYTES",
    "ScheduledRequest",
    "VolunteerWorkload",
    "WebObject",
    "Website",
    "build_isidewith_site",
]
