"""Random website generation — beyond isidewith.com.

    "Our adversary is built on the general principles stated in the
    paper and can be extended to other real-world websites/scenarios."
    (paper §VII)

Generates synthetic websites with realistic object populations so the
attack can be evaluated against arbitrary page structures, and so the
§II preconditions — the target object's size must be *unique* within
the site — can be stress-tested deliberately (the ``size_collision``
knob plants confusers near the target's size).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.simkernel.randomstream import RandomStreams
from repro.web.objects import WebObject
from repro.web.site import LoadSchedule, ScheduledRequest, Website
from repro.web.workload import PageSpec

#: Content-type mix of a typical page (type, extension, size range).
_OBJECT_CLASSES: Tuple[Tuple[str, str, Tuple[int, int]], ...] = (
    ("text/css", "css", (2_000, 60_000)),
    ("application/javascript", "js", (3_000, 120_000)),
    ("image/png", "png", (1_000, 80_000)),
    ("image/jpeg", "jpg", (10_000, 150_000)),
    ("font/woff2", "woff2", (15_000, 45_000)),
)

#: Server think-time for generated static objects.
_STATIC_THINK = (0.0005, 0.004)


@dataclass
class GeneratedSite:
    """A generated website plus its load schedule and target object."""

    website: Website
    schedule: LoadSchedule
    target_object_id: str

    @property
    def target_size(self) -> int:
        return self.website.object_by_id(self.target_object_id).size


def generate_site(
    rng: RandomStreams,
    object_count: int = 30,
    target_size: int = 9_500,
    size_collision: Optional[int] = None,
    burst_gap: float = 0.0008,
) -> GeneratedSite:
    """Generate a site whose page embeds ``object_count`` objects.

    Args:
        rng: the random substream tree for this site.
        object_count: embedded objects besides the target page.
        target_size: the target (dynamic HTML) object's size.
        size_collision: when set, this many *confuser* objects are
            planted within ±2 % of the target's size — violating the
            paper's §II uniqueness precondition by construction.
        burst_gap: base inter-request gap within the page's bursts.

    Returns:
        The generated site; the target is requested at a position
        drawn uniformly from the middle of the schedule.
    """
    target = WebObject(
        "/page/result.html",
        target_size,
        "text/html",
        object_id="target",
        think_time_range=(0.060, 0.320),
    )
    objects: List[WebObject] = []
    used_sizes = {target_size}
    stream = rng.stream("sitegen")
    for index in range(object_count):
        content_type, extension, (low, high) = _OBJECT_CLASSES[
            index % len(_OBJECT_CLASSES)
        ]
        # Keep generated sizes comfortably away from the target and from
        # one another, unless collisions are requested.  The separation
        # requirement relaxes as attempts accumulate so dense sites (the
        # exclusion zones can exceed the size range) always terminate.
        separation = 0.06
        size = stream.randint(low, high)
        for attempt in range(200):
            size = stream.randint(low, high)
            if all(abs(size - other) > max(600 * separation / 0.06,
                                           other * separation)
                   for other in used_sizes):
                break
            if attempt % 25 == 24:
                separation /= 2
        used_sizes.add(size)
        objects.append(
            WebObject(
                f"/assets/obj{index:03d}.{extension}",
                size,
                content_type,
                think_time_range=_STATIC_THINK,
            )
        )
    for collision in range(size_collision or 0):
        offset = stream.randint(-int(target_size * 0.02),
                                int(target_size * 0.02))
        objects.append(
            WebObject(
                f"/assets/confuser{collision}.bin",
                max(1, target_size + offset),
                "application/octet-stream",
                think_time_range=_STATIC_THINK,
            )
        )

    website = Website("generated", [target] + objects)

    # Schedule: a pre-flow, then the target, then the embedded burst.
    shuffled = rng.shuffled("schedule-order", objects)
    pre_count = min(4, len(shuffled) // 4)
    requests: List[ScheduledRequest] = []
    for obj in shuffled[:pre_count]:
        requests.append(
            ScheduledRequest(rng.uniform("pre-gap", 0.02, 0.3), obj)
        )
    requests.append(
        ScheduledRequest(rng.uniform("target-gap", 0.3, 0.6), target)
    )
    for obj in shuffled[pre_count:]:
        gap = burst_gap if rng.stream("burstiness").random() < 0.8 else 0.02
        requests.append(ScheduledRequest(gap, obj))
    return GeneratedSite(
        website=website,
        schedule=LoadSchedule(requests),
        target_object_id="target",
    )


def generate_site_from_spec(
    rng: RandomStreams,
    spec: PageSpec,
    burst_gap: float = 0.0008,
) -> GeneratedSite:
    """Materialise a population :class:`~repro.web.workload.PageSpec`.

    The campaign engine's full-simulation mode turns the plain spec
    (body sizes only) into a servable :class:`Website` with the same
    schedule shape as :func:`generate_site`: a short pre-flow, the
    dynamic target, then the embedded burst.  Object sizes come from
    the spec verbatim — the spec *is* the ground truth — while content
    types, ordering and gaps are drawn from ``rng`` exactly like the
    generated-site path.
    """
    target = WebObject(
        "/page/result.html",
        spec.target_size,
        "text/html",
        object_id="target",
        think_time_range=(0.060, 0.320),
    )
    objects: List[WebObject] = []
    for index, size in enumerate(spec.object_sizes):
        content_type, extension, _ = _OBJECT_CLASSES[
            index % len(_OBJECT_CLASSES)
        ]
        objects.append(
            WebObject(
                f"/assets/obj{index:03d}.{extension}",
                size,
                content_type,
                think_time_range=_STATIC_THINK,
            )
        )
    website = Website(f"population-{spec.session}", [target] + objects)
    shuffled = rng.shuffled("schedule-order", objects)
    pre_count = min(4, len(shuffled) // 4)
    requests: List[ScheduledRequest] = []
    for obj in shuffled[:pre_count]:
        requests.append(
            ScheduledRequest(rng.uniform("pre-gap", 0.02, 0.3), obj)
        )
    requests.append(
        ScheduledRequest(rng.uniform("target-gap", 0.3, 0.6), target)
    )
    for obj in shuffled[pre_count:]:
        gap = burst_gap if rng.stream("burstiness").random() < 0.8 else 0.02
        requests.append(ScheduledRequest(gap, obj))
    return GeneratedSite(
        website=website,
        schedule=LoadSchedule(requests),
        target_object_id="target",
    )
