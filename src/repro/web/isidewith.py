"""The isidewith.com replica — the paper's target website.

The paper attacks the '2020 Presidential Quiz' result page:

* the result **HTML** (≈9500 bytes, dynamically generated — the 6th
  object the client downloads and the first object of interest),
* **47 embedded objects** (JavaScript, stylesheets, fonts, images),
  among them the **8 political-party emblem images** (5–16 KB, each a
  distinct size) that a JavaScript requests back-to-back **in the
  user's preference order** — the sequence the adversary wants.

Inter-request gaps follow Table II of the paper: 500 ms before the
HTML, 160 ms to the next request, 780 ms before the first image, then
sub-millisecond gaps between the images (0.4, 2, 0.3, 0.1, 0.3, 2,
0.5 ms) and 26 ms to the request after the last image.

The adversary's prior knowledge — the image-size → party map and the
position of each object of interest in the request sequence — comes
from :meth:`IsideWithSite.size_map` / :meth:`IsideWithSite.schedule`,
matching the paper's assumption 5 (§III).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.web.objects import WebObject
from repro.web.site import LoadSchedule, ScheduledRequest, Website

#: The 8 political parties of the 2020 survey.
PARTIES: Tuple[str, ...] = (
    "democratic",
    "republican",
    "libertarian",
    "green",
    "constitution",
    "transhumanist",
    "socialist",
    "american-solidarity",
)

#: Emblem image sizes in bytes: 5 KB – 16 KB, each distinct (the paper's
#: precondition for a unique size→identity map).
PARTY_IMAGE_SIZES: Dict[str, int] = {
    "democratic": 5200,
    "republican": 6700,
    "libertarian": 8100,
    "green": 9900,
    "constitution": 11400,
    "transhumanist": 12800,
    "socialist": 14300,
    "american-solidarity": 15800,
}

#: The dynamically generated result page.
RESULT_HTML_BYTES = 9500

#: Object id of the result HTML (the paper's first object of interest).
HTML_OBJECT_ID = "result-html"

#: Table II inter-request gaps (seconds).
GAP_BEFORE_HTML = 0.500
GAP_AFTER_HTML = 0.160
GAP_BEFORE_FIRST_IMAGE = 0.780
IMAGE_GAPS = (0.0004, 0.002, 0.0003, 0.0001, 0.0003, 0.002, 0.0005)
GAP_AFTER_LAST_IMAGE = 0.026

#: Server processing (think) time ranges, seconds.
DYNAMIC_THINK = (0.060, 0.320)  # the survey-result HTML is generated
API_THINK = (0.040, 0.250)      # api/analytics endpoints
STATIC_THINK = (0.0005, 0.004)  # files off disk / cache


@dataclass
class IsideWithSite:
    """One concrete result-page load: site content plus schedule.

    Attributes:
        website: all servable objects.
        schedule: the browser's request sequence for this load.
        party_order: ground-truth preference order (the survey answer
            the adversary tries to recover).
        html_index: 0-based schedule position of the result HTML
            (position 5 → the 6th request, as in the paper).
        image_indices: schedule positions of the 8 emblem images.
    """

    website: Website
    schedule: LoadSchedule
    party_order: Tuple[str, ...]
    html_index: int
    image_indices: Tuple[int, ...]

    @property
    def objects_of_interest(self) -> List[str]:
        """Object ids of the 9 targets: HTML first, then the 8 images."""
        return [HTML_OBJECT_ID] + [f"emblem-{p}" for p in self.party_order]

    def size_map(self) -> Dict[str, int]:
        """The adversary's pre-compiled object-size map."""
        return self.website.size_map()


def _static_assets() -> List[WebObject]:
    """The embedded objects besides the 8 emblems (39 of the 47)."""
    assets: List[WebObject] = []

    def add(path: str, size: int, ctype: str) -> None:
        assets.append(
            WebObject(path, size, ctype, think_time_range=STATIC_THINK)
        )

    # Stylesheets.
    add("/css/main.css", 48200, "text/css")
    add("/css/results.css", 12400, "text/css")
    add("/css/vendor.css", 31800, "text/css")
    add("/css/print.css", 2100, "text/css")
    add("/css/icons.css", 5400, "text/css")
    add("/css/mobile.css", 7700, "text/css")
    # Scripts (the results.js is the one that fetches the emblems).
    add("/js/jquery.min.js", 87500, "application/javascript")
    add("/js/app.js", 64100, "application/javascript")
    add("/js/results.js", 23800, "application/javascript")
    add("/js/charts.js", 41300, "application/javascript")
    add("/js/analytics.js", 17900, "application/javascript")
    add("/js/share.js", 9100, "application/javascript")
    add("/js/polyfill.js", 28400, "application/javascript")
    add("/js/consent.js", 6300, "application/javascript")
    add("/js/ads.js", 33600, "application/javascript")
    add("/js/lazyload.js", 4800, "application/javascript")
    add("/js/i18n.js", 11600, "application/javascript")
    add("/js/session.js", 3400, "application/javascript")
    # Fonts.
    add("/fonts/opensans.woff2", 36200, "font/woff2")
    add("/fonts/opensans-bold.woff2", 37100, "font/woff2")
    add("/fonts/icons.woff2", 21500, "font/woff2")
    # Images and icons.
    add("/img/logo.png", 14900, "image/png")
    add("/img/header-bg.jpg", 78300, "image/jpeg")
    add("/img/quiz-banner.jpg", 54700, "image/jpeg")
    add("/img/usa-map.svg", 26800, "image/svg+xml")
    add("/img/share-fb.png", 3100, "image/png")
    add("/img/share-tw.png", 2900, "image/png")
    add("/img/arrow.svg", 1200, "image/svg+xml")
    add("/img/check.svg", 1100, "image/svg+xml")
    add("/img/spinner.gif", 8600, "image/gif")
    add("/img/avatar-default.png", 4400, "image/png")
    add("/img/footer-bg.png", 19700, "image/png")
    add("/img/badge-2020.png", 7300, "image/png")
    add("/img/chart-bg.png", 5900, "image/png")
    add("/img/donate.png", 6100, "image/png")
    add("/favicon.ico", 5566, "image/x-icon")
    # Pre-result flow (api calls and the quiz page assets fetched on the
    # same connection before the result HTML — requests 1..5).
    assets.append(
        WebObject("/api/session", 1800, "application/json",
                  think_time_range=API_THINK)
    )
    assets.append(
        WebObject("/api/submit", 2600, "application/json",
                  think_time_range=API_THINK)
    )
    assets.append(
        WebObject("/api/regions", 21300, "application/json",
                  think_time_range=API_THINK)
    )
    assets.append(
        WebObject("/js/quiz.js", 52400, "application/javascript",
                  think_time_range=STATIC_THINK)
    )
    return assets


def build_isidewith_site(
    party_order: Sequence[str],
    gap_noise: float = 0.0,
    rng=None,
) -> IsideWithSite:
    """Build the site and the load schedule for one survey result.

    Args:
        party_order: the 8 parties in the user's preference order.
        gap_noise: relative jitter applied to every scheduled gap
            (uniform in ``[1 - gap_noise, 1 + gap_noise]``); models the
            browser-side timing variance across the paper's 100
            downloads per configuration.
        rng: a :class:`~repro.simkernel.randomstream.RandomStreams`
            when ``gap_noise`` is non-zero.

    Returns:
        The assembled :class:`IsideWithSite`.

    Raises:
        ValueError: if ``party_order`` is not a permutation of
            :data:`PARTIES`.
    """
    if sorted(party_order) != sorted(PARTIES):
        raise ValueError("party_order must be a permutation of PARTIES")
    if gap_noise and rng is None:
        raise ValueError("gap_noise requires an rng")

    html = WebObject(
        "/polls/2020-presidential-quiz/results",
        RESULT_HTML_BYTES,
        "text/html",
        object_id=HTML_OBJECT_ID,
        think_time_range=DYNAMIC_THINK,
    )
    emblems = [
        WebObject(
            f"/img/parties/{party}.png",
            PARTY_IMAGE_SIZES[party],
            "image/png",
            object_id=f"emblem-{party}",
            think_time_range=STATIC_THINK,
        )
        for party in PARTIES
    ]
    assets = _static_assets()
    website = Website("isidewith.com", [html] + emblems + assets)

    by_path = {obj.path: obj for obj in assets}

    def noisy(gap: float) -> float:
        if not gap_noise:
            return gap
        return gap * rng.uniform("browser.gap_noise", 1 - gap_noise, 1 + gap_noise)

    requests: List[ScheduledRequest] = []

    def req(obj: WebObject, gap: float, script_triggered: bool = False) -> None:
        requests.append(
            ScheduledRequest(noisy(gap), obj, script_triggered=script_triggered)
        )

    # Requests 1..5: the pre-result flow on the same connection.
    req(by_path["/api/session"], 0.010)
    req(by_path["/js/quiz.js"], 0.045)
    req(by_path["/api/regions"], 0.120)
    req(by_path["/favicon.ico"], 0.080)
    req(by_path["/api/submit"], 0.300)
    # Request 6: the result HTML — the paper's first object of interest.
    html_index = len(requests)
    req(html, GAP_BEFORE_HTML)
    # The embedded objects the HTML references, in bursts.
    mid_paths = [
        "/css/main.css", "/css/vendor.css", "/css/results.css",
        "/js/jquery.min.js", "/js/app.js", "/js/results.js",
        "/css/icons.css", "/css/mobile.css", "/css/print.css",
        "/js/charts.js", "/js/polyfill.js", "/js/i18n.js",
        "/fonts/opensans.woff2", "/fonts/icons.woff2",
        "/img/logo.png", "/img/header-bg.jpg", "/img/usa-map.svg",
        "/js/analytics.js", "/js/session.js", "/js/consent.js",
        "/img/quiz-banner.jpg", "/img/chart-bg.png",
    ]
    first_mid_gap = GAP_AFTER_HTML
    for index, path in enumerate(mid_paths):
        gap = first_mid_gap if index == 0 else (0.0008 if index % 4 else 0.018)
        req(by_path[path], gap)
    # The 8 party emblems, in the user's preference order (results.js).
    image_indices: List[int] = []
    emblem_by_party = {obj.object_id: obj for obj in emblems}
    for position, party in enumerate(party_order):
        gap = (
            GAP_BEFORE_FIRST_IMAGE if position == 0 else IMAGE_GAPS[position - 1]
        )
        image_indices.append(len(requests))
        req(emblem_by_party[f"emblem-{party}"], gap, script_triggered=True)
    # Trailing objects after the emblems.
    tail_paths = [
        "/img/share-fb.png", "/img/share-tw.png", "/img/arrow.svg",
        "/img/check.svg", "/img/avatar-default.png", "/img/spinner.gif",
        "/img/footer-bg.png", "/img/badge-2020.png", "/img/donate.png",
        "/fonts/opensans-bold.woff2", "/js/share.js", "/js/ads.js",
        "/js/lazyload.js",
    ]
    for index, path in enumerate(tail_paths):
        gap = GAP_AFTER_LAST_IMAGE if index == 0 else 0.0015
        req(by_path[path], gap)

    schedule = LoadSchedule(requests)
    return IsideWithSite(
        website=website,
        schedule=schedule,
        party_order=tuple(party_order),
        html_index=html_index,
        image_indices=tuple(image_indices),
    )
