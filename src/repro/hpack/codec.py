"""HPACK encoder/decoder pair (size-exact, byteless).

The encoder makes the same representation decisions a real HPACK
encoder makes — indexed field, literal with incremental indexing,
name-indexed literal — and reports the exact octet count each header
block would occupy, while keeping encoder and decoder dynamic tables in
sync.  Instead of bytes, a header block is represented by a list of
symbolic instructions, which the paired decoder replays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.hpack.huffman import string_literal_length
from repro.hpack.table import DynamicTable, HeaderField


def prefix_integer_length(value: int, prefix_bits: int) -> int:
    """Octets of an N-bit-prefix HPACK integer (RFC 7541 §5.1)."""
    if value < 0:
        raise ValueError("HPACK integers are non-negative")
    if not (1 <= prefix_bits <= 8):
        raise ValueError("prefix must be 1..8 bits")
    limit = (1 << prefix_bits) - 1
    if value < limit:
        return 1
    value -= limit
    octets = 1
    while value >= 128:
        value >>= 7
        octets += 1
    return octets + 1


@dataclass(frozen=True)
class _Instruction:
    """One symbolic header-block instruction."""

    kind: str  # "indexed" | "literal_indexed" | "literal"
    index: int  # table index (full or name match); 0 = literal name
    field: HeaderField
    octets: int


@dataclass(frozen=True)
class HeaderBlock:
    """An encoded header block: instructions plus total size."""

    instructions: Tuple[_Instruction, ...]
    encoded_length: int


class HpackEncoder:
    """Stateful HPACK encoder (dynamic table included)."""

    def __init__(self, max_table_size: int = 4096) -> None:
        self._table = DynamicTable(max_table_size)

    @property
    def table(self) -> DynamicTable:
        return self._table

    def encode(self, headers: Iterable[Tuple[str, str]]) -> HeaderBlock:
        """Encode a header list, updating the dynamic table.

        Returns a :class:`HeaderBlock` whose ``encoded_length`` is the
        exact octet count of the block a real encoder would emit.
        """
        instructions: List[_Instruction] = []
        total = 0
        for name, value in headers:
            field = HeaderField(name, value)
            instruction = self._encode_field(field)
            instructions.append(instruction)
            total += instruction.octets
        return HeaderBlock(tuple(instructions), total)

    def _encode_field(self, field: HeaderField) -> _Instruction:
        full_index, name_index = self._table.lookup(field)
        if full_index is not None:
            # Indexed header field: 7-bit prefix index.
            octets = prefix_integer_length(full_index, 7)
            return _Instruction("indexed", full_index, field, octets)
        # Literal with incremental indexing: 6-bit prefix name index
        # (0 when the name is literal too), then value literal.
        if name_index is not None:
            octets = prefix_integer_length(name_index, 6)
        else:
            octets = 1 + string_literal_length(field.name)
        octets += string_literal_length(field.value)
        self._table.insert(field)
        return _Instruction(
            "literal_indexed", name_index or 0, field, octets
        )


class HpackDecoder:
    """Stateful decoder replaying an encoder's symbolic instructions."""

    def __init__(self, max_table_size: int = 4096) -> None:
        self._table = DynamicTable(max_table_size)

    @property
    def table(self) -> DynamicTable:
        return self._table

    def decode(self, block: HeaderBlock) -> List[Tuple[str, str]]:
        """Decode a header block, updating the dynamic table.

        Raises:
            IndexError: when an indexed instruction references an entry
                the decoder's table does not have (desync).
        """
        headers: List[Tuple[str, str]] = []
        for instruction in block.instructions:
            if instruction.kind == "indexed":
                entry = self._table.entry_at(instruction.index)
                headers.append((entry.name, entry.value))
            elif instruction.kind == "literal_indexed":
                field = instruction.field
                if instruction.index:
                    name = self._table.entry_at(instruction.index).name
                    if name != field.name:
                        raise IndexError(
                            f"decoder desync: index {instruction.index} is "
                            f"{name!r}, expected {field.name!r}"
                        )
                headers.append((field.name, field.value))
                self._table.insert(field)
            else:
                headers.append((instruction.field.name, instruction.field.value))
        return headers
