"""HPACK header compression (RFC 7541), as an exact *size* model.

HTTP/2 headers travel HPACK-compressed; the adversary never reads them,
but their compressed size contributes to the HEADERS frames the
estimator sees on the wire, so request and response header sizes must
be realistic.  This package implements the full static table, a dynamic
table with correct size accounting, prefix-integer sizing and the real
Huffman code lengths from RFC 7541 Appendix B — everything needed to
compute the exact octet count an HPACK encoder would emit, without
materializing the bytes.
"""

from repro.hpack.codec import HpackDecoder, HpackEncoder
from repro.hpack.huffman import huffman_encoded_length
from repro.hpack.table import DynamicTable, HeaderField, STATIC_TABLE

__all__ = [
    "DynamicTable",
    "HeaderField",
    "HpackDecoder",
    "HpackEncoder",
    "STATIC_TABLE",
    "huffman_encoded_length",
]
