"""Huffman string sizing (RFC 7541 Appendix B).

HPACK string literals may be Huffman coded; encoders use the coding
whenever it shrinks the string.  We only ever need the encoded *length*,
which is fully determined by the per-symbol code lengths below.
"""

from __future__ import annotations

from functools import lru_cache

# Code length in bits for each ASCII symbol (RFC 7541 App. B).  The
# printable range is listed first; the handful of control characters
# whose codes are not 28 bits follow, so lengths are exact for all of
# ASCII (the ``repro verify`` conformance vectors check the printable
# range against the RFC's Appendix C examples).
_PRINTABLE_CODE_BITS = {
    " ": 6, "!": 10, '"': 10, "#": 12, "$": 13, "%": 6, "&": 8, "'": 11,
    "(": 10, ")": 10, "*": 8, "+": 11, ",": 8, "-": 6, ".": 6, "/": 6,
    "0": 5, "1": 5, "2": 5, "3": 6, "4": 6, "5": 6, "6": 6, "7": 6,
    "8": 6, "9": 6, ":": 7, ";": 8, "<": 15, "=": 6, ">": 12, "?": 10,
    "@": 13, "A": 6, "B": 7, "C": 7, "D": 7, "E": 7, "F": 7, "G": 7,
    "H": 7, "I": 7, "J": 7, "K": 7, "L": 7, "M": 7, "N": 7, "O": 7,
    "P": 7, "Q": 7, "R": 7, "S": 7, "T": 7, "U": 7, "V": 7, "W": 7,
    "X": 8, "Y": 7, "Z": 8, "[": 13, "\\": 19, "]": 13, "^": 14, "_": 6,
    "`": 15, "a": 5, "b": 6, "c": 5, "d": 6, "e": 5, "f": 6, "g": 6,
    "h": 6, "i": 5, "j": 7, "k": 7, "l": 6, "m": 6, "n": 6, "o": 5,
    "p": 6, "q": 7, "r": 6, "s": 5, "t": 5, "u": 6, "v": 7, "w": 7,
    "x": 7, "y": 7, "z": 7, "{": 15, "|": 11, "}": 14, "~": 13,
    # Control characters whose RFC code length is not 28 bits; every
    # other ASCII control character (including DEL) is exactly 28.
    "\x00": 13, "\x01": 23, "\t": 24, "\n": 30, "\r": 30, "\x16": 30,
}

#: Bits used for symbols outside the ASCII range (RFC codes there run
#: 20–30 bits; 28 is a representative midpoint of the common ones) and
#: for the ASCII control characters, where 28 is exact (see above).
_NON_PRINTABLE_CODE_BITS = 28


def symbol_code_bits(char: str) -> int:
    """Huffman code length in bits for one character."""
    if len(char) != 1:
        raise ValueError("expected a single character")
    return _PRINTABLE_CODE_BITS.get(char, _NON_PRINTABLE_CODE_BITS)


def huffman_encoded_length(text: str) -> int:
    """Octets the Huffman coding of ``text`` occupies (EOS-padded).

    Deliberately *not* memoized: the only hot caller is
    :func:`string_literal_length`, whose own ``lru_cache`` already
    short-circuits repeated strings — so a cache here can never hit
    (``BENCH_hotpath.json`` recorded 0 hits over 117 misses before it
    was removed).  The dict lookup is inlined rather than routed
    through :func:`symbol_code_bits`, which would re-validate the
    single-char invariant for every character of every string.
    """
    get = _PRINTABLE_CODE_BITS.get
    default = _NON_PRINTABLE_CODE_BITS
    bits = 0
    for char in text:
        bits += get(char, default)
    return (bits + 7) // 8


@lru_cache(maxsize=4096)
def string_literal_length(text: str) -> int:
    """Octets an HPACK encoder emits for ``text`` as a string literal.

    The encoder picks Huffman coding when it is shorter than the raw
    octets; either way a length prefix (7-bit prefix integer) precedes
    the data.
    """
    from repro.hpack.codec import prefix_integer_length

    raw = len(text)
    huffman = huffman_encoded_length(text)
    body = min(raw, huffman)
    return prefix_integer_length(body, 7) + body
