"""HPACK indexing tables (RFC 7541 §2.3).

The static table is the fixed 61-entry list from Appendix A.  The
dynamic table is a FIFO with the RFC's size accounting: each entry
costs ``len(name) + len(value) + 32`` octets against the negotiated
``SETTINGS_HEADER_TABLE_SIZE``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple


@dataclass(frozen=True)
class HeaderField:
    """One header name/value pair."""

    name: str
    value: str = ""

    @property
    def table_size(self) -> int:
        """RFC 7541 §4.1 entry size."""
        return len(self.name) + len(self.value) + 32


#: RFC 7541 Appendix A, in order (index 1 .. 61).
STATIC_TABLE: Tuple[HeaderField, ...] = (
    HeaderField(":authority"),
    HeaderField(":method", "GET"),
    HeaderField(":method", "POST"),
    HeaderField(":path", "/"),
    HeaderField(":path", "/index.html"),
    HeaderField(":scheme", "http"),
    HeaderField(":scheme", "https"),
    HeaderField(":status", "200"),
    HeaderField(":status", "204"),
    HeaderField(":status", "206"),
    HeaderField(":status", "304"),
    HeaderField(":status", "400"),
    HeaderField(":status", "404"),
    HeaderField(":status", "500"),
    HeaderField("accept-charset"),
    HeaderField("accept-encoding", "gzip, deflate"),
    HeaderField("accept-language"),
    HeaderField("accept-ranges"),
    HeaderField("accept"),
    HeaderField("access-control-allow-origin"),
    HeaderField("age"),
    HeaderField("allow"),
    HeaderField("authorization"),
    HeaderField("cache-control"),
    HeaderField("content-disposition"),
    HeaderField("content-encoding"),
    HeaderField("content-language"),
    HeaderField("content-length"),
    HeaderField("content-location"),
    HeaderField("content-range"),
    HeaderField("content-type"),
    HeaderField("cookie"),
    HeaderField("date"),
    HeaderField("etag"),
    HeaderField("expect"),
    HeaderField("expires"),
    HeaderField("from"),
    HeaderField("host"),
    HeaderField("if-match"),
    HeaderField("if-modified-since"),
    HeaderField("if-none-match"),
    HeaderField("if-range"),
    HeaderField("if-unmodified-since"),
    HeaderField("last-modified"),
    HeaderField("link"),
    HeaderField("location"),
    HeaderField("max-forwards"),
    HeaderField("proxy-authenticate"),
    HeaderField("proxy-authorization"),
    HeaderField("range"),
    HeaderField("referer"),
    HeaderField("refresh"),
    HeaderField("retry-after"),
    HeaderField("server"),
    HeaderField("set-cookie"),
    HeaderField("strict-transport-security"),
    HeaderField("transfer-encoding"),
    HeaderField("user-agent"),
    HeaderField("vary"),
    HeaderField("via"),
    HeaderField("www-authenticate"),
)


class DynamicTable:
    """The HPACK dynamic table: FIFO eviction, size-bounded."""

    def __init__(self, max_size: int = 4096) -> None:
        if max_size < 0:
            raise ValueError("max size must be non-negative")
        self._entries: Deque[HeaderField] = deque()
        self._size = 0
        self._max_size = max_size

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def size(self) -> int:
        """Current occupancy in RFC accounting octets."""
        return self._size

    @property
    def max_size(self) -> int:
        return self._max_size

    def resize(self, max_size: int) -> None:
        """Apply a table-size update, evicting as needed."""
        if max_size < 0:
            raise ValueError("max size must be non-negative")
        self._max_size = max_size
        self._evict()

    def insert(self, field: HeaderField) -> None:
        """Insert at index 1 (the newest position), evicting old entries.

        An entry larger than the whole table empties the table and is
        itself not inserted (RFC 7541 §4.4).
        """
        if field.table_size > self._max_size:
            self._entries.clear()
            self._size = 0
            return
        self._entries.appendleft(field)
        self._size += field.table_size
        self._evict()

    def _evict(self) -> None:
        while self._size > self._max_size:
            evicted = self._entries.pop()
            self._size -= evicted.table_size

    def lookup(self, field: HeaderField) -> Tuple[Optional[int], Optional[int]]:
        """Find ``field`` across static + dynamic tables.

        Returns:
            ``(full_index, name_index)``: the 1-based index of an exact
            name+value match (or None), and the index of a name-only
            match (or None).  Dynamic indices start at 62.
        """
        name_index: Optional[int] = None
        for index, entry in enumerate(STATIC_TABLE, start=1):
            if entry.name == field.name:
                if entry.value == field.value:
                    return index, index
                if name_index is None:
                    name_index = index
        offset = len(STATIC_TABLE) + 1
        for index, entry in enumerate(self._entries):
            if entry.name == field.name:
                if entry.value == field.value:
                    return offset + index, offset + index
                if name_index is None:
                    name_index = offset + index
        return None, name_index

    def entry_at(self, index: int) -> HeaderField:
        """Resolve a 1-based HPACK index to its header field.

        Raises:
            IndexError: for indices outside both tables.
        """
        if index < 1:
            raise IndexError(f"invalid HPACK index {index}")
        if index <= len(STATIC_TABLE):
            return STATIC_TABLE[index - 1]
        dynamic_index = index - len(STATIC_TABLE) - 1
        if dynamic_index >= len(self._entries):
            raise IndexError(f"HPACK index {index} beyond dynamic table")
        return self._entries[dynamic_index]
