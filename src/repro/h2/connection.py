"""The HTTP/2 connection: framing, streams, flow control, write pump.

One :class:`H2Connection` sits on a :class:`~repro.tls.session.TLSSession`
and owns:

* the connection preface and SETTINGS exchange,
* HPACK encoder/decoder state for each direction,
* the stream table and per-stream/connection flow-control windows,
* a pluggable :class:`~repro.h2.mux.MuxScheduler` whose drain order *is*
  the multiplexing the paper studies, and
* a write pump coupled to TCP send-buffer occupancy, so scheduler
  decisions happen continuously as the transport drains rather than all
  at once (this coupling is what lets concurrently served objects
  interleave on the wire).

Role-specific application behaviour (spawning response workers, issuing
requests) lives in :mod:`repro.h2.server` and :mod:`repro.h2.client`.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.h2.errors import H2Error, H2ErrorCode, StreamError
from repro.h2.flowcontrol import FlowControlWindow
from repro.h2.frames import (
    DataFrame,
    Frame,
    GoAwayFrame,
    HeadersFrame,
    PingFrame,
    PriorityFrame,
    PushPromiseFrame,
    RstStreamFrame,
    SettingsFrame,
    WindowUpdateFrame,
)
from repro.h2.mux import MuxScheduler, RoundRobinScheduler
from repro.h2.settings import H2Settings
from repro.h2.stream import H2Stream, StreamState
from repro.hpack.codec import HpackDecoder, HpackEncoder
from repro.simkernel.trace import TraceLog
from repro.tls.session import TLSSession

#: The RFC 7540 §3.5 client connection preface (24 octets of plaintext).
CONNECTION_PREFACE_BYTES = 24

#: Default initial connection-level flow-control window (RFC 7540 §6.9.2).
DEFAULT_CONNECTION_WINDOW = 65535


class H2Role(enum.Enum):
    CLIENT = "client"
    SERVER = "server"


class _Preface:
    """The 24-octet client magic, as an opaque TLS payload."""

    wire_length = CONNECTION_PREFACE_BYTES

    def __repr__(self) -> str:
        return "_Preface()"


class H2Connection:
    """One endpoint of an HTTP/2 connection.

    Callbacks (wired by the server/client layers):
        on_headers(stream_id, headers, end_stream, duplicate)
        on_data(stream_id, data_bytes, end_stream, frame)
        on_rst_stream(stream_id, code)
        on_settings(settings_dict)
        on_goaway(last_stream_id, code)
        on_ready(): preface/settings exchanged; requests may flow.
    """

    def __init__(
        self,
        session: TLSSession,
        role: H2Role,
        settings: Optional[H2Settings] = None,
        scheduler: Optional[MuxScheduler] = None,
        trace: Optional[TraceLog] = None,
        send_buffer_limit: int = 64 * 1024,
        ignore_closed_stream_data: bool = True,
        name: str = "",
    ) -> None:
        self._session = session
        self.role = role
        self.settings = settings or H2Settings()
        self.peer_settings = H2Settings()
        self.scheduler = scheduler or RoundRobinScheduler()
        self._trace = trace
        self.send_buffer_limit = send_buffer_limit
        self.ignore_closed_stream_data = ignore_closed_stream_data
        self.name = name or role.value

        self.streams: Dict[int, H2Stream] = {}
        self._next_stream_id = 1 if role is H2Role.CLIENT else 2
        self.connection_send_window = FlowControlWindow(DEFAULT_CONNECTION_WINDOW)
        self.connection_recv_window = FlowControlWindow(DEFAULT_CONNECTION_WINDOW)
        self._recv_window_initial = DEFAULT_CONNECTION_WINDOW

        self.encoder = HpackEncoder(self.peer_settings.header_table_size)
        self.decoder = HpackDecoder(self.settings.header_table_size)

        self.ready = False
        self.goaway_received = False
        self.frames_sent = 0
        self.frames_received = 0
        self.ignored_closed_stream_frames = 0

        # Application callbacks.
        self.on_headers: Optional[
            Callable[[int, Tuple[Tuple[str, str], ...], bool, bool], None]
        ] = None
        self.on_data: Optional[Callable[[int, int, bool, DataFrame], None]] = None
        self.on_rst_stream: Optional[Callable[[int, H2ErrorCode], None]] = None
        self.on_settings: Optional[Callable[[Dict[int, int]], None]] = None
        self.on_goaway: Optional[Callable[[int, H2ErrorCode], None]] = None
        self.on_ready: Optional[Callable[[], None]] = None
        self.on_push_promise: Optional[
            Callable[[int, int, Tuple[Tuple[str, str], ...]], None]
        ] = None

        session.on_application_record = self._on_record
        previous_complete = session.on_handshake_complete
        def handshake_done() -> None:
            if previous_complete:
                previous_complete()
            self._start()
        session.on_handshake_complete = handshake_done
        session.connection.on_writable = self.pump

    @property
    def session(self) -> TLSSession:
        return self._session

    @property
    def sim(self):
        return self._session.connection.sim

    # ------------------------------------------------------------------
    # Startup
    # ------------------------------------------------------------------

    def _start(self) -> None:
        if self.role is H2Role.CLIENT:
            self._session.send_application(_Preface(), CONNECTION_PREFACE_BYTES)
        diff = self.settings.changed_from(H2Settings())
        self._write_control(SettingsFrame(settings=diff))
        # Endpoints may transmit immediately after their own preface
        # (RFC 7540 §3.5); readiness does not wait for the peer.
        self.ready = True
        if self.on_ready:
            self.on_ready()
        self.pump()

    # ------------------------------------------------------------------
    # Sending (application plane)
    # ------------------------------------------------------------------

    def next_stream_id(self) -> int:
        """Allocate the next locally initiated stream id."""
        stream_id = self._next_stream_id
        self._next_stream_id += 2
        return stream_id

    def send_headers(
        self,
        stream_id: int,
        headers: List[Tuple[str, str]],
        end_stream: bool = False,
        priority_weight: Optional[int] = None,
        priority_depends_on: int = 0,
        context: Any = None,
    ) -> HeadersFrame:
        """Queue a HEADERS frame on ``stream_id``.

        The HPACK block is encoded at *write* time (in
        :meth:`_commit_frame_state`), not here: a queued frame may still
        be flushed by RST_STREAM, and encoding it early would desync the
        connection-level HPACK tables.
        """
        frame = HeadersFrame(
            stream_id=stream_id,
            headers=tuple(headers),
            block=None,
            end_stream=end_stream,
            priority_weight=priority_weight,
            priority_depends_on=priority_depends_on,
            context=context,
        )
        self.scheduler.enqueue(stream_id, frame)
        self.pump()
        return frame

    def send_data(
        self,
        stream_id: int,
        data_bytes: int,
        end_stream: bool = False,
        context: Any = None,
        padding: int = 0,
    ) -> DataFrame:
        """Queue a DATA frame (``data_bytes`` payload octets)."""
        if data_bytes > self.peer_settings.max_frame_size:
            raise H2Error(
                H2ErrorCode.FRAME_SIZE_ERROR,
                f"{data_bytes} exceeds peer max frame size",
            )
        frame = DataFrame(
            stream_id=stream_id,
            data_bytes=data_bytes,
            end_stream=end_stream,
            context=context,
            padding=padding,
        )
        self.scheduler.enqueue(stream_id, frame)
        self.pump()
        return frame

    def send_push_promise(
        self,
        parent_stream_id: int,
        headers: List[Tuple[str, str]],
        context: Any = None,
    ) -> int:
        """Promise a server push on ``parent_stream_id``.

        Allocates and returns the promised (even) stream id.  The
        PUSH_PROMISE rides the parent stream's queue; the pushed
        response is then sent on the promised stream with
        :meth:`send_headers` / :meth:`send_data`.
        """
        if self.role is not H2Role.SERVER:
            raise H2Error(
                H2ErrorCode.PROTOCOL_ERROR, "only servers push"
            )
        if not self.peer_settings.enable_push:
            raise H2Error(
                H2ErrorCode.PROTOCOL_ERROR, "peer disabled push"
            )
        promised_id = self.next_stream_id()
        frame = PushPromiseFrame(
            stream_id=parent_stream_id,
            promised_stream_id=promised_id,
            headers=tuple(headers),
            block=None,  # encoded at wire-write time, like HEADERS
            context=context,
        )
        self.scheduler.enqueue(parent_stream_id, frame)
        self.pump()
        return promised_id

    def send_rst_stream(
        self, stream_id: int, code: H2ErrorCode = H2ErrorCode.CANCEL
    ) -> None:
        """Abort a stream: flush its queued frames and emit RST_STREAM."""
        self.scheduler.flush_stream(stream_id)
        stream = self.streams.get(stream_id)
        if stream is not None:
            stream.reset(code)
        self._write_control(RstStreamFrame(stream_id=stream_id, error_code=code))
        self._record("h2.rst_stream.sent", stream=stream_id, code=int(code))

    def send_priority(
        self, stream_id: int, depends_on: int = 0, weight: int = 16,
        exclusive: bool = False,
    ) -> None:
        self._write_control(
            PriorityFrame(
                stream_id=stream_id,
                depends_on=depends_on,
                weight=weight,
                exclusive=exclusive,
            )
        )

    def send_ping(self) -> None:
        self._write_control(PingFrame())

    def send_goaway(self, code: H2ErrorCode = H2ErrorCode.NO_ERROR) -> None:
        last = max(
            (sid for sid in self.streams if sid % 2 != self._next_stream_id % 2),
            default=0,
        )
        self._write_control(GoAwayFrame(last_stream_id=last, error_code=code))

    def send_window_update(self, stream_id: int, increment: int) -> None:
        """Grant flow-control credit to the peer."""
        if stream_id == 0:
            self.connection_recv_window.replenish(increment)
        else:
            stream = self.streams.get(stream_id)
            if stream is not None and not stream.closed:
                stream.receive_window.replenish(increment)
        self._write_control(
            WindowUpdateFrame(stream_id=stream_id, increment=increment)
        )

    # ------------------------------------------------------------------
    # Write pump
    # ------------------------------------------------------------------

    def pump(self) -> None:
        """Drain the scheduler into TLS/TCP while buffer space allows."""
        if not self.ready or not self._session.handshake_complete:
            return
        connection = self._session.connection
        while connection.unacked_buffered_bytes < self.send_buffer_limit:
            frame = self.scheduler.next_frame(eligible=self._can_send)
            if frame is None:
                break
            self._commit_frame_state(frame)
            self._write(frame)

    def _can_send(self, frame: Frame) -> bool:
        if not isinstance(frame, DataFrame):
            return True
        if frame.data_bytes > self.connection_send_window.available:
            return False
        stream = self.streams.get(frame.stream_id)
        if (
            stream is not None
            and not stream.closed
            and frame.data_bytes > stream.send_window.available
        ):
            return False
        return True

    def _commit_frame_state(self, frame: Frame) -> None:
        """Apply state transitions (and HPACK encoding) at wire-write
        time, in wire order."""
        if isinstance(frame, PushPromiseFrame):
            if frame.block is None:
                frame.block = self.encoder.encode(list(frame.headers))
            promised = self._stream_for_send(frame.promised_stream_id)
            try:
                promised.reserve_local()
            except StreamError:
                pass
            return
        if isinstance(frame, HeadersFrame):
            if frame.block is None:
                frame.block = self.encoder.encode(frame.headers)
            stream = self._stream_for_send(frame.stream_id)
            if not stream.closed:
                try:
                    stream.send_headers(frame.end_stream)
                except StreamError:
                    # Duplicate serving (the paper's quirk) re-sends
                    # response headers on a finished stream; the wire
                    # does not care, so neither do we.
                    pass
        elif isinstance(frame, DataFrame):
            self.connection_send_window.consume(frame.data_bytes)
            stream = self._stream_for_send(frame.stream_id)
            if not stream.closed:
                try:
                    stream.send_data(frame.data_bytes, frame.end_stream)
                except (StreamError, H2Error):
                    pass
            else:
                stream.data_sent += frame.data_bytes

    def _stream_for_send(self, stream_id: int) -> H2Stream:
        stream = self.streams.get(stream_id)
        if stream is None:
            stream = H2Stream(
                stream_id,
                send_window=self.peer_settings.initial_window_size,
                receive_window=self.settings.initial_window_size,
            )
            self.streams[stream_id] = stream
        return stream

    def _write_control(self, frame: Frame) -> None:
        """Control frames bypass the scheduler (sent immediately)."""
        self._write(frame)

    def _write(self, frame: Frame) -> None:
        self.frames_sent += 1
        self._record(
            "h2.frame.sent",
            frame_type=frame.type_name,
            stream=frame.stream_id,
            wire=frame.wire_length,
        )
        self._session.send_application(frame, frame.wire_length)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------

    def _on_record(self, payload: Any, duplicate: bool) -> None:
        if isinstance(payload, _Preface):
            return
        if not isinstance(payload, Frame):
            raise TypeError(f"unexpected TLS payload: {payload!r}")
        self.frames_received += 1
        self._record(
            "h2.frame.received",
            frame_type=payload.type_name,
            stream=payload.stream_id,
            duplicate=duplicate,
        )
        handler = {
            HeadersFrame: self._recv_headers,
            DataFrame: self._recv_data,
            SettingsFrame: self._recv_settings,
            RstStreamFrame: self._recv_rst,
            WindowUpdateFrame: self._recv_window_update,
            PriorityFrame: self._recv_priority,
            PingFrame: self._recv_ping,
            GoAwayFrame: self._recv_goaway,
            PushPromiseFrame: self._recv_push_promise,
        }.get(type(payload))
        if handler is not None:
            handler(payload, duplicate)

    def _recv_headers(self, frame: HeadersFrame, duplicate: bool) -> None:
        if duplicate:
            # The TCP retransmission quirk: surface the duplicate request
            # without touching protocol state.
            if self.on_headers:
                self.on_headers(frame.stream_id, frame.headers, frame.end_stream, True)
            return
        # HPACK state is connection-level: the block must be decoded even
        # when the stream is closed/reset, or the tables desynchronize.
        if frame.block is not None:
            self.decoder.decode(frame.block)
        stream = self._stream_for_send(frame.stream_id)
        if stream.closed:
            self.ignored_closed_stream_frames += 1
            if not self.ignore_closed_stream_data:
                self.send_rst_stream(frame.stream_id, H2ErrorCode.STREAM_CLOSED)
            return
        try:
            stream.receive_headers(frame.end_stream)
        except StreamError:
            self.ignored_closed_stream_frames += 1
            return
        if self.on_headers:
            self.on_headers(frame.stream_id, frame.headers, frame.end_stream, False)

    def _recv_data(self, frame: DataFrame, duplicate: bool) -> None:
        if duplicate:
            return
        stream = self.streams.get(frame.stream_id)
        if stream is None or stream.state not in (
            StreamState.OPEN,
            StreamState.HALF_CLOSED_LOCAL,
        ):
            # Data for an unknown, closed, or reset stream: a browser
            # tolerates this (late frames racing a RST), so do we.
            self.ignored_closed_stream_frames += 1
            self._consume_connection_credit(frame.data_bytes)
            return
        try:
            stream.receive_data(frame.data_bytes, frame.end_stream)
        except (StreamError, H2Error):
            self.ignored_closed_stream_frames += 1
            return
        self._consume_connection_credit(frame.data_bytes)
        self._replenish_stream_window(stream)
        if self.on_data:
            self.on_data(frame.stream_id, frame.data_bytes, frame.end_stream, frame)

    def _consume_connection_credit(self, data_bytes: int) -> None:
        available = self.connection_recv_window.available
        self.connection_recv_window.consume(min(data_bytes, available))
        if (
            self.connection_recv_window.available
            < self._recv_window_initial // 2
        ):
            deficit = self._recv_window_initial - self.connection_recv_window.available
            self.send_window_update(0, deficit)

    def _replenish_stream_window(self, stream: H2Stream) -> None:
        if stream.closed:
            return
        initial = self.settings.initial_window_size
        if stream.receive_window.available < initial // 2:
            deficit = initial - stream.receive_window.available
            self.send_window_update(stream.stream_id, deficit)

    def _recv_settings(self, frame: SettingsFrame, duplicate: bool) -> None:
        if duplicate or frame.ack:
            return
        self._apply_peer_settings(frame.settings)
        if self.on_settings:
            self.on_settings(frame.settings)
        self._write_control(SettingsFrame(ack=True))
        self.pump()

    def _apply_peer_settings(self, changes: Dict[int, int]) -> None:
        from repro.h2.settings import (
            SETTINGS_ENABLE_PUSH,
            SETTINGS_HEADER_TABLE_SIZE,
            SETTINGS_INITIAL_WINDOW_SIZE,
            SETTINGS_MAX_CONCURRENT_STREAMS,
            SETTINGS_MAX_FRAME_SIZE,
        )

        for setting_id, value in changes.items():
            if setting_id == SETTINGS_ENABLE_PUSH:
                self.peer_settings.enable_push = bool(value)
            elif setting_id == SETTINGS_INITIAL_WINDOW_SIZE:
                delta = value - self.peer_settings.initial_window_size
                self.peer_settings.initial_window_size = value
                for stream in self.streams.values():
                    if not stream.closed:
                        stream.send_window.adjust_initial(delta)
            elif setting_id == SETTINGS_MAX_FRAME_SIZE:
                self.peer_settings.max_frame_size = value
            elif setting_id == SETTINGS_MAX_CONCURRENT_STREAMS:
                self.peer_settings.max_concurrent_streams = value
            elif setting_id == SETTINGS_HEADER_TABLE_SIZE:
                self.peer_settings.header_table_size = value

    def _recv_rst(self, frame: RstStreamFrame, duplicate: bool) -> None:
        if duplicate:
            return
        flushed = self.scheduler.flush_stream(frame.stream_id)
        stream = self.streams.get(frame.stream_id)
        if stream is not None:
            stream.reset(frame.error_code)
        self._record(
            "h2.rst_stream.received",
            stream=frame.stream_id,
            code=int(frame.error_code),
            flushed_frames=flushed,
        )
        if self.on_rst_stream:
            self.on_rst_stream(frame.stream_id, frame.error_code)
        self.pump()

    def _recv_window_update(self, frame: WindowUpdateFrame, duplicate: bool) -> None:
        if duplicate:
            return
        if frame.stream_id == 0:
            self.connection_send_window.replenish(frame.increment)
        else:
            stream = self.streams.get(frame.stream_id)
            if stream is not None and not stream.closed:
                stream.send_window.replenish(frame.increment)
        self.pump()

    def _recv_priority(self, frame: PriorityFrame, duplicate: bool) -> None:
        if duplicate:
            return
        tree = getattr(self.scheduler, "tree", None)
        if tree is not None:
            tree.reprioritize(
                frame.stream_id, frame.depends_on, frame.weight, frame.exclusive
            )

    def _recv_ping(self, frame: PingFrame, duplicate: bool) -> None:
        if duplicate or frame.ack:
            return
        self._write_control(PingFrame(ack=True))

    def _recv_goaway(self, frame: GoAwayFrame, duplicate: bool) -> None:
        if duplicate:
            return
        self.goaway_received = True
        if self.on_goaway:
            self.on_goaway(frame.last_stream_id, frame.error_code)

    def _recv_push_promise(self, frame: PushPromiseFrame, duplicate: bool) -> None:
        if duplicate:
            return
        # HPACK state is connection-level: always decode.
        if frame.block is not None:
            self.decoder.decode(frame.block)
        promised = self._stream_for_send(frame.promised_stream_id)
        try:
            promised.reserve_remote()
        except StreamError:
            return
        if self.on_push_promise:
            self.on_push_promise(
                frame.stream_id, frame.promised_stream_id, frame.headers
            )

    def _record(self, category: str, **fields: Any) -> None:
        if self._trace is not None:
            self._trace.record(self.sim.now, category, conn=self.name, **fields)

    def __repr__(self) -> str:
        return (
            f"H2Connection({self.name!r}, streams={len(self.streams)}, "
            f"pending={self.scheduler.pending_frames})"
        )
