"""The multi-threaded HTTP/2 server model.

Every GET request spawns a *worker* (the paper's "server thread",
Figure 3) that, after a small processing delay, emits the response
HEADERS and then produces DATA chunks at a bounded rate into the
connection's multiplexing scheduler.  When several workers are active
at once their chunks interleave on the single TCP stream — the
multiplexing the paper attacks.

Two paper-critical behaviours:

* ``serve_duplicate_requests`` (default True): a GET delivered again by
  a retransmitted TCP segment spawns a *new* worker serving a fresh
  copy of the object (Section IV-B's "intensified multiplexing").
* On RST_STREAM the connection flushes the stream's queued frames and
  the server cancels its workers — the queue-flush the targeted-drop
  phase of the attack relies on (Section IV-D).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.h2.connection import H2Connection, H2Role
from repro.h2.errors import H2ErrorCode
from repro.h2.mux import MuxScheduler, RoundRobinScheduler
from repro.h2.settings import H2Settings, default_server_settings
from repro.netsim.node import Host
from repro.simkernel.randomstream import RandomStreams
from repro.simkernel.simulator import Simulator
from repro.simkernel.trace import TraceLog
from repro.tcp.config import TCPConfig
from repro.tls.session import TLSRole, TLSSession
from repro.transport import get_transport
from repro.transport.base import Transport

_instance_ids = itertools.count(1)


@dataclass
class ResourceSpec:
    """A servable resource: what the router returns for a path.

    ``think_time_range`` overrides the server's default processing
    delay: dynamically generated content (the survey-result HTML) takes
    far longer — and more variably — than static assets, which is one
    source of the natural multiplexing variance the paper observes.
    """

    path: str
    body_bytes: int
    content_type: str = "text/html"
    status: int = 200
    object_id: Optional[str] = None
    think_time_range: Optional[Tuple[float, float]] = None

    def __post_init__(self) -> None:
        if self.body_bytes <= 0:
            raise ValueError("resources must have a positive body size")
        if self.object_id is None:
            self.object_id = self.path
        if self.think_time_range is not None:
            low, high = self.think_time_range
            if low < 0 or high < low:
                raise ValueError("invalid think time range")


#: The router maps a request path to a resource (None = 404).
Router = Callable[[str], Optional[ResourceSpec]]


@dataclass
class ServerConfig:
    """Server behaviour knobs.

    Attributes:
        think_time: processing delay between receiving a GET and
            emitting response HEADERS.
        chunk_bytes: DATA frame payload produced per worker step; this
            is the interleaving granularity.
        chunk_interval: simulated time between a worker's chunk
            productions (filesystem/CPU pacing).
        serve_duplicate_requests: the paper's quirk (see module doc).
        send_buffer_limit: TCP send-buffer bytes the connection may keep
            unacknowledged before the write pump pauses.
        pad_block: per-record padding defense — every TLS application
            record's plaintext is padded to this block boundary
            (0 disables; see :mod:`repro.infer.defenses`).
        chaff_records / chaff_plaintext / chaff_interval: after each
            completed response, emit this many dummy TLS records of
            this plaintext size, spaced by this interval (0 disables).
        pipeline_responses: serialize response emission — a response's
            HEADERS wait until every earlier response on the connection
            has finished, trading multiplexing (the leak) for latency.
    """

    think_time: float = 0.001
    chunk_bytes: int = 2048
    chunk_interval: float = 0.0004
    serve_duplicate_requests: bool = True
    send_buffer_limit: int = 128 * 1024
    pad_block: int = 0
    chaff_records: int = 0
    chaff_plaintext: int = 1024
    chaff_interval: float = 0.0004
    pipeline_responses: bool = False
    #: Server-push associations: when a request for a key path is
    #: served (not a duplicate), the listed paths are pushed on
    #: promised streams, in order.  The §VII push defense builds on
    #: this to deliver the emblem images in a canonical order.
    push_map: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.chunk_bytes <= 0:
            raise ValueError("chunk size must be positive")
        if self.think_time < 0 or self.chunk_interval < 0:
            raise ValueError("delays must be non-negative")
        if self.pad_block < 0 or self.chaff_records < 0:
            raise ValueError("defense knobs must be non-negative")
        if self.chaff_plaintext <= 0 or self.chaff_interval < 0:
            raise ValueError("bad chaff shape")


@dataclass(eq=False)  # identity semantics: each serving is unique
class ResponseInstance:
    """One serving of one object (duplicate serves get new instances).

    Ground-truth accounting keys off these objects: every DATA frame of
    the serving carries a reference in its ``context`` field.
    """

    instance_id: int
    object_id: str
    path: str
    stream_id: int
    body_bytes: int
    duplicate: bool
    started_at: float
    finished_at: Optional[float] = None
    cancelled: bool = False
    bytes_emitted: int = 0

    @property
    def complete(self) -> bool:
        return self.finished_at is not None

    def __repr__(self) -> str:
        dup = " dup" if self.duplicate else ""
        return (
            f"ResponseInstance(#{self.instance_id} {self.object_id} "
            f"stream={self.stream_id}{dup})"
        )


class _ServedConnection:
    """Per-client-connection server state."""

    def __init__(self, server: "H2Server", tcp: Transport) -> None:
        self.server = server
        self.tcp = tcp
        self.tls = TLSSession(
            tcp, TLSRole.SERVER, trace=server._trace,
            pad_block=server.config.pad_block,
        )
        self.h2 = H2Connection(
            self.tls,
            H2Role.SERVER,
            settings=server.settings,
            scheduler=server._scheduler_factory(),
            trace=server._trace,
            send_buffer_limit=server.config.send_buffer_limit,
            name=f"h2-server:{tcp.remote}",
        )
        self.instances: List[ResponseInstance] = []
        # Pipelining defense state: the instance currently emitting and
        # the FIFO of (instance, resource, queued_at) behind it.
        self._active_instance: Optional[ResponseInstance] = None
        self._response_queue: List[Tuple[ResponseInstance, ResourceSpec, float]] = []
        #: Total simulated seconds responses spent queued (the latency
        #: cost the pipelining defense reports).
        self.pipeline_wait_s = 0.0
        self.h2.on_headers = self._on_request
        self.h2.on_rst_stream = self._on_rst

    def _on_request(
        self,
        stream_id: int,
        headers: Tuple[Tuple[str, str], ...],
        end_stream: bool,
        duplicate: bool,
    ) -> None:
        header_map = dict(headers)
        method = header_map.get(":method", "GET")
        path = header_map.get(":path", "/")
        if duplicate and not self.server.config.serve_duplicate_requests:
            return
        if method != "GET":
            self._respond_error(stream_id, 405)
            return
        resource = self.server.router(path)
        if resource is None:
            self._respond_error(stream_id, 404)
            return
        self.server._record(
            "h2.request",
            stream=stream_id,
            path=path,
            duplicate=duplicate,
        )
        instance = ResponseInstance(
            instance_id=next(_instance_ids),
            object_id=resource.object_id or path,
            path=path,
            stream_id=stream_id,
            body_bytes=resource.body_bytes,
            duplicate=duplicate,
            started_at=self.server.sim.now,
        )
        self.instances.append(instance)
        self.server.sim.schedule(
            self.server.draw_think_time(resource),
            lambda: self._emit_headers(instance, resource),
        )
        if not duplicate:
            self._push_associated(stream_id, path)

    def _push_associated(self, parent_stream_id: int, path: str) -> None:
        """Push the resources associated with ``path`` (ServerConfig
        push_map), each on its own promised stream."""
        for pushed_path in self.server.config.push_map.get(path, ()):
            resource = self.server.router(pushed_path)
            if resource is None:
                continue
            instance = ResponseInstance(
                instance_id=next(_instance_ids),
                object_id=resource.object_id or pushed_path,
                path=pushed_path,
                stream_id=0,  # patched below with the promised id
                body_bytes=resource.body_bytes,
                duplicate=False,
                started_at=self.server.sim.now,
            )
            promised_id = self.h2.send_push_promise(
                parent_stream_id,
                [
                    (":method", "GET"),
                    (":scheme", "https"),
                    (":authority", "www.isidewith.com"),
                    (":path", pushed_path),
                ],
                context=instance,
            )
            instance.stream_id = promised_id
            self.instances.append(instance)
            self.server._record(
                "h2.push", parent=parent_stream_id, promised=promised_id,
                path=pushed_path,
            )
            self.server.sim.schedule(
                self.server.draw_think_time(resource),
                lambda inst=instance, res=resource: self._emit_headers(inst, res),
            )

    def _respond_error(self, stream_id: int, status: int) -> None:
        self.h2.send_headers(
            stream_id,
            [(":status", str(status)), ("content-length", "0")],
            end_stream=True,
        )

    def _emit_headers(self, instance: ResponseInstance, resource: ResourceSpec) -> None:
        if instance.cancelled or self.tcp.is_closed:
            return
        if self.server.config.pipeline_responses:
            if (
                self._active_instance is not None
                and self._active_instance is not instance
            ):
                self._response_queue.append(
                    (instance, resource, self.server.sim.now)
                )
                return
            self._active_instance = instance
        self.h2.send_headers(
            instance.stream_id,
            self.server.response_headers(resource),
            end_stream=False,
            context=instance,
        )
        self._emit_chunk(instance)

    def _emit_chunk(self, instance: ResponseInstance) -> None:
        if instance.cancelled or self.tcp.is_closed:
            if instance is self._active_instance:
                self._advance_pipeline()
            return
        remaining = instance.body_bytes - instance.bytes_emitted
        chunk = min(self.server.config.chunk_bytes, remaining)
        last = chunk >= remaining
        self.h2.send_data(
            instance.stream_id,
            chunk,
            end_stream=last,
            context=instance,
        )
        instance.bytes_emitted += chunk
        if last:
            instance.finished_at = self.server.sim.now
            self.server._record(
                "h2.response_complete",
                stream=instance.stream_id,
                object=instance.object_id,
                duplicate=instance.duplicate,
            )
            self._emit_chaff()
            if instance is self._active_instance:
                self._advance_pipeline()
        else:
            self.server.sim.schedule(
                self.server.config.chunk_interval,
                lambda: self._emit_chunk(instance),
            )

    def _advance_pipeline(self) -> None:
        """Start the next queued response (pipelining defense)."""
        self._active_instance = None
        while self._response_queue:
            instance, resource, queued_at = self._response_queue.pop(0)
            if instance.cancelled:
                continue
            self.pipeline_wait_s += self.server.sim.now - queued_at
            self._emit_headers(instance, resource)
            return

    def _emit_chaff(self) -> None:
        """Schedule the configured chaff records after a response."""
        config = self.server.config
        for slot in range(config.chaff_records):
            self.server.sim.schedule(
                config.chaff_interval * (slot + 1),
                self._send_one_chaff,
            )

    def _send_one_chaff(self) -> None:
        if self.tcp.is_closed or not self.tls.handshake_complete:
            return
        self.tls.send_chaff(self.server.config.chaff_plaintext)

    def _on_rst(self, stream_id: int, code: H2ErrorCode) -> None:
        for instance in self.instances:
            if instance.stream_id == stream_id and not instance.complete:
                instance.cancelled = True
        if (
            self._active_instance is not None
            and self._active_instance.cancelled
        ):
            self._advance_pipeline()
        self.server._record("h2.server_rst", stream=stream_id, code=int(code))


class H2Server:
    """The HTTP/2 origin server.

    Args:
        router: path → :class:`ResourceSpec` lookup (the website).
        scheduler_factory: builds one multiplexing scheduler per client
            connection (default: round-robin — a multi-threaded server).
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        port: int,
        router: Router,
        config: Optional[ServerConfig] = None,
        settings: Optional[H2Settings] = None,
        tcp_config: Optional[TCPConfig] = None,
        scheduler_factory: Optional[Callable[[], MuxScheduler]] = None,
        trace: Optional[TraceLog] = None,
        rng: Optional[RandomStreams] = None,
        transport: Optional[str] = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.router = router
        self.config = config or ServerConfig()
        self.settings = settings or default_server_settings()
        self._trace = trace
        self._rng = rng
        self._scheduler_factory = scheduler_factory or RoundRobinScheduler
        factory = get_transport(transport)
        tcp_config = factory.server_config(
            tcp_config, self.config.serve_duplicate_requests
        )
        self._tcp_config = tcp_config
        self.connections: List[_ServedConnection] = []
        self.listener = factory.create_listener(
            sim, host, port, self._on_accept, config=tcp_config, trace=trace
        )

    def _on_accept(self, tcp: Transport) -> None:
        self.connections.append(_ServedConnection(self, tcp))

    def draw_think_time(self, resource: ResourceSpec) -> float:
        """Processing delay for one request of ``resource``.

        Uses the resource's think-time range when given (dynamic
        content), drawing uniformly from the server's random stream;
        falls back to the fixed configured delay.
        """
        if resource.think_time_range is None:
            return self.config.think_time
        low, high = resource.think_time_range
        if self._rng is None or high <= low:
            return (low + high) / 2.0
        return self._rng.uniform(f"server.think.{resource.path}", low, high)

    def response_headers(self, resource: ResourceSpec) -> List[Tuple[str, str]]:
        """A realistic response header list for a resource."""
        return [
            (":status", str(resource.status)),
            ("server", "nginx/1.16.1"),
            ("date", "Tue, 17 Mar 2020 10:00:00 GMT"),
            ("content-type", resource.content_type),
            ("content-length", str(resource.body_bytes)),
            ("cache-control", "max-age=0, no-cache"),
            ("strict-transport-security", "max-age=31536000"),
        ]

    @property
    def all_instances(self) -> List[ResponseInstance]:
        """Every response instance across all connections."""
        return [
            instance
            for connection in self.connections
            for instance in connection.instances
        ]

    def _record(self, category: str, **fields: Any) -> None:
        if self._trace is not None:
            self._trace.record(self.sim.now, category, **fields)

    def __repr__(self) -> str:
        return f"H2Server(port={self.listener.port}, conns={len(self.connections)})"
