"""The HTTP/2 stream state machine (RFC 7540 §5.1)."""

from __future__ import annotations

import enum
from typing import Optional

from repro.h2.errors import H2ErrorCode, StreamError
from repro.h2.flowcontrol import FlowControlWindow


class StreamState(enum.Enum):
    IDLE = "idle"
    RESERVED_LOCAL = "reserved_local"
    RESERVED_REMOTE = "reserved_remote"
    OPEN = "open"
    HALF_CLOSED_LOCAL = "half_closed_local"
    HALF_CLOSED_REMOTE = "half_closed_remote"
    CLOSED = "closed"


class H2Stream:
    """One stream's lifecycle and flow-control state.

    The connection drives transitions by reporting frame events; the
    stream validates them and tracks both directional windows.
    """

    def __init__(
        self,
        stream_id: int,
        send_window: int,
        receive_window: int,
    ) -> None:
        if stream_id <= 0:
            raise ValueError("stream ids are positive")
        self.stream_id = stream_id
        self.state = StreamState.IDLE
        self.send_window = FlowControlWindow(send_window)
        self.receive_window = FlowControlWindow(receive_window)
        self.reset_code: Optional[H2ErrorCode] = None
        #: Bytes of DATA payload sent/received, for accounting.
        self.data_sent = 0
        self.data_received = 0

    # -- Transitions -----------------------------------------------------

    def send_headers(self, end_stream: bool) -> None:
        if self.state is StreamState.IDLE:
            self.state = StreamState.OPEN
        elif self.state is StreamState.RESERVED_LOCAL:
            self.state = StreamState.HALF_CLOSED_REMOTE
        elif self.state not in (StreamState.OPEN, StreamState.HALF_CLOSED_REMOTE):
            raise StreamError(
                H2ErrorCode.PROTOCOL_ERROR,
                self.stream_id,
                f"HEADERS sent in state {self.state}",
            )
        if end_stream:
            self._close_local()

    def receive_headers(self, end_stream: bool) -> None:
        if self.state is StreamState.IDLE:
            self.state = StreamState.OPEN
        elif self.state is StreamState.RESERVED_REMOTE:
            self.state = StreamState.HALF_CLOSED_LOCAL
        elif self.state not in (StreamState.OPEN, StreamState.HALF_CLOSED_LOCAL):
            raise StreamError(
                H2ErrorCode.STREAM_CLOSED,
                self.stream_id,
                f"HEADERS received in state {self.state}",
            )
        if end_stream:
            self._close_remote()

    def send_data(self, payload_bytes: int, end_stream: bool) -> None:
        if self.state not in (StreamState.OPEN, StreamState.HALF_CLOSED_REMOTE):
            raise StreamError(
                H2ErrorCode.STREAM_CLOSED,
                self.stream_id,
                f"DATA sent in state {self.state}",
            )
        self.send_window.consume(payload_bytes)
        self.data_sent += payload_bytes
        if end_stream:
            self._close_local()

    def receive_data(self, payload_bytes: int, end_stream: bool) -> None:
        if self.state not in (StreamState.OPEN, StreamState.HALF_CLOSED_LOCAL):
            raise StreamError(
                H2ErrorCode.STREAM_CLOSED,
                self.stream_id,
                f"DATA received in state {self.state}",
            )
        self.receive_window.consume(payload_bytes)
        self.data_received += payload_bytes
        if end_stream:
            self._close_remote()

    def reset(self, code: H2ErrorCode) -> None:
        """RST_STREAM (sent or received): the stream dies immediately."""
        self.state = StreamState.CLOSED
        self.reset_code = code

    def reserve_local(self) -> None:
        """PUSH_PROMISE sent referencing this stream as promised."""
        if self.state is not StreamState.IDLE:
            raise StreamError(
                H2ErrorCode.PROTOCOL_ERROR, self.stream_id, "reserve non-idle"
            )
        self.state = StreamState.RESERVED_LOCAL

    def reserve_remote(self) -> None:
        """PUSH_PROMISE received promising this stream."""
        if self.state is not StreamState.IDLE:
            raise StreamError(
                H2ErrorCode.PROTOCOL_ERROR, self.stream_id, "reserve non-idle"
            )
        self.state = StreamState.RESERVED_REMOTE

    # -- Internals -------------------------------------------------------

    def _close_local(self) -> None:
        if self.state is StreamState.OPEN:
            self.state = StreamState.HALF_CLOSED_LOCAL
        else:
            self.state = StreamState.CLOSED

    def _close_remote(self) -> None:
        if self.state is StreamState.OPEN:
            self.state = StreamState.HALF_CLOSED_REMOTE
        else:
            self.state = StreamState.CLOSED

    @property
    def closed(self) -> bool:
        return self.state is StreamState.CLOSED

    @property
    def was_reset(self) -> bool:
        return self.reset_code is not None

    def __repr__(self) -> str:
        return f"H2Stream(#{self.stream_id}, {self.state.value})"
