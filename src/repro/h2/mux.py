"""Multiplexing schedulers: how concurrent responses share the wire.

The scheduler owns per-stream FIFO queues of outbound frames and
decides, each time the connection can write, which stream's next frame
goes out.  The choice *is* the multiplexing policy — and therefore the
privacy mechanism the paper attacks:

* :class:`RoundRobinScheduler` — interleave ready streams frame by
  frame.  This is the behaviour of multi-threaded HTTP/2 servers the
  paper targets (Figure 3), and the default.
* :class:`FifoScheduler` — drain one stream completely before the next
  (arrival order).  Produces HTTP/1.1-like serialized output; used as a
  baseline and in ablations.
* :class:`PriorityScheduler` — deficit-weighted selection driven by the
  RFC 7540 priority tree; substrate for the paper's future-work defense
  (randomized priorities, §VII).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Callable, Deque, Dict, List, Optional, Protocol

from repro.h2.frames import Frame
from repro.h2.priority import PriorityTree


def _always(frame: Frame) -> bool:
    return True


class MuxScheduler(Protocol):
    """Scheduler interface used by the connection's write pump."""

    def enqueue(self, stream_id: int, frame: Frame) -> None:
        """Queue a frame for transmission on ``stream_id``'s FIFO."""

    def next_frame(
        self, eligible: Callable[[Frame], bool] = _always
    ) -> Optional[Frame]:
        """Pop the next transmittable frame whose head passes
        ``eligible`` (flow-control gating), or None when nothing can
        send."""

    def flush_stream(self, stream_id: int) -> int:
        """Discard all queued frames of a stream; returns frames dropped."""

    @property
    def pending_frames(self) -> int:
        """Total frames queued across all streams."""


class _QueueMixin:
    """Shared per-stream queue bookkeeping."""

    def __init__(self) -> None:
        self._queues: "OrderedDict[int, Deque[Frame]]" = OrderedDict()
        self._pending = 0

    def enqueue(self, stream_id: int, frame: Frame) -> None:
        queue = self._queues.get(stream_id)
        if queue is None:
            queue = deque()
            self._queues[stream_id] = queue
        queue.append(frame)
        self._pending += 1

    def flush_stream(self, stream_id: int) -> int:
        queue = self._queues.pop(stream_id, None)
        if queue is None:
            return 0
        dropped = len(queue)
        self._pending -= dropped
        return dropped

    @property
    def pending_frames(self) -> int:
        return self._pending

    @property
    def ready_streams(self) -> List[int]:
        return [sid for sid, queue in self._queues.items() if queue]

    def _head(self, stream_id: int) -> Optional[Frame]:
        queue = self._queues.get(stream_id)
        if not queue:
            return None
        return queue[0]

    def _pop_from(self, stream_id: int) -> Optional[Frame]:
        queue = self._queues.get(stream_id)
        if not queue:
            return None
        frame = queue.popleft()
        self._pending -= 1
        if not queue:
            del self._queues[stream_id]
        return frame


class RoundRobinScheduler(_QueueMixin):
    """Frame-by-frame interleaving across ready streams."""

    def __init__(self) -> None:
        super().__init__()
        self._rotation: Deque[int] = deque()

    def enqueue(self, stream_id: int, frame: Frame) -> None:
        newly_ready = stream_id not in self._queues or not self._queues[stream_id]
        super().enqueue(stream_id, frame)
        if newly_ready and stream_id not in self._rotation:
            self._rotation.append(stream_id)

    def next_frame(
        self, eligible: Callable[[Frame], bool] = _always
    ) -> Optional[Frame]:
        for _ in range(len(self._rotation)):
            stream_id = self._rotation[0]
            head = self._head(stream_id)
            if head is None:
                self._rotation.popleft()
                continue
            if not eligible(head):
                self._rotation.rotate(-1)
                continue
            frame = self._pop_from(stream_id)
            self._rotation.rotate(-1)
            if stream_id not in self._queues:
                # Stream drained: drop it from the rotation.
                try:
                    self._rotation.remove(stream_id)
                except ValueError:
                    pass
            return frame
        return None

    def flush_stream(self, stream_id: int) -> int:
        dropped = super().flush_stream(stream_id)
        try:
            self._rotation.remove(stream_id)
        except ValueError:
            pass
        return dropped


class FifoScheduler(_QueueMixin):
    """Serve streams to completion in arrival order (no interleaving).

    Once a stream starts transmitting, the wire is *held* for it until
    its END_STREAM frame goes out — even through momentary production
    pauses — which is what makes the output HTTP/1.1-like.  Only a
    flush (RST_STREAM) releases the wire early.
    """

    def __init__(self) -> None:
        super().__init__()
        self._active: Optional[int] = None

    def next_frame(
        self, eligible: Callable[[Frame], bool] = _always
    ) -> Optional[Frame]:
        if self._active is None:
            for stream_id in self._queues:
                if self._head(stream_id) is not None:
                    self._active = stream_id
                    break
        if self._active is None:
            return None
        head = self._head(self._active)
        if head is None or not eligible(head):
            return None  # hold the wire for the active stream
        frame = self._pop_from(self._active)
        if getattr(frame, "end_stream", False):
            self._active = None
        return frame

    def flush_stream(self, stream_id: int) -> int:
        if self._active == stream_id:
            self._active = None
        return super().flush_stream(stream_id)


class PriorityScheduler(_QueueMixin):
    """Deficit-weighted selection following the priority tree.

    Each ready stream accrues credit proportional to its tree-allocated
    bandwidth share; the stream with the highest credit sends next and
    pays its frame's size.
    """

    def __init__(self, tree: Optional[PriorityTree] = None) -> None:
        super().__init__()
        self.tree = tree or PriorityTree()
        self._credits: Dict[int, float] = {}

    def enqueue(self, stream_id: int, frame: Frame) -> None:
        if stream_id not in self.tree:
            self.tree.insert(stream_id)
        super().enqueue(stream_id, frame)
        self._credits.setdefault(stream_id, 0.0)

    def next_frame(
        self, eligible: Callable[[Frame], bool] = _always
    ) -> Optional[Frame]:
        ready = {
            sid
            for sid in self.ready_streams
            if self._head(sid) is not None and eligible(self._head(sid))
        }
        if not ready:
            return None
        shares = dict(self.tree.allocate(ready))
        quantum = 16384.0
        for stream_id in ready:
            self._credits[stream_id] = (
                self._credits.get(stream_id, 0.0)
                + shares.get(stream_id, 0.0) * quantum
            )
        chosen = max(ready, key=lambda sid: (self._credits.get(sid, 0.0), -sid))
        frame = self._pop_from(chosen)
        if frame is not None:
            self._credits[chosen] -= frame.wire_length
            if chosen not in self._queues:
                self._credits.pop(chosen, None)
        return frame

    def flush_stream(self, stream_id: int) -> int:
        self._credits.pop(stream_id, None)
        return super().flush_stream(stream_id)
