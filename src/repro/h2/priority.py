"""HTTP/2 stream priority tree (RFC 7540 §5.3).

Streams depend on other streams (or the virtual root, stream 0) with a
weight in 1..256.  The tree answers one question for the scheduler:
given the set of streams with queued data, how should the next chunk of
bandwidth be shared?  We implement the standard top-down allocation:
among ready sibling subtrees, bandwidth is proportional to weight, and
a parent starves its children only while the parent itself has data.

The future-work defense in the paper (§VII) randomizes these priorities
per page load; :mod:`repro.core.defenses` builds on this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set


@dataclass
class _Node:
    stream_id: int
    parent: Optional["_Node"] = None
    weight: int = 16
    children: List["_Node"] = field(default_factory=list)


class PriorityTree:
    """Dependency/weight bookkeeping plus weighted stream selection."""

    def __init__(self) -> None:
        self._root = _Node(stream_id=0, weight=256)
        self._nodes: Dict[int, _Node] = {0: self._root}

    def __contains__(self, stream_id: int) -> bool:
        return stream_id in self._nodes

    def insert(
        self,
        stream_id: int,
        depends_on: int = 0,
        weight: int = 16,
        exclusive: bool = False,
    ) -> None:
        """Add a stream (idempotent; re-inserting reprioritizes).

        A self-dependency is a protocol error (RFC 7540 §5.3.1); the
        tree treats it gracefully as a dependency on the root.
        """
        if stream_id == 0:
            raise ValueError("stream 0 is the root and cannot be inserted")
        if depends_on == stream_id:
            depends_on = 0
        if stream_id in self._nodes:
            self.reprioritize(stream_id, depends_on, weight, exclusive)
            return
        parent = self._nodes.get(depends_on, self._root)
        node = _Node(stream_id=stream_id, parent=parent, weight=weight)
        if exclusive:
            node.children = parent.children
            for child in node.children:
                child.parent = node
            parent.children = []
        parent.children.append(node)
        self._nodes[stream_id] = node

    def reprioritize(
        self,
        stream_id: int,
        depends_on: int,
        weight: int,
        exclusive: bool = False,
    ) -> None:
        """Apply a PRIORITY frame to an existing stream.

        A self-dependency falls back to the root (see :meth:`insert`).
        """
        if depends_on == stream_id:
            depends_on = 0
        node = self._nodes.get(stream_id)
        if node is None:
            self.insert(stream_id, depends_on, weight, exclusive)
            return
        new_parent = self._nodes.get(depends_on, self._root)
        # RFC 7540 §5.3.3: a dependency on one's own descendant first
        # moves that descendant to the old parent.
        if self._is_descendant(new_parent, node):
            self._detach(new_parent)
            assert node.parent is not None
            new_parent.parent = node.parent
            node.parent.children.append(new_parent)
        self._detach(node)
        node.weight = weight
        node.parent = new_parent
        if exclusive:
            node.children.extend(new_parent.children)
            for child in new_parent.children:
                child.parent = node
            new_parent.children = []
        new_parent.children.append(node)

    def remove(self, stream_id: int) -> None:
        """Drop a closed stream; children are re-parented upward."""
        node = self._nodes.pop(stream_id, None)
        if node is None:
            return
        parent = node.parent or self._root
        for child in node.children:
            child.parent = parent
            parent.children.append(child)
        self._detach(node)

    def weight_of(self, stream_id: int) -> int:
        node = self._nodes.get(stream_id)
        return node.weight if node else 16

    def parent_of(self, stream_id: int) -> Optional[int]:
        node = self._nodes.get(stream_id)
        if node is None or node.parent is None:
            return None
        return node.parent.stream_id

    def allocate(self, ready: Set[int]) -> List[float]:
        """Proportional bandwidth shares for the ready streams.

        Returns a list of ``(stream_id, share)`` pairs summing to 1.0
        (empty when nothing is ready).  A stream blocks its descendants.
        """
        shares: List = []
        self._allocate_node(self._root, 1.0, ready, shares)
        return shares

    def _allocate_node(
        self, node: _Node, share: float, ready: Set[int], out: List
    ) -> None:
        if node.stream_id != 0 and node.stream_id in ready:
            out.append((node.stream_id, share))
            return
        eligible = [
            child for child in node.children
            if self._subtree_has_ready(child, ready)
        ]
        total_weight = sum(child.weight for child in eligible)
        for child in eligible:
            self._allocate_node(
                child, share * child.weight / total_weight, ready, out
            )

    def _subtree_has_ready(self, node: _Node, ready: Set[int]) -> bool:
        if node.stream_id in ready:
            return True
        return any(self._subtree_has_ready(child, ready) for child in node.children)

    def _detach(self, node: _Node) -> None:
        if node.parent is not None and node in node.parent.children:
            node.parent.children.remove(node)

    def _is_descendant(self, node: _Node, ancestor: _Node) -> bool:
        current = node.parent
        while current is not None:
            if current is ancestor:
                return True
            current = current.parent
        return False
