"""HTTP/2 flow control windows (RFC 7540 §5.2, §6.9)."""

from __future__ import annotations

from repro.h2.errors import H2Error, H2ErrorCode
from repro.h2.settings import MAX_WINDOW_SIZE


class FlowControlWindow:
    """One directional window (connection-level or per-stream).

    The *send* side consumes credit when emitting DATA; the *receive*
    side replenishes its peer by sending WINDOW_UPDATE frames.
    """

    def __init__(self, initial: int) -> None:
        if not (0 <= initial <= MAX_WINDOW_SIZE):
            raise ValueError(f"initial window {initial} out of range")
        self._window = initial

    @property
    def available(self) -> int:
        """Bytes that may currently be sent."""
        return self._window

    def consume(self, amount: int) -> None:
        """Spend credit for ``amount`` payload bytes.

        Raises:
            H2Error: FLOW_CONTROL_ERROR when over-consuming.
        """
        if amount < 0:
            raise ValueError("amount must be non-negative")
        if amount > self._window:
            raise H2Error(
                H2ErrorCode.FLOW_CONTROL_ERROR,
                f"consume {amount} with only {self._window} available",
            )
        self._window -= amount

    def replenish(self, amount: int) -> None:
        """Apply a WINDOW_UPDATE increment.

        Raises:
            H2Error: FLOW_CONTROL_ERROR when the window would exceed
                2^31 - 1 (RFC 7540 §6.9.1).
        """
        if amount <= 0:
            raise ValueError("increment must be positive")
        if self._window + amount > MAX_WINDOW_SIZE:
            raise H2Error(
                H2ErrorCode.FLOW_CONTROL_ERROR,
                "window overflow",
            )
        self._window += amount

    def adjust_initial(self, delta: int) -> None:
        """Apply a SETTINGS_INITIAL_WINDOW_SIZE change (may go negative
        transiently per RFC 7540 §6.9.2 — we clamp at the negative bound
        by raising, as our endpoints never shrink windows mid-stream)."""
        self._window += delta
        if self._window > MAX_WINDOW_SIZE:
            raise H2Error(H2ErrorCode.FLOW_CONTROL_ERROR, "window overflow")

    def __repr__(self) -> str:
        return f"FlowControlWindow({self._window})"
