"""HTTP/2 error codes and exceptions (RFC 7540 §7)."""

from __future__ import annotations

import enum


class H2ErrorCode(enum.IntEnum):
    """Error codes carried by RST_STREAM and GOAWAY frames."""

    NO_ERROR = 0x0
    PROTOCOL_ERROR = 0x1
    INTERNAL_ERROR = 0x2
    FLOW_CONTROL_ERROR = 0x3
    SETTINGS_TIMEOUT = 0x4
    STREAM_CLOSED = 0x5
    FRAME_SIZE_ERROR = 0x6
    REFUSED_STREAM = 0x7
    CANCEL = 0x8
    COMPRESSION_ERROR = 0x9
    CONNECT_ERROR = 0xA
    ENHANCE_YOUR_CALM = 0xB
    INADEQUATE_SECURITY = 0xC
    HTTP_1_1_REQUIRED = 0xD


class H2Error(Exception):
    """Base class for HTTP/2 protocol failures."""

    def __init__(self, code: H2ErrorCode, message: str = "") -> None:
        super().__init__(message or code.name)
        self.code = code


class ProtocolError(H2Error):
    """Connection-level error: the whole connection must die."""


class StreamError(H2Error):
    """Stream-level error: only the offending stream is reset."""

    def __init__(
        self, code: H2ErrorCode, stream_id: int, message: str = ""
    ) -> None:
        super().__init__(code, message)
        self.stream_id = stream_id
