"""The HTTP/2 client endpoint.

A thin, browser-agnostic client: it opens the transport+TLS+H2 stack
(TCP or the QUIC-like transport, selected via ``transport``), issues
GET requests on new streams, tracks per-stream response progress, and
can cancel streams with RST_STREAM.  Page-load behaviour (which objects
to request when, reset-and-retry policies) lives in
:mod:`repro.web.browser`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.h2.connection import H2Connection, H2Role
from repro.h2.errors import H2ErrorCode
from repro.h2.settings import H2Settings, firefox_like_settings
from repro.netsim.address import Endpoint
from repro.netsim.node import Host
from repro.simkernel.simulator import Simulator
from repro.simkernel.trace import TraceLog
from repro.tcp.config import TCPConfig
from repro.tls.session import TLSRole, TLSSession
from repro.transport import get_transport

#: Connection-level receive window a browser grants the server.
BROWSER_CONNECTION_WINDOW = 12 * 1024 * 1024


@dataclass
class ResponseHandle:
    """Progress of one in-flight GET (or server-pushed response)."""

    stream_id: int
    path: str
    requested_at: float
    headers: Optional[Tuple[Tuple[str, str], ...]] = None
    received_bytes: int = 0
    complete: bool = False
    reset: bool = False
    pushed: bool = False
    completed_at: Optional[float] = None
    last_data_at: Optional[float] = None
    on_complete: Optional[Callable[["ResponseHandle"], None]] = None

    @property
    def finished(self) -> bool:
        return self.complete or self.reset


class H2Client:
    """One browser-side HTTP/2 connection to a server."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        server: Endpoint,
        local_port: int = 49152,
        settings: Optional[H2Settings] = None,
        tcp_config: Optional[TCPConfig] = None,
        trace: Optional[TraceLog] = None,
        authority: str = "www.example.com",
        transport: Optional[str] = None,
    ) -> None:
        self.sim = sim
        self.authority = authority
        self._trace = trace
        self.settings = settings or firefox_like_settings()
        # ``tcp`` keeps its historical name: it is the client's
        # transport connection, whatever implementation backs it.
        self.tcp = get_transport(transport).create_connection(
            sim,
            host,
            local_port,
            server,
            config=tcp_config or TCPConfig(),
            trace=trace,
            name=f"client:{local_port}",
        )
        self.tls = TLSSession(self.tcp, TLSRole.CLIENT, trace=trace)
        self.h2 = H2Connection(
            self.tls,
            H2Role.CLIENT,
            settings=self.settings,
            trace=trace,
            name=f"h2-client:{local_port}",
        )
        self.handles: Dict[int, ResponseHandle] = {}
        self.on_ready: Optional[Callable[[], None]] = None
        self.junk_data_frames = 0

        self.h2.on_headers = self._on_response_headers
        self.h2.on_data = self._on_data
        self.h2.on_rst_stream = self._on_rst
        self.h2.on_push_promise = self._on_push_promise
        previous_ready = self.h2.on_ready
        def ready() -> None:
            if previous_ready:
                previous_ready()
            self._grow_connection_window()
            if self.on_ready:
                self.on_ready()
        self.h2.on_ready = ready

    def connect(self) -> None:
        """Open the transport connection (handshakes follow automatically)."""
        self.tcp.connect()

    @property
    def ready(self) -> bool:
        return self.h2.ready

    def _grow_connection_window(self) -> None:
        deficit = BROWSER_CONNECTION_WINDOW - self.h2.connection_recv_window.available
        if deficit > 0:
            self.h2.send_window_update(0, deficit)

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------

    def get(
        self,
        path: str,
        priority_weight: Optional[int] = None,
        priority_depends_on: int = 0,
        extra_headers: Optional[List[Tuple[str, str]]] = None,
    ) -> ResponseHandle:
        """Issue a GET for ``path`` on a fresh stream."""
        if not self.ready:
            raise RuntimeError("client not ready (handshake incomplete)")
        stream_id = self.h2.next_stream_id()
        headers: List[Tuple[str, str]] = [
            (":method", "GET"),
            (":scheme", "https"),
            (":authority", self.authority),
            (":path", path),
            ("user-agent", "Mozilla/5.0 (X11; Linux x86_64; rv:74.0) Firefox/74.0"),
            ("accept", "*/*"),
            ("accept-language", "en-US,en;q=0.5"),
            ("accept-encoding", "gzip, deflate, br"),
        ]
        if extra_headers:
            headers.extend(extra_headers)
        handle = ResponseHandle(
            stream_id=stream_id, path=path, requested_at=self.sim.now
        )
        self.handles[stream_id] = handle
        self.h2.send_headers(
            stream_id,
            headers,
            end_stream=True,
            priority_weight=priority_weight,
            priority_depends_on=priority_depends_on,
        )
        self._record("h2.get", stream=stream_id, path=path)
        return handle

    def cancel(
        self, stream_id: int, code: H2ErrorCode = H2ErrorCode.CANCEL
    ) -> None:
        """RST_STREAM an in-flight request."""
        handle = self.handles.get(stream_id)
        if handle is not None and not handle.finished:
            handle.reset = True
        self.h2.send_rst_stream(stream_id, code)

    def reset_all_active(self, code: H2ErrorCode = H2ErrorCode.CANCEL) -> List[int]:
        """RST every unfinished stream (the paper's client reaction to a
        persistently lossy channel).  Returns the stream ids reset."""
        reset_ids = []
        for stream_id, handle in list(self.handles.items()):
            if not handle.finished:
                self.cancel(stream_id, code)
                reset_ids.append(stream_id)
        return reset_ids

    @property
    def active_handles(self) -> List[ResponseHandle]:
        return [handle for handle in self.handles.values() if not handle.finished]

    # ------------------------------------------------------------------
    # Response events
    # ------------------------------------------------------------------

    def _on_response_headers(
        self,
        stream_id: int,
        headers: Tuple[Tuple[str, str], ...],
        end_stream: bool,
        duplicate: bool,
    ) -> None:
        handle = self.handles.get(stream_id)
        if handle is None or duplicate:
            return
        if handle.headers is None:
            handle.headers = headers
        if end_stream:
            self._finish(handle)

    def _on_data(
        self, stream_id: int, data_bytes: int, end_stream: bool, frame
    ) -> None:
        handle = self.handles.get(stream_id)
        if handle is None or handle.finished:
            self.junk_data_frames += 1
            return
        handle.received_bytes += data_bytes
        handle.last_data_at = self.sim.now
        if end_stream:
            self._finish(handle)

    def _on_push_promise(
        self,
        parent_stream_id: int,
        promised_stream_id: int,
        headers: Tuple[Tuple[str, str], ...],
    ) -> None:
        """Accept a server push: track the promised response like a GET
        the browser never had to issue."""
        path = dict(headers).get(":path", "")
        handle = ResponseHandle(
            stream_id=promised_stream_id,
            path=path,
            requested_at=self.sim.now,
            pushed=True,
        )
        self.handles[promised_stream_id] = handle
        self._record("h2.push_accepted", stream=promised_stream_id, path=path)

    def _on_rst(self, stream_id: int, code: H2ErrorCode) -> None:
        handle = self.handles.get(stream_id)
        if handle is not None and not handle.finished:
            handle.reset = True

    def _finish(self, handle: ResponseHandle) -> None:
        handle.complete = True
        handle.completed_at = self.sim.now
        self._record(
            "h2.response_done",
            stream=handle.stream_id,
            path=handle.path,
            bytes=handle.received_bytes,
        )
        if handle.on_complete:
            handle.on_complete(handle)

    def _record(self, category: str, **fields) -> None:
        if self._trace is not None:
            self._trace.record(self.sim.now, category, **fields)

    def __repr__(self) -> str:
        done = sum(1 for handle in self.handles.values() if handle.complete)
        return f"H2Client({self.authority}, {done}/{len(self.handles)} done)"
