"""HTTP/2 (RFC 7540) over the simulated TLS/TCP stack.

Implements the pieces of HTTP/2 the paper's attack interacts with:

* binary framing (HEADERS, DATA, SETTINGS, RST_STREAM, WINDOW_UPDATE,
  PRIORITY, PING, GOAWAY) with exact wire sizes,
* the stream state machine, including RST_STREAM semantics — the server
  **flushes queued segments of a reset stream**, the behaviour the
  targeted-packet-drop phase of the attack exploits,
* connection- and stream-level flow control,
* a dependency/weight priority tree,
* a **multiplexing scheduler** that interleaves concurrently served
  responses on one TCP stream (the privacy mechanism under attack), and
* a multi-worker server model where each GET spawns a handler "thread"
  (duplicate GETs from TCP retransmissions optionally spawn duplicate
  handlers, reproducing the paper's Section IV-B observation).
"""

from repro.h2.client import H2Client, ResponseHandle
from repro.h2.connection import H2Connection, H2Role
from repro.h2.errors import H2Error, H2ErrorCode, ProtocolError, StreamError
from repro.h2.frames import (
    ContinuationFrame,
    DataFrame,
    Frame,
    FRAME_HEADER_BYTES,
    GoAwayFrame,
    HeadersFrame,
    PingFrame,
    PriorityFrame,
    PushPromiseFrame,
    RstStreamFrame,
    SettingsFrame,
    WindowUpdateFrame,
)
from repro.h2.flowcontrol import FlowControlWindow
from repro.h2.mux import (
    FifoScheduler,
    MuxScheduler,
    PriorityScheduler,
    RoundRobinScheduler,
)
from repro.h2.priority import PriorityTree
from repro.h2.server import H2Server, ServerConfig
from repro.h2.settings import H2Settings
from repro.h2.stream import H2Stream, StreamState

__all__ = [
    "ContinuationFrame",
    "DataFrame",
    "FRAME_HEADER_BYTES",
    "FifoScheduler",
    "FlowControlWindow",
    "Frame",
    "GoAwayFrame",
    "H2Client",
    "H2Connection",
    "H2Error",
    "H2ErrorCode",
    "H2Role",
    "H2Server",
    "H2Settings",
    "H2Stream",
    "HeadersFrame",
    "MuxScheduler",
    "PingFrame",
    "PriorityFrame",
    "PriorityScheduler",
    "PriorityTree",
    "ProtocolError",
    "PushPromiseFrame",
    "ResponseHandle",
    "RoundRobinScheduler",
    "RstStreamFrame",
    "ServerConfig",
    "SettingsFrame",
    "StreamError",
    "StreamState",
    "WindowUpdateFrame",
]
