"""HTTP/2 frames (RFC 7540 §4, §6) with exact wire sizes.

Frames are Python objects rather than byte strings, but every frame
knows its exact ``wire_length`` (9-byte frame header plus payload), so
TLS records and TCP segments carrying them have realistic sizes.  DATA
frame payloads are symbolic: a byte count plus a reference to the
response being served, which ground-truth accounting uses and the
adversary cannot see.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.h2.errors import H2ErrorCode
from repro.hpack.codec import HeaderBlock

#: Every frame starts with a 9-octet header (RFC 7540 §4.1).
FRAME_HEADER_BYTES = 9

_frame_ids = itertools.count(1)

#: Per-class cache for :meth:`Frame.type_name` (computed once, not
#: re-derived for every frame written and received).
_TYPE_NAMES: Dict[type, str] = {}


@dataclass(slots=True)
class Frame:
    """Base frame: stream 0 means connection-scoped."""

    stream_id: int = 0
    frame_id: int = field(default_factory=lambda: next(_frame_ids), init=False)

    @property
    def payload_length(self) -> int:
        """Payload octets (subclasses override)."""
        return 0

    @property
    def wire_length(self) -> int:
        """Total octets on the wire."""
        return FRAME_HEADER_BYTES + self.payload_length

    @property
    def type_name(self) -> str:
        cls = type(self)
        name = _TYPE_NAMES.get(cls)
        if name is None:
            name = cls.__name__.replace("Frame", "").upper()
            _TYPE_NAMES[cls] = name
        return name

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(stream={self.stream_id}, "
            f"len={self.payload_length})"
        )


@dataclass(repr=False, slots=True)
class DataFrame(Frame):
    """DATA: a chunk of response body.

    Attributes:
        data_bytes: payload octets in this frame.
        end_stream: END_STREAM flag.
        context: opaque reference to the response *instance* being
            served (used only for ground-truth multiplexing accounting;
            an on-path observer has no access to it).
        padding: optional pad length (adds 1 + padding octets).
    """

    data_bytes: int = 0
    end_stream: bool = False
    context: Any = None
    padding: int = 0

    def __post_init__(self) -> None:
        if self.data_bytes < 0 or self.padding < 0:
            raise ValueError("data/padding must be non-negative")
        if self.stream_id == 0:
            raise ValueError("DATA frames require a stream id")

    @property
    def payload_length(self) -> int:
        pad = (1 + self.padding) if self.padding else 0
        return self.data_bytes + pad


@dataclass(repr=False, slots=True)
class HeadersFrame(Frame):
    """HEADERS: a request or response header block.

    ``headers`` is the decoded header list (for endpoint logic);
    ``block`` is the HPACK encoding that determines the wire size.
    """

    headers: Tuple[Tuple[str, str], ...] = ()
    block: Optional[HeaderBlock] = None
    end_stream: bool = False
    end_headers: bool = True
    priority_weight: Optional[int] = None
    priority_depends_on: int = 0
    priority_exclusive: bool = False
    context: Any = None

    def __post_init__(self) -> None:
        if self.stream_id == 0:
            raise ValueError("HEADERS frames require a stream id")

    @property
    def payload_length(self) -> int:
        length = self.block.encoded_length if self.block else 0
        if self.priority_weight is not None:
            length += 5  # stream dependency (4) + weight (1)
        return length


@dataclass(repr=False, slots=True)
class PriorityFrame(Frame):
    """PRIORITY: re-prioritize a stream (5-octet payload)."""

    depends_on: int = 0
    weight: int = 16
    exclusive: bool = False

    def __post_init__(self) -> None:
        if self.stream_id == 0:
            raise ValueError("PRIORITY frames require a stream id")
        if not (1 <= self.weight <= 256):
            raise ValueError("weight must be 1..256")

    @property
    def payload_length(self) -> int:
        return 5


@dataclass(repr=False, slots=True)
class RstStreamFrame(Frame):
    """RST_STREAM: abort one stream (4-octet error code)."""

    error_code: H2ErrorCode = H2ErrorCode.CANCEL

    def __post_init__(self) -> None:
        if self.stream_id == 0:
            raise ValueError("RST_STREAM frames require a stream id")

    @property
    def payload_length(self) -> int:
        return 4


@dataclass(repr=False, slots=True)
class SettingsFrame(Frame):
    """SETTINGS: id/value pairs, or an empty ACK."""

    settings: Dict[int, int] = field(default_factory=dict)
    ack: bool = False

    def __post_init__(self) -> None:
        if self.stream_id != 0:
            raise ValueError("SETTINGS frames are connection-scoped")
        if self.ack and self.settings:
            raise ValueError("SETTINGS ACK must be empty")

    @property
    def payload_length(self) -> int:
        return 6 * len(self.settings)


@dataclass(repr=False, slots=True)
class PushPromiseFrame(Frame):
    """PUSH_PROMISE: reserve a server-push stream."""

    promised_stream_id: int = 0
    headers: Tuple[Tuple[str, str], ...] = ()
    block: Optional[HeaderBlock] = None
    context: Any = None

    def __post_init__(self) -> None:
        if self.stream_id == 0 or self.promised_stream_id == 0:
            raise ValueError("PUSH_PROMISE needs stream and promised ids")

    @property
    def payload_length(self) -> int:
        block_len = self.block.encoded_length if self.block else 0
        return 4 + block_len  # promised stream id + header block


@dataclass(repr=False, slots=True)
class PingFrame(Frame):
    """PING: 8 opaque octets."""

    ack: bool = False

    def __post_init__(self) -> None:
        if self.stream_id != 0:
            raise ValueError("PING frames are connection-scoped")

    @property
    def payload_length(self) -> int:
        return 8


@dataclass(repr=False, slots=True)
class GoAwayFrame(Frame):
    """GOAWAY: shut the connection down."""

    last_stream_id: int = 0
    error_code: H2ErrorCode = H2ErrorCode.NO_ERROR
    debug_bytes: int = 0

    def __post_init__(self) -> None:
        if self.stream_id != 0:
            raise ValueError("GOAWAY frames are connection-scoped")

    @property
    def payload_length(self) -> int:
        return 8 + self.debug_bytes


@dataclass(repr=False, slots=True)
class WindowUpdateFrame(Frame):
    """WINDOW_UPDATE: grant flow-control credit (4-octet increment)."""

    increment: int = 0

    def __post_init__(self) -> None:
        if self.increment <= 0:
            raise ValueError("window increment must be positive")

    @property
    def payload_length(self) -> int:
        return 4


@dataclass(repr=False, slots=True)
class ContinuationFrame(Frame):
    """CONTINUATION: trailing fragments of a large header block."""

    block_bytes: int = 0
    end_headers: bool = True

    def __post_init__(self) -> None:
        if self.stream_id == 0:
            raise ValueError("CONTINUATION frames require a stream id")

    @property
    def payload_length(self) -> int:
        return self.block_bytes


#: RFC 7540 §6 frame type codes, keyed by frame class.  The simulator
#: itself never serializes frames, but :mod:`repro.h2.wire` (used by the
#: ``repro verify`` conformance harness) renders and parses the real
#: binary framing, and the codes live here next to the classes they
#: describe.
FRAME_TYPE_CODES: Dict[type, int] = {
    DataFrame: 0x0,
    HeadersFrame: 0x1,
    PriorityFrame: 0x2,
    RstStreamFrame: 0x3,
    SettingsFrame: 0x4,
    PushPromiseFrame: 0x5,
    PingFrame: 0x6,
    GoAwayFrame: 0x7,
    WindowUpdateFrame: 0x8,
    ContinuationFrame: 0x9,
}

#: RFC 7540 §6 frame flags (only the ones the frame classes model).
FLAG_END_STREAM = 0x1
FLAG_ACK = 0x1
FLAG_END_HEADERS = 0x4
FLAG_PADDED = 0x8
FLAG_PRIORITY = 0x20
