"""HTTP/2 SETTINGS parameters (RFC 7540 §6.5.2)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

#: RFC identifiers for the settings, used in SETTINGS frame sizing.
SETTINGS_HEADER_TABLE_SIZE = 0x1
SETTINGS_ENABLE_PUSH = 0x2
SETTINGS_MAX_CONCURRENT_STREAMS = 0x3
SETTINGS_INITIAL_WINDOW_SIZE = 0x4
SETTINGS_MAX_FRAME_SIZE = 0x5
SETTINGS_MAX_HEADER_LIST_SIZE = 0x6

#: Flow-control windows may not exceed 2^31 - 1.
MAX_WINDOW_SIZE = (1 << 31) - 1


@dataclass
class H2Settings:
    """One peer's settings.

    Defaults follow RFC 7540; browser-like profiles override
    ``initial_window_size`` upward so that transport (TCP) rather than
    HTTP/2 flow control governs throughput — which is how Firefox, the
    paper's client, behaves (12 MiB windows).
    """

    header_table_size: int = 4096
    enable_push: bool = True
    max_concurrent_streams: int = 100
    initial_window_size: int = 65535
    max_frame_size: int = 16384
    max_header_list_size: int = 1 << 20

    def __post_init__(self) -> None:
        if not (0 < self.initial_window_size <= MAX_WINDOW_SIZE):
            raise ValueError("initial window size out of range")
        if not (16384 <= self.max_frame_size <= (1 << 24) - 1):
            raise ValueError("max frame size out of range")
        if self.max_concurrent_streams < 1:
            raise ValueError("max concurrent streams must be >= 1")

    def changed_from(self, other: "H2Settings") -> Dict[int, int]:
        """Settings ids+values differing from ``other`` (for frame sizing)."""
        diff: Dict[int, int] = {}
        pairs = [
            (SETTINGS_HEADER_TABLE_SIZE, self.header_table_size,
             other.header_table_size),
            (SETTINGS_ENABLE_PUSH, int(self.enable_push), int(other.enable_push)),
            (SETTINGS_MAX_CONCURRENT_STREAMS, self.max_concurrent_streams,
             other.max_concurrent_streams),
            (SETTINGS_INITIAL_WINDOW_SIZE, self.initial_window_size,
             other.initial_window_size),
            (SETTINGS_MAX_FRAME_SIZE, self.max_frame_size, other.max_frame_size),
            (SETTINGS_MAX_HEADER_LIST_SIZE, self.max_header_list_size,
             other.max_header_list_size),
        ]
        for setting_id, mine, theirs in pairs:
            if mine != theirs:
                diff[setting_id] = mine
        return diff


def firefox_like_settings() -> H2Settings:
    """The client profile the paper used (Firefox): huge windows, no push
    restrictions, default frame size."""
    return H2Settings(
        initial_window_size=12 * 1024 * 1024,
        max_concurrent_streams=256,
    )


def default_server_settings() -> H2Settings:
    """A typical production server profile."""
    return H2Settings(
        max_concurrent_streams=128,
        initial_window_size=1024 * 1024,
    )
