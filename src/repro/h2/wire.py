"""RFC 7540 §4 binary framing for the symbolic frame objects.

The simulator's frames (:mod:`repro.h2.frames`) are Python objects with
exact ``wire_length`` accounting but no byte representation — DATA
payloads and header blocks are octet *counts*, not octets.  This module
gives every frame a real wire form anyway: structural fields (type,
flags, stream id, error codes, settings, priorities, lengths) are laid
out exactly as RFC 7540 prescribes, and symbolic payload regions are
rendered as a deterministic filler pattern of the exact length.

Because the filler is a pure function of its length, the round trip

    decode_frame(encode_frame(f)) re-encoded  ==  encode_frame(f)

is byte-exact, which is what the ``repro verify`` conformance harness
asserts: any mis-parsed length, flag or field breaks the equality.

``decode_frame`` validates the frame header (reserved bit, known type
code, length consistency) and raises :class:`WireError` on malformed
input.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.h2.errors import H2ErrorCode
from repro.h2.frames import (
    FLAG_ACK,
    FLAG_END_HEADERS,
    FLAG_END_STREAM,
    FLAG_PADDED,
    FLAG_PRIORITY,
    FRAME_HEADER_BYTES,
    FRAME_TYPE_CODES,
    ContinuationFrame,
    DataFrame,
    Frame,
    GoAwayFrame,
    HeadersFrame,
    PingFrame,
    PriorityFrame,
    PushPromiseFrame,
    RstStreamFrame,
    SettingsFrame,
    WindowUpdateFrame,
)
from repro.hpack.codec import HeaderBlock

#: Largest payload the 24-bit length field can carry.
MAX_PAYLOAD = (1 << 24) - 1

_CLASS_BY_CODE = {code: cls for cls, code in FRAME_TYPE_CODES.items()}


class WireError(ValueError):
    """Malformed or unsupported bytes handed to :func:`decode_frame`."""


def _filler(length: int) -> bytes:
    """Deterministic stand-in octets for a symbolic payload region."""
    return bytes(index % 251 for index in range(length))


def _u32(value: int) -> bytes:
    return value.to_bytes(4, "big")


def _frame_flags(frame: Frame) -> int:
    flags = 0
    if isinstance(frame, DataFrame):
        flags |= FLAG_END_STREAM if frame.end_stream else 0
        flags |= FLAG_PADDED if frame.padding else 0
    elif isinstance(frame, HeadersFrame):
        flags |= FLAG_END_STREAM if frame.end_stream else 0
        flags |= FLAG_END_HEADERS if frame.end_headers else 0
        flags |= FLAG_PRIORITY if frame.priority_weight is not None else 0
    elif isinstance(frame, (SettingsFrame, PingFrame)):
        flags |= FLAG_ACK if frame.ack else 0
    elif isinstance(frame, PushPromiseFrame):
        flags |= FLAG_END_HEADERS
    elif isinstance(frame, ContinuationFrame):
        flags |= FLAG_END_HEADERS if frame.end_headers else 0
    return flags


def _priority_fields(depends_on: int, exclusive: bool, weight: int) -> bytes:
    dependency = depends_on | (0x80000000 if exclusive else 0)
    return _u32(dependency) + bytes([weight - 1])


def _payload(frame: Frame) -> bytes:
    if isinstance(frame, DataFrame):
        parts = []
        if frame.padding:
            parts.append(bytes([frame.padding]))
        parts.append(_filler(frame.data_bytes))
        if frame.padding:
            parts.append(b"\x00" * frame.padding)
        return b"".join(parts)
    if isinstance(frame, HeadersFrame):
        block_len = frame.block.encoded_length if frame.block else 0
        prefix = b""
        if frame.priority_weight is not None:
            prefix = _priority_fields(
                frame.priority_depends_on,
                frame.priority_exclusive,
                frame.priority_weight,
            )
        return prefix + _filler(block_len)
    if isinstance(frame, PriorityFrame):
        return _priority_fields(frame.depends_on, frame.exclusive, frame.weight)
    if isinstance(frame, RstStreamFrame):
        return _u32(int(frame.error_code))
    if isinstance(frame, SettingsFrame):
        return b"".join(
            identifier.to_bytes(2, "big") + _u32(value)
            for identifier, value in frame.settings.items()
        )
    if isinstance(frame, PushPromiseFrame):
        block_len = frame.block.encoded_length if frame.block else 0
        return _u32(frame.promised_stream_id) + _filler(block_len)
    if isinstance(frame, PingFrame):
        return _filler(8)
    if isinstance(frame, GoAwayFrame):
        return (
            _u32(frame.last_stream_id)
            + _u32(int(frame.error_code))
            + _filler(frame.debug_bytes)
        )
    if isinstance(frame, WindowUpdateFrame):
        return _u32(frame.increment)
    if isinstance(frame, ContinuationFrame):
        return _filler(frame.block_bytes)
    raise WireError(f"cannot serialize frame type {type(frame).__name__}")


def encode_frame(frame: Frame) -> bytes:
    """Render ``frame`` as RFC 7540 octets (header + payload).

    The result is always exactly ``frame.wire_length`` octets — the
    symbolic accounting and the binary layout agree by construction,
    and the conformance harness asserts it.
    """
    type_code = FRAME_TYPE_CODES.get(type(frame))
    if type_code is None:
        raise WireError(f"unknown frame class {type(frame).__name__}")
    payload = _payload(frame)
    if len(payload) > MAX_PAYLOAD:
        raise WireError(f"payload of {len(payload)} octets exceeds 2^24-1")
    header = (
        len(payload).to_bytes(3, "big")
        + bytes([type_code, _frame_flags(frame)])
        + _u32(frame.stream_id & 0x7FFFFFFF)
    )
    return header + payload


def decode_frame(data: bytes, offset: int = 0) -> Tuple[Frame, int]:
    """Parse one frame at ``offset``; returns ``(frame, next_offset)``.

    Symbolic payload regions come back as counts (``data_bytes``,
    ``HeaderBlock`` with no instructions but the right length), so a
    decoded frame re-encodes to the identical octets.

    Raises:
        WireError: truncated input, unknown type code, a set reserved
            bit, or a payload inconsistent with its type's layout.
    """
    if offset + FRAME_HEADER_BYTES > len(data):
        raise WireError("truncated frame header")
    length = int.from_bytes(data[offset:offset + 3], "big")
    type_code = data[offset + 3]
    flags = data[offset + 4]
    raw_stream = int.from_bytes(data[offset + 5:offset + 9], "big")
    if raw_stream & 0x80000000:
        raise WireError("reserved stream-id bit is set")
    cls = _CLASS_BY_CODE.get(type_code)
    if cls is None:
        raise WireError(f"unknown frame type code 0x{type_code:02x}")
    start = offset + FRAME_HEADER_BYTES
    end = start + length
    if end > len(data):
        raise WireError("truncated frame payload")
    payload = data[start:end]
    frame = _decode_payload(cls, raw_stream, flags, payload)
    return frame, end


def decode_frames(data: bytes) -> List[Frame]:
    """Parse a back-to-back frame sequence covering all of ``data``."""
    frames: List[Frame] = []
    offset = 0
    while offset < len(data):
        frame, offset = decode_frame(data, offset)
        frames.append(frame)
    return frames


def _decode_priority(payload: bytes) -> Tuple[int, bool, int]:
    dependency = int.from_bytes(payload[:4], "big")
    return dependency & 0x7FFFFFFF, bool(dependency & 0x80000000), payload[4] + 1


def _decode_payload(cls, stream_id: int, flags: int, payload: bytes) -> Frame:
    if cls is DataFrame:
        padding = 0
        body = payload
        if flags & FLAG_PADDED:
            if not payload:
                raise WireError("PADDED DATA frame without pad length")
            padding = payload[0]
            body = payload[1:]
            if padding > len(body):
                raise WireError("pad length exceeds DATA payload")
            body = body[:len(body) - padding]
        return DataFrame(
            stream_id=stream_id,
            data_bytes=len(body),
            end_stream=bool(flags & FLAG_END_STREAM),
            padding=padding,
        )
    if cls is HeadersFrame:
        weight = None
        depends_on = 0
        exclusive = False
        block = payload
        if flags & FLAG_PRIORITY:
            if len(payload) < 5:
                raise WireError("HEADERS priority fields truncated")
            depends_on, exclusive, weight = _decode_priority(payload)
            block = payload[5:]
        return HeadersFrame(
            stream_id=stream_id,
            block=HeaderBlock((), len(block)) if block else None,
            end_stream=bool(flags & FLAG_END_STREAM),
            end_headers=bool(flags & FLAG_END_HEADERS),
            priority_weight=weight,
            priority_depends_on=depends_on,
            priority_exclusive=exclusive,
        )
    if cls is PriorityFrame:
        if len(payload) != 5:
            raise WireError("PRIORITY payload must be 5 octets")
        depends_on, exclusive, weight = _decode_priority(payload)
        return PriorityFrame(
            stream_id=stream_id,
            depends_on=depends_on,
            weight=weight,
            exclusive=exclusive,
        )
    if cls is RstStreamFrame:
        if len(payload) != 4:
            raise WireError("RST_STREAM payload must be 4 octets")
        return RstStreamFrame(
            stream_id=stream_id,
            error_code=_error_code(payload),
        )
    if cls is SettingsFrame:
        if len(payload) % 6:
            raise WireError("SETTINGS payload must be a multiple of 6")
        settings = {}
        for index in range(0, len(payload), 6):
            identifier = int.from_bytes(payload[index:index + 2], "big")
            settings[identifier] = int.from_bytes(
                payload[index + 2:index + 6], "big"
            )
        return SettingsFrame(
            stream_id=stream_id,
            settings=settings,
            ack=bool(flags & FLAG_ACK),
        )
    if cls is PushPromiseFrame:
        if len(payload) < 4:
            raise WireError("PUSH_PROMISE payload truncated")
        block_len = len(payload) - 4
        return PushPromiseFrame(
            stream_id=stream_id,
            promised_stream_id=int.from_bytes(payload[:4], "big"),
            block=HeaderBlock((), block_len) if block_len else None,
        )
    if cls is PingFrame:
        if len(payload) != 8:
            raise WireError("PING payload must be 8 octets")
        return PingFrame(stream_id=stream_id, ack=bool(flags & FLAG_ACK))
    if cls is GoAwayFrame:
        if len(payload) < 8:
            raise WireError("GOAWAY payload truncated")
        return GoAwayFrame(
            stream_id=stream_id,
            last_stream_id=int.from_bytes(payload[:4], "big") & 0x7FFFFFFF,
            error_code=_error_code(payload[4:8]),
            debug_bytes=len(payload) - 8,
        )
    if cls is WindowUpdateFrame:
        if len(payload) != 4:
            raise WireError("WINDOW_UPDATE payload must be 4 octets")
        increment = int.from_bytes(payload, "big") & 0x7FFFFFFF
        if increment == 0:
            raise WireError("WINDOW_UPDATE increment of 0")
        return WindowUpdateFrame(stream_id=stream_id, increment=increment)
    if cls is ContinuationFrame:
        return ContinuationFrame(
            stream_id=stream_id,
            block_bytes=len(payload),
            end_headers=bool(flags & FLAG_END_HEADERS),
        )
    raise WireError(f"no decoder for {cls.__name__}")  # pragma: no cover


def _error_code(payload: bytes) -> H2ErrorCode:
    value = int.from_bytes(payload[:4], "big")
    try:
        return H2ErrorCode(value)
    except ValueError as error:
        raise WireError(f"unknown error code 0x{value:08x}") from error


def frame_signature(frame: Frame) -> Tuple:
    """A structural fingerprint invariant under encode→decode.

    Symbolic content (header lists, instruction streams, contexts) is
    reduced to the lengths the wire actually carries, so a frame and
    its decode share a signature exactly when the wire form preserved
    every structural field.
    """
    signature: Tuple = (
        type(frame).__name__,
        frame.stream_id,
        frame.payload_length,
        _frame_flags(frame),
    )
    if isinstance(frame, PriorityFrame):
        signature += (frame.depends_on, frame.weight, frame.exclusive)
    elif isinstance(frame, HeadersFrame):
        signature += (
            frame.priority_weight,
            frame.priority_depends_on,
            frame.priority_exclusive,
        )
    elif isinstance(frame, (RstStreamFrame, GoAwayFrame)):
        signature += (int(frame.error_code),)
    elif isinstance(frame, SettingsFrame):
        signature += (tuple(sorted(frame.settings.items())),)
    elif isinstance(frame, PushPromiseFrame):
        signature += (frame.promised_stream_id,)
    elif isinstance(frame, WindowUpdateFrame):
        signature += (frame.increment,)
    return signature
