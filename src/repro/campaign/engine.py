"""The campaign engine: shard → worker → trial streaming execution.

A *campaign* runs 10⁵–10⁷ seeded sessions of the paper's attack over a
synthetic page population (:class:`~repro.web.workload.PopulationWorkload`)
and reports population-scale attack statistics.  The execution hierarchy:

* the campaign is split into fixed-size **shards** of consecutive
  session indices;
* shards are mapped over **workers** by the existing
  :class:`~repro.experiments.executor.TrialExecutor` (spawn processes,
  crash isolation, shard-level retry);
* inside a shard, **trials** (sessions) run one at a time and fold
  immediately into a :class:`~repro.campaign.columnar.ColumnarSummary`
  — no per-trial object outlives its shard, so a worker's memory is
  O(1) in the session count and the parent's is O(shards).

Checkpoint/resume rides the executor's JSON
:class:`~repro.experiments.executor.Checkpoint`: each completed shard's
columnar summary (plain integers) streams to disk, and a re-run of the
same campaign — the checkpoint file name is derived from the campaign
config — skips completed shards and merges to a bit-identical result.

Two session engines:

* ``analytic`` (default) — evaluates the §V size-identification attack
  directly on the page spec with the shared framing model
  (:func:`repro.core.predictor.expected_wire_payload`), a seeded
  estimator-noise model, and a calibrated Bernoulli for the
  serialization phase.  Microseconds per session; this is what makes a
  10⁵–10⁷ session campaign tractable on CI-class hardware.
* ``full`` — materialises each spec into a servable website and runs
  the complete packet-level attacked load (topology, TCP, HTTP/2,
  adversary), exactly like the E12 generalization study.  ~0.1 s per
  session; used for small campaigns and for calibrating the analytic
  model's serialization rate.
"""

from __future__ import annotations

import hashlib
import math
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.campaign.columnar import ColumnarSummary, merge_summaries
from repro.core.predictor import (
    DEFAULT_CHUNK_BYTES,
    RECORD_OVERHEAD,
    expected_wire_payload,
)
from repro.experiments.executor import (
    FaultTolerance,
    TrialError,
    TrialExecutor,
    heartbeat,
)
from repro.experiments.report import format_table
from repro.fastpath import BACKEND_ENV, resolve_backend
from repro.web.workload import PageSpec, PopulationConfig, PopulationWorkload

#: Session engines accepted by :class:`CampaignConfig`.
MODES = ("analytic", "full")


@dataclass(frozen=True)
class AnalyticModel:
    """Knobs of the analytic (closed-form) session evaluator.

    Identification is evaluated *exactly* — the adversary's framing
    model, tolerance window and nearest-match rule are the real
    :class:`~repro.core.predictor.SizePredictor` logic applied to the
    page's ground-truth sizes.  Two stochastic components stand in for
    the packet-level machinery, both drawn from the session's seeded
    substream:

    * estimator noise — the observed target payload is the expected
      wire payload perturbed by a TLS-record miscount
      (±``RECORD_OVERHEAD`` with probability ``record_miscount_rate``)
      plus uniform byte noise in ``[-noise_bytes, +noise_bytes]``;
    * serialization success — a Bernoulli whose rate falls linearly
      with page object count, calibrated against the full-simulation
      E12 generalization study (busier pages give the drop window more
      chances to miss).

    Attributes:
        tolerance_abs / tolerance_rel: the predictor's match window.
        chunk_bytes: server DATA chunking granularity.
        record_miscount_rate: probability the estimator over- or
            under-counts one TLS record (split evenly between ±1).
        noise_bytes: half-width of the uniform byte noise.
        serialize_base: serialization success rate of a minimal page.
        serialize_slope: success-rate decay per embedded object.
        serialize_floor: lower bound of the serialization rate.
    """

    tolerance_abs: int = 350
    tolerance_rel: float = 0.05
    chunk_bytes: int = DEFAULT_CHUNK_BYTES
    record_miscount_rate: float = 0.2
    noise_bytes: int = 48
    serialize_base: float = 0.99
    serialize_slope: float = 0.003
    serialize_floor: float = 0.60

    def __post_init__(self) -> None:
        if not 0 <= self.record_miscount_rate <= 1:
            raise ValueError("record_miscount_rate must be in [0, 1]")
        if self.noise_bytes < 0:
            raise ValueError("noise_bytes must be non-negative")
        if not 0 <= self.serialize_floor <= self.serialize_base <= 1:
            raise ValueError(
                "need 0 <= serialize_floor <= serialize_base <= 1"
            )

    def serialize_rate(self, object_count: int) -> float:
        """Serialization success probability for a page of this size."""
        return max(
            self.serialize_floor,
            self.serialize_base - self.serialize_slope * object_count,
        )


@dataclass(frozen=True)
class CampaignConfig:
    """Parameters of one campaign run (picklable, fully deterministic).

    Attributes:
        sessions: total seeded sessions.
        shard_size: consecutive sessions per shard; peak memory and
            checkpoint granularity are both O(``sessions/shard_size``).
        seed: population master seed.
        mode: session engine (``analytic`` or ``full``).
        population: heavy-tail page population knobs.
        model: analytic evaluator knobs (ignored in ``full`` mode).
        horizon: full-mode simulated-time budget per session.
        transport: transport under the full-mode packet stack.  The
            analytic model's serialization rate is calibrated against
            TCP head-of-line blocking, so ``analytic`` mode only
            accepts ``tcp``; the field participates in :meth:`digest`,
            keeping checkpoints from different transports apart.
    """

    sessions: int = 100_000
    shard_size: int = 2_000
    seed: int = 7
    mode: str = "analytic"
    population: PopulationConfig = field(default_factory=PopulationConfig)
    model: AnalyticModel = field(default_factory=AnalyticModel)
    horizon: float = 40.0
    transport: str = "tcp"

    def __post_init__(self) -> None:
        from repro.transport import TRANSPORTS

        if self.sessions < 1:
            raise ValueError("sessions must be >= 1")
        if self.shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        if self.mode not in MODES:
            raise ValueError(
                f"unknown campaign mode {self.mode!r}; expected one of {MODES}"
            )
        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {self.transport!r}; "
                f"expected one of {TRANSPORTS}"
            )
        if self.mode == "analytic" and self.transport != "tcp":
            raise ValueError(
                "analytic mode models TCP serialization; use mode='full' "
                f"for transport {self.transport!r}"
            )

    @property
    def shard_count(self) -> int:
        return math.ceil(self.sessions / self.shard_size)

    def shard_range(self, shard: int) -> range:
        """Session indices of one shard."""
        start = shard * self.shard_size
        return range(start, min(start + self.shard_size, self.sessions))

    def digest(self) -> str:
        """Stable digest of the config — the checkpoint file identity.

        Config dataclasses hold only ints/floats/strings/tuples, whose
        reprs are deterministic across processes and runs.
        """
        return hashlib.sha256(repr(self).encode("utf-8")).hexdigest()[:12]


# ---------------------------------------------------------------------------
# Session evaluation
# ---------------------------------------------------------------------------


def evaluate_page_analytic(
    spec: PageSpec, stream, model: AnalyticModel
) -> Dict[str, Any]:
    """Closed-form evaluation of one session; returns fold kwargs.

    Walks the page inventory once: the observed target payload is
    nearest-matched against every object's expected wire payload under
    the predictor's tolerance rule (ties break toward the earlier
    candidate, target first — the same first-wins rule as
    ``SizePredictor.classify`` with a deterministic pool order).
    """
    chunk = model.chunk_bytes
    expected_target = expected_wire_payload(spec.target_size, chunk)

    # Estimator noise: a possible TLS record miscount plus byte jitter.
    miscount = 0
    if stream.random() < model.record_miscount_rate:
        miscount = 1 if stream.random() < 0.5 else -1
    observed = (
        expected_target
        + miscount * RECORD_OVERHEAD
        + stream.randint(-model.noise_bytes, model.noise_bytes)
    )

    tolerance_abs = model.tolerance_abs
    tolerance_rel = model.tolerance_rel
    best_error: Optional[int] = None
    best_is_target = False
    confusers = 0
    # Candidate order: the target, then embedded objects in rank order.
    for position, size in enumerate((spec.target_size,) + spec.object_sizes):
        expected = expected_wire_payload(size, chunk)
        error = abs(observed - expected)
        if error > max(tolerance_abs, tolerance_rel * expected):
            continue
        if position > 0:
            confusers += 1
        if best_error is None or error < best_error:
            best_error = error
            best_is_target = position == 0
    identified = best_is_target
    serialized = stream.random() < model.serialize_rate(spec.object_count)
    return {
        "objects": spec.object_count,
        "page_bytes": spec.page_bytes,
        "target_bytes": spec.target_size,
        "serialized": serialized,
        "identified": identified,
        "confusers": confusers,
        "match_error": best_error if identified else 0,
        "broken": False,
        "duration_us": 0,
    }


def evaluate_page_full(
    spec: PageSpec,
    rng,
    model: AnalyticModel,
    horizon: float = 40.0,
    transport: str = "tcp",
) -> Dict[str, Any]:
    """Packet-level evaluation of one session; returns fold kwargs.

    Materialises the spec into a servable site and runs the complete
    attacked load — the E12 generalization trial shape — then scores
    identification with the real estimator/predictor pipeline.
    Imports are local so analytic campaigns never touch the simulator.
    """
    from repro.core.adversary import Adversary, AdversaryConfig
    from repro.core.controller import NetworkController
    from repro.core.estimator import SizeEstimator
    from repro.core.metrics import MultiplexingReport
    from repro.core.monitor import TrafficMonitor
    from repro.core.predictor import SizePredictor
    from repro.h2.client import H2Client
    from repro.h2.server import H2Server, ServerConfig
    from repro.netsim.topology import build_adversary_path
    from repro.web.browser import Browser, BrowserConfig
    from repro.web.generator import generate_site_from_spec

    site = generate_site_from_spec(rng, spec)
    topology = build_adversary_path(seed=rng.master_seed)
    sim = topology.sim
    server = H2Server(
        sim, topology.server, 443, site.website.router,
        config=ServerConfig(), trace=topology.trace, rng=rng,
        transport=transport,
    )
    client = H2Client(
        sim, topology.client, topology.server.endpoint(443),
        trace=topology.trace, authority="population.example",
        transport=transport,
    )
    browser = Browser(
        sim, client, site.schedule, config=BrowserConfig(),
        trace=topology.trace,
    )
    controller = NetworkController(
        sim, topology.middlebox, rng, trace=topology.trace
    )
    target_position = site.schedule.index_of(site.target_object_id) + 1
    adversary = Adversary(
        controller,
        AdversaryConfig(
            trigger_get_index=target_position,
            escalated_jitter=0.400,
        ),
        trace=topology.trace,
    )
    adversary.arm()
    browser.start()
    while sim.now < horizon:
        sim.run_until(min(sim.now + 0.5, horizon))
        if browser.broken or browser.page_complete:
            sim.run_until(min(sim.now + 0.3, horizon))
            break

    report = (
        MultiplexingReport.from_layout(server.connections[0].tcp.layout)
        if server.connections else MultiplexingReport()
    )
    serialized = report.min_degree(site.target_object_id) == 0.0

    monitor = TrafficMonitor(topology.middlebox.capture)
    estimates = SizeEstimator().estimate(monitor.response_packets())
    predictor = SizePredictor(
        site.website.size_map(),
        chunk_bytes=model.chunk_bytes,
        tolerance_abs=model.tolerance_abs,
        tolerance_rel=model.tolerance_rel,
    )
    identified = False
    match_error = 0
    candidate = predictor.find_object(estimates, site.target_object_id)
    if candidate is not None:
        best = predictor.classify(candidate)
        if best is not None and best.object_id == site.target_object_id:
            identified = True
            match_error = best.error

    # Tolerance-window crowding is a property of the inventory itself.
    expected_target = predictor.expected_for(site.target_object_id)
    confusers = 0
    for object_id in site.website.size_map():
        if object_id == site.target_object_id:
            continue
        expected = predictor.expected_for(object_id)
        budget = max(
            model.tolerance_abs, model.tolerance_rel * expected
        )
        if abs(expected_target - expected) <= budget:
            confusers += 1

    return {
        "objects": spec.object_count,
        "page_bytes": spec.page_bytes,
        "target_bytes": spec.target_size,
        "serialized": serialized,
        "identified": identified,
        "confusers": confusers,
        "match_error": match_error,
        "broken": browser.broken,
        "duration_us": round(sim.now * 1_000_000),
    }


# ---------------------------------------------------------------------------
# Shard execution
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardTask:
    """Picklable worker task: run one shard, return its columnar JSON.

    The returned value is the summary's plain-integer JSON dict, which
    the executor's checkpoint persists verbatim — so a resumed campaign
    reads back exactly the bytes a completed shard produced.

    ``backend`` selects the execution strategy, never the result: the
    ``fast`` analytic path runs the shard through the numpy batch
    kernel (:func:`repro.fastpath.analytic.evaluate_shard_analytic`),
    which folds to a bit-identical summary; in ``full`` mode it turns
    on simulator event batching via the environment instead.
    """

    config: CampaignConfig
    backend: str = "python"

    def __call__(self, shard: int) -> Dict[str, Any]:
        config = self.config
        workload = PopulationWorkload(
            seed=config.seed, config=config.population
        )
        span = config.shard_range(shard)
        heartbeat()  # shard started (no-op outside supervised workers)
        if config.mode == "analytic" and self.backend == "fast":
            from repro.fastpath.analytic import evaluate_shard_analytic

            summary = evaluate_shard_analytic(
                workload, span.start, span.stop, config.model
            )
            return summary.to_json()
        summary = ColumnarSummary()
        full = config.mode == "full"
        if full and self.backend == "fast":
            # The packet-level engine reads the backend from the
            # environment when building its Simulator (event batching).
            os.environ[BACKEND_ENV] = "fast"
        for session in span:
            heartbeat()  # per-session progress beat (throttled)
            spec = workload.page_spec(session)
            if full:
                outcome = evaluate_page_full(
                    spec,
                    workload.session_rng(session),
                    config.model,
                    horizon=config.horizon,
                    transport=config.transport,
                )
            else:
                outcome = evaluate_page_analytic(
                    spec, workload.analytic_stream(session), config.model
                )
            summary.fold_session(**outcome)
            # Nothing from this session survives: spec, rng and outcome
            # are dropped here; only the columnar fold remains.
        return summary.to_json()


class CampaignError(RuntimeError):
    """A shard exhausted its retries; the campaign total would be wrong.

    Raised only when ``allow_partial`` is off.  ``errors`` carries the
    structured per-shard records (kind, attempts, history) and
    ``manifest_path`` names the failure manifest, when one was written,
    so callers can point operators at the full accounting.
    """

    def __init__(
        self,
        errors: List[TrialError],
        manifest_path: Optional[str] = None,
    ) -> None:
        shards = ", ".join(str(error.trial) for error in errors)
        message = f"{len(errors)} shard(s) failed after retries: {shards}"
        if manifest_path:
            message += f" (failure manifest: {manifest_path})"
        super().__init__(message)
        self.errors = errors
        self.manifest_path = manifest_path


@dataclass
class CampaignResult:
    """Merged campaign output plus run metadata.

    A result is *partial* when ``errors`` is non-empty (only possible
    with ``allow_partial=True``): the summary then covers exactly the
    completed shards, and the coverage accounting — completed vs failed
    vs deadline-skipped shards, sessions covered — is part of the JSON
    and the rendered table.  A full-coverage result serializes byte-for-
    byte as before, so goldens never see the degraded fields.
    """

    config: CampaignConfig
    summary: ColumnarSummary
    shards: int
    workers: int
    resumed_shards: int = 0
    #: Execution strategy the run used.  Deliberately *excluded* from
    #: to_json()/render(): backends are bit-identical, so reports and
    #: checkpoints must not differ by backend.
    backend: str = "python"
    #: Shards that did not complete (empty on a full-coverage run).
    errors: List[TrialError] = field(default_factory=list)
    #: Checkpoint files quarantined on resume (``.corrupt`` sidecars).
    quarantined: List[str] = field(default_factory=list)
    #: Failure-manifest path, when one was written.
    manifest_path: Optional[str] = None

    def digest(self) -> str:
        """Digest of the merged summary — the bit-identity handle."""
        return self.summary.digest()

    @property
    def partial(self) -> bool:
        """Whether coverage is degraded (some shards did not complete)."""
        return bool(self.errors)

    @property
    def failed_shards(self) -> List[TrialError]:
        return [e for e in self.errors if e.kind != "deadline"]

    @property
    def skipped_shards(self) -> List[TrialError]:
        return [e for e in self.errors if e.kind == "deadline"]

    @property
    def sessions_covered(self) -> int:
        missing = sum(
            len(self.config.shard_range(e.trial)) for e in self.errors
        )
        return self.config.sessions - missing

    def coverage(self) -> Dict[str, Any]:
        """The coverage accounting block (stable, deterministic)."""
        return {
            "completed_shards": self.shards - len(self.errors),
            "failed_shards": len(self.failed_shards),
            "skipped_shards": len(self.skipped_shards),
            "sessions_total": self.config.sessions,
            "sessions_covered": self.sessions_covered,
            "error_kinds": sorted(
                {e.kind for e in self.errors}
            ),
            "shards": sorted(e.trial for e in self.errors),
        }

    def to_json(self) -> Dict[str, Any]:
        """Deterministic JSON (no wall-clock state; safe to diff).

        The ``coverage`` block appears only on a partial result, so a
        clean default-path run's bytes are unchanged.
        """
        summary = self.summary
        payload = {
            "campaign": {
                "sessions": self.config.sessions,
                "shard_size": self.config.shard_size,
                "shards": self.shards,
                "seed": self.config.seed,
                "mode": self.config.mode,
                "config_digest": self.config.digest(),
            },
            "summary": summary.to_json(),
            "digest": summary.digest(),
            "rates": {
                "serialized": round(summary.rate("serialized"), 6),
                "identified": round(summary.rate("identified"), 6),
                "succeeded": round(summary.rate("succeeded"), 6),
                "ambiguous": round(summary.rate("ambiguous"), 6),
            },
        }
        if self.partial:
            payload["coverage"] = self.coverage()
        return payload

    def render(self) -> str:
        """The campaign report table (deterministic stdout).

        Coverage rows are appended only when the result is partial —
        the full-coverage table is byte-identical to the golden form.
        """
        summary = self.summary
        sessions = summary.sessions
        rows = [
            ["sessions", f"{sessions}"],
            ["shards", f"{self.shards} × {self.config.shard_size}"],
            ["mode", self.config.mode],
            ["population seed", f"{self.config.seed}"],
            ["objects/page (mean)", f"{summary.mean('objects'):.1f}"],
            [
                "objects/page (min–max)",
                f"{summary.mins.get('objects', 0)}–"
                f"{summary.maxs.get('objects', 0)}",
            ],
            ["page weight (mean)", f"{summary.mean('page_bytes'):,.0f} B"],
            ["target serialized", f"{100.0 * summary.rate('serialized'):.1f}%"],
            ["target identified", f"{100.0 * summary.rate('identified'):.1f}%"],
            ["attack success", f"{100.0 * summary.rate('succeeded'):.1f}%"],
            ["ambiguous pages", f"{100.0 * summary.rate('ambiguous'):.1f}%"],
            ["summary digest", summary.digest()[:16]],
        ]
        if self.partial:
            covered = self.sessions_covered
            rows.extend([
                [
                    "coverage (PARTIAL)",
                    f"{covered}/{self.config.sessions} sessions "
                    f"({100.0 * covered / self.config.sessions:.1f}%)",
                ],
                [
                    "failed shards",
                    ", ".join(str(e.trial) for e in self.failed_shards)
                    or "—",
                ],
                [
                    "skipped shards (deadline)",
                    ", ".join(str(e.trial) for e in self.skipped_shards)
                    or "—",
                ],
            ])
        return format_table(
            ["campaign", "value"], rows,
            title=(
                "Campaign — population-scale attack statistics "
                "(streaming columnar fold)"
            ),
        )


def checkpoint_path(config: CampaignConfig, checkpoint_dir: str) -> str:
    """The campaign's shard-checkpoint file inside ``checkpoint_dir``.

    Derived from the config digest, so re-running the same campaign
    resumes its own file and a different campaign never collides.
    """
    return os.path.join(
        checkpoint_dir, f"campaign-{config.digest()}.json"
    )


#: Default base seconds of the deterministic retry backoff between
#: same-seed shard retries (``REPRO_BACKOFF`` overrides; 0 disables).
DEFAULT_BACKOFF_BASE = 0.05


def run_campaign(
    config: CampaignConfig,
    workers: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    retries: int = 1,
    backend: Optional[str] = None,
    allow_partial: bool = False,
    deadline: Optional[float] = None,
    heartbeat_timeout: Optional[float] = None,
    failure_manifest: Optional[str] = None,
    shard_task: Optional[Callable[[int], Dict[str, Any]]] = None,
) -> CampaignResult:
    """Run (or resume) a campaign under supervision and merge its shards.

    Args:
        config: the campaign parameters.
        workers: worker processes for shard execution (argument →
            ``REPRO_WORKERS`` → 1, like every experiment).
        checkpoint_dir: when set, completed shard summaries stream into
            a JSON checkpoint there and a re-run with the same config
            resumes from it; the merged output is bit-identical whether
            or not the run was interrupted.  A corrupted, truncated or
            foreign checkpoint found on resume is quarantined to a
            ``.corrupt`` sidecar and its shards recomputed cleanly.
        retries: same-seed retries per failed shard.
        backend: execution strategy (argument → ``REPRO_BACKEND`` →
            ``python``).  ``fast`` runs analytic shards through the
            numpy batch kernel; results are bit-identical either way,
            so checkpoints are shareable across backends.
        allow_partial: instead of raising :class:`CampaignError` when
            shards exhaust their retries, return a partial
            :class:`CampaignResult` with explicit coverage accounting.
        deadline: wall-clock budget in seconds for the whole campaign;
            shards unfinished at expiry are recorded as skipped
            (``kind="deadline"``), never persisted, so a later resume
            completes them.
        heartbeat_timeout: hung-shard watchdog — a supervised worker
            silent for longer than this is killed and retried.
        failure_manifest: when set, a machine-readable JSON manifest
            (see :mod:`repro.campaign.supervisor`) is written there on
            *every* supervised outcome — complete, partial or failed —
            with per-shard attempt history and quarantine records.
        shard_task: chaos-injection hook — replaces the default
            :class:`ShardTask`; must compute bit-identical summaries
            (the chaos harness wraps the real task with fault triggers).

    Returns:
        The merged :class:`CampaignResult` (partial only with
        ``allow_partial=True``).

    Raises:
        CampaignError: when a shard exhausted its retries and
            ``allow_partial`` is off.
    """
    from repro.campaign import supervisor

    started = time.perf_counter()
    resolved_backend = resolve_backend(backend)
    executor = TrialExecutor(workers=workers)
    task = (
        shard_task if shard_task is not None
        else ShardTask(config, backend=resolved_backend)
    )
    supervised = (
        bool(checkpoint_dir) or allow_partial or deadline is not None
        or heartbeat_timeout is not None
    )
    fault_tolerance = None
    resumed = 0
    quarantined: List[str] = []
    if checkpoint_dir:
        os.makedirs(checkpoint_dir, exist_ok=True)
        path = checkpoint_path(config, checkpoint_dir)
        if os.path.exists(path):
            from repro.experiments.executor import Checkpoint

            existing = Checkpoint(path, config_digest=config.digest())
            resumed = len(existing)
            if existing.quarantined:
                quarantined.append(existing.quarantined)
    if supervised:
        fault_tolerance = FaultTolerance(
            retries=retries,
            checkpoint_path=(
                checkpoint_path(config, checkpoint_dir)
                if checkpoint_dir else None
            ),
            checkpoint_every=1,
            checkpoint_digest=config.digest(),
            deadline=deadline,
            heartbeat_timeout=heartbeat_timeout,
            backoff_base=DEFAULT_BACKOFF_BASE,
            backoff_seed=config.digest(),
        )
    outcomes = executor.map_trials(
        config.shard_count, task, fault_tolerance=fault_tolerance
    )
    errors = [item for item in outcomes if isinstance(item, TrialError)]
    checkpoint = executor.last_checkpoint
    write_error = checkpoint.write_error if checkpoint is not None else None
    if checkpoint is not None and checkpoint.quarantined:
        if checkpoint.quarantined not in quarantined:
            quarantined.append(checkpoint.quarantined)

    manifest_path = None
    if failure_manifest:
        status = (
            "complete" if not errors
            else ("partial" if allow_partial else "failed")
        )
        manifest = supervisor.build_manifest(
            config, errors,
            status=status,
            quarantined=quarantined,
            checkpoint_write_error=write_error,
            elapsed_s=time.perf_counter() - started,
            workers=executor.workers,
            resumed_shards=resumed,
        )
        supervisor.write_manifest(failure_manifest, manifest)
        manifest_path = failure_manifest

    if errors and not allow_partial:
        raise CampaignError(errors, manifest_path=manifest_path)
    # map_trials returns in shard-index order, so this left fold is the
    # canonical merge order regardless of which worker finished first.
    summary = merge_summaries(
        ColumnarSummary.from_json(payload)
        for payload in outcomes
        if not isinstance(payload, TrialError)
    )
    return CampaignResult(
        config=config,
        summary=summary,
        shards=config.shard_count,
        workers=executor.workers,
        resumed_shards=resumed,
        backend=resolved_backend,
        errors=errors,
        quarantined=quarantined,
        manifest_path=manifest_path,
    )
