"""Columnar streaming summaries for campaign shards.

A million-session campaign must never hold a million per-trial objects.
Every shard folds its sessions into one :class:`ColumnarSummary` the
moment they finish — plain integer counters, sums and fixed-width
histogram arrays (:mod:`array` columns), no
:class:`~repro.experiments.harness.TrialSummary` dataclass survives the
fold — and shards merge pairwise into the campaign total.  Peak memory
is therefore O(shards), independent of the session count.

Exact associativity
-------------------

Shard merge order must never change the merged output (the resumed half
of a killed campaign merges in whatever order the checkpoint yields).
Floating-point addition is not associative, so **every column is an
integer**: durations are folded as microseconds, rates are derived only
at report time.  Integer addition, ``min``/``max`` and element-wise
histogram addition are exactly associative and commutative, which the
test suite asserts by merging shards in shuffled orders and comparing
serialized bytes.
"""

from __future__ import annotations

import hashlib
import json
from array import array
from typing import Any, Dict, Iterable

#: Scalar event counters (one increment per session at most).
COUNT_COLUMNS = (
    "sessions",          # sessions folded
    "serialized",        # target served with multiplexing degree 0
    "identified",        # best size match pointed at the target
    "succeeded",         # serialized AND identified (paper criterion)
    "ambiguous",         # >= 1 non-target object inside the tolerance
    "broken",            # page load never completed (full mode only)
)

#: Accumulating integer sums (report-time means divide by ``sessions``).
SUM_COLUMNS = (
    "objects",           # embedded objects per page
    "page_bytes",        # total page body bytes
    "target_bytes",      # target body bytes
    "confusers",         # non-target objects inside the tolerance
    "match_error",       # |observed - expected| wire bytes, identified only
    "duration_us",       # simulated microseconds (full mode only)
)

#: Columns tracked as running minima / maxima over all sessions.
EXTREMA_COLUMNS = ("objects", "page_bytes")

#: log2-bucketed histograms: (name, bucket count).
HISTOGRAMS = (
    ("objects_log2", 12),      # object count buckets [2^0, 2^11]
    ("page_bytes_log2", 40),   # page weight buckets
    ("confusers_log2", 12),    # tolerance-window crowding
)

_SERIAL_VERSION = 1


def _log2_bucket(value: int, buckets: int) -> int:
    """Index of ``value`` in a log2 histogram (0 bucket holds 0)."""
    if value <= 0:
        return 0
    return min(value.bit_length(), buckets - 1)


class ColumnarSummary:
    """Streaming columnar accumulator for one shard (or a whole campaign).

    Fold sessions with :meth:`fold_session`, combine shards with
    :meth:`merge`.  All state is integer-valued, so
    ``a.merge(b)`` == ``b.merge(a)`` bit-for-bit and checkpoint JSON
    round-trips exactly.
    """

    __slots__ = ("counts", "sums", "mins", "maxs", "hists")

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {name: 0 for name in COUNT_COLUMNS}
        self.sums: Dict[str, int] = {name: 0 for name in SUM_COLUMNS}
        self.mins: Dict[str, int] = {}
        self.maxs: Dict[str, int] = {}
        self.hists: Dict[str, array] = {
            name: array("q", [0] * buckets) for name, buckets in HISTOGRAMS
        }

    # -- folding ---------------------------------------------------------

    def fold_session(
        self,
        *,
        objects: int,
        page_bytes: int,
        target_bytes: int,
        serialized: bool,
        identified: bool,
        confusers: int,
        match_error: int = 0,
        broken: bool = False,
        duration_us: int = 0,
    ) -> None:
        """Fold one finished session; the caller discards its objects."""
        counts = self.counts
        counts["sessions"] += 1
        counts["serialized"] += serialized
        counts["identified"] += identified
        counts["succeeded"] += serialized and identified
        counts["ambiguous"] += confusers > 0
        counts["broken"] += broken
        sums = self.sums
        sums["objects"] += objects
        sums["page_bytes"] += page_bytes
        sums["target_bytes"] += target_bytes
        sums["confusers"] += confusers
        sums["match_error"] += match_error if identified else 0
        sums["duration_us"] += duration_us
        for name, value in (("objects", objects), ("page_bytes", page_bytes)):
            if name not in self.mins or value < self.mins[name]:
                self.mins[name] = value
            if name not in self.maxs or value > self.maxs[name]:
                self.maxs[name] = value
        hists = self.hists
        for name, value in (
            ("objects_log2", objects),
            ("page_bytes_log2", page_bytes),
            ("confusers_log2", confusers),
        ):
            column = hists[name]
            column[_log2_bucket(value, len(column))] += 1

    def fold_batch(
        self,
        *,
        objects,
        page_bytes,
        target_bytes,
        serialized,
        identified,
        confusers,
        match_error,
        broken=None,
        duration_us=None,
    ) -> None:
        """Fold a whole batch of sessions given as integer numpy arrays.

        The vectorized campaign backend's sink: produces *exactly* the
        state ``fold_session`` would after folding the same sessions one
        at a time (integer sums, minima/maxima and bincount histograms
        are order-free), which is what keeps fast-backend campaign
        digests byte-identical to the scalar path.

        ``match_error`` must already be masked to identified sessions
        (zero elsewhere), mirroring the scalar fold's
        ``match_error if identified else 0``.
        """
        import numpy as np

        sessions = int(objects.shape[0])
        if sessions == 0:
            return
        counts = self.counts
        counts["sessions"] += sessions
        counts["serialized"] += int(np.count_nonzero(serialized))
        counts["identified"] += int(np.count_nonzero(identified))
        counts["succeeded"] += int(np.count_nonzero(serialized & identified))
        counts["ambiguous"] += int(np.count_nonzero(confusers > 0))
        if broken is not None:
            counts["broken"] += int(np.count_nonzero(broken))
        sums = self.sums
        sums["objects"] += int(objects.sum())
        sums["page_bytes"] += int(page_bytes.sum())
        sums["target_bytes"] += int(target_bytes.sum())
        sums["confusers"] += int(confusers.sum())
        sums["match_error"] += int(match_error.sum())
        if duration_us is not None:
            sums["duration_us"] += int(duration_us.sum())
        for name, column in (
            ("objects", objects), ("page_bytes", page_bytes)
        ):
            low = int(column.min())
            high = int(column.max())
            if name not in self.mins or low < self.mins[name]:
                self.mins[name] = low
            if name not in self.maxs or high > self.maxs[name]:
                self.maxs[name] = high
        for name, column in (
            ("objects_log2", objects),
            ("page_bytes_log2", page_bytes),
            ("confusers_log2", confusers),
        ):
            hist = self.hists[name]
            buckets = len(hist)
            # frexp's exponent equals bit_length() for exact positive
            # ints below 2^53, matching the scalar _log2_bucket.
            _, exponent = np.frexp(column.astype(np.float64))
            bucket = np.minimum(exponent, buckets - 1)
            bucket[column <= 0] = 0
            folded = np.bincount(bucket, minlength=buckets)
            for index in np.nonzero(folded)[0]:
                hist[index] += int(folded[index])

    def merge(self, other: "ColumnarSummary") -> "ColumnarSummary":
        """Fold another summary into this one (associative, exact)."""
        for name, value in other.counts.items():
            self.counts[name] += value
        for name, value in other.sums.items():
            self.sums[name] += value
        for name, value in other.mins.items():
            if name not in self.mins or value < self.mins[name]:
                self.mins[name] = value
        for name, value in other.maxs.items():
            if name not in self.maxs or value > self.maxs[name]:
                self.maxs[name] = value
        for name, column in other.hists.items():
            mine = self.hists[name]
            for index, value in enumerate(column):
                mine[index] += value
        return self

    # -- serialization ---------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        """Plain-data view; integers only, so JSON round-trips exactly."""
        return {
            "version": _SERIAL_VERSION,
            "counts": dict(self.counts),
            "sums": dict(self.sums),
            "mins": dict(self.mins),
            "maxs": dict(self.maxs),
            "hists": {name: list(column) for name, column in self.hists.items()},
        }

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "ColumnarSummary":
        if payload.get("version") != _SERIAL_VERSION:
            raise ValueError(
                f"unsupported columnar summary version "
                f"{payload.get('version')!r}"
            )
        summary = cls()
        summary.counts.update(
            {name: int(value) for name, value in payload["counts"].items()}
        )
        summary.sums.update(
            {name: int(value) for name, value in payload["sums"].items()}
        )
        summary.mins = {
            name: int(value) for name, value in payload["mins"].items()
        }
        summary.maxs = {
            name: int(value) for name, value in payload["maxs"].items()
        }
        for name, values in payload["hists"].items():
            if name not in summary.hists:
                raise ValueError(f"unknown histogram column {name!r}")
            if len(values) != len(summary.hists[name]):
                raise ValueError(f"histogram {name!r} width mismatch")
            summary.hists[name] = array("q", (int(v) for v in values))
        return summary

    def digest(self) -> str:
        """SHA-256 over the canonical JSON form (bit-identity checks)."""
        canonical = json.dumps(self.to_json(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # -- derived statistics ----------------------------------------------

    @property
    def sessions(self) -> int:
        return self.counts["sessions"]

    def rate(self, name: str) -> float:
        """A count column as a fraction of folded sessions."""
        if self.sessions == 0:
            return 0.0
        return self.counts[name] / self.sessions

    def mean(self, name: str) -> float:
        """A sum column divided by folded sessions."""
        if self.sessions == 0:
            return 0.0
        return self.sums[name] / self.sessions

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ColumnarSummary):
            return NotImplemented
        return self.to_json() == other.to_json()

    def __repr__(self) -> str:
        return f"ColumnarSummary(sessions={self.sessions})"


def merge_summaries(
    summaries: Iterable[ColumnarSummary],
) -> ColumnarSummary:
    """Streaming left fold of shard summaries into one total.

    Merging is exactly associative (integer columns), so any grouping
    yields the same result; callers still merge in shard-index order by
    convention to make the reduction obviously canonical.
    """
    total = ColumnarSummary()
    for summary in summaries:
        total.merge(summary)
    return total
