"""Million-session campaigns: sharded streaming attack studies.

The paper's study covers ≈500 volunteers; this package scales the same
question — how often does the §V attack succeed? — to synthetic
populations of 10⁵–10⁷ pages.  See :mod:`repro.campaign.engine` for the
shard → worker → trial hierarchy and
:mod:`repro.campaign.columnar` for the streaming columnar aggregation
that keeps peak memory independent of the session count.

Run one from the CLI::

    python -m repro campaign --sessions 100000 --workers 8
"""

from repro.campaign.columnar import ColumnarSummary, merge_summaries
from repro.campaign.engine import (
    AnalyticModel,
    CampaignConfig,
    CampaignError,
    CampaignResult,
    ShardTask,
    checkpoint_path,
    run_campaign,
)
from repro.campaign.supervisor import (
    MANIFEST_SCHEMA,
    MANIFEST_VERSION,
    build_manifest,
    render_shard_errors,
    validate_manifest,
    write_manifest,
)

__all__ = [
    "AnalyticModel",
    "CampaignConfig",
    "CampaignError",
    "CampaignResult",
    "ColumnarSummary",
    "MANIFEST_SCHEMA",
    "MANIFEST_VERSION",
    "ShardTask",
    "build_manifest",
    "checkpoint_path",
    "merge_summaries",
    "render_shard_errors",
    "run_campaign",
    "validate_manifest",
    "write_manifest",
]
