"""Campaign supervision artifacts: failure manifests and error tables.

A degraded campaign must be *accountable*: which shards completed,
which failed and why, what was quarantined, and exactly which sessions
the partial result covers.  This module owns the two machine/human
interfaces for that accounting:

* the **failure manifest** — a machine-readable JSON document
  (:data:`MANIFEST_SCHEMA`) written by ``run_campaign(...,
  failure_manifest=PATH)`` / ``repro campaign --failure-manifest PATH``
  with per-shard attempt history, tracebacks, error taxonomy, session
  coverage and quarantined-checkpoint records;
* the **shard error table** — the concise per-shard stderr rendering
  the CLI prints instead of a raw traceback when a campaign fails.

The manifest deliberately allows wall-clock fields (``elapsed_s``,
attempt timings): it is a diagnostic artifact, never an input to the
bit-identity machinery, and nothing in the golden/verify layers hashes
it.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

from repro.experiments.executor import ERROR_KINDS, TrialError
from repro.experiments.report import format_table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.campaign.engine import CampaignConfig

#: Manifest format version; bump on breaking schema changes.
MANIFEST_VERSION = 1

#: Self-describing schema tag embedded in every manifest.
MANIFEST_SCHEMA = "repro.campaign.failure-manifest/v1"

#: Top-level keys every valid manifest must carry.
_REQUIRED_KEYS = (
    "version", "schema", "status", "campaign", "coverage", "shards",
    "quarantined_checkpoints", "checkpoint_write_error",
)

#: Keys of every per-shard failure record.
_SHARD_KEYS = (
    "shard", "sessions", "kind", "attempts", "error", "traceback",
    "history",
)

#: Valid terminal statuses of a supervised campaign.
STATUSES = ("complete", "partial", "failed")


def shard_error_record(
    config: "CampaignConfig", error: TrialError
) -> Dict[str, Any]:
    """One manifest entry for a failed/skipped shard."""
    span = config.shard_range(error.trial)
    return {
        "shard": error.trial,
        "sessions": [span.start, span.stop],
        "kind": error.kind,
        "attempts": error.attempts,
        "error": error.error,
        "traceback": error.traceback,
        "history": [dict(entry) for entry in error.history],
    }


def build_manifest(
    config: "CampaignConfig",
    errors: Sequence[TrialError],
    *,
    status: str,
    quarantined: Sequence[str] = (),
    checkpoint_write_error: Optional[str] = None,
    elapsed_s: Optional[float] = None,
    workers: int = 1,
    resumed_shards: int = 0,
) -> Dict[str, Any]:
    """Assemble the failure-manifest payload for one campaign run."""
    if status not in STATUSES:
        raise ValueError(f"unknown manifest status {status!r}")
    failed = [e for e in errors if e.kind != "deadline"]
    skipped = [e for e in errors if e.kind == "deadline"]
    sessions_missing = sum(
        len(config.shard_range(e.trial)) for e in errors
    )
    return {
        "version": MANIFEST_VERSION,
        "schema": MANIFEST_SCHEMA,
        "status": status,
        "campaign": {
            "config_digest": config.digest(),
            "sessions": config.sessions,
            "shard_size": config.shard_size,
            "shards": config.shard_count,
            "seed": config.seed,
            "mode": config.mode,
        },
        "coverage": {
            "completed_shards": config.shard_count - len(errors),
            "failed_shards": len(failed),
            "skipped_shards": len(skipped),
            "sessions_total": config.sessions,
            "sessions_covered": config.sessions - sessions_missing,
        },
        "shards": [
            shard_error_record(config, error)
            for error in sorted(errors, key=lambda e: e.trial)
        ],
        "quarantined_checkpoints": list(quarantined),
        "checkpoint_write_error": checkpoint_write_error,
        "execution": {
            "workers": workers,
            "resumed_shards": resumed_shards,
            "elapsed_s": (
                round(elapsed_s, 3) if elapsed_s is not None else None
            ),
        },
    }


def write_manifest(path: str, manifest: Dict[str, Any]) -> None:
    """Write a manifest (validated first, temp-file + atomic rename)."""
    validate_manifest(manifest)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    temp_path = path + ".tmp"
    with open(temp_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(temp_path, path)


def validate_manifest(payload: Any) -> None:
    """Schema-check a manifest; raises ``ValueError`` naming the defect.

    Used by the chaos harness and the smoke scripts to assert that
    every degraded run leaves a *well-formed* record behind, not just
    any JSON.
    """
    if not isinstance(payload, dict):
        raise ValueError("manifest must be a JSON object")
    missing = [key for key in _REQUIRED_KEYS if key not in payload]
    if missing:
        raise ValueError(f"manifest missing keys: {missing}")
    if payload["version"] != MANIFEST_VERSION:
        raise ValueError(
            f"unsupported manifest version {payload['version']!r}"
        )
    if payload["schema"] != MANIFEST_SCHEMA:
        raise ValueError(f"unexpected manifest schema {payload['schema']!r}")
    if payload["status"] not in STATUSES:
        raise ValueError(f"invalid manifest status {payload['status']!r}")
    coverage = payload["coverage"]
    for key in ("completed_shards", "failed_shards", "skipped_shards",
                "sessions_total", "sessions_covered"):
        if not isinstance(coverage.get(key), int):
            raise ValueError(f"coverage.{key} must be an integer")
    accounted = (
        coverage["completed_shards"] + coverage["failed_shards"]
        + coverage["skipped_shards"]
    )
    if accounted != payload["campaign"]["shards"]:
        raise ValueError(
            f"coverage does not account for every shard "
            f"({accounted} != {payload['campaign']['shards']})"
        )
    if not isinstance(payload["shards"], list):
        raise ValueError("manifest shards must be a list")
    for record in payload["shards"]:
        missing = [key for key in _SHARD_KEYS if key not in record]
        if missing:
            raise ValueError(
                f"shard record {record.get('shard')!r} missing {missing}"
            )
        if record["kind"] not in ERROR_KINDS:
            raise ValueError(
                f"shard {record['shard']!r} has unknown kind "
                f"{record['kind']!r}"
            )
    degraded = bool(payload["shards"])
    if payload["status"] == "complete" and degraded:
        raise ValueError("status 'complete' with failed shard records")
    if payload["status"] != "complete" and not degraded:
        raise ValueError(f"status {payload['status']!r} with no shard records")


def render_shard_errors(
    config: "CampaignConfig", errors: Sequence[TrialError]
) -> str:
    """The concise per-shard error table the CLI prints to stderr."""
    rows: List[List[str]] = []
    for error in sorted(errors, key=lambda e: e.trial):
        span = config.shard_range(error.trial)
        message = error.error
        if len(message) > 48:
            message = message[:45] + "..."
        rows.append([
            str(error.trial),
            f"{span.start}-{span.stop - 1}",
            error.kind,
            str(error.attempts),
            message,
        ])
    return format_table(
        ["shard", "sessions", "kind", "attempts", "error"], rows,
        title=f"Campaign shard failures ({len(errors)})",
    )
