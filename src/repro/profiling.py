"""Hot-path profiling: per-subsystem counters and wall-clock timers.

The experiment harness replays hundreds of thousands of segment
deliveries per trial; this module makes that cost *observable* without
perturbing it.  Profiling is collection-only: it reads counters the
simulation already maintains (events executed, packets captured, frames
written, trace records appended) and wraps trial phases in wall-clock
timers.  It never touches the per-event path, so experiment output is
byte-identical with profiling on or off — a property the test suite
asserts.

Usage::

    from repro import profiling

    with profiling.profiled() as profiler:
        table1.run(trials=5)
    print(profiler.render())

or via the CLI: ``python -m repro table1 --profile`` (report on stderr,
stdout unchanged) and ``python -m repro profile`` (reference
single-trial slices, report on stdout).

When trials run in worker processes (``--workers N``), the harness-side
hooks run in the workers and their counters do not reach the parent;
profile with the default serial executor.
"""

from __future__ import annotations

import json
import sys
import time
import tracemalloc
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional


class Profiler:
    """Accumulates named counters, wall-clock timers and gauges.

    Counters are plain integers (``events``, ``packets`` …); timers are
    cumulative seconds per named section.  Both merge additively across
    trials, so one profiler can span a whole sweep.  Gauges are
    high-water marks (peak RSS, tracemalloc peak) merged by ``max``.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.timers: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}

    # -- accumulation --------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the named counter."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def add_time(self, name: str, seconds: float) -> None:
        """Add ``seconds`` to the named timer."""
        self.timers[name] = self.timers.get(name, 0.0) + seconds

    def gauge_max(self, name: str, value: float) -> None:
        """Raise the named high-water gauge to at least ``value``."""
        if value > self.gauges.get(name, float("-inf")):
            self.gauges[name] = value

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time a ``with`` block into the named timer."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    def merge(self, other: "Profiler") -> None:
        """Fold another profiler's totals into this one."""
        for name, amount in other.counters.items():
            self.count(name, amount)
        for name, seconds in other.timers.items():
            self.add_time(name, seconds)
        for name, value in other.gauges.items():
            self.gauge_max(name, value)

    # -- reporting -----------------------------------------------------

    def rates(self) -> Dict[str, float]:
        """Derived throughput figures (per second of simulate time)."""
        simulate = self.timers.get("trial.simulate", 0.0)
        if simulate <= 0:
            return {}
        return {
            f"{name}_per_sec": self.counters[name] / simulate
            for name in ("sim.events", "net.packets", "h2.frames_sent")
            if name in self.counters
        }

    def snapshot(self) -> Dict[str, Any]:
        """Plain-data view (counters, timers, gauges, rates) for JSON."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "timers_s": {
                name: round(seconds, 6)
                for name, seconds in sorted(self.timers.items())
            },
            "gauges": {
                name: round(value, 1)
                for name, value in sorted(self.gauges.items())
            },
            "rates": {
                name: round(value, 1) for name, value in self.rates().items()
            },
        }

    def to_json(self, **extra: Any) -> str:
        payload = self.snapshot()
        payload.update(extra)
        return json.dumps(payload, indent=2, sort_keys=True)

    def render(self) -> str:
        """Human-readable report."""
        lines = ["hot-path profile", "================"]
        if self.timers:
            lines.append("wall clock:")
            for name, seconds in sorted(self.timers.items()):
                lines.append(f"  {name:<28} {seconds * 1000.0:10.1f} ms")
        if self.counters:
            lines.append("counters:")
            for name, amount in sorted(self.counters.items()):
                lines.append(f"  {name:<28} {amount:>10}")
        if self.gauges:
            lines.append("gauges:")
            for name, value in sorted(self.gauges.items()):
                lines.append(f"  {name:<28} {value:>10.0f}")
        rates = self.rates()
        if rates:
            lines.append("throughput:")
            for name, value in sorted(rates.items()):
                lines.append(f"  {name:<28} {value:>10.0f}")
        if len(lines) == 2:
            lines.append("(empty — no profiled sections ran)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Profiler(counters={len(self.counters)}, "
            f"timers={len(self.timers)})"
        )


#: The process-wide active profiler, or None when profiling is off.
#: Hot-path hooks are a single ``is None`` check when inactive.
_active: Optional[Profiler] = None


def activate(profiler: Optional[Profiler] = None) -> Profiler:
    """Install (and return) the process-wide profiler."""
    global _active
    _active = profiler if profiler is not None else Profiler()
    return _active


def deactivate() -> Optional[Profiler]:
    """Remove and return the active profiler (None when none was set)."""
    global _active
    profiler, _active = _active, None
    return profiler


def active() -> Optional[Profiler]:
    """The currently installed profiler, or None."""
    return _active


@contextmanager
def profiled(profiler: Optional[Profiler] = None) -> Iterator[Profiler]:
    """Activate a profiler for a ``with`` block and restore the
    previous one afterwards."""
    global _active
    previous = _active
    current = profiler if profiler is not None else Profiler()
    _active = current
    try:
        yield current
    finally:
        _active = previous


def peak_rss_kb(include_children: bool = False) -> int:
    """Peak resident set size of this process, in kibibytes.

    A high-water mark maintained by the kernel (``ru_maxrss``), so
    reading it costs one syscall and never perturbs the hot path.
    With ``include_children``, the max over *waited-for* child
    processes (spawn workers the pool has joined) is folded in —
    the figure that bounds a multi-worker campaign.

    Returns 0 on platforms without :mod:`resource` (Windows).
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    scale = 1024 if sys.platform == "darwin" else 1  # macOS reports bytes
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss // scale
    if include_children:
        children = (
            resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss // scale
        )
        peak = max(peak, children)
    return int(peak)


@contextmanager
def traced_memory() -> Iterator[Dict[str, float]]:
    """Trace Python-heap allocations for a ``with`` block.

    Yields a dict that, after the block exits, holds
    ``tracemalloc_peak_kb`` — the peak traced allocation in KiB.
    Tracing slows allocation noticeably, so callers keep it out of
    wall-clock-timed sections (the hot-path bench runs one *extra*
    traced pass after its timed repetitions).  Nests safely: if
    tracemalloc is already running, the outer trace is left running.
    """
    gauges: Dict[str, float] = {}
    already_tracing = tracemalloc.is_tracing()
    if not already_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    try:
        yield gauges
    finally:
        _, peak = tracemalloc.get_traced_memory()
        if not already_tracing:
            tracemalloc.stop()
        gauges["tracemalloc_peak_kb"] = round(peak / 1024.0, 1)
        profiler = active()
        if profiler is not None:
            profiler.gauge_max("mem.tracemalloc_peak_kb", peak / 1024.0)


def hpack_cache_counters() -> Dict[str, int]:
    """Hit/miss statistics of the memoized HPACK sizing functions.

    Only :func:`~repro.hpack.huffman.string_literal_length` carries a
    cache: its inner helper ``huffman_encoded_length`` is shielded by
    it (every repeated string short-circuits in the outer cache), so a
    cache there could never hit and was removed.
    """
    from repro.hpack.huffman import string_literal_length

    info = string_literal_length.cache_info()
    return {
        "hpack.literal_length.hits": info.hits,
        "hpack.literal_length.misses": info.misses,
    }
