"""HTTP/1.1 over the simulated TLS/TCP stack — the baseline protocol.

HTTP/1.1 processes requests strictly sequentially on a connection
(§II of the paper): the server finishes one response before starting
the next, so every object is a contiguous run on the TCP stream and
the classic size side-channel works against it without *any* active
interference.  This package exists as the comparison point: the
passive estimator that fails against multiplexed HTTP/2 succeeds
against HTTP/1.1 out of the box (ablation E8).
"""

from repro.h1.client import H1Client, H1ResponseHandle
from repro.h1.message import H1Chunk, H1RequestMessage, H1ResponseHead
from repro.h1.server import H1ResponseInstance, H1Server, H1ServerConfig

__all__ = [
    "H1Chunk",
    "H1Client",
    "H1RequestMessage",
    "H1ResponseHandle",
    "H1ResponseHead",
    "H1ResponseInstance",
    "H1Server",
    "H1ServerConfig",
]
