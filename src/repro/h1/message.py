"""HTTP/1.1 messages as size models.

HTTP/1.1 headers are plain text; sizes are computed from realistic
header templates so the TLS records carrying them have correct lengths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

#: Fixed parts of a GET request ("GET <path> HTTP/1.1\r\n" + typical
#: browser headers: Host, User-Agent, Accept*, Connection: keep-alive).
REQUEST_BASE_BYTES = 360

#: Fixed parts of a response status line + typical server headers.
RESPONSE_HEAD_BASE_BYTES = 230


@dataclass
class H1RequestMessage:
    """One GET request on the wire."""

    path: str
    authority: str = "www.example.com"

    @property
    def wire_length(self) -> int:
        return REQUEST_BASE_BYTES + len(self.path) + len(self.authority)

    def __repr__(self) -> str:
        return f"H1RequestMessage({self.path!r})"


@dataclass
class H1ResponseHead:
    """Response status line and headers.

    ``context`` references the response instance for ground-truth
    multiplexing accounting (always degree 0 under HTTP/1.1 — that is
    the point of the baseline).
    """

    status: int
    content_length: int
    content_type: str
    context: Any = None

    @property
    def wire_length(self) -> int:
        return (
            RESPONSE_HEAD_BASE_BYTES
            + len(str(self.content_length))
            + len(self.content_type)
        )

    def __repr__(self) -> str:
        return f"H1ResponseHead({self.status}, len={self.content_length})"


@dataclass
class H1Chunk:
    """A run of response body bytes."""

    body_bytes: int
    last: bool
    context: Any = None

    @property
    def wire_length(self) -> int:
        return self.body_bytes

    def __repr__(self) -> str:
        marker = " last" if self.last else ""
        return f"H1Chunk({self.body_bytes}B{marker})"
