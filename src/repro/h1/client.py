"""The HTTP/1.1 client: one outstanding request at a time."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, List, Optional

from repro.h1.message import H1Chunk, H1RequestMessage, H1ResponseHead
from repro.netsim.address import Endpoint
from repro.netsim.node import Host
from repro.simkernel.simulator import Simulator
from repro.simkernel.trace import TraceLog
from repro.tcp.config import TCPConfig
from repro.tls.session import TLSRole, TLSSession
from repro.transport import get_transport


@dataclass
class H1ResponseHandle:
    """Progress of one GET."""

    path: str
    requested_at: float
    sent_at: Optional[float] = None
    head: Optional[H1ResponseHead] = None
    received_bytes: int = 0
    complete: bool = False
    completed_at: Optional[float] = None
    on_complete: Optional[Callable[["H1ResponseHandle"], None]] = None


class H1Client:
    """A keep-alive HTTP/1.1 client without pipelining.

    ``get`` enqueues; requests go on the wire one at a time, each after
    the previous response completes — the protocol behaviour that makes
    object sizes trivially readable to an eavesdropper.
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        server: Endpoint,
        local_port: int = 49152,
        tcp_config: Optional[TCPConfig] = None,
        trace: Optional[TraceLog] = None,
        authority: str = "www.example.com",
        transport: Optional[str] = None,
    ) -> None:
        self.sim = sim
        self.authority = authority
        self._trace = trace
        self.tcp = get_transport(transport).create_connection(
            sim, host, local_port, server,
            config=tcp_config or TCPConfig(),
            trace=trace, name=f"client:{local_port}",
        )
        self.tls = TLSSession(self.tcp, TLSRole.CLIENT, trace=trace)
        self.tls.on_application_record = self._on_record
        self.on_ready: Optional[Callable[[], None]] = None
        previous = self.tls.on_handshake_complete
        def ready() -> None:
            if previous:
                previous()
            if self.on_ready:
                self.on_ready()
            self._pump()
        self.tls.on_handshake_complete = ready
        self._pending: Deque[H1ResponseHandle] = deque()
        self._in_flight: Optional[H1ResponseHandle] = None
        self.handles: List[H1ResponseHandle] = []

    def connect(self) -> None:
        self.tcp.connect()

    @property
    def ready(self) -> bool:
        return self.tls.handshake_complete

    def get(self, path: str) -> H1ResponseHandle:
        """Queue a GET (sent when the connection becomes free)."""
        handle = H1ResponseHandle(path=path, requested_at=self.sim.now)
        self._pending.append(handle)
        self.handles.append(handle)
        self._pump()
        return handle

    def _pump(self) -> None:
        if not self.ready or self._in_flight is not None or not self._pending:
            return
        handle = self._pending.popleft()
        self._in_flight = handle
        handle.sent_at = self.sim.now
        request = H1RequestMessage(handle.path, self.authority)
        self.tls.send_application(request, request.wire_length)

    def _on_record(self, payload: Any, duplicate: bool) -> None:
        if duplicate or self._in_flight is None:
            return
        handle = self._in_flight
        if isinstance(payload, H1ResponseHead):
            handle.head = payload
        elif isinstance(payload, H1Chunk):
            handle.received_bytes += payload.body_bytes
            if payload.last:
                handle.complete = True
                handle.completed_at = self.sim.now
                self._in_flight = None
                if handle.on_complete:
                    handle.on_complete(handle)
                self._pump()

    @property
    def all_complete(self) -> bool:
        return all(handle.complete for handle in self.handles)
