"""The sequential HTTP/1.1 server.

Requests queue and are served strictly one at a time — the
head-of-line-blocking behaviour the paper contrasts HTTP/2 against.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, List, Optional

from repro.h2.server import ResourceSpec, Router
from repro.h1.message import H1Chunk, H1RequestMessage, H1ResponseHead
from repro.netsim.node import Host
from repro.simkernel.randomstream import RandomStreams
from repro.simkernel.simulator import Simulator
from repro.simkernel.trace import TraceLog
from repro.tcp.config import TCPConfig
from repro.transport import get_transport
from repro.transport.base import Transport
from repro.tls.session import TLSRole, TLSSession

_h1_instance_ids = itertools.count(1)


@dataclass
class H1ServerConfig:
    """Server behaviour knobs (mirrors the HTTP/2 server's)."""

    think_time: float = 0.001
    chunk_bytes: int = 2048
    chunk_interval: float = 0.0004

    def __post_init__(self) -> None:
        if self.chunk_bytes <= 0:
            raise ValueError("chunk size must be positive")


@dataclass(eq=False)
class H1ResponseInstance:
    """One serving of one object (sequential, so never interleaved)."""

    instance_id: int
    object_id: str
    path: str
    body_bytes: int
    started_at: float
    finished_at: Optional[float] = None
    bytes_emitted: int = 0

    #: Present for interface parity with the HTTP/2 instance.
    duplicate: bool = False
    cancelled: bool = False

    @property
    def complete(self) -> bool:
        return self.finished_at is not None


class _H1ServedConnection:
    """One client connection: a request queue drained sequentially."""

    def __init__(self, server: "H1Server", tcp: Transport) -> None:
        self.server = server
        self.tcp = tcp
        self.tls = TLSSession(tcp, TLSRole.SERVER, trace=server._trace)
        self.tls.on_application_record = self._on_record
        self.instances: List[H1ResponseInstance] = []
        self._queue: Deque[H1RequestMessage] = deque()
        self._busy = False

    def _on_record(self, payload: Any, duplicate: bool) -> None:
        if not isinstance(payload, H1RequestMessage):
            return
        if duplicate:
            return  # HTTP/1.1 server state machine reads the stream once.
        self._queue.append(payload)
        self._drain()

    def _drain(self) -> None:
        if self._busy or not self._queue:
            return
        request = self._queue.popleft()
        self._busy = True
        resource = self.server.router(request.path)
        if resource is None:
            resource = ResourceSpec(request.path, 160, "text/html", status=404,
                                    object_id="__404__")
        instance = H1ResponseInstance(
            instance_id=next(_h1_instance_ids),
            object_id=resource.object_id or request.path,
            path=request.path,
            body_bytes=resource.body_bytes,
            started_at=self.server.sim.now,
        )
        self.instances.append(instance)
        self.server.sim.schedule(
            self.server.draw_think_time(resource),
            lambda: self._emit_head(instance, resource),
        )

    def _emit_head(self, instance: H1ResponseInstance, resource: ResourceSpec) -> None:
        head = H1ResponseHead(
            status=resource.status,
            content_length=resource.body_bytes,
            content_type=resource.content_type,
            context=instance,
        )
        self.tls.send_application(head, head.wire_length)
        self._emit_chunk(instance)

    def _emit_chunk(self, instance: H1ResponseInstance) -> None:
        remaining = instance.body_bytes - instance.bytes_emitted
        size = min(self.server.config.chunk_bytes, remaining)
        last = size >= remaining
        chunk = H1Chunk(body_bytes=size, last=last, context=instance)
        self.tls.send_application(chunk, chunk.wire_length)
        instance.bytes_emitted += size
        if last:
            instance.finished_at = self.server.sim.now
            self._busy = False
            self._drain()  # next queued request — strictly sequential
        else:
            self.server.sim.schedule(
                self.server.config.chunk_interval,
                lambda: self._emit_chunk(instance),
            )


class H1Server:
    """The HTTP/1.1 origin server (one response at a time)."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        port: int,
        router: Router,
        config: Optional[H1ServerConfig] = None,
        tcp_config: Optional[TCPConfig] = None,
        trace: Optional[TraceLog] = None,
        rng: Optional[RandomStreams] = None,
        transport: Optional[str] = None,
    ) -> None:
        self.sim = sim
        self.router = router
        self.config = config or H1ServerConfig()
        self._trace = trace
        self._rng = rng
        self.connections: List[_H1ServedConnection] = []
        factory = get_transport(transport)
        self.listener = factory.create_listener(
            sim, host, port, self._on_accept,
            config=factory.server_config(tcp_config, False), trace=trace,
        )

    def _on_accept(self, tcp: Transport) -> None:
        self.connections.append(_H1ServedConnection(self, tcp))

    def draw_think_time(self, resource: ResourceSpec) -> float:
        """Same think-time model as the HTTP/2 server."""
        if resource.think_time_range is None:
            return self.config.think_time
        low, high = resource.think_time_range
        if self._rng is None or high <= low:
            return (low + high) / 2.0
        return self._rng.uniform(f"h1.think.{resource.path}", low, high)

    @property
    def all_instances(self) -> List[H1ResponseInstance]:
        return [
            instance
            for connection in self.connections
            for instance in connection.instances
        ]
