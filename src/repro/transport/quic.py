"""A QUIC-like datagram transport: per-stream loss recovery.

This is the transport the web is migrating to, modelled at the same
level of abstraction as :mod:`repro.tcp`: symbolic datagrams carry
*stream chunks* (ranges of per-stream sequence space referencing a
shared :class:`~repro.transport.stream.StreamLayout`), an on-path
observer sees only sizes/offsets/record boundaries, and the existing
netsim link/fault/middlebox machinery forwards, delays, drops and
duplicates the datagrams unchanged.

What it shares with TCP here: a 1-RTT connection handshake, a
byte-counted congestion window (the same Reno/CUBIC implementations),
an RTT-estimated retransmission timer, and a connection-level flow
control window.  What it deliberately does *not* share — the properties
arXiv:2208.06722 identifies as decisive for the paper's attacks:

* **Independent per-stream loss recovery.**  Each HTTP/2 DATA frame
  rides its own QUIC stream; every other payload (TLS handshake, the
  connection preface, SETTINGS, HEADERS) rides the ordered control
  stream 0 — mirroring how HTTP/3 keeps QPACK's shared encoder state on
  an ordered unidirectional stream.  A lost datagram stalls only the
  streams whose chunks it carried; chunks of other streams keep
  delivering.  There is **no cross-stream head-of-line blocking**, so a
  targeted drop no longer serializes the whole response flight.
* **No duplicate-delivery quirk.**  TCP's ``deliver_duplicate_messages``
  redelivery (the paper's duplicated-GET behaviour) has no QUIC
  analogue: stream data is deduplicated by offset before delivery.

Observer-visible fields are duck-type compatible with
:class:`~repro.tcp.segment.TCPSegment`: ``payload_bytes`` /
``option_bytes`` (packet sizing), ``tls_records`` (records *starting*
in the datagram), ``flags``, ``ack`` and a **monotone connection-level
wire offset** ``seq`` (retransmitted chunks reuse their original
offset), so :func:`repro.core.controller.is_get_like`, the
``GetCounter`` watermark de-duplication and the targeted-drop filter
all work on QUIC traffic without modification.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.netsim.address import Endpoint
from repro.netsim.node import Host
from repro.netsim.packet import Packet
from repro.simkernel.simulator import Simulator
from repro.simkernel.timers import Timer
from repro.simkernel.trace import TraceLog
from repro.tcp.congestion import make_congestion_control
from repro.tcp.reassembly import ReassemblyBuffer
from repro.tcp.rtt import RTOEstimator
from repro.transport import register_transport
from repro.transport.stream import StreamLayout

#: Datagram flag sets (mirrors the TCP flag-frozenset idiom).
FLAGS_INITIAL = frozenset({"INITIAL"})
FLAGS_INITIAL_ACK = frozenset({"INITIAL", "ACK"})
FLAGS_ACK = frozenset({"ACK"})
FLAGS_ONE_RTT = frozenset({"1RTT"})
FLAGS_CLOSE = frozenset({"CLOSE"})
FLAGS_CLOSE_RESET = frozenset({"CLOSE", "RESET"})


@dataclass(frozen=True)
class QuicConfig:
    """Tunables for the datagram transport (defaults mirror TCPConfig)."""

    #: Maximum stream payload bytes per datagram (QUIC's ~1200 B MTU
    #: budget after the short header; deliberately close to TCP's MSS so
    #: per-transport comparisons are not an MTU study).
    max_datagram_payload: int = 1200
    #: Per-datagram overhead beyond the fixed 40 B network allowance —
    #: stands in for UDP header + QUIC short header + frame headers.
    option_bytes: int = 12
    initial_window_datagrams: int = 10
    #: Connection-level flow control credit advertised to the peer.
    receive_window: int = 1 << 20
    min_pto: float = 0.2
    max_pto: float = 60.0
    #: Packet-threshold loss detection (RFC 9002 kPacketThreshold).
    packet_reorder_threshold: int = 3
    #: ACK every n-th ack-eliciting datagram (2 = RFC 9000 default) …
    ack_every: int = 2
    #: … or after this delay, whichever comes first.
    max_ack_delay: float = 0.04
    congestion_control: str = "reno"

    @classmethod
    def adapt(cls, config: Any) -> "QuicConfig":
        """Coerce ``None`` / :class:`QuicConfig` / TCPConfig-likes.

        Harness configs are typed as TCPConfig (``TrialConfig.tcp``);
        when the transport axis selects QUIC the shared knobs — MSS,
        initial window, receive window, timer bounds, congestion
        control — carry over so parameter studies stay comparable.
        """
        if config is None:
            return cls()
        if isinstance(config, cls):
            return config
        return cls(
            max_datagram_payload=int(getattr(config, "mss", 1200)),
            option_bytes=int(getattr(config, "option_bytes", 12)),
            initial_window_datagrams=int(
                getattr(config, "initial_window_segments", 10)
            ),
            receive_window=int(getattr(config, "receive_window", 1 << 20)),
            min_pto=float(getattr(config, "min_rto", 0.2)),
            max_pto=float(getattr(config, "max_rto", 60.0)),
            congestion_control=str(
                getattr(config, "congestion_control", "reno")
            ),
        )


class QuicState(enum.Enum):
    CLOSED = "CLOSED"
    CONNECTING = "CONNECTING"
    ACCEPTING = "ACCEPTING"
    ESTABLISHED = "ESTABLISHED"


class StreamChunk:
    """A contiguous range ``[start, end)`` of one stream's byte space.

    ``layout`` is the sender's per-stream layout (the receiver turns
    delivered ranges back into messages through it); ``global_start``
    is the connection-level wire offset of the range's first byte,
    which is what the on-path observer sees as ``seq``.
    """

    __slots__ = ("stream_id", "start", "end", "layout", "global_start")

    def __init__(
        self,
        stream_id: int,
        start: int,
        end: int,
        layout: StreamLayout,
        global_start: int,
    ) -> None:
        self.stream_id = stream_id
        self.start = start
        self.end = end
        self.layout = layout
        self.global_start = global_start

    @property
    def length(self) -> int:
        return self.end - self.start

    def __repr__(self) -> str:
        return (
            f"StreamChunk(stream={self.stream_id}, "
            f"[{self.start},{self.end}), wire={self.global_start})"
        )


class QuicDatagram:
    """One symbolic datagram (the QUIC analogue of a TCPSegment)."""

    __slots__ = (
        "packet_number",
        "seq",
        "ack",
        "flags",
        "payload_bytes",
        "option_bytes",
        "window",
        "chunks",
        "tls_records",
        "ack_ranges",
        "is_retransmission",
    )

    def __init__(
        self,
        packet_number: int,
        seq: int,
        ack: int,
        flags: frozenset,
        payload_bytes: int,
        option_bytes: int,
        window: int,
        chunks: Tuple[StreamChunk, ...] = (),
        tls_records: Tuple[Any, ...] = (),
        ack_ranges: Tuple[Tuple[int, int], ...] = (),
        is_retransmission: bool = False,
    ) -> None:
        self.packet_number = packet_number
        self.seq = seq
        self.ack = ack
        self.flags = flags
        self.payload_bytes = payload_bytes
        self.option_bytes = option_bytes
        self.window = window
        self.chunks = chunks
        self.tls_records = tls_records
        self.ack_ranges = ack_ranges
        self.is_retransmission = is_retransmission

    def __repr__(self) -> str:
        kind = "+".join(sorted(self.flags)) or "1RTT"
        return (
            f"QuicDatagram(pn={self.packet_number}, {kind}, "
            f"seq={self.seq}, payload={self.payload_bytes})"
        )


class _PendingRange:
    """Stream bytes queued for (re)transmission."""

    __slots__ = ("stream_id", "start", "end", "layout", "global_start")

    def __init__(
        self,
        stream_id: int,
        start: int,
        end: int,
        layout: StreamLayout,
        global_start: int,
    ) -> None:
        self.stream_id = stream_id
        self.start = start
        self.end = end
        self.layout = layout
        self.global_start = global_start


class _SentPacket:
    __slots__ = ("chunks", "payload_bytes", "sent_at", "is_retransmission",
                 "acked", "lost")

    def __init__(
        self,
        chunks: Tuple[StreamChunk, ...],
        payload_bytes: int,
        sent_at: float,
        is_retransmission: bool,
    ) -> None:
        self.chunks = chunks
        self.payload_bytes = payload_bytes
        self.sent_at = sent_at
        self.is_retransmission = is_retransmission
        self.acked = False
        self.lost = False


class _TxStream:
    """Sender-side per-stream state: offsets and acked ranges."""

    __slots__ = ("layout", "acked")

    def __init__(self) -> None:
        self.layout = StreamLayout()
        self.acked = ReassemblyBuffer()


class _RxStream:
    """Receiver-side per-stream state: reassembly and delivery frontier."""

    __slots__ = ("layout", "reassembly", "delivered_upto")

    def __init__(self, layout: StreamLayout) -> None:
        self.layout = layout
        self.reassembly = ReassemblyBuffer()
        self.delivered_upto = 0


def _acked_total(buffer: ReassemblyBuffer) -> int:
    """Total bytes covered by a sender's acked-range buffer."""
    return buffer.rcv_nxt + sum(
        end - start for start, end in buffer.out_of_order_ranges
    )


class QuicConnection:
    """One endpoint of a simulated QUIC-like connection.

    Exposes the :class:`~repro.transport.base.Transport` surface:
    ``connect`` / ``send_message`` / ``close`` / ``reset``, the
    ``on_established`` / ``on_message`` / ``on_close`` / ``on_writable``
    callbacks, a global send-order ``layout`` (ground truth for the
    multiplexing report) and a ``retransmitted_segments`` counter.
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        local_port: int,
        remote: Endpoint,
        config: Any = None,
        trace: Optional[TraceLog] = None,
        owns_port: bool = True,
        name: str = "",
    ) -> None:
        self._sim = sim
        self._host = host
        self.local = host.endpoint(local_port)
        self.remote = remote
        self.config = QuicConfig.adapt(config)
        self._trace = trace
        self.name = name or f"{self.local}->{self.remote}"
        self.state = QuicState.CLOSED

        # Sender state.
        self.layout = StreamLayout()  # global send order (observer truth)
        self._tx_streams: Dict[int, _TxStream] = {}
        self._pending: Deque[_PendingRange] = deque()
        self._retx: Deque[_PendingRange] = deque()
        self._sent: Dict[int, _SentPacket] = {}
        self._next_pn = 0
        self._largest_acked = -1
        self._in_flight = 0
        self._acked_bytes = 0
        self._wire_high = 0  # wire offset frontier of fresh sends
        self.cc = make_congestion_control(
            self.config.congestion_control,
            self.config.max_datagram_payload,
            self.config.initial_window_datagrams,
            now=lambda: self._sim.now,
        )
        self.rto = RTOEstimator(self.config.min_pto, self.config.max_pto)
        self.peer_window = self.config.receive_window
        self._pto_timer = Timer(sim, self._on_pto, name=f"{self.name}.pto")
        self.retransmitted_segments = 0
        self._initial_time = 0.0
        self._close_requested = False

        # Receiver state.
        self._pn_buffer = ReassemblyBuffer()
        self._largest_pn_seen = -1
        self._rx_streams: Dict[int, _RxStream] = {}
        self._eliciting_since_ack = 0
        self._ack_timer = Timer(sim, self._send_ack_now, name=f"{self.name}.ack")

        # Callbacks.
        self.on_established: Optional[Callable[[], None]] = None
        self.on_message: Optional[Callable[[Any, bool], None]] = None
        self.on_close: Optional[Callable[[bool], None]] = None
        self.on_writable: Optional[Callable[[], None]] = None

        self._owns_port = owns_port
        if owns_port:
            host.bind(local_port, self.handle_packet)

    # ------------------------------------------------------------------
    # Public API (Transport protocol)
    # ------------------------------------------------------------------

    @property
    def sim(self) -> Simulator:
        return self._sim

    @property
    def is_closed(self) -> bool:
        return self.state is QuicState.CLOSED

    @property
    def bytes_in_flight(self) -> int:
        return self._in_flight

    @property
    def unacked_buffered_bytes(self) -> int:
        """Queued-but-unacknowledged stream bytes (send-buffer occupancy)."""
        return self.layout.next_seq - self._acked_bytes

    @property
    def send_window(self) -> int:
        """Usable window: min(cwnd, peer connection flow credit)."""
        return min(self.cc.cwnd, self.peer_window)

    def connect(self) -> None:
        """Client side: send the INITIAL and await the handshake reply."""
        if self.state is not QuicState.CLOSED:
            raise RuntimeError(f"connect() in state {self.state}")
        self.state = QuicState.CONNECTING
        self._initial_time = self._sim.now
        self._emit_control(FLAGS_INITIAL)
        self._pto_timer.start(self.rto.rto)
        self._record("quic.initial_sent")

    def accept_initial(self) -> None:
        """Server side: answer a client INITIAL (listener-invoked)."""
        if self.state is not QuicState.CLOSED:
            return
        self.state = QuicState.ACCEPTING
        # The client's INITIAL is always its packet number 0; register
        # it so packet-number continuity holds from the first datagram.
        self._pn_buffer.receive(0, 1)
        self._largest_pn_seen = 0
        self._emit_control(FLAGS_INITIAL_ACK)
        self._pto_timer.start(self.rto.rto)

    def send_message(self, message: Any, length: Optional[int] = None) -> None:
        """Queue one application message on its stream.

        HTTP/2 DATA frames map to the QUIC stream of their HTTP/2
        stream id; every other payload maps to the ordered control
        stream 0 (see the module docstring).
        """
        span = self.layout.append(message, length)
        stream_id = self._classify_stream(message)
        tx = self._tx_streams.setdefault(stream_id, _TxStream())
        stream_span = tx.layout.append(message, span.length)
        self._pending.append(
            _PendingRange(
                stream_id,
                stream_span.start,
                stream_span.end,
                tx.layout,
                span.start,
            )
        )
        self._try_send()

    def close(self) -> None:
        """Orderly close: flush and acknowledge, then CONNECTION_CLOSE."""
        if self.state is QuicState.CLOSED:
            return
        self._close_requested = True
        self._maybe_send_close()

    def reset(self) -> None:
        """Abortive close (the RST analogue)."""
        if self.state is QuicState.CLOSED:
            return
        self._emit_control(FLAGS_CLOSE_RESET)
        self._teardown(reset=True)

    # ------------------------------------------------------------------
    # Stream classification
    # ------------------------------------------------------------------

    @staticmethod
    def _classify_stream(message: Any) -> int:
        """Map a message to its QUIC stream (duck-typed, no h2 import).

        An HTTP/2 DATA frame (or a TLS fragment of one) is recognised by
        its ``data_bytes`` attribute and rides the stream matching its
        ``stream_id``; everything else is ordered control traffic.
        """
        payload = getattr(message, "payload", None)
        payload = getattr(payload, "original", payload)
        if hasattr(payload, "data_bytes"):
            return int(getattr(payload, "stream_id", 0))
        return 0

    # ------------------------------------------------------------------
    # Datagram handling
    # ------------------------------------------------------------------

    def handle_packet(self, packet: Packet) -> None:
        """Entry point for datagrams addressed to this connection."""
        datagram = packet.segment
        if not isinstance(datagram, QuicDatagram):
            return
        if "CLOSE" in datagram.flags:
            self._record("quic.close_received")
            self._teardown(reset="RESET" in datagram.flags)
            return

        if self.state is QuicState.CONNECTING:
            if datagram.flags >= FLAGS_INITIAL_ACK:
                self._pto_timer.cancel()
                if self.rto.backoff == 1:
                    # Karn: only sample when the INITIAL was not resent.
                    self.rto.on_sample(self._sim.now - self._initial_time)
                pn = datagram.packet_number
                self._pn_buffer.receive(pn, pn + 1)
                self._largest_pn_seen = max(self._largest_pn_seen, pn)
                self.state = QuicState.ESTABLISHED
                self._send_ack_now()
                self._record("quic.established", role="client")
                if self.on_established:
                    self.on_established()
                self._try_send()
            return

        if self.state is QuicState.ACCEPTING:
            if "INITIAL" in datagram.flags:
                # Duplicate INITIAL: re-answer.
                self._emit_control(FLAGS_INITIAL_ACK)
                return
            self._pto_timer.cancel()
            self.state = QuicState.ESTABLISHED
            self._record("quic.established", role="server")
            if self.on_established:
                self.on_established()
            # Fall through: the datagram may carry acks and data.

        if self.state is QuicState.CLOSED:
            return

        pn = datagram.packet_number
        _, duplicate_pn = self._pn_buffer.receive(pn, pn + 1)
        # Arrival continuity (not buffer holes) drives the immediate-ack
        # rule: a datagram lost forever leaves a permanent range hole,
        # which must not force ack-per-packet for the whole connection.
        out_of_order = pn != self._largest_pn_seen + 1
        self._largest_pn_seen = max(self._largest_pn_seen, pn)
        self.peer_window = datagram.window

        if datagram.ack_ranges:
            self._handle_acks(datagram.ack_ranges)
        if datagram.chunks and not duplicate_pn:
            self._handle_data(datagram)

        if datagram.payload_bytes > 0 or "INITIAL" in datagram.flags:
            # Ack-eliciting: immediate ack on loss/reorder signals
            # (fast loss feedback for the peer), delayed otherwise.
            if duplicate_pn or out_of_order:
                self._send_ack_now()
            else:
                self._eliciting_since_ack += 1
                if self._eliciting_since_ack >= self.config.ack_every:
                    self._send_ack_now()
                elif not self._ack_timer.armed:
                    self._ack_timer.start(self.config.max_ack_delay)

    # -- acknowledgements --------------------------------------------------

    def _handle_acks(self, ack_ranges: Tuple[Tuple[int, int], ...]) -> None:
        newly_acked: List[Tuple[int, _SentPacket]] = []
        for pn, record in self._sent.items():
            if record.acked:
                continue
            for start, end in ack_ranges:
                if start <= pn < end:
                    newly_acked.append((pn, record))
                    break
        if not newly_acked:
            return

        acked_payload = 0
        acked_stream_bytes = 0
        largest = self._largest_acked
        sample: Optional[float] = None
        for pn, record in newly_acked:
            record.acked = True
            if not record.lost:
                self._in_flight -= record.payload_bytes
            acked_payload += record.payload_bytes
            for chunk in record.chunks:
                tx = self._tx_streams[chunk.stream_id]
                before = _acked_total(tx.acked)
                tx.acked.receive(chunk.start, chunk.end)
                acked_stream_bytes += _acked_total(tx.acked) - before
            if pn > largest:
                largest = pn
                sample = (
                    self._sim.now - record.sent_at
                    if not record.is_retransmission
                    else None
                )
        self._largest_acked = largest
        self._acked_bytes += acked_stream_bytes

        if sample is not None:
            self.rto.on_sample(sample)
        else:
            self.rto.reset_backoff()
        self.cc.on_ack_progress(acked_payload, self._acked_bytes)
        self._detect_losses()

        if self._in_flight > 0:
            self._pto_timer.start(self.rto.rto)
        else:
            self._pto_timer.cancel()
        self._try_send()
        if acked_stream_bytes > 0 and self.on_writable:
            self.on_writable()
        self._maybe_send_close()
        # Drop fully-resolved packets so the map stays window-sized.
        self._sent = {
            pn: record
            for pn, record in self._sent.items()
            if not (record.acked or record.lost)
        }

    def _detect_losses(self) -> None:
        """Packet-threshold loss detection (RFC 9002 §6.1.1)."""
        threshold = self._largest_acked - self.config.packet_reorder_threshold
        lost: List[Tuple[int, _SentPacket]] = []
        for pn, record in self._sent.items():
            if record.acked or record.lost:
                continue
            if pn <= threshold:
                lost.append((pn, record))
        if not lost:
            return
        for pn, record in lost:
            record.lost = True
            self._in_flight -= record.payload_bytes
            self._requeue(record)
        if not self.cc.in_recovery:
            self.cc.on_fast_retransmit(
                max(self._in_flight, 0), self._acked_bytes + self._in_flight
            )
        first_pn, first = min(lost)
        self._record(
            "quic.retransmit",
            kind="fast",
            pn=first_pn,
            length=first.payload_bytes,
        )

    def _requeue(self, record: _SentPacket) -> None:
        """Queue a lost packet's not-yet-acked chunks for retransmission."""
        for chunk in record.chunks:
            tx = self._tx_streams[chunk.stream_id]
            if self._range_acked(tx.acked, chunk.start, chunk.end):
                continue  # every byte already acked via another packet
            self._retx.append(
                _PendingRange(
                    chunk.stream_id,
                    chunk.start,
                    chunk.end,
                    chunk.layout,
                    chunk.global_start,
                )
            )

    @staticmethod
    def _range_acked(acked: ReassemblyBuffer, start: int, end: int) -> bool:
        """Whether ``[start, end)`` is fully covered by acked ranges.

        A partially-covered chunk reports False and is retransmitted
        whole — the receiver deduplicates by offset, so the only cost is
        a few redundant wire bytes.
        """
        if end <= acked.rcv_nxt:
            return True
        for range_start, range_end in acked.out_of_order_ranges:
            if range_start <= max(start, acked.rcv_nxt) and end <= range_end:
                return True
        return False

    # -- receiving ---------------------------------------------------------

    def _handle_data(self, datagram: QuicDatagram) -> None:
        for chunk in datagram.chunks:
            rx = self._rx_streams.get(chunk.stream_id)
            if rx is None:
                rx = _RxStream(chunk.layout)
                self._rx_streams[chunk.stream_id] = rx
            old = rx.reassembly.rcv_nxt
            new, _ = rx.reassembly.receive(chunk.start, chunk.end)
            if new <= old:
                continue
            # Per-stream in-order delivery: no quirk, never duplicates.
            for span in rx.layout.spans_completed_in(rx.delivered_upto, new):
                if span.end <= rx.delivered_upto:
                    continue  # a reentrant delivery already covered it
                rx.delivered_upto = span.end
                if self.on_message:
                    self.on_message(span.message, False)

    # ------------------------------------------------------------------
    # Sender
    # ------------------------------------------------------------------

    def _try_send(self) -> None:
        if self.state is not QuicState.ESTABLISHED:
            return
        limit = self.send_window
        while (self._retx or self._pending) and self._in_flight < limit:
            budget = min(
                self.config.max_datagram_payload, limit - self._in_flight
            )
            if budget <= 0:
                break
            if self._retx:
                self._send_retransmission(budget)
            else:
                self._send_fresh(budget)
        if self._in_flight > 0 and not self._pto_timer.armed:
            self._pto_timer.start(self.rto.rto)
        self._maybe_send_close()

    def _send_retransmission(self, budget: int) -> None:
        entry = self._retx.popleft()
        length = min(entry.end - entry.start, budget)
        chunk = StreamChunk(
            entry.stream_id,
            entry.start,
            entry.start + length,
            entry.layout,
            entry.global_start,
        )
        if length < entry.end - entry.start:
            entry.start += length
            entry.global_start += length
            self._retx.appendleft(entry)
        self.retransmitted_segments += 1
        self._send_datagram((chunk,), length, chunk.global_start, True)

    def _send_fresh(self, budget: int) -> None:
        first = self._pending[0]
        seq = first.global_start
        chunks: List[StreamChunk] = []
        total = 0
        # Fresh entries queue in global send order, so consecutive
        # entries are wire-contiguous and one datagram covers the global
        # range [seq, seq + total).
        while self._pending and total < budget:
            entry = self._pending[0]
            take = min(entry.end - entry.start, budget - total)
            chunks.append(
                StreamChunk(
                    entry.stream_id,
                    entry.start,
                    entry.start + take,
                    entry.layout,
                    entry.global_start,
                )
            )
            total += take
            if take == entry.end - entry.start:
                self._pending.popleft()
            else:
                entry.start += take
                entry.global_start += take
        self._wire_high = max(self._wire_high, seq + total)
        self._send_datagram(tuple(chunks), total, seq, False)

    def _send_datagram(
        self,
        chunks: Tuple[StreamChunk, ...],
        payload: int,
        seq: int,
        is_retransmission: bool,
    ) -> None:
        spans = self.layout.spans_starting_in(seq, seq + payload)
        datagram = QuicDatagram(
            packet_number=self._next_pn,
            seq=seq,
            ack=self._pn_buffer.rcv_nxt,
            flags=FLAGS_ONE_RTT,
            payload_bytes=payload,
            option_bytes=self.config.option_bytes,
            window=self.config.receive_window,
            chunks=chunks,
            tls_records=tuple(span.message for span in spans),
            ack_ranges=self._ack_ranges(),
            is_retransmission=is_retransmission,
        )
        self._sent[self._next_pn] = _SentPacket(
            chunks, payload, self._sim.now, is_retransmission
        )
        self._next_pn += 1
        self._in_flight += payload
        # Data datagrams piggyback the current ack state.
        self._eliciting_since_ack = 0
        self._ack_timer.cancel()
        self._transmit(datagram)

    def _on_pto(self) -> None:
        if self.state is QuicState.CONNECTING:
            self.rto.on_timeout()
            self._emit_control(FLAGS_INITIAL)
            self._pto_timer.start(self.rto.rto)
            self._record("quic.retransmit", kind="handshake")
            return
        if self.state is QuicState.ACCEPTING:
            self.rto.on_timeout()
            self._emit_control(FLAGS_INITIAL_ACK)
            self._pto_timer.start(self.rto.rto)
            self._record("quic.retransmit", kind="handshake")
            return
        outstanding = [
            (pn, record)
            for pn, record in self._sent.items()
            if not record.acked and not record.lost
        ]
        if not outstanding:
            return
        self.cc.on_timeout(self._in_flight)
        self.rto.on_timeout()
        self._record(
            "quic.retransmit",
            kind="pto",
            pn=min(pn for pn, _ in outstanding),
            rto=self.rto.rto,
        )
        for _, record in sorted(outstanding):
            record.lost = True
            self._in_flight -= record.payload_bytes
            self._requeue(record)
        self._pto_timer.start(self.rto.rto)
        self._try_send()

    # ------------------------------------------------------------------
    # Close handling
    # ------------------------------------------------------------------

    def _maybe_send_close(self) -> None:
        if (
            self._close_requested
            and self.state is QuicState.ESTABLISHED
            and not self._pending
            and not self._retx
            and self._in_flight == 0
            and self._acked_bytes >= self.layout.next_seq
        ):
            self._emit_control(FLAGS_CLOSE)
            self._teardown(reset=False)

    def _teardown(self, reset: bool) -> None:
        if self.state is QuicState.CLOSED:
            return
        self.state = QuicState.CLOSED
        self._pto_timer.cancel()
        self._ack_timer.cancel()
        if self._owns_port:
            self._host.unbind(self.local.port)
        self._record("quic.closed", reset=reset)
        if self.on_close:
            self.on_close(reset)

    # ------------------------------------------------------------------
    # Emission helpers
    # ------------------------------------------------------------------

    def _ack_ranges(self) -> Tuple[Tuple[int, int], ...]:
        ranges: List[Tuple[int, int]] = []
        if self._pn_buffer.rcv_nxt > 0:
            ranges.append((0, self._pn_buffer.rcv_nxt))
        ranges.extend(self._pn_buffer.out_of_order_ranges)
        return tuple(ranges)

    def _send_ack_now(self) -> None:
        self._ack_timer.cancel()
        self._eliciting_since_ack = 0
        self._emit_control(FLAGS_ACK)

    def _emit_control(self, flags: frozenset) -> None:
        datagram = QuicDatagram(
            packet_number=self._next_pn,
            seq=self._wire_high,
            ack=self._pn_buffer.rcv_nxt,
            flags=flags,
            payload_bytes=0,
            option_bytes=self.config.option_bytes,
            window=self.config.receive_window,
            ack_ranges=self._ack_ranges(),
        )
        self._next_pn += 1
        self._transmit(datagram)

    def _transmit(self, datagram: QuicDatagram) -> None:
        packet = Packet(src=self.local, dst=self.remote, segment=datagram)
        self._host.send(packet)

    def _record(self, category: str, **fields) -> None:
        if self._trace is not None:
            self._trace.record(self._sim.now, category, conn=self.name, **fields)

    def __repr__(self) -> str:
        return (
            f"QuicConnection({self.name!r}, {self.state.value}, "
            f"acked={self._acked_bytes}, queued={self.layout.next_seq}, "
            f"cwnd={self.cc.cwnd})"
        )


class QuicListener:
    """Accepts inbound QUIC-like connections on one port.

    Mirrors :class:`~repro.tcp.listener.TCPListener`: ``on_accept`` runs
    *before* the INITIAL is answered so callers can install callbacks.
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        port: int,
        on_accept: Callable[[QuicConnection], None],
        config: Any = None,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self._sim = sim
        self._host = host
        self._port = port
        self._on_accept = on_accept
        self._config = QuicConfig.adapt(config)
        self._trace = trace
        self._connections: Dict[Endpoint, QuicConnection] = {}
        host.bind(port, self._dispatch)

    @property
    def port(self) -> int:
        return self._port

    @property
    def connections(self) -> Dict[Endpoint, QuicConnection]:
        """Live view of accepted connections, keyed by peer endpoint."""
        return self._connections

    def close(self) -> None:
        """Stop listening; existing connections keep running."""
        self._host.unbind(self._port)

    def _dispatch(self, packet: Packet) -> None:
        peer = packet.src
        connection = self._connections.get(peer)
        if connection is None:
            datagram = packet.segment
            if not isinstance(datagram, QuicDatagram) or "INITIAL" not in datagram.flags:
                return  # Stray non-INITIAL for an unknown peer: ignore.
            connection = QuicConnection(
                sim=self._sim,
                host=self._host,
                local_port=self._port,
                remote=peer,
                config=self._config,
                trace=self._trace,
                owns_port=False,
                name=f"server:{peer}",
            )
            self._connections[peer] = connection
            self._on_accept(connection)
            connection.accept_initial()
            return
        connection.handle_packet(packet)

    def __repr__(self) -> str:
        return f"QuicListener(port={self._port}, peers={len(self._connections)})"


class QUICFactory:
    """Factory for the QUIC-like datagram transport."""

    name = "quic"

    def create_connection(
        self,
        sim: Simulator,
        host: Host,
        local_port: int,
        remote: Endpoint,
        config: Any = None,
        trace: Optional[TraceLog] = None,
        name: str = "",
    ) -> QuicConnection:
        return QuicConnection(
            sim,
            host,
            local_port,
            remote,
            config=config,
            trace=trace,
            name=name,
        )

    def create_listener(
        self,
        sim: Simulator,
        host: Host,
        port: int,
        on_accept: Callable[[QuicConnection], None],
        config: Any = None,
        trace: Optional[TraceLog] = None,
    ) -> QuicListener:
        return QuicListener(sim, host, port, on_accept, config=config, trace=trace)

    def server_config(self, config: Any, serve_duplicates: bool) -> QuicConfig:
        # QUIC has no wire-level redelivery quirk: ``serve_duplicates``
        # only matters for transports that can surface duplicates.
        return QuicConfig.adapt(config)


register_transport(QUICFactory())
