"""TCP as one transport implementation behind the factory seam.

The concrete machinery stays in :mod:`repro.tcp` untouched — this
adapter only builds :class:`~repro.tcp.connection.TCPConnection` /
:class:`~repro.tcp.listener.TCPListener` objects through the
:class:`~repro.transport.base.TransportFactory` interface, so the TCP
path is byte-identical to the pre-abstraction code.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.netsim.address import Endpoint
from repro.netsim.node import Host
from repro.simkernel.simulator import Simulator
from repro.simkernel.trace import TraceLog
from repro.tcp.config import TCPConfig
from repro.tcp.connection import TCPConnection
from repro.tcp.listener import TCPListener
from repro.transport import register_transport


class TCPFactory:
    """Factory for the original reliable-byte-stream transport."""

    name = "tcp"

    def create_connection(
        self,
        sim: Simulator,
        host: Host,
        local_port: int,
        remote: Endpoint,
        config: Optional[TCPConfig] = None,
        trace: Optional[TraceLog] = None,
        name: str = "",
    ) -> TCPConnection:
        return TCPConnection(
            sim,
            host,
            local_port,
            remote,
            config=config,
            trace=trace,
            name=name,
        )

    def create_listener(
        self,
        sim: Simulator,
        host: Host,
        port: int,
        on_accept: Callable[[TCPConnection], None],
        config: Optional[TCPConfig] = None,
        trace: Optional[TraceLog] = None,
    ) -> TCPListener:
        return TCPListener(sim, host, port, on_accept, config=config, trace=trace)

    def server_config(self, config: Any, serve_duplicates: bool) -> TCPConfig:
        if config is not None:
            return config
        # The wire-level redelivery quirk follows the server's
        # duplicate-request policy, exactly as H2Server defaulted it.
        return TCPConfig(deliver_duplicate_messages=serve_duplicates)


register_transport(TCPFactory())
