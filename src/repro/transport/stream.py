"""Symbolic byte-stream layout (transport-neutral).

Applications hand the transport sender *messages* (in this project, TLS
records) with a length; the layout assigns each one the next contiguous
range of the sequence space.  The receiving side uses the same layout
(referenced from arriving segments or datagrams) to turn delivered
sequence ranges back into whole messages.

Messages must expose an integer ``wire_length`` attribute or be passed
with an explicit length.

This module lives under :mod:`repro.transport` so that analysis code
(:mod:`repro.core.metrics`) and every transport implementation share a
single layout type without depending on the TCP package;
``repro.tcp.stream`` re-exports it for backward compatibility.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, List, Optional


@dataclass(frozen=True)
class MessageSpan:
    """A message occupying ``[start, end)`` in the sequence space."""

    start: int
    end: int
    message: Any

    @property
    def length(self) -> int:
        return self.end - self.start


class StreamLayout:
    """Append-only mapping from sequence ranges to messages."""

    def __init__(self, initial_seq: int = 0) -> None:
        self._spans: List[MessageSpan] = []
        self._starts: List[int] = []
        self._ends: List[int] = []
        self._next_seq = initial_seq
        self.initial_seq = initial_seq

    def __len__(self) -> int:
        return len(self._spans)

    @property
    def next_seq(self) -> int:
        """First unassigned sequence number."""
        return self._next_seq

    def append(self, message: Any, length: Optional[int] = None) -> MessageSpan:
        """Assign the next range to ``message`` and return its span.

        Args:
            message: the application message object.
            length: explicit byte length; defaults to
                ``message.wire_length``.

        Raises:
            ValueError: if the length is missing or not positive.
        """
        if length is None:
            length = getattr(message, "wire_length", None)
        if length is None or length <= 0:
            raise ValueError(f"message needs a positive length, got {length!r}")
        span = MessageSpan(self._next_seq, self._next_seq + length, message)
        self._spans.append(span)
        self._starts.append(span.start)
        self._ends.append(span.end)
        self._next_seq = span.end
        return span

    def spans_overlapping(self, start: int, end: int) -> List[MessageSpan]:
        """All spans intersecting ``[start, end)``."""
        if end <= start:
            return []
        # First span that could overlap: the one whose start is <= start,
        # found via the start-sorted index.
        index = bisect.bisect_right(self._starts, start) - 1
        if index < 0:
            index = 0
        result = []
        for span in self._spans[index:]:
            if span.start >= end:
                break
            if span.end > start:
                result.append(span)
        return result

    def spans_contained(self, start: int, end: int) -> List[MessageSpan]:
        """Spans lying entirely inside ``[start, end)``."""
        return [
            span
            for span in self.spans_overlapping(start, end)
            if span.start >= start and span.end <= end
        ]

    def spans_starting_in(self, start: int, end: int) -> List[MessageSpan]:
        """Spans whose first byte falls inside ``[start, end)``.

        This is what a per-packet observer (tshark) sees: a TLS record
        header is visible in the packet where the record begins.
        """
        return [
            span
            for span in self.spans_overlapping(start, end)
            if start <= span.start < end
        ]

    def spans_completed_by(self, upto: int) -> List[MessageSpan]:
        """Spans that end at or before sequence number ``upto``.

        Spans are contiguous, so their end offsets are strictly
        increasing and one bisection finds the cut point.
        """
        return self._spans[: bisect.bisect_right(self._ends, upto)]

    def spans_completed_in(self, after: int, upto: int) -> List[MessageSpan]:
        """Spans with ``after < end <= upto``, in stream order.

        This is the receiver's delivery query: spans newly completed by
        an advance of the in-order frontier from ``after`` to ``upto``.
        Bisecting both bounds keeps repeated deliveries from rescanning
        every span delivered so far (the old linear scan made receive
        processing quadratic in the number of messages).
        """
        low = bisect.bisect_right(self._ends, after)
        high = bisect.bisect_right(self._ends, upto)
        return self._spans[low:high]
