"""Pluggable transport layer.

The TLS/HTTP stack is written against the :class:`Transport` /
:class:`TransportListener` protocols (see :mod:`repro.transport.base`)
and builds endpoints through a named factory, so the same browser,
server, middlebox and adversary machinery runs over either:

* ``tcp`` — the original single-byte-stream transport
  (:mod:`repro.tcp` behind :class:`repro.transport.tcp.TCPFactory`);
  one lost segment head-of-line-blocks every HTTP/2 stream, which is
  what the paper's targeted-drop attack exploits.
* ``quic`` — a QUIC-like datagram transport
  (:mod:`repro.transport.quic`): per-stream framing over datagrams,
  independent per-stream loss recovery, no cross-stream head-of-line
  blocking, connection-level flow control.

Selection is explicit and layered, mirroring the fastpath backend: a
CLI ``--transport`` argument wins, else the ``REPRO_TRANSPORT``
environment variable, else ``tcp``.  The environment hop carries the
choice into spawned campaign workers and experiment subprocesses.  The
TCP path is byte-identical to the pre-refactor code — golden masters
are asserted unchanged by ``repro verify``.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

from repro.transport.base import Transport, TransportFactory, TransportListener
from repro.transport.stream import MessageSpan, StreamLayout

#: Environment variable carrying the transport choice across processes.
TRANSPORT_ENV = "REPRO_TRANSPORT"

#: Recognised transport names.
TRANSPORTS = ("tcp", "quic")


def resolve_transport(transport: Optional[str] = None) -> str:
    """Resolve the effective transport (argument → env → ``tcp``)."""
    value = transport or os.environ.get(TRANSPORT_ENV) or "tcp"
    value = value.strip().lower()
    if value not in TRANSPORTS:
        raise ValueError(
            f"unknown transport {value!r}; expected one of {TRANSPORTS}"
        )
    return value


_FACTORIES: Dict[str, TransportFactory] = {}


def register_transport(factory: TransportFactory) -> None:
    """Register a factory under ``factory.name`` (last write wins)."""
    _FACTORIES[factory.name] = factory


def get_transport(transport: Optional[str] = None) -> TransportFactory:
    """Return the factory for the resolved transport name."""
    name = resolve_transport(transport)
    factory = _FACTORIES.get(name)
    if factory is None:  # pragma: no cover - registration is import-time
        raise ValueError(f"transport {name!r} has no registered factory")
    return factory


def _register_builtin_factories() -> None:
    # Imported lazily-by-name to keep this module import-light; both
    # modules register concrete factories on import.
    from repro.transport import quic as _quic  # noqa: F401
    from repro.transport import tcp as _tcp  # noqa: F401


_register_builtin_factories()

__all__ = [
    "MessageSpan",
    "StreamLayout",
    "TRANSPORTS",
    "TRANSPORT_ENV",
    "Transport",
    "TransportFactory",
    "TransportListener",
    "get_transport",
    "register_transport",
    "resolve_transport",
]
