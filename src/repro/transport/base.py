"""Transport protocols: what the TLS/HTTP stack needs from a transport.

The protocol stack (``repro.tls``, ``repro.h1``, ``repro.h2``) was
originally written against ``TCPConnection`` directly.  The surface it
actually uses is small and message-oriented — connect, send whole
messages, receive whole messages, observe writability and lifecycle —
plus a handful of introspection attributes read by the experiment
harness (``layout``, ``retransmitted_segments``).  These protocols name
that surface so any transport with per-message delivery semantics can
carry the stack: TCP's single reliable byte stream
(:mod:`repro.transport.tcp`) or the QUIC-like datagram transport with
independent per-stream loss recovery (:mod:`repro.transport.quic`).

``TransportFactory`` is the pluggable entry point: consumers ask the
registry in :mod:`repro.transport` for a factory by name and build
connections/listeners through it instead of naming a concrete class.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Protocol, runtime_checkable

from repro.transport.stream import StreamLayout


@runtime_checkable
class Transport(Protocol):
    """One endpoint of a reliable, message-delivering connection.

    Callback attributes (assigned, not passed):

    * ``on_established()`` — handshake complete, messages may flow.
    * ``on_message(message, duplicate)`` — a whole application message
      delivered in order; ``duplicate`` is True only for transports
      with redeliver quirks (TCP's ``deliver_duplicate_messages``).
    * ``on_close(reset)`` — connection finished; ``reset`` marks an
      abortive close.
    * ``on_writable()`` — buffered-byte pressure dropped; senders that
      paced themselves on ``unacked_buffered_bytes`` may resume.
    """

    name: str
    layout: StreamLayout
    retransmitted_segments: int
    on_established: Optional[Callable[[], None]]
    on_message: Optional[Callable[[Any, bool], None]]
    on_close: Optional[Callable[[bool], None]]
    on_writable: Optional[Callable[[], None]]

    @property
    def sim(self) -> Any:
        """The simulator this connection schedules on."""

    @property
    def unacked_buffered_bytes(self) -> int:
        """Bytes accepted from the application but not yet acknowledged."""

    @property
    def is_closed(self) -> bool:
        """Whether the connection has fully terminated."""

    def connect(self) -> None:
        """Start the client-side handshake."""

    def send_message(self, message: Any, length: Optional[int] = None) -> None:
        """Queue one application message for in-order delivery."""

    def close(self) -> None:
        """Begin an orderly close."""

    def reset(self) -> None:
        """Abort the connection immediately."""


@runtime_checkable
class TransportListener(Protocol):
    """Server-side acceptor: demultiplexes peers into connections."""

    port: int
    connections: Dict[Any, Any]

    def close(self) -> None:
        """Stop accepting; existing connections keep running."""


class TransportFactory(Protocol):
    """Builds connections and listeners for one transport implementation."""

    name: str

    def create_connection(
        self,
        sim: Any,
        host: Any,
        local_port: int,
        remote: Any,
        config: Any = None,
        trace: Any = None,
        name: str = "",
    ) -> Transport:
        """Create an unconnected client-side endpoint bound to ``local_port``."""

    def create_listener(
        self,
        sim: Any,
        host: Any,
        port: int,
        on_accept: Callable[[Any], None],
        config: Any = None,
        trace: Any = None,
    ) -> TransportListener:
        """Create a listener calling ``on_accept(connection)`` per peer."""

    def server_config(self, config: Any, serve_duplicates: bool) -> Any:
        """Default server-side config when the caller passed ``None``.

        ``serve_duplicates`` carries the server's duplicate-request
        policy; only TCP has a wire-level redelivery quirk to enable.
        """
