"""Event objects and the binary-heap event queue.

Events are ordered by ``(time, priority, sequence)``.  The sequence
number is a monotonically increasing insertion counter, which makes the
ordering total and the simulation fully deterministic: two events
scheduled for the same instant fire in the order they were scheduled.

The heap stores ``(time, priority, sequence, event)`` tuples rather
than the events themselves, so sift comparisons are plain C tuple
comparisons — the sequence component is unique, so the :class:`Event`
in the last slot is never compared.  This is the single hottest
data structure in the simulator (hundreds of thousands of pushes and
pops per trial).

Cancellation is lazy — a cancelled event stays in the heap and is
skipped when popped — but the queue counts its cancelled residents and
compacts the heap when they outnumber the live ones, so long horizons
with many cancelled retransmit timers do not keep dead events (and the
callbacks they close over) resident.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Callable, Optional

from repro.simkernel.errors import SchedulingError


class Event:
    """A single scheduled callback.

    Attributes:
        time: absolute simulated time at which the event fires.
        priority: tie-breaker; lower priorities fire first at equal time.
        callback: zero-argument callable invoked when the event fires.
        cancelled: True once :meth:`cancel` has been called.  Cancelled
            events stay in the heap but are skipped when popped.
        batch_key: identity handle grouping homogeneous events (e.g.
            one link direction's clean deliveries).  Batchable events
            carry ``(batch_key, payload)`` instead of a closure; the
            run loop dispatches them via ``batch_key.deliver(payload)``
            and may execute back-to-back same-key events as one run.
        payload: the argument handed to ``batch_key.deliver``.
    """

    __slots__ = (
        "time", "priority", "sequence", "callback", "cancelled", "_queue",
        "batch_key", "payload",
    )

    def __init__(
        self,
        time: float,
        priority: int,
        sequence: int,
        callback: Optional[Callable[[], Any]],
    ) -> None:
        self.time = time
        self.priority = priority
        self.sequence = sequence
        self.callback = callback
        self.cancelled = False
        self._queue: Optional["EventQueue"] = None
        self.batch_key = None
        self.payload = None

    def cancel(self) -> None:
        """Mark the event so it will be skipped instead of fired.

        Raises:
            SchedulingError: if the event was already cancelled.
        """
        if self.cancelled:
            raise SchedulingError("event cancelled twice")
        self.cancelled = True
        if self._queue is not None:
            self._queue._note_cancelled()
            self._queue = None

    def _sort_key(self) -> tuple:
        return (self.time, self.priority, self.sequence)

    def __lt__(self, other: "Event") -> bool:
        return self._sort_key() < other._sort_key()

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, prio={self.priority}, {state})"


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    #: Heaps smaller than this are never compacted — the bookkeeping
    #: would cost more than the dead entries.
    COMPACT_MIN_SIZE = 64

    def __init__(self) -> None:
        self._heap: list = []
        self._sequence = 0
        self._cancelled = 0

    def __len__(self) -> int:
        return len(self._heap) - self._cancelled

    def _note_cancelled(self) -> None:
        """A resident event was cancelled; compact when the dead
        outnumber the live."""
        self._cancelled += 1
        if (
            len(self._heap) >= self.COMPACT_MIN_SIZE
            and self._cancelled * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without its cancelled entries."""
        self._heap = [entry for entry in self._heap if not entry[3].cancelled]
        heapify(self._heap)
        self._cancelled = 0

    def push(self, time: float, priority: int, callback: Callable[[], Any]) -> Event:
        """Insert a new event and return it (so the caller can cancel it)."""
        sequence = self._sequence
        self._sequence = sequence + 1
        event = Event(time, priority, sequence, callback)
        event._queue = self
        heappush(self._heap, (time, priority, sequence, event))
        return event

    def push_batchable(
        self, time: float, priority: int, key: Any, payload: Any
    ) -> Event:
        """Insert a batchable event dispatched as ``key.deliver(payload)``.

        Compared to :meth:`push` with a closure this stores plain data;
        the run loop can collect back-to-back events sharing ``key``
        into one run and dispatch them with a single bound-method
        lookup.
        """
        sequence = self._sequence
        self._sequence = sequence + 1
        event = Event(time, priority, sequence, None)
        event.batch_key = key
        event.payload = payload
        event._queue = self
        heappush(self._heap, (time, priority, sequence, event))
        return event

    def pop_run(self, key: Any, until: Optional[float]) -> list:
        """Pop the contiguous run of heap-top events sharing ``key``.

        Called after a batchable event was popped: collects every
        immediately-following live event with the *same* key object
        (identity compare) firing at or before ``until``.  The run is
        returned in exact heap order; the caller re-pushes any suffix
        it cannot safely execute.
        """
        heap = self._heap
        run: list = []
        while heap:
            entry = heap[0]
            event = entry[3]
            if event.cancelled:
                heappop(heap)
                self._cancelled -= 1
                continue
            if event.batch_key is not key:
                break
            if until is not None and entry[0] > until:
                break
            heappop(heap)
            event._queue = None
            run.append(event)
        return run

    def requeue(self, event: Event) -> None:
        """Push a previously-popped event back, order fully preserved.

        The event keeps its original ``(time, priority, sequence)``
        key, so re-pushing the unexecuted suffix of a run leaves the
        schedule exactly as if those events had never been popped.
        """
        event._queue = self
        heappush(
            self._heap,
            (event.time, event.priority, event.sequence, event),
        )

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or None when empty.

        Cancelled events encountered on the way are discarded silently.
        """
        heap = self._heap
        while heap:
            event = heappop(heap)[3]
            if not event.cancelled:
                event._queue = None
                return event
            self._cancelled -= 1
        return None

    def pop_until(self, until: Optional[float]) -> Optional[Event]:
        """Pop the earliest live event firing at or before ``until``.

        Returns None when the queue is empty or the earliest live event
        fires after ``until`` (the event stays queued).  This is the run
        loop's fast path: one heap traversal instead of a peek followed
        by a pop.
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            event = entry[3]
            if event.cancelled:
                heappop(heap)
                self._cancelled -= 1
                continue
            if until is not None and entry[0] > until:
                return None
            heappop(heap)
            event._queue = None
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the earliest live event, or None."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heappop(heap)
            self._cancelled -= 1
        if not heap:
            return None
        return heap[0][0]

    def clear(self) -> None:
        """Drop every pending event."""
        for entry in self._heap:
            entry[3]._queue = None
        self._heap.clear()
        self._cancelled = 0
