"""Event objects and the binary-heap event queue.

Events are ordered by ``(time, priority, sequence)``.  The sequence
number is a monotonically increasing insertion counter, which makes the
ordering total and the simulation fully deterministic: two events
scheduled for the same instant fire in the order they were scheduled.

Cancellation is lazy — a cancelled event stays in the heap and is
skipped when popped — but the queue counts its cancelled residents and
compacts the heap when they outnumber the live ones, so long horizons
with many cancelled retransmit timers do not keep dead events (and the
callbacks they close over) resident.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from repro.simkernel.errors import SchedulingError


class Event:
    """A single scheduled callback.

    Attributes:
        time: absolute simulated time at which the event fires.
        priority: tie-breaker; lower priorities fire first at equal time.
        callback: zero-argument callable invoked when the event fires.
        cancelled: True once :meth:`cancel` has been called.  Cancelled
            events stay in the heap but are skipped when popped.
    """

    __slots__ = ("time", "priority", "sequence", "callback", "cancelled", "_queue")

    def __init__(
        self,
        time: float,
        priority: int,
        sequence: int,
        callback: Callable[[], Any],
    ) -> None:
        self.time = time
        self.priority = priority
        self.sequence = sequence
        self.callback = callback
        self.cancelled = False
        self._queue: Optional["EventQueue"] = None

    def cancel(self) -> None:
        """Mark the event so it will be skipped instead of fired.

        Raises:
            SchedulingError: if the event was already cancelled.
        """
        if self.cancelled:
            raise SchedulingError("event cancelled twice")
        self.cancelled = True
        if self._queue is not None:
            self._queue._note_cancelled()
            self._queue = None

    def _sort_key(self) -> tuple:
        return (self.time, self.priority, self.sequence)

    def __lt__(self, other: "Event") -> bool:
        return self._sort_key() < other._sort_key()

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, prio={self.priority}, {state})"


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    #: Heaps smaller than this are never compacted — the bookkeeping
    #: would cost more than the dead entries.
    COMPACT_MIN_SIZE = 64

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()
        self._cancelled = 0

    def __len__(self) -> int:
        return len(self._heap) - self._cancelled

    def _note_cancelled(self) -> None:
        """A resident event was cancelled; compact when the dead
        outnumber the live."""
        self._cancelled += 1
        if (
            len(self._heap) >= self.COMPACT_MIN_SIZE
            and self._cancelled * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without its cancelled entries."""
        self._heap = [event for event in self._heap if not event.cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0

    def push(self, time: float, priority: int, callback: Callable[[], Any]) -> Event:
        """Insert a new event and return it (so the caller can cancel it)."""
        event = Event(time, priority, next(self._counter), callback)
        event._queue = self
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or None when empty.

        Cancelled events encountered on the way are discarded silently.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                event._queue = None
                return event
            self._cancelled -= 1
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the earliest live event, or None."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._cancelled -= 1
        if not self._heap:
            return None
        return self._heap[0].time

    def clear(self) -> None:
        """Drop every pending event."""
        for event in self._heap:
            event._queue = None
        self._heap.clear()
        self._cancelled = 0
