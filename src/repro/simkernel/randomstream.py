"""Seeded, named random substreams.

Every stochastic component (link jitter, browser think times, workload
orderings) draws from its own named substream derived from a single
master seed.  Components therefore stay statistically independent, and
adding a new consumer never perturbs the draws of existing ones — the
property that makes multi-trial experiments reproducible.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, List, Sequence, TypeVar

T = TypeVar("T")

_MASK64 = 0xFFFFFFFFFFFFFFFF
#: Weyl-sequence increment of SplitMix64 (the golden-ratio constant).
SPLITMIX_GAMMA = 0x9E3779B97F4A7C15
_MIX_MULT_1 = 0xBF58476D1CE4E5B9
_MIX_MULT_2 = 0x94D049BB133111EB
#: Exact power of two: scaling a 53-bit integer by it is lossless, so
#: the scalar and vectorized paths produce the identical double.
_RECIP_2_53 = 1.0 / 9007199254740992.0


def mix64(value: int) -> int:
    """SplitMix64's finalizer: avalanche one 64-bit value.

    Pure 64-bit integer arithmetic (no platform-dependent state), so a
    numpy ``uint64`` kernel computes the identical value — the property
    the vectorized fast backend's bit-identity rests on.
    """
    z = value & _MASK64
    z = ((z ^ (z >> 30)) * _MIX_MULT_1) & _MASK64
    z = ((z ^ (z >> 27)) * _MIX_MULT_2) & _MASK64
    return z ^ (z >> 31)


def counter_stream_base(master_seed: int, name: str) -> int:
    """Stable 64-bit base of a named counter-stream family.

    The name is hashed once (sha256, like :class:`RandomStreams`) and
    mixed with the master seed; per-index seeds then derive from the
    base arithmetically via :func:`counter_stream_seed`, which is what
    lets a batch kernel derive thousands of session seeds in a couple
    of array operations.
    """
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    label = int.from_bytes(digest[:8], "big")
    return mix64((int(master_seed) & _MASK64) ^ label)


def counter_stream_seed(base: int, index: int) -> int:
    """The seed of stream ``index`` within a counter-stream family."""
    return mix64((base + (index + 1) * SPLITMIX_GAMMA) & _MASK64)


class CounterStream:
    """A counter-based (SplitMix64) random substream.

    Unlike the Mersenne-Twister streams of :class:`RandomStreams`,
    draw ``i`` is a *closed-form* function of ``(seed, i)``::

        output_i = mix64(seed + i * SPLITMIX_GAMMA)

    so a vectorized backend can compute any draw of any stream without
    sequential state — the property that makes the campaign engine's
    numpy fast path bit-identical to this scalar implementation.  The
    interface mirrors the ``random.Random`` subset the analytic
    campaign path consumes (``random``/``randint``).

    ``randint`` maps a 64-bit draw onto the span by modulo; the bias is
    ``span / 2**64`` (immeasurable for the byte-scale spans used here)
    and, unlike rejection sampling, every draw consumes exactly one
    counter tick — which keeps draw indices data-independent.
    """

    __slots__ = ("seed", "_index")

    def __init__(self, seed: int) -> None:
        self.seed = int(seed) & _MASK64
        self._index = 0

    def _next64(self) -> int:
        self._index += 1
        return mix64((self.seed + self._index * SPLITMIX_GAMMA) & _MASK64)

    def random(self) -> float:
        """Uniform double in [0, 1) built from the top 53 bits."""
        return (self._next64() >> 11) * _RECIP_2_53

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] (one counter tick, modulo map)."""
        if high < low:
            raise ValueError(f"empty randint range [{low}, {high}]")
        return low + self._next64() % (high - low + 1)

    def __repr__(self) -> str:
        return f"CounterStream(seed={self.seed:#x}, index={self._index})"


class RandomStreams:
    """A factory of independent ``random.Random`` substreams."""

    def __init__(self, master_seed: int) -> None:
        self._master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def stream(self, name: str) -> random.Random:
        """Return the substream for ``name``, creating it on first use.

        The substream seed is a stable hash of ``(master_seed, name)``,
        so the same name always yields the same sequence for a given
        master seed, independent of creation order.
        """
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = hashlib.sha256(
            f"{self._master_seed}:{name}".encode("utf-8")
        ).digest()
        seed = int.from_bytes(digest[:8], "big")
        stream = random.Random(seed)
        self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a child :class:`RandomStreams` (e.g. one per trial)."""
        digest = hashlib.sha256(
            f"{self._master_seed}/spawn/{name}".encode("utf-8")
        ).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))

    # Convenience draws -------------------------------------------------

    def uniform(self, name: str, low: float, high: float) -> float:
        """Uniform draw from the named substream."""
        return self.stream(name).uniform(low, high)

    def expovariate(self, name: str, rate: float) -> float:
        """Exponential draw with the given rate from the named substream."""
        return self.stream(name).expovariate(rate)

    def choice(self, name: str, options: Sequence[T]) -> T:
        """Pick one element from ``options`` using the named substream."""
        return self.stream(name).choice(list(options))

    def shuffled(self, name: str, items: Sequence[T]) -> List[T]:
        """Return a shuffled copy of ``items`` (the input is untouched)."""
        copy = list(items)
        self.stream(name).shuffle(copy)
        return copy

    def __repr__(self) -> str:
        return (
            f"RandomStreams(seed={self._master_seed}, "
            f"streams={sorted(self._streams)})"
        )
