"""Seeded, named random substreams.

Every stochastic component (link jitter, browser think times, workload
orderings) draws from its own named substream derived from a single
master seed.  Components therefore stay statistically independent, and
adding a new consumer never perturbs the draws of existing ones — the
property that makes multi-trial experiments reproducible.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, List, Sequence, TypeVar

T = TypeVar("T")


class RandomStreams:
    """A factory of independent ``random.Random`` substreams."""

    def __init__(self, master_seed: int) -> None:
        self._master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def stream(self, name: str) -> random.Random:
        """Return the substream for ``name``, creating it on first use.

        The substream seed is a stable hash of ``(master_seed, name)``,
        so the same name always yields the same sequence for a given
        master seed, independent of creation order.
        """
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = hashlib.sha256(
            f"{self._master_seed}:{name}".encode("utf-8")
        ).digest()
        seed = int.from_bytes(digest[:8], "big")
        stream = random.Random(seed)
        self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a child :class:`RandomStreams` (e.g. one per trial)."""
        digest = hashlib.sha256(
            f"{self._master_seed}/spawn/{name}".encode("utf-8")
        ).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))

    # Convenience draws -------------------------------------------------

    def uniform(self, name: str, low: float, high: float) -> float:
        """Uniform draw from the named substream."""
        return self.stream(name).uniform(low, high)

    def expovariate(self, name: str, rate: float) -> float:
        """Exponential draw with the given rate from the named substream."""
        return self.stream(name).expovariate(rate)

    def choice(self, name: str, options: Sequence[T]) -> T:
        """Pick one element from ``options`` using the named substream."""
        return self.stream(name).choice(list(options))

    def shuffled(self, name: str, items: Sequence[T]) -> List[T]:
        """Return a shuffled copy of ``items`` (the input is untouched)."""
        copy = list(items)
        self.stream(name).shuffle(copy)
        return copy

    def __repr__(self) -> str:
        return (
            f"RandomStreams(seed={self._master_seed}, "
            f"streams={sorted(self._streams)})"
        )
