"""Discrete-event simulation kernel.

This package provides the event-driven substrate on which the network,
TCP, TLS and HTTP/2 models run.  It is deliberately small and dependency
free: a binary-heap event queue with deterministic tie-breaking, a
simulator facade with a virtual clock, restartable timers, generator
based processes, seeded per-component random streams, and a structured
trace log used by the experiment harness.

The simulated clock is a ``float`` measured in **seconds**.  Helpers for
converting human-friendly units (milliseconds, Mbps) live in
:mod:`repro.simkernel.units`.
"""

from repro.simkernel.errors import SchedulingError, SimulationError
from repro.simkernel.event import Event, EventQueue
from repro.simkernel.process import Process
from repro.simkernel.randomstream import RandomStreams
from repro.simkernel.simulator import Simulator
from repro.simkernel.timers import Timer
from repro.simkernel.trace import TraceLog, TraceRecord
from repro.simkernel.units import (
    GBPS,
    KBPS,
    MBPS,
    MICROSECONDS,
    MILLISECONDS,
    SECONDS,
    bandwidth_to_bytes_per_second,
    transmission_delay,
)

__all__ = [
    "Event",
    "EventQueue",
    "GBPS",
    "KBPS",
    "MBPS",
    "MICROSECONDS",
    "MILLISECONDS",
    "Process",
    "RandomStreams",
    "SchedulingError",
    "SECONDS",
    "SimulationError",
    "Simulator",
    "Timer",
    "TraceLog",
    "TraceRecord",
    "bandwidth_to_bytes_per_second",
    "transmission_delay",
]
