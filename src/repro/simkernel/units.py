"""Unit helpers for simulated time and bandwidth.

The simulator clock counts **seconds**.  Multiply a quantity by one of
the constants below to convert it into seconds::

    sim.schedule(25 * MILLISECONDS, callback)

Bandwidth is expressed in bits per second; :data:`MBPS` converts from
megabits per second, matching the units the paper uses for its
throttling experiments (1000, 800, 500, 100 and 1 Mbps).
"""

#: One simulated second (the base unit of the clock).
SECONDS = 1.0

#: One simulated millisecond.
MILLISECONDS = 1e-3

#: One simulated microsecond.
MICROSECONDS = 1e-6

#: One kilobit per second, in bits per second.
KBPS = 1e3

#: One megabit per second, in bits per second.
MBPS = 1e6

#: One gigabit per second, in bits per second.
GBPS = 1e9


def bandwidth_to_bytes_per_second(bits_per_second: float) -> float:
    """Convert a bandwidth in bits/s into bytes/s.

    Raises:
        ValueError: if the bandwidth is not strictly positive.
    """
    if bits_per_second <= 0:
        raise ValueError(f"bandwidth must be positive, got {bits_per_second}")
    return bits_per_second / 8.0


def transmission_delay(size_bytes: int, bits_per_second: float) -> float:
    """Serialization delay of ``size_bytes`` on a ``bits_per_second`` link.

    Args:
        size_bytes: packet size in bytes (zero is allowed and yields 0.0).
        bits_per_second: link rate; must be strictly positive.

    Returns:
        The time in seconds the link needs to clock the packet out.
    """
    if size_bytes < 0:
        raise ValueError(f"size must be non-negative, got {size_bytes}")
    return size_bytes / bandwidth_to_bytes_per_second(bits_per_second)
