"""Restartable timers built on top of the simulator.

TCP needs timers that are started, restarted and cancelled many times
(retransmission timers, delayed-ACK timers); :class:`Timer` wraps that
pattern so callers never juggle raw :class:`~repro.simkernel.event.Event`
handles.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.simkernel.event import Event
from repro.simkernel.simulator import Simulator


class _TimerRunKey:
    """Shared batch key for timer expirations.

    The payload is the timer's bound ``_fire`` method; back-to-back
    expirations (retransmit storms, delayed-ACK sweeps) then form one
    homogeneous run.  A single module-level key is safe: batch runs are
    collected per event queue, and queues are never shared across
    simulators.
    """

    __slots__ = ()

    @staticmethod
    def deliver(payload: Callable[[], Any]) -> None:
        payload()


_TIMER_RUN_KEY = _TimerRunKey()


class Timer:
    """A single-shot timer that can be (re)started and cancelled.

    The callback fires once per start; restarting an armed timer cancels
    the previous deadline first.
    """

    def __init__(self, sim: Simulator, callback: Callable[[], Any], name: str = "") -> None:
        self._sim = sim
        self._callback = callback
        self._event: Optional[Event] = None
        self._expiry: Optional[float] = None
        self.name = name

    @property
    def armed(self) -> bool:
        """True while the timer is counting down."""
        return self._event is not None

    @property
    def expiry(self) -> Optional[float]:
        """Absolute firing time, or None when the timer is idle."""
        return self._expiry

    def start(self, delay: float) -> None:
        """Arm (or re-arm) the timer ``delay`` seconds from now."""
        self.cancel()
        self._expiry = self._sim.now + delay
        if self._sim.batching:
            self._event = self._sim.schedule_batch(
                delay, _TIMER_RUN_KEY, self._fire,
                priority=Simulator.PRIORITY_TIMER,
            )
        else:
            self._event = self._sim.schedule(
                delay, self._fire, priority=Simulator.PRIORITY_TIMER
            )

    def cancel(self) -> None:
        """Disarm the timer; a no-op when it is already idle."""
        if self._event is not None:
            self._event.cancel()
            self._event = None
            self._expiry = None

    def _fire(self) -> None:
        self._event = None
        self._expiry = None
        self._callback()

    def __repr__(self) -> str:
        state = f"expires={self._expiry:.6f}" if self.armed else "idle"
        label = f" {self.name!r}" if self.name else ""
        return f"Timer({label} {state})"
