"""Generator-based simulation processes.

A :class:`Process` wraps a generator that ``yield``s floating-point
delays; the kernel resumes it after each delay elapses.  This gives a
readable, sequential style for scripted behaviours (a browser issuing
requests on a schedule, an adversary phase machine)::

    def browser(sim):
        yield 0.5          # think time
        send_request()
        yield 0.160        # inter-request gap from Table II
        send_request()

    Process(sim, browser(sim)).start()
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.simkernel.errors import SimulationError
from repro.simkernel.simulator import Simulator


class Process:
    """Drives a delay-yielding generator on the simulator clock."""

    def __init__(
        self,
        sim: Simulator,
        generator: Generator[float, None, None],
        name: str = "",
    ) -> None:
        self._sim = sim
        self._generator = generator
        self._started = False
        self._finished = False
        self.name = name

    @property
    def finished(self) -> bool:
        """True once the generator has returned or been stopped."""
        return self._finished

    def start(self, delay: float = 0.0) -> "Process":
        """Begin executing the process ``delay`` seconds from now.

        Returns self, for chaining.

        Raises:
            SimulationError: if the process was already started.
        """
        if self._started:
            raise SimulationError(f"process {self.name!r} started twice")
        self._started = True
        self._sim.schedule(delay, self._step)
        return self

    def stop(self) -> None:
        """Abort the process; the generator is closed immediately."""
        if not self._finished:
            self._finished = True
            self._generator.close()

    def _step(self) -> None:
        if self._finished:
            return
        try:
            delay = next(self._generator)
        except StopIteration:
            self._finished = True
            return
        if delay is None or delay < 0:
            raise SimulationError(
                f"process {self.name!r} yielded invalid delay {delay!r}"
            )
        self._sim.schedule(delay, self._step)

    def __repr__(self) -> str:
        state = "finished" if self._finished else ("running" if self._started else "new")
        return f"Process({self.name!r}, {state})"
