"""Exception hierarchy for the simulation kernel."""


class SimulationError(Exception):
    """Base class for every error raised by the simulation kernel."""


class SchedulingError(SimulationError):
    """Raised when an event is scheduled or cancelled incorrectly.

    Typical causes are scheduling in the past, scheduling on a stopped
    simulator, or cancelling an event twice.
    """
