"""Structured trace log.

Components append records (a timestamp, a category string such as
``"tcp.retransmit"`` or ``"h2.rst_stream"``, and a dict of fields).
The experiment harness filters and counts records to compute the
paper's metrics — e.g. Table I's "increase in number of
retransmissions" is a count of ``tcp.retransmit`` records.

The log is built for a hot append path and a cold query path:

* :meth:`TraceLog.record` stores a plain ``(time, category, fields)``
  tuple — no record object, no string formatting.  Tens of thousands
  of records are appended per trial; almost none are ever looked at.
* :class:`TraceRecord` objects are materialized lazily, only for the
  records a query (:meth:`TraceLog.select`, iteration, indexing)
  actually touches, and cached so repeated queries return the same
  objects.
* Human-readable lines (:meth:`TraceRecord.render`,
  :meth:`TraceLog.render_lines`) are formatted only when a report or
  inspection tool asks for them — never on the record path.

A per-category index alongside the append-only record list keeps the
exact-category queries the harness issues several times per trial
(:meth:`TraceLog.select` / :meth:`TraceLog.count`) from scanning every
record ever logged.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional


def format_record(time: float, category: str, fields: Dict[str, Any]) -> str:
    """The canonical one-line rendering of a trace record.

    Kept as a module-level function so eager-formatting references (in
    tests and benchmarks) and the lazy :meth:`TraceRecord.render` are
    guaranteed to agree.
    """
    parts = [f"{time:10.6f}", category]
    parts.extend(f"{key}={value!r}" for key, value in fields.items())
    return " ".join(parts)


class TraceRecord:
    """One structured log entry (materialized lazily by the log)."""

    __slots__ = ("time", "category", "fields")

    def __init__(
        self, time: float, category: str, fields: Optional[Dict[str, Any]] = None
    ) -> None:
        self.time = time
        self.category = category
        self.fields = {} if fields is None else fields

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)

    def render(self) -> str:
        """Format this record as a one-line string (lazy; never done on
        the append path)."""
        return format_record(self.time, self.category, self.fields)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceRecord):
            return NotImplemented
        return (
            self.time == other.time
            and self.category == other.category
            and self.fields == other.fields
        )

    def __repr__(self) -> str:
        return (
            f"TraceRecord(time={self.time!r}, category={self.category!r}, "
            f"fields={self.fields!r})"
        )


class TraceLog:
    """An append-only, filterable event log shared by a testbed."""

    def __init__(self, enabled: bool = True) -> None:
        #: Raw rows: ``(time, category, fields)`` tuples, append order.
        self._raw: List[tuple] = []
        #: index → materialized record, filled lazily by :meth:`_get`.
        self._cache: Dict[int, TraceRecord] = {}
        #: category → indices into ``_raw``, in append order.
        self._by_category: Dict[str, List[int]] = {}
        self.enabled = enabled

    def __len__(self) -> int:
        return len(self._raw)

    def __iter__(self) -> Iterator[TraceRecord]:
        get = self._get
        return (get(index) for index in range(len(self._raw)))

    def __getitem__(self, index: int) -> TraceRecord:
        if index < 0:
            index += len(self._raw)
        if not 0 <= index < len(self._raw):
            raise IndexError("trace record index out of range")
        return self._get(index)

    def record(self, time: float, category: str, **fields: Any) -> None:
        """Append one record (a no-op when the log is disabled)."""
        if self.enabled:
            raw = self._raw
            index = len(raw)
            raw.append((time, category, fields))
            bucket = self._by_category.get(category)
            if bucket is None:
                self._by_category[category] = [index]
            else:
                bucket.append(index)

    def _get(self, index: int) -> TraceRecord:
        """Materialize (and cache) the record at ``index``."""
        record = self._cache.get(index)
        if record is None:
            time, category, fields = self._raw[index]
            record = TraceRecord(time, category, fields)
            self._cache[index] = record
        return record

    def _candidate_indices(
        self, category: Optional[str], prefix: Optional[str]
    ) -> Optional[List[int]]:
        """Indices matching the category/prefix filters, in append
        order, or None when a full scan is the right plan (no filter)."""
        if category is not None:
            if prefix is not None and not category.startswith(prefix):
                return []
            return self._by_category.get(category, [])
        if prefix is not None:
            buckets = [
                indices
                for cat, indices in self._by_category.items()
                if cat.startswith(prefix)
            ]
            if not buckets:
                return []
            if len(buckets) == 1:
                return buckets[0]
            merged: List[int] = []
            for bucket in buckets:
                merged.extend(bucket)
            merged.sort()
            return merged
        return None

    def select(
        self,
        category: Optional[str] = None,
        prefix: Optional[str] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> List[TraceRecord]:
        """Return records matching all the given filters.

        Only the matching records are materialized; a category query
        never touches (or allocates objects for) the rest of the log.

        Args:
            category: exact category match.
            prefix: category prefix match (e.g. ``"tcp."``).
            predicate: arbitrary record filter applied last.
        """
        indices = self._candidate_indices(category, prefix)
        if indices is None:
            indices = range(len(self._raw))
        get = self._get
        if predicate is None:
            return [get(index) for index in indices]
        records = []
        for index in indices:
            record = get(index)
            if predicate(record):
                records.append(record)
        return records

    def count(self, category: Optional[str] = None, prefix: Optional[str] = None) -> int:
        """Count records matching the filters (no materialization)."""
        if category is not None:
            if prefix is not None and not category.startswith(prefix):
                return 0
            return len(self._by_category.get(category, ()))
        if prefix is not None:
            return sum(
                len(indices)
                for cat, indices in self._by_category.items()
                if cat.startswith(prefix)
            )
        return len(self._raw)

    def categories(self) -> Dict[str, int]:
        """Histogram of categories, for quick inspection in tests."""
        return {
            category: len(indices)
            for category, indices in self._by_category.items()
            if indices
        }

    def render_lines(
        self, category: Optional[str] = None, prefix: Optional[str] = None
    ) -> List[str]:
        """Formatted lines for the matching records (lazy rendering)."""
        return [record.render() for record in self.select(category, prefix)]

    def clear(self) -> None:
        """Drop all records."""
        self._raw.clear()
        self._cache.clear()
        self._by_category.clear()
