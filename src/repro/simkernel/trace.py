"""Structured trace log.

Components append :class:`TraceRecord` entries (a timestamp, a category
string such as ``"tcp.retransmit"`` or ``"h2.rst_stream"``, and a dict
of fields).  The experiment harness filters and counts records to
compute the paper's metrics — e.g. Table I's "increase in number of
retransmissions" is a count of ``tcp.retransmit`` records.

The log keeps a per-category index alongside the append-only record
list, so the exact-category queries the harness issues several times
per trial (:meth:`TraceLog.select` / :meth:`TraceLog.count`) do not
scan every record ever logged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One structured log entry."""

    time: float
    category: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)


class TraceLog:
    """An append-only, filterable event log shared by a testbed."""

    def __init__(self, enabled: bool = True) -> None:
        self._records: List[TraceRecord] = []
        #: category → indices into ``_records``, in append order.
        self._by_category: Dict[str, List[int]] = {}
        self.enabled = enabled

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def record(self, time: float, category: str, **fields: Any) -> None:
        """Append one record (a no-op when the log is disabled)."""
        if self.enabled:
            index = len(self._records)
            self._records.append(TraceRecord(time, category, fields))
            bucket = self._by_category.get(category)
            if bucket is None:
                self._by_category[category] = [index]
            else:
                bucket.append(index)

    def _candidate_indices(
        self, category: Optional[str], prefix: Optional[str]
    ) -> Optional[List[int]]:
        """Indices matching the category/prefix filters, in append
        order, or None when a full scan is the right plan (no filter)."""
        if category is not None:
            if prefix is not None and not category.startswith(prefix):
                return []
            return self._by_category.get(category, [])
        if prefix is not None:
            buckets = [
                indices
                for cat, indices in self._by_category.items()
                if cat.startswith(prefix)
            ]
            if not buckets:
                return []
            if len(buckets) == 1:
                return buckets[0]
            merged: List[int] = []
            for bucket in buckets:
                merged.extend(bucket)
            merged.sort()
            return merged
        return None

    def select(
        self,
        category: Optional[str] = None,
        prefix: Optional[str] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> List[TraceRecord]:
        """Return records matching all the given filters.

        Args:
            category: exact category match.
            prefix: category prefix match (e.g. ``"tcp."``).
            predicate: arbitrary record filter applied last.
        """
        indices = self._candidate_indices(category, prefix)
        if indices is None:
            records: List[TraceRecord] = self._records
        else:
            records = [self._records[index] for index in indices]
        if predicate is None:
            return list(records) if records is self._records else records
        return [record for record in records if predicate(record)]

    def count(self, category: Optional[str] = None, prefix: Optional[str] = None) -> int:
        """Count records matching the filters."""
        if category is not None:
            if prefix is not None and not category.startswith(prefix):
                return 0
            return len(self._by_category.get(category, ()))
        if prefix is not None:
            return sum(
                len(indices)
                for cat, indices in self._by_category.items()
                if cat.startswith(prefix)
            )
        return len(self._records)

    def categories(self) -> Dict[str, int]:
        """Histogram of categories, for quick inspection in tests."""
        return {
            category: len(indices)
            for category, indices in self._by_category.items()
            if indices
        }

    def clear(self) -> None:
        """Drop all records."""
        self._records.clear()
        self._by_category.clear()
