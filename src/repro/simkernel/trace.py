"""Structured trace log.

Components append :class:`TraceRecord` entries (a timestamp, a category
string such as ``"tcp.retransmit"`` or ``"h2.rst_stream"``, and a dict
of fields).  The experiment harness filters and counts records to
compute the paper's metrics — e.g. Table I's "increase in number of
retransmissions" is a count of ``tcp.retransmit`` records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One structured log entry."""

    time: float
    category: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)


class TraceLog:
    """An append-only, filterable event log shared by a testbed."""

    def __init__(self, enabled: bool = True) -> None:
        self._records: List[TraceRecord] = []
        self.enabled = enabled

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def record(self, time: float, category: str, **fields: Any) -> None:
        """Append one record (a no-op when the log is disabled)."""
        if self.enabled:
            self._records.append(TraceRecord(time, category, fields))

    def select(
        self,
        category: Optional[str] = None,
        prefix: Optional[str] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> List[TraceRecord]:
        """Return records matching all the given filters.

        Args:
            category: exact category match.
            prefix: category prefix match (e.g. ``"tcp."``).
            predicate: arbitrary record filter applied last.
        """
        result = []
        for record in self._records:
            if category is not None and record.category != category:
                continue
            if prefix is not None and not record.category.startswith(prefix):
                continue
            if predicate is not None and not predicate(record):
                continue
            result.append(record)
        return result

    def count(self, category: Optional[str] = None, prefix: Optional[str] = None) -> int:
        """Count records matching the filters."""
        return len(self.select(category=category, prefix=prefix))

    def categories(self) -> Dict[str, int]:
        """Histogram of categories, for quick inspection in tests."""
        histogram: Dict[str, int] = {}
        for record in self._records:
            histogram[record.category] = histogram.get(record.category, 0) + 1
        return histogram

    def clear(self) -> None:
        """Drop all records."""
        self._records.clear()
