"""The simulator: a virtual clock driving an event queue."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.simkernel.errors import SchedulingError
from repro.simkernel.event import Event, EventQueue


class Simulator:
    """Owns the virtual clock and executes events in time order.

    A single ``Simulator`` instance is shared by every component of a
    testbed (links, TCP endpoints, HTTP/2 peers, the adversary).  Time
    only advances inside :meth:`run` / :meth:`run_until`; callbacks run
    synchronously at their scheduled instant.
    """

    #: Default event priority.  Packet deliveries use this.
    PRIORITY_NORMAL = 100
    #: Timers fire after same-instant packet deliveries.
    PRIORITY_TIMER = 200

    def __init__(self, batching: Optional[bool] = None) -> None:
        if batching is None:
            # Resolve from REPRO_BACKEND so default-constructed
            # simulators (every experiment topology) follow the
            # session-wide backend choice.
            from repro.fastpath import fast_backend_active

            batching = fast_backend_active()
        self.batching = bool(batching)
        self._queue = EventQueue()
        # Bound method, hoisted: schedule() runs hundreds of thousands
        # of times per trial and the extra attribute hop is measurable.
        self._push = self._queue.push
        self._push_batchable = self._queue.push_batchable
        self._now = 0.0
        self._running = False
        self._stopped = False
        self._events_executed = 0
        self._batch_runs = 0
        self._batched_events = 0

    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of callbacks executed so far (cancelled ones excluded)."""
        return self._events_executed

    @property
    def batch_runs(self) -> int:
        """Homogeneous runs (≥ 2 same-key events) executed back-to-back."""
        return self._batch_runs

    @property
    def batched_events(self) -> int:
        """Events dispatched inside batch runs (subset of
        ``events_executed``)."""
        return self._batched_events

    @property
    def pending_events(self) -> int:
        """Number of live events still in the queue."""
        return len(self._queue)

    def schedule(
        self,
        delay: float,
        callback: Callable[[], Any],
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Args:
            delay: non-negative offset from the current time.
            callback: zero-argument callable.
            priority: tie-break for events at the same instant.

        Returns:
            The :class:`Event`, which can be cancelled.

        Raises:
            SchedulingError: if ``delay`` is negative.
        """
        if delay < 0:
            raise SchedulingError(f"cannot schedule in the past (delay={delay})")
        return self._push(self._now + delay, priority, callback)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], Any],
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``callback`` at absolute time ``time``.

        Raises:
            SchedulingError: if ``time`` is earlier than the current time.
        """
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        return self._push(time, priority, callback)

    def call_soon(self, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` at the current instant (after pending work)."""
        return self._push(self._now, self.PRIORITY_NORMAL, callback)

    def schedule_batch_at(
        self,
        time: float,
        key: Any,
        payload: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule a batchable event (``key.deliver(payload)``) at
        absolute time ``time``.

        Semantically identical to ``schedule_at(time, lambda:
        key.deliver(payload), priority)`` — same firing time, same
        tie-break order — but stores plain data instead of a closure
        and lets the run loop execute back-to-back same-key events as
        one homogeneous run.

        Raises:
            SchedulingError: if ``time`` is earlier than the current time.
        """
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        return self._push_batchable(time, priority, key, payload)

    def schedule_batch(
        self,
        delay: float,
        key: Any,
        payload: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule a batchable event ``delay`` seconds from now.

        Raises:
            SchedulingError: if ``delay`` is negative.
        """
        if delay < 0:
            raise SchedulingError(f"cannot schedule in the past (delay={delay})")
        return self._push_batchable(
            self._now + delay, priority, key, payload
        )

    def stop(self) -> None:
        """Stop the run loop after the current callback returns."""
        self._stopped = True

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, :meth:`stop` is called, or
        ``max_events`` callbacks have executed.

        Raises:
            SchedulingError: on re-entrant invocation.
        """
        self._run_loop(until=None, max_events=max_events)

    def run_until(self, until: float, max_events: Optional[int] = None) -> None:
        """Run events with ``time <= until`` and leave the clock at
        ``until`` (or at the stop point if stopped early)."""
        self._run_loop(until=until, max_events=max_events)
        if not self._stopped and self._now < until:
            self._now = until
        self._stopped = False

    def _run_loop(self, until: Optional[float], max_events: Optional[int]) -> None:
        if self._running:
            raise SchedulingError("simulator run loop is not re-entrant")
        self._running = True
        self._stopped = False
        executed = 0
        pop_until = self._queue.pop_until
        batching = self.batching
        try:
            while not self._stopped:
                if max_events is not None and executed >= max_events:
                    break
                event = pop_until(until)
                if event is None:
                    break
                key = event.batch_key
                if key is None:
                    self._now = event.time
                    event.callback()
                    executed += 1
                    self._events_executed += 1
                    continue
                if not batching:
                    # Batchable events still work with batching off —
                    # selection changes strategy, never semantics.
                    self._now = event.time
                    key.deliver(event.payload)
                    executed += 1
                    self._events_executed += 1
                    continue
                budget = None if max_events is None else max_events - executed
                executed += self._execute_run(event, until, budget)
        finally:
            self._running = False

    def _execute_run(
        self, first: Event, until: Optional[float], budget: Optional[int]
    ) -> int:
        """Execute ``first`` plus the contiguous same-key run behind it.

        Order exactness is unconditional: before each subsequent run
        member, the heap head is compared against the member's
        ``(time, priority, sequence)`` key — if a callback scheduled
        anything that must fire earlier (or stopped the simulator, or
        the event budget ran out), the unexecuted suffix is re-pushed
        with its original keys and control returns to the main loop.
        Batching therefore yields byte-identical traces to per-event
        dispatch; only the dispatch overhead changes.
        """
        queue = self._queue
        run = queue.pop_run(first.batch_key, until)
        deliver = first.batch_key.deliver
        self._now = first.time
        deliver(first.payload)
        executed = 1
        stop_index = None
        for index, event in enumerate(run):
            if event.cancelled:
                # An earlier member's callback cancelled this one (an
                # ACK cancelling a retransmit timer mid-run) — skip it
                # exactly as the heap pop paths skip cancelled events.
                continue
            if self._stopped or (budget is not None and executed >= budget):
                stop_index = index
                break
            # Re-read the heap each member: a cancellation inside a
            # callback can trigger compaction, which REBINDS the
            # queue's heap list — a cached reference would go stale
            # and the order check would read dead state.
            heap = queue._heap
            if heap:
                head = heap[0]
                if (head[0], head[1], head[2]) < (
                    event.time, event.priority, event.sequence
                ):
                    stop_index = index
                    break
            self._now = event.time
            deliver(event.payload)
            executed += 1
        if stop_index is not None:
            for event in run[stop_index:]:
                if not event.cancelled:
                    queue.requeue(event)
        self._events_executed += executed
        if executed > 1:
            self._batch_runs += 1
            self._batched_events += executed
        return executed

    def reset(self) -> None:
        """Clear the queue and rewind the clock to zero.

        Only intended for test fixtures; live components holding timer
        references must not be reused across a reset.
        """
        self._queue.clear()
        self._now = 0.0
        self._stopped = False

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self._now:.6f}, pending={self.pending_events}, "
            f"executed={self._events_executed})"
        )
