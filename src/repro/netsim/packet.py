"""Packets on the simulated wire.

A :class:`Packet` wraps one transport segment.  The wire size includes
fixed IP and TCP header overheads so bandwidth and estimator arithmetic
see realistic packet sizes.  The payload (``segment``) is opaque at this
layer; the TCP module defines its structure.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.netsim.address import Endpoint

#: IPv4 header without options.
IP_HEADER_BYTES = 20

#: TCP header without options (the segment model adds option bytes).
TCP_HEADER_BYTES = 20

_packet_ids = itertools.count(1)


@dataclass
class Packet:
    """One IP packet carrying a transport segment.

    Attributes:
        src: source endpoint.
        dst: destination endpoint.
        segment: the transport payload (a ``repro.tcp.TCPSegment``).
        packet_id: unique id, assigned automatically.
        created_at: simulated time the packet was created (set by sender).
    """

    src: Endpoint
    dst: Endpoint
    segment: Any
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    created_at: float = 0.0
    #: Transport payload length in bytes (0 for bare ACKs).  Sizes are
    #: fixed at creation (the segment never changes after the packet is
    #: built) and cached: every hop, queue and capture point reads them.
    payload_bytes: int = field(init=False)
    #: IP + TCP header overhead, including TCP option bytes.
    header_bytes: int = field(init=False)
    #: Total bytes this packet occupies on the wire.
    wire_size: int = field(init=False)

    def __post_init__(self) -> None:
        segment = self.segment
        if segment is None:
            payload = 0
            options = 0
        else:
            payload = int(getattr(segment, "payload_bytes", 0))
            options = int(getattr(segment, "option_bytes", 0))
        self.payload_bytes = payload
        self.header_bytes = IP_HEADER_BYTES + TCP_HEADER_BYTES + options
        self.wire_size = self.header_bytes + payload

    def __repr__(self) -> str:
        return (
            f"Packet(#{self.packet_id} {self.src}->{self.dst} "
            f"{self.wire_size}B)"
        )
