"""Packets on the simulated wire.

A :class:`Packet` wraps one transport segment.  The wire size includes
fixed IP and TCP header overheads so bandwidth and estimator arithmetic
see realistic packet sizes.  The payload (``segment``) is opaque at this
layer; the TCP module defines its structure.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.netsim.address import Endpoint

#: IPv4 header without options.
IP_HEADER_BYTES = 20

#: TCP header without options (the segment model adds option bytes).
TCP_HEADER_BYTES = 20

_packet_ids = itertools.count(1)


@dataclass
class Packet:
    """One IP packet carrying a transport segment.

    Attributes:
        src: source endpoint.
        dst: destination endpoint.
        segment: the transport payload (a ``repro.tcp.TCPSegment``).
        packet_id: unique id, assigned automatically.
        created_at: simulated time the packet was created (set by sender).
    """

    src: Endpoint
    dst: Endpoint
    segment: Any
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    created_at: float = 0.0

    @property
    def payload_bytes(self) -> int:
        """Transport payload length in bytes (0 for bare ACKs)."""
        if self.segment is None:
            return 0
        return int(getattr(self.segment, "payload_bytes", 0))

    @property
    def header_bytes(self) -> int:
        """IP + TCP header overhead, including TCP option bytes."""
        option_bytes = 0
        if self.segment is not None:
            option_bytes = int(getattr(self.segment, "option_bytes", 0))
        return IP_HEADER_BYTES + TCP_HEADER_BYTES + option_bytes

    @property
    def wire_size(self) -> int:
        """Total bytes this packet occupies on the wire."""
        return self.header_bytes + self.payload_bytes

    def __repr__(self) -> str:
        return (
            f"Packet(#{self.packet_id} {self.src}->{self.dst} "
            f"{self.wire_size}B)"
        )
