"""Deterministic fault injection — the netsim's chaos layer.

The paper's attack ran for three months on a live campus gateway, where
loss bursts, link flaps and cross-traffic constantly perturbed it; the
clean links of :mod:`repro.netsim.link` only model i.i.d. loss.  This
module adds the missing impairments as a *schedule* of declarative,
picklable fault specs:

* :class:`GilbertElliottLoss` — bursty on/off loss (two-state Markov
  chain with exponential sojourn times, the classic Gilbert–Elliott
  channel);
* :class:`Outage` — a full link outage window (plus :func:`flaps` to
  build repeated down/up cycles);
* :class:`BandwidthDip` — a transient capacity reduction (cross-traffic
  eating the link);
* :class:`DelaySpike` — added one-way delay, optionally jittered
  per packet, during a window (bufferbloat, rerouting);
* :class:`Duplication` — probabilistic packet duplication;
* :class:`ReorderWindow` — probabilistic extra delay with the FIFO
  delivery clamp lifted, so packets genuinely reorder.

A :class:`FaultSchedule` composes any number of these.  Schedules are
pure data until :meth:`FaultSchedule.bind` compiles them against a
:class:`~repro.simkernel.randomstream.RandomStreams` and a unique name,
yielding a :class:`FaultInjector` whose per-packet draws come from named
substreams — the same seed therefore always produces the same fault
realization, independent of any other consumer of the rng.

Injectors are an actuation surface of both :class:`~repro.netsim.link.Link`
(``faults=`` constructor argument, one independent injector per
direction) and :class:`~repro.netsim.middlebox.Middlebox`
(:meth:`~repro.netsim.middlebox.Middlebox.install_faults`), alongside
the adversary's filter pipeline.  With no schedule configured nothing
in the packet path changes — existing experiments stay byte-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.simkernel.randomstream import RandomStreams


def _check_window(start: float, duration: float) -> None:
    if start < 0:
        raise ValueError("fault start must be non-negative")
    if duration <= 0:
        raise ValueError("fault duration must be positive")


# ---------------------------------------------------------------------------
# Fault specs (pure data, picklable)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GilbertElliottLoss:
    """Bursty loss: a two-state (good/bad) Markov chain.

    While active, the channel alternates between a *good* state losing
    ``good_loss`` of packets and a *bad* state losing ``bad_loss``,
    with exponentially distributed sojourn times of mean ``mean_good``
    and ``mean_bad`` seconds.  State transitions advance in simulated
    time (not per packet), so burst lengths are durations, like a real
    fading or congested channel.
    """

    start: float = 0.0
    duration: float = math.inf
    good_loss: float = 0.0
    bad_loss: float = 1.0
    mean_good: float = 2.0
    mean_bad: float = 0.050

    def __post_init__(self) -> None:
        _check_window(self.start, self.duration)
        for rate in (self.good_loss, self.bad_loss):
            if not (0.0 <= rate <= 1.0):
                raise ValueError("loss rates must be in [0, 1]")
        if self.mean_good <= 0 or self.mean_bad <= 0:
            raise ValueError("mean sojourn times must be positive")


@dataclass(frozen=True)
class Outage:
    """Total loss of the link for one window (a flap's 'down' leg)."""

    start: float
    duration: float

    def __post_init__(self) -> None:
        _check_window(self.start, self.duration)


@dataclass(frozen=True)
class BandwidthDip:
    """Capacity multiplied by ``factor`` (0 < factor < 1) for a window."""

    start: float
    duration: float
    factor: float

    def __post_init__(self) -> None:
        _check_window(self.start, self.duration)
        if not (0.0 < self.factor < 1.0):
            raise ValueError("bandwidth dip factor must be in (0, 1)")


@dataclass(frozen=True)
class DelaySpike:
    """Extra one-way delay during a window, plus optional per-packet jitter."""

    start: float
    duration: float
    delay: float
    jitter: float = 0.0

    def __post_init__(self) -> None:
        _check_window(self.start, self.duration)
        if self.delay < 0 or self.jitter < 0:
            raise ValueError("delay and jitter must be non-negative")
        if self.delay == 0 and self.jitter == 0:
            raise ValueError("delay spike must add some delay")


@dataclass(frozen=True)
class Duplication:
    """Duplicate each packet with ``probability`` during a window."""

    start: float
    duration: float
    probability: float

    def __post_init__(self) -> None:
        _check_window(self.start, self.duration)
        if not (0.0 < self.probability <= 1.0):
            raise ValueError("duplication probability must be in (0, 1]")


@dataclass(frozen=True)
class ReorderWindow:
    """Random extra delay with FIFO delivery lifted, so packets reorder."""

    start: float
    duration: float
    probability: float
    max_delay: float

    def __post_init__(self) -> None:
        _check_window(self.start, self.duration)
        if not (0.0 < self.probability <= 1.0):
            raise ValueError("reorder probability must be in (0, 1]")
        if self.max_delay <= 0:
            raise ValueError("reorder max_delay must be positive")


Impairment = Union[
    GilbertElliottLoss, Outage, BandwidthDip, DelaySpike, Duplication,
    ReorderWindow,
]


def flaps(
    start: float, count: int, down: float, up: float
) -> Tuple[Outage, ...]:
    """``count`` repeated outages of ``down`` seconds, ``up`` apart."""
    if count < 1:
        raise ValueError("flap count must be >= 1")
    if up <= 0:
        raise ValueError("up time between flaps must be positive")
    return tuple(
        Outage(start + index * (down + up), down) for index in range(count)
    )


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered composition of impairments (pure data, picklable)."""

    impairments: Tuple[Impairment, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "impairments", tuple(self.impairments))

    def __bool__(self) -> bool:
        return bool(self.impairments)

    def __len__(self) -> int:
        return len(self.impairments)

    def extended(self, *more: Impairment) -> "FaultSchedule":
        """A new schedule with ``more`` impairments appended."""
        return FaultSchedule(self.impairments + tuple(more))

    def bind(self, rng: RandomStreams, name: str) -> "FaultInjector":
        """Compile into a runtime injector drawing from ``rng``.

        ``name`` scopes the rng substreams; two injectors bound with
        different names (e.g. the two directions of a link) realize the
        same schedule with independent randomness.
        """
        return FaultInjector(self, rng, name)


# ---------------------------------------------------------------------------
# Runtime
# ---------------------------------------------------------------------------


@dataclass
class FaultEffect:
    """What the active faults do to one packet."""

    drop: bool = False
    reason: Optional[str] = None
    extra_delay: float = 0.0
    capacity_factor: float = 1.0
    duplicate: bool = False
    allow_reorder: bool = False

    @property
    def any(self) -> bool:
        return (
            self.drop
            or self.extra_delay > 0.0
            or self.capacity_factor != 1.0
            or self.duplicate
            or self.allow_reorder
        )


class _GilbertElliottState:
    """Lazily advanced two-state chain for one :class:`GilbertElliottLoss`."""

    __slots__ = ("spec", "_stream", "bad", "_next_transition")

    def __init__(self, spec: GilbertElliottLoss, rng: RandomStreams, name: str):
        self.spec = spec
        self._stream = rng.stream(name)
        self.bad = False
        self._next_transition: Optional[float] = None

    def apply(self, now: float, effect: FaultEffect) -> None:
        spec = self.spec
        if not (spec.start <= now < spec.start + spec.duration):
            return
        if self._next_transition is None:
            self._next_transition = spec.start + self._stream.expovariate(
                1.0 / spec.mean_good
            )
        while self._next_transition <= now:
            self.bad = not self.bad
            mean = spec.mean_bad if self.bad else spec.mean_good
            self._next_transition += self._stream.expovariate(1.0 / mean)
        loss = spec.bad_loss if self.bad else spec.good_loss
        if loss > 0.0 and self._stream.random() < loss:
            effect.drop = True
            effect.reason = effect.reason or "loss_burst"


class _WindowState:
    """Shared machinery for the purely window-gated impairments."""

    __slots__ = ("spec", "_stream")

    def __init__(self, spec, rng: Optional[RandomStreams], name: Optional[str]):
        self.spec = spec
        self._stream = rng.stream(name) if rng is not None else None

    def _active(self, now: float) -> bool:
        return self.spec.start <= now < self.spec.start + self.spec.duration


class _OutageState(_WindowState):
    def apply(self, now: float, effect: FaultEffect) -> None:
        if self._active(now):
            effect.drop = True
            effect.reason = effect.reason or "outage"


class _BandwidthDipState(_WindowState):
    def apply(self, now: float, effect: FaultEffect) -> None:
        if self._active(now):
            effect.capacity_factor *= self.spec.factor


class _DelaySpikeState(_WindowState):
    def apply(self, now: float, effect: FaultEffect) -> None:
        if not self._active(now):
            return
        extra = self.spec.delay
        if self.spec.jitter > 0.0:
            extra += self._stream.uniform(0.0, self.spec.jitter)
        effect.extra_delay += extra


class _DuplicationState(_WindowState):
    def apply(self, now: float, effect: FaultEffect) -> None:
        if self._active(now) and self._stream.random() < self.spec.probability:
            effect.duplicate = True


class _ReorderState(_WindowState):
    def apply(self, now: float, effect: FaultEffect) -> None:
        if self._active(now) and self._stream.random() < self.spec.probability:
            effect.extra_delay += self._stream.uniform(0.0, self.spec.max_delay)
            effect.allow_reorder = True


_STATE_TYPES = {
    GilbertElliottLoss: _GilbertElliottState,
    Outage: _OutageState,
    BandwidthDip: _BandwidthDipState,
    DelaySpike: _DelaySpikeState,
    Duplication: _DuplicationState,
    ReorderWindow: _ReorderState,
}

#: Impairment kinds that never draw randomness.
_DETERMINISTIC = (Outage, BandwidthDip)


class FaultInjector:
    """A bound, stateful realization of one :class:`FaultSchedule`.

    One injector serves one packet path (one link direction, or one
    middlebox direction); its rng substreams are scoped by the ``name``
    it was bound with, so realizations on different paths are
    independent but individually reproducible.
    """

    def __init__(
        self, schedule: FaultSchedule, rng: RandomStreams, name: str
    ) -> None:
        self.schedule = schedule
        self.name = name
        self._states: List[object] = []
        for index, spec in enumerate(schedule.impairments):
            state_type = _STATE_TYPES.get(type(spec))
            if state_type is None:
                raise TypeError(f"unknown impairment {spec!r}")
            stream_name = f"{name}.fault{index}"
            if state_type is _GilbertElliottState:
                self._states.append(state_type(spec, rng, stream_name))
            elif isinstance(spec, _DETERMINISTIC):
                self._states.append(state_type(spec, None, None))
            else:
                self._states.append(state_type(spec, rng, stream_name))
        self.drops = 0
        self.duplicates = 0

    def effect(self, now: float) -> FaultEffect:
        """Evaluate every impairment against one packet at ``now``."""
        effect = FaultEffect()
        for state in self._states:
            state.apply(now, effect)
        if effect.drop:
            self.drops += 1
        elif effect.duplicate:
            self.duplicates += 1
        return effect

    def __repr__(self) -> str:
        return (
            f"FaultInjector({self.name!r}, {len(self._states)} impairments, "
            f"drops={self.drops})"
        )
