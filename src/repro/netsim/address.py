"""Endpoint addressing.

A simulated endpoint is a ``(host_name, port)`` pair — enough to route
within the three-node topologies the paper uses (client, gateway
middlebox, server) and to label packet captures.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Endpoint:
    """A network endpoint: host name plus port number."""

    host: str
    port: int

    def __post_init__(self) -> None:
        if not (0 < self.port < 65536):
            raise ValueError(f"port out of range: {self.port}")
        if not self.host:
            raise ValueError("host name must be non-empty")

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"
